//! The fleet sweep orchestrator.
//!
//! A sweep partitions the device population into contiguous shards,
//! streams bounded batches of shard jobs through the `pim-harness`
//! worker pool, and folds each shard's sketch summary into the global
//! [`FleetState`] **in shard-index order** — the one fold order that,
//! combined with exact integer sketch merges, makes the final state a
//! pure function of `(seed, devices, offset, shard_size, sketch
//! geometry)` regardless of worker count, batching, crashes, or resumes.
//!
//! Robustness properties:
//!
//! * After every folded batch the full state is checkpointed atomically
//!   ([`crate::checkpoint`]); a SIGKILL loses at most one batch of work
//!   and a resume replays exactly the missing shards.
//! * Shards that panic or time out are retried by the harness and then
//!   **quarantined**: recorded with their replayable seed and device
//!   range, excluded from aggregation, and reported — one bricked
//!   configuration cannot sink a million-device sweep.
//! * A soft memory budget degrades sketch resolution (recorded in the
//!   report as `degraded_steps`) instead of OOM-ing.
//! * Checkpoint write failures (disk full, torn tmp write) degrade —
//!   the sweep keeps computing with a stale checkpoint — rather than
//!   abort.

use std::path::PathBuf;
use std::time::Duration;

use pim_chaos::ChaosConfig;
use pim_energy::EnergyParams;
use pim_faults::DmpimError;
use pim_harness::{Harness, HarnessPolicy, Job, JobStatus};
use pim_trace::{JsonValue, Tracer};

use crate::checkpoint::{load_checkpoint, write_checkpoint, FleetState, QuarantineRecord, SweepKey};
use crate::profile::{energy_reduction_shifted_bp, sample_profile, shifted_to_signed_bp, token_vocabulary};
use crate::sketch::{CountMinSketch, FixedHistogram, QuantileSketch, SketchConfig};
use crate::FleetError;

/// Shifted-basis-point encoding of "no change": signed 0 bp.
pub const SHIFTED_ZERO_BP: u64 = 10_000;
/// Shifted-basis-point encoding of the paper's 40%-reduction bar.
pub const SHIFTED_40PCT_BP: u64 = 14_000;

/// Everything that shapes a fleet sweep.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Population seed: device `i`'s profile is a pure function of
    /// `(seed, i)`.
    pub seed: u64,
    /// Devices to sweep.
    pub devices: u64,
    /// First absolute device index (nonzero to replay a quarantined
    /// shard's range in isolation).
    pub offset: u64,
    /// Devices per shard.
    pub shard_size: u64,
    /// Harness worker threads.
    pub workers: usize,
    /// Soft budget for resident sketch state; resolution degrades (never
    /// OOM) until the estimate fits.
    pub mem_budget_bytes: u64,
    /// Checkpoint path; `None` disables crash safety.
    pub checkpoint: Option<PathBuf>,
    /// Inject I/O faults into checkpoint writes (durability testing).
    pub checkpoint_chaos: Option<(ChaosConfig, u64)>,
    /// Test knob: stop after this many shards processed *this run*,
    /// without checkpointing the final partial batch — the in-process
    /// state a SIGKILL would discard.
    pub stop_after_shards: Option<u64>,
    /// Test knob: every n-th shard trips a watchdog timeout and rides the
    /// retry → quarantine path.
    pub fail_shard_every: Option<u64>,
    /// Test knob: per-shard delay so an external `kill -9` can land
    /// mid-run deterministically enough for smoke tests.
    pub shard_delay_ms: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            devices: 10_000,
            offset: 0,
            shard_size: 1_000,
            workers: 2,
            mem_budget_bytes: 64 << 20,
            checkpoint: None,
            checkpoint_chaos: None,
            stop_after_shards: None,
            fail_shard_every: None,
            shard_delay_ms: 0,
        }
    }
}

impl FleetConfig {
    /// The sweep identity checkpoints are validated against.
    pub fn key(&self) -> SweepKey {
        SweepKey {
            seed: self.seed,
            devices: self.devices,
            offset: self.offset,
            shard_size: self.shard_size.max(1),
        }
    }
}

/// What a sweep run produced beyond the mergeable state: runtime-only
/// counters that legitimately differ between an uninterrupted run and a
/// kill + resume (and are therefore **excluded** from the deterministic
/// report).
#[derive(Debug)]
pub struct FleetOutcome {
    /// Final aggregation state (pure function of the sweep key for
    /// completed sweeps).
    pub state: FleetState,
    /// Shards restored from the checkpoint instead of recomputed.
    pub resumed_shards: u64,
    /// Shards evaluated this run.
    pub processed_shards: u64,
    /// Checkpoints written durably.
    pub checkpoint_writes: u64,
    /// Checkpoint writes that failed and were skipped (sweep continued).
    pub checkpoint_dropped: u64,
    /// True when `stop_after_shards` cut the run short.
    pub stopped_early: bool,
    /// True when an unreadable checkpoint was discarded and the sweep
    /// recomputed from scratch.
    pub recovered_from_corrupt_checkpoint: bool,
}

/// One shard's aggregation summary — the payload a shard job returns
/// through the harness as a string.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// First absolute device index.
    pub start: u64,
    /// Devices evaluated.
    pub devices: u64,
    /// Devices whose PIM configuration regressed.
    pub regressed: u64,
    /// Shard-local sketches (same geometry as the sweep's).
    pub reduction_q: QuantileSketch,
    /// Shard-local reduction histogram.
    pub reduction_hist: FixedHistogram,
    /// Shard-local attribution counts.
    pub attribution: CountMinSketch,
}

impl ShardSummary {
    /// Render as the shard job's payload string (deterministic).
    pub fn render(&self) -> String {
        JsonValue::object()
            .set("start", self.start)
            .set("devices", self.devices)
            .set("regressed", self.regressed)
            .set("reduction_q", self.reduction_q.to_json_value())
            .set("reduction_hist", self.reduction_hist.to_json_value())
            .set("attribution", self.attribution.to_json_value())
            .render()
    }

    /// Parse a payload back.
    pub fn parse(text: &str) -> Result<Self, FleetError> {
        let doc = JsonValue::parse(text)
            .map_err(|e| FleetError::Corrupt(format!("shard summary parse: {e}")))?;
        let num = |k: &str| {
            doc.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| FleetError::Corrupt(format!("shard summary missing {k}")))
        };
        let sub = |k: &str| {
            doc.get(k).ok_or_else(|| FleetError::Corrupt(format!("shard summary missing {k}")))
        };
        Ok(Self {
            start: num("start")?,
            devices: num("devices")?,
            regressed: num("regressed")?,
            reduction_q: QuantileSketch::from_json_value(sub("reduction_q")?)?,
            reduction_hist: FixedHistogram::from_json_value(sub("reduction_hist")?)?,
            attribution: CountMinSketch::from_json_value(sub("attribution")?)?,
        })
    }
}

/// Evaluate one shard: sample each device's profile, run the analytic
/// energy model, fold into shard-local sketches. Pure function of its
/// arguments.
pub fn evaluate_shard(seed: u64, start: u64, devices: u64, cfg: SketchConfig) -> ShardSummary {
    let params = EnergyParams::default();
    let mut s = ShardSummary {
        start,
        devices: 0,
        regressed: 0,
        reduction_q: QuantileSketch::new(cfg.sub_bits),
        reduction_hist: FixedHistogram::for_reductions(),
        attribution: CountMinSketch::new(cfg.cm_width, cfg.cm_depth),
    };
    for d in start..start + devices {
        let profile = sample_profile(seed, d);
        let shifted = energy_reduction_shifted_bp(&profile, &params);
        s.reduction_q.observe(shifted);
        s.reduction_hist.observe(shifted);
        if shifted < SHIFTED_ZERO_BP {
            s.regressed += 1;
            for token in profile.tokens() {
                s.attribution.increment(&token, 1);
            }
        }
        s.devices += 1;
    }
    s
}

/// Pick the sketch resolution that fits the memory budget. Returns the
/// config and how many degradation steps it took.
fn budgeted_config(workers: usize, budget_bytes: u64) -> (SketchConfig, u32) {
    let mut cfg = SketchConfig::default();
    let mut steps = 0u32;
    // Resident trios: the global fold state plus up to one in-flight and
    // one completed summary per worker.
    let trios = 1 + 3 * workers.max(1) as u64;
    while trios * cfg.trio_bytes() > budget_bytes.max(1) {
        if !cfg.degrade() {
            break;
        }
        steps += 1;
    }
    (cfg, steps)
}

/// Run a fleet sweep to completion (or to the `stop_after_shards` kill
/// point), resuming from the checkpoint when one exists.
pub fn run_fleet(cfg: &FleetConfig, tracer: &Tracer) -> Result<FleetOutcome, FleetError> {
    let key = cfg.key();
    let shards = key.shards();

    let (budget_cfg, budget_steps) = budgeted_config(cfg.workers, cfg.mem_budget_bytes);
    let mut recovered_from_corrupt = false;
    let mut state = match &cfg.checkpoint {
        Some(path) => match load_checkpoint(path, &key) {
            // Resume adopts the checkpoint's frozen sketch geometry so
            // merges stay exact even if the budget changed between runs.
            Ok(Some(s)) => s,
            Ok(None) => FleetState::new(key, budget_cfg, budget_steps),
            Err(FleetError::Corrupt(what)) => {
                // Unreadable checkpoints are discarded, never trusted:
                // recomputing is slow but always correct.
                tracer.count("fleet.checkpoint_corrupt", 1);
                eprintln!("fleet: discarding corrupt checkpoint ({what}); recomputing");
                recovered_from_corrupt = true;
                FleetState::new(key, budget_cfg, budget_steps)
            }
            Err(e) => return Err(e),
        },
        None => FleetState::new(key, budget_cfg, budget_steps),
    };

    let resumed_shards =
        state.completed.count_set() + state.quarantined.len() as u64;
    tracer.gauge("fleet.shards_total", shards as f64);
    tracer.count("fleet.shards_resumed", resumed_shards);

    let pending: Vec<u64> = (0..shards)
        .filter(|&i| !state.completed.get(i) && !state.quarantined.iter().any(|q| q.shard == i))
        .collect();

    let policy = HarnessPolicy {
        workers: cfg.workers.max(1),
        wall_deadline: Some(Duration::from_secs(120)),
        ..HarnessPolicy::default()
    };
    let batch_size = (cfg.workers.max(1) * 2).max(4);

    let mut processed = 0u64;
    let mut checkpoint_writes = 0u64;
    let mut checkpoint_dropped = 0u64;
    let mut stopped_early = false;

    for chunk in pending.chunks(batch_size) {
        let mut batch: Vec<u64> = chunk.to_vec();
        let mut killed_after_batch = false;
        if let Some(limit) = cfg.stop_after_shards {
            let left = limit.saturating_sub(processed);
            if left == 0 {
                stopped_early = true;
                break;
            }
            if batch.len() as u64 >= left {
                batch.truncate(left as usize);
                killed_after_batch = true;
                stopped_early = true;
            }
        }

        let jobs: Vec<Job> = batch
            .iter()
            .map(|&shard| {
                let start = key.offset + shard * key.shard_size;
                let count = key.shard_size.min(key.offset + key.devices - start);
                let job_seed = key.seed ^ start;
                let sketch_cfg = state.sketch_cfg;
                let sweep_seed = key.seed;
                let fail_every = cfg.fail_shard_every;
                let delay_ms = cfg.shard_delay_ms;
                Job::new(format!("shard-{shard:08}"), move |_ctx| {
                    if let Some(n) = fail_every {
                        if n > 0 && (shard + 1) % n == 0 {
                            return Err(DmpimError::WatchdogTimeout {
                                what: "fleet-shard",
                                limit: n,
                                at_ps: shard,
                            });
                        }
                    }
                    if delay_ms > 0 {
                        std::thread::sleep(Duration::from_millis(delay_ms));
                    }
                    Ok(evaluate_shard(sweep_seed, start, count, sketch_cfg).render())
                })
                .with_seed(job_seed)
            })
            .collect();

        let report = Harness::new(policy.clone())
            .with_tracer(tracer)
            .run(jobs)
            .map_err(|e| FleetError::Harness(e.to_string()))?;

        // Results arrive in input order; fold in that (shard-index) order
        // so the merged state is independent of worker scheduling.
        for (&shard, r) in batch.iter().zip(&report.results) {
            debug_assert_eq!(r.id, format!("shard-{shard:08}"));
            let start = key.offset + shard * key.shard_size;
            let count = key.shard_size.min(key.offset + key.devices - start);
            match (r.status, &r.output) {
                (JobStatus::Succeeded, Some(payload)) => {
                    let summary = ShardSummary::parse(payload)?;
                    state.reduction_q.merge(&summary.reduction_q)?;
                    state.reduction_hist.merge(&summary.reduction_hist)?;
                    state.attribution.merge(&summary.attribution)?;
                    state.devices_done += summary.devices;
                    state.regressed += summary.regressed;
                    state.completed.set(shard);
                    tracer.count("fleet.shards_completed", 1);
                }
                _ => {
                    // Failed or quarantined after the harness's own retry
                    // policy: bench the shard with everything needed to
                    // replay it in isolation.
                    state.quarantined.push(QuarantineRecord {
                        shard,
                        start,
                        devices: count,
                        seed: r.seed.unwrap_or(key.seed ^ start),
                        error_label: r
                            .error_label
                            .clone()
                            .unwrap_or_else(|| "unknown".to_string()),
                    });
                    tracer.count("fleet.shards_quarantined", 1);
                }
            }
        }
        processed += batch.len() as u64;

        if killed_after_batch {
            // Simulated SIGKILL: the fold above lives only in this
            // process's memory; the checkpoint still holds the previous
            // batch boundary, exactly like a real kill.
            break;
        }

        if let Some(path) = &cfg.checkpoint {
            match write_checkpoint(path, &state, cfg.checkpoint_chaos, processed) {
                Ok(()) => {
                    checkpoint_writes += 1;
                    tracer.count("fleet.checkpoint_writes", 1);
                }
                Err(_) => {
                    // Degrade, don't abort: the sweep keeps computing and
                    // the next boundary retries the write.
                    checkpoint_dropped += 1;
                    tracer.count("fleet.checkpoint_dropped", 1);
                }
            }
        }
    }

    tracer.gauge("fleet.devices_done", state.devices_done as f64);
    Ok(FleetOutcome {
        state,
        resumed_shards,
        processed_shards: processed,
        checkpoint_writes,
        checkpoint_dropped,
        stopped_early,
        recovered_from_corrupt_checkpoint: recovered_from_corrupt,
    })
}

/// Render the deterministic fleet report: a pure function of the final
/// [`FleetState`], containing **no wall times or runtime counters**, so
/// an uninterrupted sweep and a kill + resume render byte-identical
/// documents.
pub fn fleet_report(state: &FleetState) -> JsonValue {
    let q = &state.reduction_q;
    let quantile_bp = |p: f64| shifted_to_signed_bp(q.quantile(p));
    let mean_bp = if q.count() == 0 {
        0
    } else {
        shifted_to_signed_bp(q.sum() / q.count())
    };

    // Attribution: rank every vocabulary token by estimated regression
    // count (count-min never under-counts), descending then lexicographic
    // for a deterministic order.
    let mut tokens: Vec<(String, u64)> = token_vocabulary()
        .into_iter()
        .map(|t| {
            let est = state.attribution.estimate(&t);
            (t, est)
        })
        .filter(|(_, est)| *est > 0)
        .collect();
    tokens.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut attribution = JsonValue::array();
    for (token, est) in &tokens {
        attribution = attribution.push(
            JsonValue::object()
                .set("token", token.as_str())
                .set("regressions_est", *est),
        );
    }

    let mut quarantined = JsonValue::array();
    for qr in &state.quarantined {
        quarantined = quarantined.push(
            JsonValue::object()
                .set("shard", qr.shard)
                .set("start", qr.start)
                .set("devices", qr.devices)
                .set("seed", qr.seed)
                .set("error_label", qr.error_label.as_str())
                .set(
                    "replay",
                    format!(
                        "repro --fleet --devices {} --seed {} --fleet-offset {}",
                        qr.devices, state.key.seed, qr.start
                    )
                    .as_str(),
                ),
        );
    }

    JsonValue::object()
        .set(
            "population",
            JsonValue::object()
                .set("seed", state.key.seed)
                .set("devices", state.key.devices)
                .set("offset", state.key.offset)
                .set("shard_size", state.key.shard_size)
                .set("shards", state.key.shards())
                .set("completed_shards", state.completed.count_set())
                .set("quarantined_shards", state.quarantined.len() as u64),
        )
        .set(
            "sketch",
            JsonValue::object()
                .set("sub_bits", u64::from(state.sketch_cfg.sub_bits))
                .set("cm_width", state.sketch_cfg.cm_width as u64)
                .set("cm_depth", state.sketch_cfg.cm_depth as u64)
                .set("degraded_steps", u64::from(state.degraded_steps))
                .set("quantile_rel_error_bound", state.reduction_q.relative_error_bound()),
        )
        .set("devices_done", state.devices_done)
        .set(
            "energy_reduction_bp",
            JsonValue::object()
                .set("mean", mean_bp)
                .set("p10", quantile_bp(0.10))
                .set("p50", quantile_bp(0.50))
                .set("p90", quantile_bp(0.90))
                .set("p99", quantile_bp(0.99)),
        )
        .set("devices_ge_40pct_reduction", state.reduction_hist.count_ge(SHIFTED_40PCT_BP))
        .set("devices_regressed", state.reduction_hist.count_lt(SHIFTED_ZERO_BP))
        .set("regression_attribution", attribution)
        .set("quarantined", quarantined)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pim-fleet-sweep-{name}-{}", std::process::id()));
        p
    }

    fn quick_cfg(devices: u64) -> FleetConfig {
        FleetConfig { devices, shard_size: 100, workers: 2, ..FleetConfig::default() }
    }

    #[test]
    fn report_is_independent_of_worker_count_and_batching() {
        let base = run_fleet(&quick_cfg(2_000), &Tracer::disabled()).unwrap();
        let serial = run_fleet(
            &FleetConfig { workers: 1, shard_size: 37, ..quick_cfg(2_000) },
            &Tracer::disabled(),
        )
        .unwrap();
        let wide = run_fleet(
            &FleetConfig { workers: 4, shard_size: 250, ..quick_cfg(2_000) },
            &Tracer::disabled(),
        )
        .unwrap();
        let a = fleet_report(&base.state).render();
        // Shard size changes the shard count in the population header but
        // must not change any aggregate: compare the distribution fields.
        for o in [&serial, &wide] {
            assert_eq!(o.state.devices_done, 2_000);
            assert_eq!(
                fleet_report(&o.state).get("energy_reduction_bp").unwrap().render(),
                fleet_report(&base.state).get("energy_reduction_bp").unwrap().render()
            );
            assert_eq!(o.state.regressed, base.state.regressed);
        }
        // Same config twice → byte-identical full report.
        let again = run_fleet(&quick_cfg(2_000), &Tracer::disabled()).unwrap();
        assert_eq!(a, fleet_report(&again.state).render());
    }

    #[test]
    fn kill_and_resume_is_byte_identical() {
        let ckpt = temp_path("resume");
        let _ = std::fs::remove_file(&ckpt);
        let cfg = FleetConfig { checkpoint: Some(ckpt.clone()), ..quick_cfg(3_000) };

        let uninterrupted = run_fleet(&FleetConfig { checkpoint: None, ..cfg.clone() }, &Tracer::disabled())
            .unwrap();

        // Kill after 7 shards (mid-batch: the partial fold is discarded).
        let killed = run_fleet(
            &FleetConfig { stop_after_shards: Some(7), ..cfg.clone() },
            &Tracer::disabled(),
        )
        .unwrap();
        assert!(killed.stopped_early);
        assert!(killed.state.devices_done < 3_000);

        let resumed = run_fleet(&cfg, &Tracer::disabled()).unwrap();
        assert!(resumed.resumed_shards > 0, "must restore shards from the checkpoint");
        assert_eq!(resumed.state.devices_done, 3_000);
        assert_eq!(
            fleet_report(&resumed.state).render(),
            fleet_report(&uninterrupted.state).render(),
            "kill + resume must render a byte-identical report"
        );
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn failing_shards_are_quarantined_with_replayable_seeds() {
        let out = run_fleet(
            &FleetConfig { fail_shard_every: Some(5), ..quick_cfg(1_000) },
            &Tracer::disabled(),
        )
        .unwrap();
        assert_eq!(out.state.quarantined.len(), 2, "shards 4 and 9 trip the knob");
        for q in &out.state.quarantined {
            assert_eq!(q.seed, 7 ^ q.start, "seed must replay the shard exactly");
            assert_eq!(q.error_label, "watchdog-timeout");
        }
        // Healthy shards still aggregated.
        assert_eq!(out.state.devices_done, 800);
        let rep = fleet_report(&out.state).render();
        assert!(rep.contains("\"quarantined_shards\":2"), "{rep}");
        assert!(rep.contains("--fleet-offset"), "replay hint present: {rep}");
    }

    #[test]
    fn quarantined_shard_replays_in_isolation() {
        // Quarantine shard 4 (devices 400..500), then replay exactly that
        // range with --fleet-offset semantics and check it aggregates.
        let out = run_fleet(
            &FleetConfig { fail_shard_every: Some(5), ..quick_cfg(500) },
            &Tracer::disabled(),
        )
        .unwrap();
        let q = &out.state.quarantined[0];
        let replay = run_fleet(
            &FleetConfig {
                devices: q.devices,
                offset: q.start,
                shard_size: q.devices,
                ..quick_cfg(0)
            },
            &Tracer::disabled(),
        )
        .unwrap();
        assert_eq!(replay.state.devices_done, q.devices);
        // The replayed range must equal a direct evaluation of the same
        // absolute device indices.
        let direct = evaluate_shard(7, q.start, q.devices, replay.state.sketch_cfg);
        assert_eq!(replay.state.regressed, direct.regressed);
    }

    #[test]
    fn memory_budget_degrades_resolution_and_is_reported() {
        let tight = run_fleet(
            &FleetConfig { mem_budget_bytes: 64 << 10, ..quick_cfg(300) },
            &Tracer::disabled(),
        )
        .unwrap();
        assert!(tight.state.degraded_steps > 0);
        assert!(tight.state.sketch_cfg.sub_bits < SketchConfig::default().sub_bits);
        let rep = fleet_report(&tight.state).render();
        assert!(rep.contains(&format!("\"degraded_steps\":{}", tight.state.degraded_steps)));
        // Degraded geometry still aggregates every device.
        assert_eq!(tight.state.devices_done, 300);
    }

    #[test]
    fn corrupt_checkpoint_recovers_by_recomputing() {
        let ckpt = temp_path("corrupt");
        std::fs::write(&ckpt, "not json at all").unwrap();
        let cfg = FleetConfig { checkpoint: Some(ckpt.clone()), ..quick_cfg(500) };
        let out = run_fleet(&cfg, &Tracer::disabled()).unwrap();
        assert!(out.recovered_from_corrupt_checkpoint);
        assert_eq!(out.state.devices_done, 500);
        let clean = run_fleet(&FleetConfig { checkpoint: None, ..cfg }, &Tracer::disabled()).unwrap();
        assert_eq!(fleet_report(&out.state).render(), fleet_report(&clean.state).render());
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn checkpoint_for_a_different_sweep_is_fatal() {
        let ckpt = temp_path("wrongkey");
        let cfg_a = FleetConfig { checkpoint: Some(ckpt.clone()), seed: 1, ..quick_cfg(200) };
        run_fleet(&cfg_a, &Tracer::disabled()).unwrap();
        let cfg_b = FleetConfig { seed: 2, ..cfg_a };
        assert!(matches!(run_fleet(&cfg_b, &Tracer::disabled()), Err(FleetError::Mismatch(_))));
        let _ = std::fs::remove_file(&ckpt);
    }
}
