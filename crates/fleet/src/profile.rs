//! Deterministic device-profile sampling and the closed-form per-device
//! energy model.
//!
//! A fleet sweep evaluates up to millions of devices, so each device
//! must cost microseconds, not the milliseconds of a full
//! `pim-memsim` run. The model here is the analytic skeleton of the
//! simulator's energy accounting: the same [`EnergyParams`] constants
//! (pJ/op, pJ/bit on-chip vs off-chip, row activation, coherence
//! messages) applied to a per-workload traffic profile, scaled by the
//! sampled device configuration. It preserves the paper's structure —
//! PIM wins exactly when it eliminates expensive off-chip data movement
//! — while staying cheap enough to sweep a 1M-device population.
//!
//! Sampling is keyed by `(sweep seed, absolute device index)` only:
//! device `i` gets the same profile no matter which shard, worker, or
//! resumed run evaluates it.

use pim_energy::EnergyParams;
use pim_faults::SplitMix64;

/// Golden-ratio increment used to derive independent per-device streams.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// DRAM class of a sampled device: sets the off-chip energy scale and
/// the CPU path's array energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramClass {
    /// Budget LPDDR3: slowest, most expensive per bit.
    Lpddr3Low,
    /// Mainstream LPDDR3 (the paper's baseline).
    Lpddr3,
    /// LPDDR4-class: cheaper off-chip bits, shrinking PIM's headroom.
    Lpddr4,
}

impl DramClass {
    /// Attribution-token label.
    pub fn label(self) -> &'static str {
        match self {
            DramClass::Lpddr3Low => "lpddr3-low",
            DramClass::Lpddr3 => "lpddr3",
            DramClass::Lpddr4 => "lpddr4",
        }
    }

    /// Multiplier on off-chip pJ/bit relative to the LPDDR3 baseline.
    fn offchip_scale(self) -> f64 {
        match self {
            DramClass::Lpddr3Low => 1.15,
            DramClass::Lpddr3 => 1.0,
            DramClass::Lpddr4 => 0.72,
        }
    }
}

/// Fault-rate class sampled from the `pim-faults` failure families: how
/// often the PIM path is unavailable and work falls back to the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Healthy stack.
    None,
    /// Rare correctable faults.
    Low,
    /// Frequent faults: meaningful fallback share.
    High,
    /// Degraded stack: PIM mostly unavailable.
    Severe,
}

impl FaultClass {
    /// Attribution-token label.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::None => "none",
            FaultClass::Low => "low",
            FaultClass::High => "high",
            FaultClass::Severe => "severe",
        }
    }

    /// Fraction of offload-eligible work that actually runs on PIM.
    fn availability(self) -> f64 {
        match self {
            FaultClass::None => 1.0,
            FaultClass::Low => 0.98,
            FaultClass::High => 0.90,
            FaultClass::Severe => 0.55,
        }
    }
}

/// Workload mix of a device, in percent (sums to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadMix {
    /// Chrome-style browsing (texture tiling, color blitting, compression).
    pub chrome: u32,
    /// TensorFlow Mobile inference (packing, quantization, GEMM edges).
    pub tf: u32,
    /// VP9 video playback/capture (motion estimation, filters).
    pub video: u32,
}

impl WorkloadMix {
    /// The dominant workload's attribution-token label.
    pub fn dominant_label(&self) -> &'static str {
        if self.video >= self.chrome && self.video >= self.tf {
            "video"
        } else if self.chrome >= self.tf {
            "chrome"
        } else {
            "tf"
        }
    }
}

/// One sampled device configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Absolute device index in the population.
    pub device: u64,
    /// DRAM class.
    pub dram: DramClass,
    /// Last-level cache size in KiB (256 / 512 / 1024 / 2048).
    pub cache_kb: u32,
    /// Thermal envelope in centi-units (60..=100): how much sustained
    /// accelerator offload the chassis tolerates before throttling.
    pub thermal_centi: u32,
    /// Fault-rate class.
    pub faults: FaultClass,
    /// Workload mix.
    pub mix: WorkloadMix,
}

impl DeviceProfile {
    /// Attribution tokens for this profile, used to key the count-min
    /// sketch when the device regresses under PIM.
    pub fn tokens(&self) -> [String; 5] {
        [
            format!("dram:{}", self.dram.label()),
            format!("cache:{}k", self.cache_kb),
            format!(
                "thermal:{}",
                if self.thermal_centi < 70 {
                    "tight"
                } else if self.thermal_centi < 85 {
                    "warm"
                } else {
                    "cool"
                }
            ),
            format!("faults:{}", self.faults.label()),
            format!("mix:{}", self.mix.dominant_label()),
        ]
    }
}

/// Every attribution token the sampler can emit. Count-min cannot
/// enumerate its keys, but the token vocabulary is finite and known, so
/// reports query each candidate and rank the estimates.
pub fn token_vocabulary() -> Vec<String> {
    let mut v = Vec::new();
    for d in [DramClass::Lpddr3Low, DramClass::Lpddr3, DramClass::Lpddr4] {
        v.push(format!("dram:{}", d.label()));
    }
    for kb in [256u32, 512, 1024, 2048] {
        v.push(format!("cache:{kb}k"));
    }
    for t in ["tight", "warm", "cool"] {
        v.push(format!("thermal:{t}"));
    }
    for f in [FaultClass::None, FaultClass::Low, FaultClass::High, FaultClass::Severe] {
        v.push(format!("faults:{}", f.label()));
    }
    for m in ["chrome", "tf", "video"] {
        v.push(format!("mix:{m}"));
    }
    v
}

/// Sample device `device`'s profile from the sweep seed. Pure function
/// of `(seed, device)`: shard boundaries, worker count, and resume
/// points cannot change it.
pub fn sample_profile(seed: u64, device: u64) -> DeviceProfile {
    let mut rng = SplitMix64::new(seed ^ device.wrapping_mul(GOLDEN));
    // Burn one draw so adjacent devices decorrelate even for tiny seeds.
    let _ = rng.next_u64();
    let dram = match rng.next_below(100) {
        0..=24 => DramClass::Lpddr3Low,
        25..=74 => DramClass::Lpddr3,
        _ => DramClass::Lpddr4,
    };
    let cache_kb = [256u32, 512, 1024, 2048][rng.next_below(4) as usize];
    let thermal_centi = 60 + rng.next_below(41) as u32;
    let faults = match rng.next_below(100) {
        0..=69 => FaultClass::None,
        70..=89 => FaultClass::Low,
        90..=97 => FaultClass::High,
        _ => FaultClass::Severe,
    };
    // Two cuts of [0, 100] give a mix summing to exactly 100.
    let a = rng.next_below(101);
    let b = rng.next_below(101);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let mix = WorkloadMix {
        chrome: lo as u32,
        tf: (hi - lo) as u32,
        video: (100 - hi) as u32,
    };
    DeviceProfile { device, dram, cache_kb, thermal_centi, faults, mix }
}

/// Per-workload traffic template: relative op count, bytes moved per op
/// on the CPU path, SIMD fraction, and the fraction of ops the PIM
/// accelerator can take (the paper's offload candidates).
struct Traffic {
    ops: f64,
    bytes_per_op: f64,
    simd_frac: f64,
    offload_frac: f64,
    row_acts_per_kop: f64,
}

const CHROME: Traffic =
    Traffic { ops: 1.0, bytes_per_op: 10.0, simd_frac: 0.30, offload_frac: 0.75, row_acts_per_kop: 3.0 };
const TF: Traffic =
    Traffic { ops: 1.4, bytes_per_op: 6.0, simd_frac: 0.55, offload_frac: 0.60, row_acts_per_kop: 2.0 };
const VIDEO: Traffic =
    Traffic { ops: 1.8, bytes_per_op: 14.0, simd_frac: 0.45, offload_frac: 0.85, row_acts_per_kop: 4.0 };

/// How much of the CPU path's traffic misses the cache, by LLC size.
fn miss_factor(cache_kb: u32) -> f64 {
    match cache_kb {
        256 => 1.0,
        512 => 0.86,
        1024 => 0.73,
        _ => 0.62,
    }
}

/// Energy a failed offload attempt wastes, relative to a successful
/// one: the attempt runs, faults, is scrubbed/retried, and the work
/// then falls back to the CPU (which is billed separately).
const RETRY_WASTE: f64 = 2.0;

/// Signed energy-reduction of the PIM configuration vs the CPU baseline
/// for one device, in basis points (−10000..=10000), then shifted by
/// +10000 into `0..=20000` so sketches hold only unsigned integers.
///
/// The asymmetry that makes regressions possible on real tail configs:
/// the CPU path only pays off-chip energy for cache *misses*, while the
/// PIM path streams the full traffic through the stack — so a large LLC
/// plus cheap LPDDR4 bits shrinks PIM's movement win — and offload
/// attempts that *fault* (per [`FaultClass`]) burn PIM energy
/// ([`RETRY_WASTE`]×) before falling back to the CPU.
///
/// Deterministic: a pure function of the profile and the (fixed)
/// [`EnergyParams`], evaluated in one stable expression order.
pub fn energy_reduction_shifted_bp(p: &DeviceProfile, params: &EnergyParams) -> u64 {
    let mut cpu_total = 0.0f64;
    let mut pim_total = 0.0f64;
    let offchip_pj_per_bit = params.offchip_pj_per_bit * p.dram.offchip_scale();
    let miss = miss_factor(p.cache_kb);
    // The thermal envelope caps how much offload the chassis sustains;
    // the fault class splits attempted offload into succeeded vs wasted.
    let thermal = f64::from(p.thermal_centi) / 100.0;
    let availability = p.faults.availability();

    for (weight, t) in [
        (f64::from(p.mix.chrome), &CHROME),
        (f64::from(p.mix.tf), &TF),
        (f64::from(p.mix.video), &VIDEO),
    ] {
        if weight == 0.0 {
            continue;
        }
        let ops = weight * t.ops;
        // CPU traffic is cache-filtered; PIM traffic is not.
        let bits_cpu = ops * t.bytes_per_op * 8.0 * miss;
        let bits_pim = ops * t.bytes_per_op * 8.0;
        let cpu_compute =
            ops * (params.cpu_op_pj * (1.0 - t.simd_frac) + params.cpu_simd_pj * t.simd_frac);
        let cpu_movement = bits_cpu * (offchip_pj_per_bit + params.lpddr3_array_pj_per_bit)
            + ops / 1000.0 * t.row_acts_per_kop * params.row_activate_pj;
        let cpu = cpu_compute + cpu_movement;

        // Per-unit-offload PIM cost: accelerator ops on full in-stack
        // traffic plus a coherence tax.
        let pim_unit = ops * params.accel_op_pj
            + bits_pim * params.stacked_internal_pj_per_bit
            + ops / 100.0 * params.coherence_msg_pj;
        let attempted = t.offload_frac * thermal;
        let succeeded = attempted * availability;
        let wasted = attempted - succeeded;
        let pim = succeeded * pim_unit + wasted * RETRY_WASTE * pim_unit
            + (1.0 - succeeded) * cpu;
        cpu_total += cpu;
        pim_total += pim;
    }

    let reduction_bp = if cpu_total <= 0.0 {
        0i64
    } else {
        (((cpu_total - pim_total) / cpu_total) * 10_000.0).round() as i64
    };
    (reduction_bp.clamp(-10_000, 10_000) + 10_000) as u64
}

/// Convenience: shifted basis points back to signed basis points.
pub fn shifted_to_signed_bp(shifted: u64) -> i64 {
    shifted as i64 - 10_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_device() {
        for device in [0u64, 1, 999_999, u64::MAX] {
            assert_eq!(sample_profile(7, device), sample_profile(7, device));
        }
        // Different seeds decorrelate the population.
        let same = (0..64u64)
            .filter(|&d| sample_profile(1, d) == sample_profile(2, d))
            .count();
        assert!(same < 16, "{same} of 64 profiles identical across seeds");
    }

    #[test]
    fn mix_always_sums_to_100() {
        for d in 0..500u64 {
            let p = sample_profile(11, d);
            assert_eq!(p.mix.chrome + p.mix.tf + p.mix.video, 100, "{p:?}");
            assert!((60..=100).contains(&p.thermal_centi));
        }
    }

    #[test]
    fn healthy_baseline_device_sees_large_reduction() {
        let p = DeviceProfile {
            device: 0,
            dram: DramClass::Lpddr3,
            cache_kb: 256,
            thermal_centi: 100,
            faults: FaultClass::None,
            mix: WorkloadMix { chrome: 40, tf: 20, video: 40 },
        };
        let bp = shifted_to_signed_bp(energy_reduction_shifted_bp(&p, &EnergyParams::default()));
        assert!(bp > 4_000, "paper-like device should see >40% reduction, got {bp} bp");
    }

    #[test]
    fn hostile_tail_config_regresses() {
        // Big cache + cheap DRAM already absorb most movement cost, and a
        // faulty, thermally-limited stack wastes retried offload energy:
        // PIM must show up as an outright regression.
        let p = DeviceProfile {
            device: 0,
            dram: DramClass::Lpddr4,
            cache_kb: 2048,
            thermal_centi: 60,
            faults: FaultClass::Severe,
            mix: WorkloadMix { chrome: 20, tf: 70, video: 10 },
        };
        let bp = shifted_to_signed_bp(energy_reduction_shifted_bp(&p, &EnergyParams::default()));
        let healthy = DeviceProfile {
            dram: DramClass::Lpddr3,
            cache_kb: 256,
            thermal_centi: 100,
            faults: FaultClass::None,
            ..p
        };
        let healthy_bp =
            shifted_to_signed_bp(energy_reduction_shifted_bp(&healthy, &EnergyParams::default()));
        assert!(bp < 0, "tail config must regress outright, got {bp} bp");
        assert!(bp < healthy_bp / 2, "tail config {bp} bp vs healthy {healthy_bp} bp");
    }

    #[test]
    fn tokens_stay_inside_the_vocabulary() {
        let vocab = token_vocabulary();
        for d in 0..200u64 {
            for t in sample_profile(3, d).tokens() {
                assert!(vocab.contains(&t), "{t} missing from vocabulary");
            }
        }
    }
}
