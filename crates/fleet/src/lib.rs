//! # pim-fleet — crash-safe population sweeps
//!
//! The paper evaluates PIM on a handful of reference configurations;
//! shipping the mechanism to a consumer-device fleet raises a different
//! question: *across millions of heterogeneous devices — mixed DRAM
//! generations, cache sizes, thermal envelopes, fault rates, workload
//! mixes — what does the energy-reduction distribution look like, and
//! which configurations regress?* This crate answers that question with
//! three ingredients:
//!
//! 1. **Deterministic population sampling** ([`profile`]): device `i`'s
//!    profile and analytic energy outcome are pure functions of
//!    `(sweep seed, i)`, so any shard, worker, or resumed run evaluates
//!    the same device identically.
//! 2. **Constant-memory, exactly-mergeable sketches** ([`sketch`]):
//!    streaming quantiles, a fixed-bucket histogram for exact threshold
//!    queries, and a count-min sketch for config → regression
//!    attribution. All state is integer counters, so merges are exactly
//!    associative and commutative — the algebra behind bit-identical
//!    crash recovery.
//! 3. **Atomic checkpoints and shard quarantine** ([`checkpoint`],
//!    [`sweep`]): every folded batch persists the full state with the
//!    tmp → fsync → rename idiom; SIGKILL at any instant loses at most
//!    one batch, and a resume replays exactly the missing shards into a
//!    byte-identical final report. Shards that panic or time out are
//!    retried by `pim-harness` and then quarantined with replayable
//!    seeds instead of sinking the sweep.
//!
//! Drive it with `repro --fleet --devices 1000000 --seed 7` (see the
//! `pim-bench` crate) or programmatically via [`run_fleet`].

pub mod checkpoint;
pub mod profile;
pub mod sketch;
pub mod sweep;

pub use checkpoint::{
    load_checkpoint, write_checkpoint, FleetState, QuarantineRecord, ShardBitmap, SweepKey,
};
pub use profile::{
    energy_reduction_shifted_bp, sample_profile, shifted_to_signed_bp, token_vocabulary,
    DeviceProfile, DramClass, FaultClass, WorkloadMix,
};
pub use sketch::{CountMinSketch, FixedHistogram, QuantileSketch, SketchConfig, SketchError};
pub use sweep::{
    evaluate_shard, fleet_report, run_fleet, FleetConfig, FleetOutcome, ShardSummary,
    SHIFTED_40PCT_BP, SHIFTED_ZERO_BP,
};

/// Errors a fleet sweep can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// Filesystem failure on the checkpoint path.
    Io {
        /// Path the operation targeted.
        path: String,
        /// Underlying error text.
        detail: String,
    },
    /// Structurally damaged state (checkpoint or shard payload). Safe to
    /// recover from by recomputing.
    Corrupt(String),
    /// A well-formed checkpoint that belongs to a *different* sweep —
    /// fatal, because merging it would silently mix populations.
    Mismatch(String),
    /// Sketch geometry violation during a merge.
    Sketch(sketch::SketchError),
    /// The harness failed to run a shard batch.
    Harness(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Io { path, detail } => write!(f, "fleet i/o on {path}: {detail}"),
            FleetError::Corrupt(what) => write!(f, "corrupt fleet state: {what}"),
            FleetError::Mismatch(what) => write!(f, "fleet sweep mismatch: {what}"),
            FleetError::Sketch(e) => write!(f, "fleet sketch: {e}"),
            FleetError::Harness(e) => write!(f, "fleet harness: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<sketch::SketchError> for FleetError {
    fn from(e: sketch::SketchError) -> Self {
        FleetError::Sketch(e)
    }
}
