//! Constant-memory, exactly-mergeable sketches for population sweeps.
//!
//! Every sketch in this module keeps **only integer state** (`u64`
//! counts, wrapping sums). Integer addition is exactly associative and
//! commutative, so folding shard sketches in any order — serial, across
//! a worker pool, or split over a checkpoint/resume boundary — produces
//! bit-identical final state. That property is what lets a SIGKILLed
//! fleet sweep resume from its last checkpoint and still render a
//! byte-identical report.
//!
//! Three shapes:
//!
//! * [`QuantileSketch`] — HDR-style log₂ × linear sub-bucket histogram.
//!   Bucket width within the octave of a value `v ≥ 2^(m+1)` is
//!   `2^(h-m)` for `h = ⌊log₂ v⌋`, so the reported quantile `Q`
//!   satisfies `Q ≤ v < Q · (1 + 2^-m)`: relative error ≤ `2^-m` for
//!   sub-bucket resolution `m` (values below `2^(m+1)` are exact).
//! * [`FixedHistogram`] — lower-inclusive fixed-width buckets for exact
//!   threshold queries ("how many devices see ≥ 40% reduction").
//! * [`CountMinSketch`] — `depth × width` counter matrix with
//!   SplitMix64-derived row hashes for config → regression attribution.
//!   Estimates over-count, never under-count.

use pim_faults::SplitMix64;
use pim_trace::JsonValue;

/// Resolution knobs shared by the three sketches, chosen once per sweep
/// from the memory budget and then frozen into every checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchConfig {
    /// Sub-bucket bits of the quantile sketch: `2^sub_bits` linear
    /// buckets per octave, relative error ≤ `2^-sub_bits`.
    pub sub_bits: u32,
    /// Count-min width (always a power of two).
    pub cm_width: usize,
    /// Count-min depth (rows / independent hashes).
    pub cm_depth: usize,
}

impl Default for SketchConfig {
    fn default() -> Self {
        Self { sub_bits: 6, cm_width: 1024, cm_depth: 4 }
    }
}

impl SketchConfig {
    /// Estimated resident bytes of one sketch trio at this resolution.
    pub fn trio_bytes(&self) -> u64 {
        let q = QuantileSketch::bucket_count(self.sub_bits) as u64 * 8;
        let h = (REDUCTION_BUCKETS as u64 + 1) * 8;
        let cm = (self.cm_width * self.cm_depth) as u64 * 8;
        q + h + cm
    }

    /// Halve the resolution one step (quantile error doubles, count-min
    /// collisions double). Returns false once at the floor.
    pub fn degrade(&mut self) -> bool {
        if self.sub_bits > 2 {
            self.sub_bits -= 1;
            self.cm_width = (self.cm_width / 2).max(64);
            true
        } else {
            false
        }
    }
}

/// Errors from sketch deserialization / merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// Two sketches with different geometry cannot merge exactly.
    Mismatch(String),
    /// Serialized state failed to parse.
    Corrupt(String),
}

impl std::fmt::Display for SketchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SketchError::Mismatch(what) => write!(f, "sketch geometry mismatch: {what}"),
            SketchError::Corrupt(what) => write!(f, "corrupt sketch state: {what}"),
        }
    }
}

impl std::error::Error for SketchError {}

/// HDR-style streaming quantile sketch over `u64` values.
///
/// Values `< 2^(m+1)` index their own bucket (exact); a larger value
/// with high bit `h` lands in octave `h - m`, sub-bucket
/// `(v >> (h - m)) - 2^m`. All state is `u64` counts plus a wrapping
/// sum, so [`QuantileSketch::merge`] is exactly associative and
/// commutative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    sub_bits: u32,
    counts: Vec<u64>,
    count: u64,
    /// Wrapping sum of observations (wrapping addition is associative and
    /// commutative, keeping merges exact even at the edge).
    sum: u64,
}

impl QuantileSketch {
    /// An empty sketch with `2^sub_bits` sub-buckets per octave.
    /// `sub_bits` is clamped to `[1, 16]`.
    pub fn new(sub_bits: u32) -> Self {
        let m = sub_bits.clamp(1, 16);
        Self { sub_bits: m, counts: vec![0; Self::bucket_count(m)], count: 0, sum: 0 }
    }

    /// Total dense buckets at resolution `m`: the exact region
    /// `[0, 2^(m+1))` plus `(63 - m)` octaves of `2^m` sub-buckets.
    pub fn bucket_count(m: u32) -> usize {
        let m = m.clamp(1, 16);
        (1usize << (m + 1)) + (63 - m as usize) * (1usize << m)
    }

    /// The sketch's sub-bucket resolution.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// Guaranteed relative error bound: `2^-sub_bits`.
    pub fn relative_error_bound(&self) -> f64 {
        1.0 / (1u64 << self.sub_bits) as f64
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Wrapping sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Resident bytes of the dense count array.
    pub fn mem_bytes(&self) -> u64 {
        self.counts.len() as u64 * 8
    }

    fn bucket_index(&self, v: u64) -> usize {
        let m = self.sub_bits;
        if v < (1u64 << (m + 1)) {
            v as usize
        } else {
            let h = 63 - v.leading_zeros();
            let octave = (h - m) as usize;
            let within = ((v >> (h - m)) - (1u64 << m)) as usize;
            (1usize << (m + 1)) + (octave - 1) * (1usize << m) + within
        }
    }

    /// Lower bound of the value range covered by bucket `idx` — the value
    /// reported for quantiles landing in that bucket.
    fn bucket_lower(&self, idx: usize) -> u64 {
        let m = self.sub_bits as usize;
        let exact = 1usize << (m + 1);
        if idx < exact {
            idx as u64
        } else {
            let rel = idx - exact;
            let octave = rel / (1 << m) + 1;
            let within = (rel % (1 << m)) as u64;
            ((1u64 << m) + within) << octave
        }
    }

    /// Fold one observation in.
    pub fn observe(&mut self, v: u64) {
        let idx = self.bucket_index(v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Exact merge (bucket-wise addition). Errors when geometries differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), SketchError> {
        if self.sub_bits != other.sub_bits {
            return Err(SketchError::Mismatch(format!(
                "quantile sub_bits {} vs {}",
                self.sub_bits, other.sub_bits
            )));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        Ok(())
    }

    /// Value at quantile `q ∈ [0, 1]`: the bucket lower bound at rank
    /// `⌈q·count⌉` (rank 1 minimum). Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                return self.bucket_lower(idx);
            }
        }
        0
    }

    /// Serialize as a JSON object with sparse `[index, count, …]` pairs.
    pub fn to_json_value(&self) -> JsonValue {
        let mut buckets = JsonValue::array();
        for (idx, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                buckets = buckets.push(idx as u64).push(c);
            }
        }
        JsonValue::object()
            .set("m", u64::from(self.sub_bits))
            .set("count", self.count)
            .set("sum", self.sum)
            .set("buckets", buckets)
    }

    /// Inverse of [`QuantileSketch::to_json_value`].
    pub fn from_json_value(v: &JsonValue) -> Result<Self, SketchError> {
        let m = v
            .get("m")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| SketchError::Corrupt("quantile sketch missing m".into()))?;
        let mut s = Self::new(u32::try_from(m).unwrap_or(16));
        s.count = v
            .get("count")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| SketchError::Corrupt("quantile sketch missing count".into()))?;
        s.sum = v
            .get("sum")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| SketchError::Corrupt("quantile sketch missing sum".into()))?;
        let buckets = v
            .get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| SketchError::Corrupt("quantile sketch missing buckets".into()))?;
        if buckets.len() % 2 != 0 {
            return Err(SketchError::Corrupt("odd quantile bucket pair list".into()));
        }
        for pair in buckets.chunks(2) {
            let idx = pair[0]
                .as_u64()
                .and_then(|i| usize::try_from(i).ok())
                .filter(|&i| i < s.counts.len())
                .ok_or_else(|| SketchError::Corrupt("quantile bucket index".into()))?;
            let c = pair[1]
                .as_u64()
                .ok_or_else(|| SketchError::Corrupt("quantile bucket count".into()))?;
            s.counts[idx] = c;
        }
        Ok(s)
    }
}

/// Bucket width of the reduction histogram, in (shifted) basis points.
pub const REDUCTION_STEP_BP: u64 = 250;
/// Dense buckets covering shifted reductions `[0, 20000)` — i.e. signed
/// reductions from −100% to +100% at 2.5%-point granularity.
pub const REDUCTION_BUCKETS: usize = (20_000 / REDUCTION_STEP_BP) as usize;

/// Lower-inclusive fixed-width histogram: bucket `i` covers
/// `[i·step, (i+1)·step)`, with a final overflow bucket. Threshold
/// queries on bucket edges are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedHistogram {
    step: u64,
    counts: Vec<u64>,
    count: u64,
}

impl FixedHistogram {
    /// A histogram of `buckets` dense buckets of width `step` plus one
    /// overflow bucket.
    pub fn new(step: u64, buckets: usize) -> Self {
        Self { step: step.max(1), counts: vec![0; buckets + 1], count: 0 }
    }

    /// The reduction histogram every fleet sweep uses.
    pub fn for_reductions() -> Self {
        Self::new(REDUCTION_STEP_BP, REDUCTION_BUCKETS)
    }

    /// Observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Resident bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.counts.len() as u64 * 8
    }

    /// Fold one observation in.
    pub fn observe(&mut self, v: u64) {
        let idx = ((v / self.step) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.count += 1;
    }

    /// Exact count of observations `≥ threshold`; `threshold` must sit on
    /// a bucket edge (`threshold % step == 0`) for exactness.
    pub fn count_ge(&self, threshold: u64) -> u64 {
        let first = ((threshold / self.step) as usize).min(self.counts.len() - 1);
        self.counts[first..].iter().sum()
    }

    /// Exact count of observations `< threshold` (same edge requirement).
    pub fn count_lt(&self, threshold: u64) -> u64 {
        self.count - self.count_ge(threshold)
    }

    /// Exact merge. Errors when geometries differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), SketchError> {
        if self.step != other.step || self.counts.len() != other.counts.len() {
            return Err(SketchError::Mismatch("histogram step/buckets".into()));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.count += other.count;
        Ok(())
    }

    /// Serialize (sparse pairs, like the quantile sketch).
    pub fn to_json_value(&self) -> JsonValue {
        let mut buckets = JsonValue::array();
        for (idx, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                buckets = buckets.push(idx as u64).push(c);
            }
        }
        JsonValue::object()
            .set("step", self.step)
            .set("len", self.counts.len() as u64)
            .set("count", self.count)
            .set("buckets", buckets)
    }

    /// Inverse of [`FixedHistogram::to_json_value`].
    pub fn from_json_value(v: &JsonValue) -> Result<Self, SketchError> {
        let step = v
            .get("step")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| SketchError::Corrupt("histogram missing step".into()))?;
        let len = v
            .get("len")
            .and_then(JsonValue::as_u64)
            .and_then(|l| usize::try_from(l).ok())
            .filter(|&l| (1..=1 << 20).contains(&l))
            .ok_or_else(|| SketchError::Corrupt("histogram missing len".into()))?;
        let mut h = Self { step: step.max(1), counts: vec![0; len], count: 0 };
        h.count = v
            .get("count")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| SketchError::Corrupt("histogram missing count".into()))?;
        let buckets = v
            .get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| SketchError::Corrupt("histogram missing buckets".into()))?;
        if buckets.len() % 2 != 0 {
            return Err(SketchError::Corrupt("odd histogram bucket pair list".into()));
        }
        for pair in buckets.chunks(2) {
            let idx = pair[0]
                .as_u64()
                .and_then(|i| usize::try_from(i).ok())
                .filter(|&i| i < h.counts.len())
                .ok_or_else(|| SketchError::Corrupt("histogram bucket index".into()))?;
            let c = pair[1]
                .as_u64()
                .ok_or_else(|| SketchError::Corrupt("histogram bucket count".into()))?;
            h.counts[idx] = c;
        }
        Ok(h)
    }
}

/// Fixed salts deriving the independent count-min row hashes (golden-ratio
/// multiples, same family as [`SplitMix64`]'s increment).
const CM_ROW_SALTS: [u64; 8] = [
    0x9E37_79B9_7F4A_7C15,
    0x3C6E_F372_FE94_F82A,
    0xDAA6_6D2C_7DDF_743F,
    0x78DD_E6E5_FD29_F054,
    0x1715_6069_7C74_6C69,
    0xB54C_DA03_FBBE_E87E,
    0x5384_539D_7B09_6493,
    0xF1BB_CD37_FA53_E0A8,
];

fn fnv1a(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Count-min sketch: `depth` rows of `width` counters; increments hit one
/// counter per row, estimates take the row-wise minimum. Estimates can
/// only over-count (hash collisions), never under-count — the right bias
/// for "which configs regress" attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    rows: Vec<u64>,
}

impl CountMinSketch {
    /// An empty sketch. `width` is rounded up to a power of two and
    /// clamped to ≥ 16; `depth` is clamped to `[1, 8]`.
    pub fn new(width: usize, depth: usize) -> Self {
        let width = width.max(16).next_power_of_two();
        let depth = depth.clamp(1, CM_ROW_SALTS.len());
        Self { width, depth, rows: vec![0; width * depth] }
    }

    /// Row count.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Resident bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.rows.len() as u64 * 8
    }

    fn slot(&self, row: usize, key_hash: u64) -> usize {
        let mut mixer = SplitMix64::new(key_hash ^ CM_ROW_SALTS[row]);
        row * self.width + (mixer.next_u64() as usize & (self.width - 1))
    }

    /// Add `delta` to `key`.
    pub fn increment(&mut self, key: &str, delta: u64) {
        let h = fnv1a(key);
        for row in 0..self.depth {
            let slot = self.slot(row, h);
            self.rows[slot] += delta;
        }
    }

    /// Point estimate for `key` (row-wise minimum; never under-counts).
    pub fn estimate(&self, key: &str) -> u64 {
        let h = fnv1a(key);
        (0..self.depth).map(|row| self.rows[self.slot(row, h)]).min().unwrap_or(0)
    }

    /// Exact merge. Errors when geometries differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), SketchError> {
        if self.width != other.width || self.depth != other.depth {
            return Err(SketchError::Mismatch("count-min width/depth".into()));
        }
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            *a += *b;
        }
        Ok(())
    }

    /// Serialize (sparse pairs over the flattened matrix).
    pub fn to_json_value(&self) -> JsonValue {
        let mut slots = JsonValue::array();
        for (idx, &c) in self.rows.iter().enumerate() {
            if c != 0 {
                slots = slots.push(idx as u64).push(c);
            }
        }
        JsonValue::object()
            .set("width", self.width as u64)
            .set("depth", self.depth as u64)
            .set("slots", slots)
    }

    /// Inverse of [`CountMinSketch::to_json_value`].
    pub fn from_json_value(v: &JsonValue) -> Result<Self, SketchError> {
        let width = v
            .get("width")
            .and_then(JsonValue::as_u64)
            .and_then(|w| usize::try_from(w).ok())
            .filter(|&w| (16..=1 << 24).contains(&w) && w.is_power_of_two())
            .ok_or_else(|| SketchError::Corrupt("count-min width".into()))?;
        let depth = v
            .get("depth")
            .and_then(JsonValue::as_u64)
            .and_then(|d| usize::try_from(d).ok())
            .filter(|&d| (1..=CM_ROW_SALTS.len()).contains(&d))
            .ok_or_else(|| SketchError::Corrupt("count-min depth".into()))?;
        let mut s = Self { width, depth, rows: vec![0; width * depth] };
        let slots = v
            .get("slots")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| SketchError::Corrupt("count-min slots".into()))?;
        if slots.len() % 2 != 0 {
            return Err(SketchError::Corrupt("odd count-min slot pair list".into()));
        }
        for pair in slots.chunks(2) {
            let idx = pair[0]
                .as_u64()
                .and_then(|i| usize::try_from(i).ok())
                .filter(|&i| i < s.rows.len())
                .ok_or_else(|| SketchError::Corrupt("count-min slot index".into()))?;
            let c = pair[1]
                .as_u64()
                .ok_or_else(|| SketchError::Corrupt("count-min slot count".into()))?;
            s.rows[idx] = c;
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_bucket_index_is_monotone_and_in_range() {
        let s = QuantileSketch::new(4);
        let mut values: Vec<u64> = (0..64u32)
            .flat_map(|exp| [0u64, 1, 3].map(|off| (1u64 << exp).saturating_add(off)))
            .collect();
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = s.bucket_index(v);
            assert!(idx < s.counts.len(), "v={v} idx={idx}");
            assert!(idx >= last, "index must be monotone in value (v={v})");
            last = idx;
            assert!(s.bucket_lower(idx) <= v, "lower bound ≤ value for v={v}");
        }
        assert!(s.bucket_index(u64::MAX) < s.counts.len());
    }

    #[test]
    fn quantile_exact_region_is_exact() {
        let mut s = QuantileSketch::new(5);
        for v in 0..64u64 {
            s.observe(v);
        }
        // Values < 2^(m+1) = 64 occupy their own bucket: the median of
        // 0..64 must come back exactly.
        assert_eq!(s.quantile(0.5), 31);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 63);
    }

    #[test]
    fn histogram_threshold_on_edge_is_exact() {
        let mut h = FixedHistogram::for_reductions();
        for v in [0u64, 13_999, 14_000, 14_001, 19_999, 25_000] {
            h.observe(v);
        }
        assert_eq!(h.count_ge(14_000), 4, "14000 is a bucket edge: exact");
        assert_eq!(h.count_lt(10_000), 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn count_min_never_undercounts() {
        let mut cm = CountMinSketch::new(64, 4);
        for i in 0..200u64 {
            cm.increment(&format!("key-{}", i % 20), 1);
        }
        for i in 0..20u64 {
            assert!(cm.estimate(&format!("key-{i}")) >= 10, "key-{i}");
        }
    }

    #[test]
    fn serialization_round_trips_bit_identically() {
        let mut q = QuantileSketch::new(6);
        let mut h = FixedHistogram::for_reductions();
        let mut cm = CountMinSketch::new(256, 4);
        let mut rng = SplitMix64::new(42);
        for _ in 0..5_000 {
            let v = rng.next_below(20_000);
            q.observe(v);
            h.observe(v);
            cm.increment(&format!("t{}", v % 13), 1);
        }
        let q2 = QuantileSketch::from_json_value(&q.to_json_value()).unwrap();
        let h2 = FixedHistogram::from_json_value(&h.to_json_value()).unwrap();
        let cm2 = CountMinSketch::from_json_value(&cm.to_json_value()).unwrap();
        assert_eq!(q, q2);
        assert_eq!(h, h2);
        assert_eq!(cm, cm2);
        assert_eq!(q.to_json_value().render(), q2.to_json_value().render());
    }

    #[test]
    fn geometry_mismatches_are_typed_errors() {
        let mut a = QuantileSketch::new(4);
        let b = QuantileSketch::new(5);
        assert!(matches!(a.merge(&b), Err(SketchError::Mismatch(_))));
        let mut ha = FixedHistogram::new(100, 10);
        let hb = FixedHistogram::new(200, 10);
        assert!(matches!(ha.merge(&hb), Err(SketchError::Mismatch(_))));
        let mut ca = CountMinSketch::new(64, 4);
        let cb = CountMinSketch::new(128, 4);
        assert!(matches!(ca.merge(&cb), Err(SketchError::Mismatch(_))));
    }

    #[test]
    fn degrade_halves_resolution_until_the_floor()
    {
        let mut cfg = SketchConfig::default();
        let before = cfg.trio_bytes();
        assert!(cfg.degrade());
        assert!(cfg.trio_bytes() < before);
        while cfg.degrade() {}
        assert_eq!(cfg.sub_bits, 2);
        assert_eq!(cfg.cm_width, 64);
    }
}
