//! Atomic fleet checkpoints.
//!
//! After each folded batch of shards the sweep persists its entire
//! aggregation state — sketch trio, completed-shard bitmap, quarantine
//! list, degradation level — as a single JSON document, written with the
//! journal-compaction idiom (`tmp` file → `write_all` → `sync_all` →
//! `rename` → parent-directory sync). A crash at any instant therefore
//! leaves either the previous checkpoint or the new one, never a torn
//! hybrid; a torn write of the `tmp` file aborts before the rename and
//! the old checkpoint survives untouched.
//!
//! Because every sketch merge is exact integer addition and shards are
//! folded in shard-index order, resuming from any checkpoint replays the
//! missing shards into **bit-identical** final state — the chaos matrix
//! in `tests/chaos_matrix.rs` asserts this byte-for-byte across fault
//! families and kill points.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use pim_chaos::{ChaosConfig, ChaosFile, ChaosPlan};
use pim_harness::JournalSink;
use pim_trace::JsonValue;

use crate::sketch::{CountMinSketch, FixedHistogram, QuantileSketch, SketchConfig};
use crate::FleetError;

/// Checkpoint file magic.
pub const MAGIC: &str = "pim-fleet";
/// Checkpoint format version.
pub const VERSION: u64 = 1;

/// The identity of a sweep: a checkpoint may only resume a sweep with the
/// exact same key, otherwise merged state would silently mix populations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepKey {
    /// Population seed.
    pub seed: u64,
    /// Devices in the population.
    pub devices: u64,
    /// First absolute device index (nonzero when replaying a shard range).
    pub offset: u64,
    /// Devices per shard.
    pub shard_size: u64,
}

impl SweepKey {
    /// Number of shards the population partitions into.
    pub fn shards(&self) -> u64 {
        self.devices.div_ceil(self.shard_size.max(1))
    }
}

/// Dense completed-shard bitmap, serialized as lowercase hex (bit
/// `i % 8` of byte `i / 8` marks shard `i`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardBitmap {
    bits: Vec<u8>,
    shards: u64,
}

impl ShardBitmap {
    /// An all-clear bitmap for `shards` shards.
    pub fn new(shards: u64) -> Self {
        Self { bits: vec![0; (shards as usize).div_ceil(8)], shards }
    }

    /// Mark shard `i` complete.
    pub fn set(&mut self, i: u64) {
        if i < self.shards {
            self.bits[(i / 8) as usize] |= 1 << (i % 8);
        }
    }

    /// Is shard `i` complete?
    pub fn get(&self, i: u64) -> bool {
        i < self.shards && self.bits[(i / 8) as usize] & (1 << (i % 8)) != 0
    }

    /// Completed-shard count.
    pub fn count_set(&self) -> u64 {
        self.bits.iter().map(|b| u64::from(b.count_ones())).sum()
    }

    /// Hex rendering for the checkpoint document.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(self.bits.len() * 2);
        for b in &self.bits {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parse the hex rendering back for `shards` shards.
    pub fn from_hex(hex: &str, shards: u64) -> Result<Self, FleetError> {
        let mut bm = Self::new(shards);
        if hex.len() != bm.bits.len() * 2 {
            return Err(FleetError::Corrupt(format!(
                "bitmap length {} for {} shards",
                hex.len(),
                shards
            )));
        }
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let txt = std::str::from_utf8(chunk)
                .map_err(|_| FleetError::Corrupt("bitmap not utf8".into()))?;
            bm.bits[i] = u8::from_str_radix(txt, 16)
                .map_err(|_| FleetError::Corrupt(format!("bitmap byte {txt:?}")))?;
        }
        Ok(bm)
    }
}

/// One quarantined shard: everything needed to replay it in isolation
/// (`repro --fleet --devices <devices> --seed <seed> --fleet-offset <start>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Shard index within the sweep.
    pub shard: u64,
    /// First absolute device index of the shard.
    pub start: u64,
    /// Devices in the shard.
    pub devices: u64,
    /// The shard job's deterministic seed (`sweep_seed ^ start`).
    pub seed: u64,
    /// Failure-taxonomy label from the harness.
    pub error_label: String,
}

impl QuarantineRecord {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object()
            .set("shard", self.shard)
            .set("start", self.start)
            .set("devices", self.devices)
            .set("seed", self.seed)
            .set("error_label", self.error_label.as_str())
    }

    fn from_json_value(v: &JsonValue) -> Result<Self, FleetError> {
        let field = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| FleetError::Corrupt(format!("quarantine record missing {k}")))
        };
        Ok(Self {
            shard: field("shard")?,
            start: field("start")?,
            devices: field("devices")?,
            seed: field("seed")?,
            error_label: v
                .get("error_label")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_string(),
        })
    }
}

/// The complete, mergeable state of a fleet sweep — exactly what a
/// checkpoint persists and a resume restores.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetState {
    /// Sweep identity.
    pub key: SweepKey,
    /// Sketch geometry (frozen at first checkpoint; resume adopts it even
    /// if the budget-derived config differs, so merges stay exact).
    pub sketch_cfg: SketchConfig,
    /// How many times the memory budget degraded the sketch resolution.
    pub degraded_steps: u32,
    /// Devices aggregated so far.
    pub devices_done: u64,
    /// Devices whose PIM configuration regressed (shifted bp < 10000).
    pub regressed: u64,
    /// Completed shards.
    pub completed: ShardBitmap,
    /// Quarantined shards with replayable seeds.
    pub quarantined: Vec<QuarantineRecord>,
    /// Streaming quantiles of the shifted energy-reduction distribution.
    pub reduction_q: QuantileSketch,
    /// Fixed-bucket histogram for exact threshold queries.
    pub reduction_hist: FixedHistogram,
    /// Config-token → regression-count attribution.
    pub attribution: CountMinSketch,
}

impl FleetState {
    /// Fresh state for `key` at sketch resolution `cfg`.
    pub fn new(key: SweepKey, cfg: SketchConfig, degraded_steps: u32) -> Self {
        Self {
            key,
            sketch_cfg: cfg,
            degraded_steps,
            devices_done: 0,
            regressed: 0,
            completed: ShardBitmap::new(key.shards()),
            quarantined: Vec::new(),
            reduction_q: QuantileSketch::new(cfg.sub_bits),
            reduction_hist: FixedHistogram::for_reductions(),
            attribution: CountMinSketch::new(cfg.cm_width, cfg.cm_depth),
        }
    }

    /// Render the checkpoint document (deterministic key order).
    pub fn to_json_value(&self) -> JsonValue {
        let mut quarantined = JsonValue::array();
        for q in &self.quarantined {
            quarantined = quarantined.push(q.to_json_value());
        }
        JsonValue::object()
            .set("fleet", MAGIC)
            .set("version", VERSION)
            .set("seed", self.key.seed)
            .set("devices", self.key.devices)
            .set("offset", self.key.offset)
            .set("shard_size", self.key.shard_size)
            .set(
                "sketch",
                JsonValue::object()
                    .set("sub_bits", u64::from(self.sketch_cfg.sub_bits))
                    .set("cm_width", self.sketch_cfg.cm_width as u64)
                    .set("cm_depth", self.sketch_cfg.cm_depth as u64),
            )
            .set("degraded_steps", u64::from(self.degraded_steps))
            .set("devices_done", self.devices_done)
            .set("regressed", self.regressed)
            .set("completed", self.completed.to_hex().as_str())
            .set("quarantined", quarantined)
            .set("reduction_q", self.reduction_q.to_json_value())
            .set("reduction_hist", self.reduction_hist.to_json_value())
            .set("attribution", self.attribution.to_json_value())
    }

    /// Parse a checkpoint document and validate it against the sweep key.
    ///
    /// Structural damage is [`FleetError::Corrupt`] (callers warn and
    /// start fresh — recomputing is always safe); a well-formed document
    /// for a *different* sweep is [`FleetError::Mismatch`] (fatal: the
    /// caller is pointing at the wrong file).
    pub fn parse(text: &str, expect: &SweepKey) -> Result<Self, FleetError> {
        let doc = JsonValue::parse(text)
            .map_err(|e| FleetError::Corrupt(format!("checkpoint parse: {e}")))?;
        let num = |k: &str| {
            doc.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| FleetError::Corrupt(format!("checkpoint missing {k}")))
        };
        if doc.get("fleet").and_then(JsonValue::as_str) != Some(MAGIC) {
            return Err(FleetError::Corrupt("checkpoint magic".into()));
        }
        if num("version")? != VERSION {
            return Err(FleetError::Corrupt("checkpoint version".into()));
        }
        let key = SweepKey {
            seed: num("seed")?,
            devices: num("devices")?,
            offset: num("offset")?,
            shard_size: num("shard_size")?,
        };
        if key != *expect {
            return Err(FleetError::Mismatch(format!(
                "checkpoint is for seed={} devices={} offset={} shard_size={}, \
                 sweep wants seed={} devices={} offset={} shard_size={}",
                key.seed,
                key.devices,
                key.offset,
                key.shard_size,
                expect.seed,
                expect.devices,
                expect.offset,
                expect.shard_size
            )));
        }
        let sketch = doc
            .get("sketch")
            .ok_or_else(|| FleetError::Corrupt("checkpoint missing sketch".into()))?;
        let snum = |k: &str| {
            sketch
                .get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| FleetError::Corrupt(format!("checkpoint sketch missing {k}")))
        };
        let sketch_cfg = SketchConfig {
            sub_bits: u32::try_from(snum("sub_bits")?)
                .map_err(|_| FleetError::Corrupt("sketch sub_bits".into()))?,
            cm_width: usize::try_from(snum("cm_width")?)
                .map_err(|_| FleetError::Corrupt("sketch cm_width".into()))?,
            cm_depth: usize::try_from(snum("cm_depth")?)
                .map_err(|_| FleetError::Corrupt("sketch cm_depth".into()))?,
        };
        let completed = ShardBitmap::from_hex(
            doc.get("completed")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| FleetError::Corrupt("checkpoint missing completed".into()))?,
            key.shards(),
        )?;
        let mut quarantined = Vec::new();
        for q in doc
            .get("quarantined")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| FleetError::Corrupt("checkpoint missing quarantined".into()))?
        {
            quarantined.push(QuarantineRecord::from_json_value(q)?);
        }
        let sub = |k: &str| {
            doc.get(k).ok_or_else(|| FleetError::Corrupt(format!("checkpoint missing {k}")))
        };
        Ok(Self {
            key,
            sketch_cfg,
            degraded_steps: u32::try_from(num("degraded_steps")?)
                .map_err(|_| FleetError::Corrupt("degraded_steps".into()))?,
            devices_done: num("devices_done")?,
            regressed: num("regressed")?,
            completed,
            quarantined,
            reduction_q: QuantileSketch::from_json_value(sub("reduction_q")?)?,
            reduction_hist: FixedHistogram::from_json_value(sub("reduction_hist")?)?,
            attribution: CountMinSketch::from_json_value(sub("attribution")?)?,
        })
    }
}

/// Atomically replace the checkpoint at `path` with `state`.
///
/// `chaos` (config, seed) injects write faults into the `tmp`-file sink
/// for the durability matrix; `write_idx` salts the plan so each
/// checkpoint write draws an independent fault stream. Any failure —
/// injected or real — leaves the previous checkpoint intact because the
/// rename only happens after a fully synced `tmp` write.
pub fn write_checkpoint(
    path: &Path,
    state: &FleetState,
    chaos: Option<(ChaosConfig, u64)>,
    write_idx: u64,
) -> Result<(), FleetError> {
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    let io_err = |p: &Path, e: &std::io::Error| FleetError::Io {
        path: p.display().to_string(),
        detail: e.to_string(),
    };
    let mut text = state.to_json_value().render();
    text.push('\n');
    {
        let mut sink: Box<dyn JournalSink> = match chaos {
            Some((cfg, seed)) => Box::new(
                ChaosFile::create(&tmp, ChaosPlan::fork(cfg, seed, write_idx))
                    .map_err(|e| io_err(&tmp, &e))?,
            ),
            None => Box::new(File::create(&tmp).map_err(|e| io_err(&tmp, &e))?),
        };
        sink.write_all(text.as_bytes()).map_err(|e| io_err(&tmp, &e))?;
        sink.sync_all().map_err(|e| io_err(&tmp, &e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, &e))?;
    // Make the rename itself durable where the platform allows it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Load the checkpoint at `path` for the sweep identified by `expect`.
///
/// Returns `Ok(None)` when no checkpoint exists (fresh sweep);
/// `Err(Corrupt)` when the file is unreadable or structurally damaged
/// (callers warn and recompute); `Err(Mismatch)` when it belongs to a
/// different sweep (fatal).
pub fn load_checkpoint(path: &Path, expect: &SweepKey) -> Result<Option<FleetState>, FleetError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(FleetError::Corrupt(format!(
                "checkpoint {} unreadable: {e}",
                path.display()
            )))
        }
    };
    FleetState::parse(&text, expect).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pim-fleet-ckpt-{name}-{}", std::process::id()));
        p
    }

    fn sample_state() -> FleetState {
        let key = SweepKey { seed: 7, devices: 1000, offset: 0, shard_size: 100 };
        let mut s = FleetState::new(key, SketchConfig::default(), 1);
        for v in [9_000u64, 14_500, 15_000, 8_000, 19_000] {
            s.reduction_q.observe(v);
            s.reduction_hist.observe(v);
            if v < 10_000 {
                s.regressed += 1;
                s.attribution.increment("dram:lpddr4", 1);
            }
            s.devices_done += 1;
        }
        s.completed.set(0);
        s.completed.set(3);
        s.quarantined.push(QuarantineRecord {
            shard: 5,
            start: 500,
            devices: 100,
            seed: 7 ^ 500,
            error_label: "watchdog-timeout".into(),
        });
        s
    }

    #[test]
    fn bitmap_round_trips_and_counts() {
        let mut bm = ShardBitmap::new(19);
        for i in [0u64, 7, 8, 18] {
            bm.set(i);
        }
        assert_eq!(bm.count_set(), 4);
        assert!(bm.get(8));
        assert!(!bm.get(9));
        let back = ShardBitmap::from_hex(&bm.to_hex(), 19).unwrap();
        assert_eq!(bm, back);
        assert!(ShardBitmap::from_hex("zz", 19).is_err());
        assert!(ShardBitmap::from_hex("00", 19).is_err(), "wrong length");
    }

    #[test]
    fn checkpoint_round_trips_bit_identically() {
        let state = sample_state();
        let path = temp_path("roundtrip");
        write_checkpoint(&path, &state, None, 0).unwrap();
        let back = load_checkpoint(&path, &state.key).unwrap().unwrap();
        assert_eq!(state, back);
        assert_eq!(
            state.to_json_value().render(),
            back.to_json_value().render(),
            "re-rendered checkpoint must be byte-identical"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_checkpoint_is_a_fresh_start() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        let key = SweepKey { seed: 1, devices: 10, offset: 0, shard_size: 5 };
        assert_eq!(load_checkpoint(&path, &key).unwrap(), None);
    }

    #[test]
    fn wrong_sweep_is_a_mismatch_corrupt_doc_is_corrupt() {
        let state = sample_state();
        let path = temp_path("mismatch");
        write_checkpoint(&path, &state, None, 0).unwrap();
        let other = SweepKey { seed: 8, ..state.key };
        assert!(matches!(load_checkpoint(&path, &other), Err(FleetError::Mismatch(_))));
        std::fs::write(&path, "{\"fleet\":\"pim-fleet\",\"version\":1,").unwrap();
        assert!(matches!(load_checkpoint(&path, &state.key), Err(FleetError::Corrupt(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tmp_write_leaves_previous_checkpoint_intact() {
        let state = sample_state();
        let path = temp_path("torn");
        write_checkpoint(&path, &state, None, 0).unwrap();
        let before = std::fs::read(&path).unwrap();
        let mut newer = state.clone();
        newer.devices_done += 100;
        newer.completed.set(4);
        // Torn-write chaos on the tmp sink: some seeds fail the write; the
        // visible checkpoint must never change on failure.
        let mut failures = 0;
        for seed in 0..32u64 {
            match write_checkpoint(&path, &newer, Some((ChaosConfig::torn_writes(), seed)), seed) {
                Ok(()) => {
                    let now = std::fs::read_to_string(&path).unwrap();
                    let back = FleetState::parse(&now, &state.key).unwrap();
                    assert_eq!(back, newer, "successful write must be complete");
                    // Restore the old file for the next iteration.
                    std::fs::write(&path, &before).unwrap();
                }
                Err(_) => {
                    failures += 1;
                    assert_eq!(
                        std::fs::read(&path).unwrap(),
                        before,
                        "failed write must leave the old checkpoint untouched"
                    );
                }
            }
        }
        assert!(failures > 0, "torn-write family should fail some seeds");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(format!("{}.tmp", path.display()));
    }
}
