//! Algebraic laws of the fleet sketches, exercised with SplitMix64
//! adversarial streams.
//!
//! The crash-recovery guarantee of `pim-fleet` rests entirely on two
//! properties: sketch merges are **exactly associative and commutative**
//! (so any partition of the population folds to bit-identical state),
//! and quantile answers stay within the advertised **relative error
//! bound** `2^-sub_bits`. This suite attacks both with heavy-tailed,
//! clustered, and constant streams.

use pim_fleet::{CountMinSketch, FixedHistogram, QuantileSketch, SketchConfig};
use pim_faults::SplitMix64;

/// Adversarial value streams: the shapes most likely to expose bucket
/// boundary or merge bugs.
fn streams(seed: u64, n: usize) -> Vec<Vec<u64>> {
    let mut rng = SplitMix64::new(seed);
    let mut uniform = Vec::with_capacity(n);
    let mut heavy_tail = Vec::with_capacity(n);
    let mut clustered = Vec::with_capacity(n);
    let mut edges = Vec::with_capacity(n);
    for _ in 0..n {
        uniform.push(rng.next_below(20_000));
        // Exponential-ish tail: value magnitude spans ~2^0..2^60.
        let shift = rng.next_below(60) as u32;
        heavy_tail.push(rng.next_u64() >> shift);
        // Tight cluster around one bucket boundary.
        clustered.push(9_990 + rng.next_below(20));
        // Exact powers of two and neighbors: bucket-edge torture.
        let e = rng.next_below(63) as u32;
        edges.push((1u64 << e) + rng.next_below(3) - 1);
    }
    vec![uniform, heavy_tail, clustered, edges, vec![0; n], vec![u64::MAX; n]]
}

#[test]
fn quantile_merge_is_associative_and_commutative() {
    for seed in 0..8u64 {
        for stream in streams(seed, 3_000) {
            let chunks: Vec<&[u64]> = stream.chunks(700).collect();
            let parts: Vec<QuantileSketch> = chunks
                .iter()
                .map(|c| {
                    let mut s = QuantileSketch::new(6);
                    for &v in *c {
                        s.observe(v);
                    }
                    s
                })
                .collect();

            // Left fold, right fold, and reversed-order fold must agree
            // exactly (not just approximately).
            let mut left = QuantileSketch::new(6);
            for p in &parts {
                left.merge(p).unwrap();
            }
            let mut right = QuantileSketch::new(6);
            for p in parts.iter().rev() {
                right.merge(p).unwrap();
            }
            // ((a ∪ b) ∪ c) vs (a ∪ (b ∪ c)) on the first three parts.
            if parts.len() >= 3 {
                let mut ab = parts[0].clone();
                ab.merge(&parts[1]).unwrap();
                let mut ab_c = ab.clone();
                ab_c.merge(&parts[2]).unwrap();
                let mut bc = parts[1].clone();
                bc.merge(&parts[2]).unwrap();
                let mut a_bc = parts[0].clone();
                a_bc.merge(&bc).unwrap();
                assert_eq!(ab_c, a_bc, "associativity (seed {seed})");
            }
            assert_eq!(left, right, "commutativity (seed {seed})");
            assert_eq!(
                left.to_json_value().render(),
                right.to_json_value().render(),
                "serialized state must also be byte-identical"
            );

            // Merged == observed-serially.
            let mut serial = QuantileSketch::new(6);
            for &v in &stream {
                serial.observe(v);
            }
            assert_eq!(left, serial, "merge must equal serial observation (seed {seed})");
        }
    }
}

#[test]
fn quantile_error_stays_within_bound_under_adversarial_streams() {
    for seed in 0..8u64 {
        for m in [3u32, 6, 8] {
            for mut stream in streams(seed.wrapping_mul(97) + 13, 4_000) {
                let mut s = QuantileSketch::new(m);
                for &v in &stream {
                    s.observe(v);
                }
                stream.sort_unstable();
                let bound = s.relative_error_bound();
                for q in [0.01f64, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
                    let rank = ((q * stream.len() as f64).ceil() as usize)
                        .clamp(1, stream.len());
                    let exact = stream[rank - 1];
                    let est = s.quantile(q);
                    // Bucket lower bound: est ≤ exact < est·(1+2^-m),
                    // i.e. exact − est ≤ exact · 2^-m (+1 for integer
                    // truncation at tiny values).
                    assert!(est <= exact, "q={q} est={est} exact={exact} (m={m} seed={seed})");
                    let err = (exact - est) as f64;
                    assert!(
                        err <= exact as f64 * bound + 1.0,
                        "q={q}: err {err} over bound {} (exact {exact}, m={m}, seed={seed})",
                        exact as f64 * bound
                    );
                }
            }
        }
    }
}

#[test]
fn histogram_and_count_min_merges_obey_the_same_laws() {
    for seed in 0..8u64 {
        let mut rng = SplitMix64::new(seed ^ 0xDEAD_BEEF);
        let stream: Vec<u64> = (0..5_000).map(|_| rng.next_below(21_000)).collect();
        let cfg = SketchConfig::default();

        let halves: Vec<(FixedHistogram, CountMinSketch)> = stream
            .chunks(1_250)
            .map(|c| {
                let mut h = FixedHistogram::for_reductions();
                let mut cm = CountMinSketch::new(cfg.cm_width, cfg.cm_depth);
                for &v in c {
                    h.observe(v);
                    cm.increment(&format!("tok-{}", v % 17), 1);
                }
                (h, cm)
            })
            .collect();

        let mut fwd_h = FixedHistogram::for_reductions();
        let mut fwd_cm = CountMinSketch::new(cfg.cm_width, cfg.cm_depth);
        for (h, cm) in &halves {
            fwd_h.merge(h).unwrap();
            fwd_cm.merge(cm).unwrap();
        }
        let mut rev_h = FixedHistogram::for_reductions();
        let mut rev_cm = CountMinSketch::new(cfg.cm_width, cfg.cm_depth);
        for (h, cm) in halves.iter().rev() {
            rev_h.merge(h).unwrap();
            rev_cm.merge(cm).unwrap();
        }
        assert_eq!(fwd_h, rev_h, "histogram commutativity (seed {seed})");
        assert_eq!(fwd_cm, rev_cm, "count-min commutativity (seed {seed})");

        // Exact threshold counts survive the merge.
        let exact_ge = stream.iter().filter(|&&v| v >= 14_000).count() as u64;
        assert_eq!(fwd_h.count_ge(14_000), exact_ge, "seed {seed}");

        // Count-min never under-counts any token after merging.
        for t in 0..17u64 {
            let key = format!("tok-{t}");
            let exact = stream.iter().filter(|&&v| v % 17 == t).count() as u64;
            assert!(
                fwd_cm.estimate(&key) >= exact,
                "{key}: est {} < exact {exact} (seed {seed})",
                fwd_cm.estimate(&key)
            );
        }
    }
}

#[test]
fn degraded_geometry_still_obeys_its_weaker_bound() {
    // Degrading the config doubles the error bound but must never break
    // the bound that the degraded geometry itself advertises.
    let mut cfg = SketchConfig::default();
    cfg.degrade();
    cfg.degrade();
    let mut rng = SplitMix64::new(31);
    let mut stream: Vec<u64> = (0..3_000).map(|_| rng.next_u64() >> (rng.next_below(50) as u32)).collect();
    let mut s = QuantileSketch::new(cfg.sub_bits);
    for &v in &stream {
        s.observe(v);
    }
    stream.sort_unstable();
    let bound = s.relative_error_bound();
    assert!(bound > QuantileSketch::new(SketchConfig::default().sub_bits).relative_error_bound());
    for q in [0.5f64, 0.9, 0.99] {
        let rank = ((q * stream.len() as f64).ceil() as usize).clamp(1, stream.len());
        let exact = stream[rank - 1];
        let est = s.quantile(q);
        assert!(est <= exact);
        assert!((exact - est) as f64 <= exact as f64 * bound + 1.0);
    }
}
