//! Fleet-checkpoint chaos matrix.
//!
//! Crosses the `pim-chaos` fault families (torn writes, retryable-noise
//! storms, disk-full onsets) injected into checkpoint writes with
//! SIGKILL-style interruption at varying shard counts, across many
//! seeds (`PIM_CHAOS_SEEDS`, default 64). The invariant under every
//! schedule: after the final resumed run completes, the rendered fleet
//! report is **byte-identical** to an uninterrupted, chaos-free sweep.
//! Torn tmp-file writes may only ever sacrifice checkpoint freshness
//! (more recompute on resume), never correctness.

use std::path::PathBuf;

use pim_chaos::ChaosConfig;
use pim_fleet::{fleet_report, run_fleet, FleetConfig};
use pim_trace::Tracer;

fn seeds() -> u64 {
    std::env::var("PIM_CHAOS_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(64)
}

fn temp_path(tag: &str, seed: u64) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pim-fleet-chaos-{tag}-{seed}-{}", std::process::id()));
    p
}

fn base_cfg(ckpt: Option<PathBuf>) -> FleetConfig {
    FleetConfig {
        seed: 7,
        devices: 2_000,
        shard_size: 100,
        workers: 2,
        checkpoint: ckpt,
        ..FleetConfig::default()
    }
}

/// The ground truth every schedule must reproduce byte-for-byte.
fn reference_report() -> String {
    let out = run_fleet(&base_cfg(None), &Tracer::disabled()).unwrap();
    fleet_report(&out.state).render()
}

fn run_family(tag: &str, family: fn(u64) -> ChaosConfig) {
    let reference = reference_report();
    let shards = base_cfg(None).key().shards();
    let mut resumed_at_least_once = false;
    for seed in 0..seeds() {
        let ckpt = temp_path(tag, seed);
        let _ = std::fs::remove_file(&ckpt);
        let chaos = Some((family(seed), seed));

        // Run 1: chaos on every checkpoint write, killed after a
        // seed-dependent number of shards (mid-batch kills included).
        let kill_after = seed % shards + 1;
        let killed = run_fleet(
            &FleetConfig {
                checkpoint_chaos: chaos,
                stop_after_shards: Some(kill_after),
                ..base_cfg(Some(ckpt.clone()))
            },
            &Tracer::disabled(),
        )
        .unwrap();
        assert!(killed.stopped_early, "{tag} seed {seed}");

        // Run 2: resume (still under write chaos) to completion.
        let resumed = run_fleet(
            &FleetConfig { checkpoint_chaos: chaos, ..base_cfg(Some(ckpt.clone())) },
            &Tracer::disabled(),
        )
        .unwrap();
        if resumed.resumed_shards > 0 {
            resumed_at_least_once = true;
        }
        assert_eq!(resumed.state.devices_done, 2_000, "{tag} seed {seed}");
        assert_eq!(
            fleet_report(&resumed.state).render(),
            reference,
            "{tag} seed {seed}: kill at {kill_after} + resume must be byte-identical"
        );

        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(format!("{}.tmp", ckpt.display()));
    }
    assert!(
        resumed_at_least_once,
        "{tag}: no schedule ever restored checkpoint state — matrix is vacuous"
    );
}

#[test]
fn torn_checkpoint_writes_resume_byte_identically() {
    run_family("torn", |_| ChaosConfig::torn_writes());
}

#[test]
fn interrupt_storms_on_checkpoint_writes_resume_byte_identically() {
    run_family("interrupts", |_| ChaosConfig::interrupts());
}

#[test]
fn disk_full_mid_checkpoint_resumes_byte_identically() {
    // Onset varies with the seed so some schedules lose the checkpoint
    // entirely (pure recompute) and some keep a stale one.
    run_family("diskfull", |seed| ChaosConfig::disk_full(200 + seed * 37));
}

#[test]
fn sigkill_without_write_chaos_at_every_batch_boundary() {
    let reference = reference_report();
    let shards = base_cfg(None).key().shards();
    for kill_after in 1..=shards {
        let ckpt = temp_path("kill", kill_after);
        let _ = std::fs::remove_file(&ckpt);
        let killed = run_fleet(
            &FleetConfig {
                stop_after_shards: Some(kill_after),
                ..base_cfg(Some(ckpt.clone()))
            },
            &Tracer::disabled(),
        )
        .unwrap();
        assert!(killed.stopped_early || kill_after >= shards);
        let resumed =
            run_fleet(&base_cfg(Some(ckpt.clone())), &Tracer::disabled()).unwrap();
        assert_eq!(
            fleet_report(&resumed.state).render(),
            reference,
            "kill after {kill_after} shards"
        );
        let _ = std::fs::remove_file(&ckpt);
    }
}

#[test]
fn resume_adopts_checkpoint_geometry_over_a_changed_budget() {
    // A checkpoint written at full resolution must keep that resolution
    // on resume even when the new run's memory budget would degrade it —
    // otherwise merges would mix geometries and break exactness.
    let ckpt = temp_path("geometry", 0);
    let _ = std::fs::remove_file(&ckpt);
    let first = run_fleet(
        &FleetConfig { stop_after_shards: Some(8), ..base_cfg(Some(ckpt.clone())) },
        &Tracer::disabled(),
    )
    .unwrap();
    let full_bits = first.state.sketch_cfg.sub_bits;
    let resumed = run_fleet(
        &FleetConfig { mem_budget_bytes: 64 << 10, ..base_cfg(Some(ckpt.clone())) },
        &Tracer::disabled(),
    )
    .unwrap();
    assert_eq!(resumed.state.sketch_cfg.sub_bits, full_bits);
    assert_eq!(
        fleet_report(&resumed.state).render(),
        reference_report(),
        "geometry adoption must preserve byte-identity"
    );
    let _ = std::fs::remove_file(&ckpt);
}
