//! Bottleneck attribution records: where did the picoseconds (and
//! picojoules) go?
//!
//! An [`ExplainRecord`] is one experiment × platform cell of the
//! attribution matrix: total runtime decomposed across six cost
//! components, the matching energy decomposition, and the memory-system
//! health indicators (row-hit rate, MPKI, bytes moved). Records carry a
//! pipe-separated line format so the sweep harness can ship them through
//! its stdout payload channel the same way scorecard lines travel, and a
//! JSON form for `BENCH_explain.json`.
//!
//! [`attribute_gap`] answers the headline question — *which component
//! explains the difference between two runtimes* — by differencing the
//! per-component cycle attributions of a baseline and a comparison
//! record and normalizing by the total runtime delta.

use pim_trace::JsonValue;

/// Component labels, index-aligned with every `[f64; 6]` in this module.
/// Deliberately identical to `pim_core::CostBreakdown::LABELS`: the bench
/// layer converts one into the other by array copy, and the two crates
/// stay decoupled (pim-obs depends only on pim-trace).
pub const COMPONENT_LABELS: [&str; 6] =
    ["compute", "cache", "coherence", "dram-queue", "dram-service", "pim-link"];

/// One experiment × platform attribution record.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRecord {
    /// Kernel / experiment id (e.g. `"texture_tiling"`).
    pub kernel: String,
    /// Platform the kernel ran on (e.g. `"cpu-only"`, `"pim-acc"`).
    pub mode: String,
    /// Total simulated runtime in ps.
    pub runtime_ps: u64,
    /// Runtime decomposition in ps, indexed by [`COMPONENT_LABELS`].
    pub cycle_ps: [f64; 6],
    /// Energy decomposition in pJ, indexed by [`COMPONENT_LABELS`].
    pub energy_pj: [f64; 6],
    /// DRAM row-buffer hit rate in `[0, 1]`.
    pub row_hit_rate: f64,
    /// Last-level misses per kilo-instruction.
    pub mpki: f64,
    /// Bytes moved across the memory interface.
    pub bytes_moved: u64,
}

fn shares_of(values: &[f64; 6]) -> [f64; 6] {
    let total: f64 = values.iter().sum();
    let mut out = [0.0; 6];
    if total > 0.0 {
        for (o, v) in out.iter_mut().zip(values) {
            *o = v / total;
        }
    }
    out
}

fn join6(values: &[f64; 6]) -> String {
    values.iter().map(|v| format!("{v}")).collect::<Vec<_>>().join(",")
}

fn parse6(field: &str) -> Option<[f64; 6]> {
    let mut out = [0.0; 6];
    let mut parts = field.split(',');
    for slot in &mut out {
        *slot = parts.next()?.parse().ok()?;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(out)
}

impl ExplainRecord {
    /// Cycle decomposition normalized to shares summing to 1.0 (all
    /// zeros when the record is empty).
    pub fn cycle_shares(&self) -> [f64; 6] {
        shares_of(&self.cycle_ps)
    }

    /// Energy decomposition normalized to shares summing to 1.0.
    pub fn energy_shares(&self) -> [f64; 6] {
        shares_of(&self.energy_pj)
    }

    /// Total attributed cycle time in ps.
    pub fn cycle_total_ps(&self) -> f64 {
        self.cycle_ps.iter().sum()
    }

    /// Serialize to the pipe-separated payload line. Fields never
    /// contain `|` (kernel/mode ids are identifiers), and floats use
    /// Rust's shortest round-trip formatting, so
    /// `parse_line(to_line(r)) == r` exactly.
    pub fn to_line(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}|{}|{}",
            self.kernel,
            self.mode,
            self.runtime_ps,
            join6(&self.cycle_ps),
            join6(&self.energy_pj),
            self.row_hit_rate,
            self.mpki,
            self.bytes_moved
        )
    }

    /// Parse a [`ExplainRecord::to_line`] payload; `None` on any shape
    /// or number error.
    pub fn parse_line(line: &str) -> Option<Self> {
        let parts: Vec<&str> = line.split('|').collect();
        if parts.len() != 8 {
            return None;
        }
        if parts[0].is_empty() || parts[1].is_empty() {
            return None;
        }
        Some(Self {
            kernel: parts[0].to_string(),
            mode: parts[1].to_string(),
            runtime_ps: parts[2].parse().ok()?,
            cycle_ps: parse6(parts[3])?,
            energy_pj: parse6(parts[4])?,
            row_hit_rate: parts[5].parse().ok()?,
            mpki: parts[6].parse().ok()?,
            bytes_moved: parts[7].parse().ok()?,
        })
    }

    /// JSON object for `BENCH_explain.json`: raw decompositions plus
    /// normalized shares, keyed by component label.
    pub fn to_json_value(&self) -> JsonValue {
        let labelled = |values: &[f64; 6]| {
            let mut o = JsonValue::object();
            for (label, v) in COMPONENT_LABELS.iter().zip(values) {
                o = o.set(label, *v);
            }
            o
        };
        JsonValue::object()
            .set("kernel", self.kernel.as_str())
            .set("mode", self.mode.as_str())
            .set("runtime_ps", self.runtime_ps)
            .set("cycle_ps", labelled(&self.cycle_ps).set("total", self.cycle_total_ps()))
            .set("cycle_shares", labelled(&self.cycle_shares()))
            .set("energy_pj", labelled(&self.energy_pj))
            .set("energy_shares", labelled(&self.energy_shares()))
            .set("row_hit_rate", self.row_hit_rate)
            .set("mpki", self.mpki)
            .set("bytes_moved", self.bytes_moved)
    }
}

/// The per-component account of a runtime difference between two records
/// (typically CPU-only baseline vs PIM-Acc): which component gave up the
/// most time.
#[derive(Debug, Clone, PartialEq)]
pub struct GapAttribution {
    /// `baseline.cycle_ps[i] - comparison.cycle_ps[i]`, in ps. Negative
    /// entries are components that *grew* on the comparison platform
    /// (e.g. pim-link time appearing where there was none).
    pub delta_ps: [f64; 6],
    /// Total runtime delta in ps (sum of `delta_ps`).
    pub total_delta_ps: f64,
    /// `delta_ps / total_delta_ps` — shares of the gap, summing to 1.0
    /// when a gap exists.
    pub shares: [f64; 6],
}

impl GapAttribution {
    /// The component accounting for the largest share of the saved time,
    /// as `(label, share)`.
    pub fn dominant(&self) -> (&'static str, f64) {
        let mut best = 0;
        for i in 1..6 {
            if self.shares[i] > self.shares[best] {
                best = i;
            }
        }
        (COMPONENT_LABELS[best], self.shares[best])
    }

    /// JSON object for the `headline_gap` section of
    /// `BENCH_explain.json`.
    pub fn to_json_value(&self) -> JsonValue {
        let mut delta = JsonValue::object();
        let mut shares = JsonValue::object();
        for (i, label) in COMPONENT_LABELS.iter().enumerate() {
            delta = delta.set(label, self.delta_ps[i]);
            shares = shares.set(label, self.shares[i]);
        }
        let (dom_label, dom_share) = self.dominant();
        JsonValue::object()
            .set("total_delta_ps", self.total_delta_ps)
            .set("delta_ps", delta)
            .set("shares", shares)
            .set("dominant_component", dom_label)
            .set("dominant_share", dom_share)
    }
}

/// Difference two attribution records: where did `baseline`'s time go
/// that `comparison` does not spend?
pub fn attribute_gap(baseline: &ExplainRecord, comparison: &ExplainRecord) -> GapAttribution {
    let mut delta_ps = [0.0; 6];
    for (d, (b, c)) in
        delta_ps.iter_mut().zip(baseline.cycle_ps.iter().zip(&comparison.cycle_ps))
    {
        *d = b - c;
    }
    let total_delta_ps: f64 = delta_ps.iter().sum();
    let mut shares = [0.0; 6];
    if total_delta_ps.abs() > f64::EPSILON {
        for (s, d) in shares.iter_mut().zip(&delta_ps) {
            *s = d / total_delta_ps;
        }
    }
    GapAttribution { delta_ps, total_delta_ps, shares }
}

/// A human-readable attribution table: one row per record, one column
/// per component share, plus runtime and the memory-health indicators.
pub fn render_explain_table(records: &[ExplainRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<24} {:<10} {:>12}", "kernel", "mode", "runtime ms"));
    for label in COMPONENT_LABELS {
        out.push_str(&format!(" {label:>12}"));
    }
    out.push_str(&format!(" {:>8} {:>7}\n", "row-hit", "mpki"));
    for r in records {
        out.push_str(&format!(
            "{:<24} {:<10} {:>12.3}",
            r.kernel,
            r.mode,
            r.runtime_ps as f64 / 1e9
        ));
        for share in r.cycle_shares() {
            out.push_str(&format!(" {:>11.1}%", share * 100.0));
        }
        out.push_str(&format!(" {:>7.1}% {:>7.2}\n", r.row_hit_rate * 100.0, r.mpki));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kernel: &str, mode: &str, cycle_ps: [f64; 6]) -> ExplainRecord {
        ExplainRecord {
            kernel: kernel.into(),
            mode: mode.into(),
            runtime_ps: cycle_ps.iter().sum::<f64>() as u64,
            cycle_ps,
            energy_pj: [5.0, 4.0, 3.0, 2.0, 1.0, 0.5],
            row_hit_rate: 0.875,
            mpki: 12.5,
            bytes_moved: 1 << 20,
        }
    }

    #[test]
    fn shares_sum_to_one_and_line_round_trips() {
        let r = record("texture_tiling", "cpu-only", [10.0, 20.5, 0.25, 30.0, 40.0, 0.0]);
        let cycle: f64 = r.cycle_shares().iter().sum();
        let energy: f64 = r.energy_shares().iter().sum();
        assert!((cycle - 1.0).abs() < 1e-9);
        assert!((energy - 1.0).abs() < 1e-9);
        let parsed = ExplainRecord::parse_line(&r.to_line()).expect("round trip");
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(ExplainRecord::parse_line("").is_none());
        assert!(ExplainRecord::parse_line("a|b|c").is_none());
        let r = record("k", "m", [1.0; 6]);
        let mut line = r.to_line();
        line.push_str("|extra");
        assert!(ExplainRecord::parse_line(&line).is_none());
        let five = "k|m|6|1,1,1,1,1|1,1,1,1,1,1|0.5|1|2";
        assert!(ExplainRecord::parse_line(five).is_none());
        let nan_kernel = "|m|6|1,1,1,1,1,1|1,1,1,1,1,1|0.5|1|2";
        assert!(ExplainRecord::parse_line(nan_kernel).is_none());
    }

    #[test]
    fn empty_record_has_zero_shares() {
        let mut r = record("k", "m", [0.0; 6]);
        r.energy_pj = [0.0; 6];
        assert_eq!(r.cycle_shares(), [0.0; 6]);
        assert_eq!(r.energy_shares(), [0.0; 6]);
    }

    #[test]
    fn gap_attribution_localizes_the_saved_time() {
        // CPU spends 70 in dram-queue + 20 in dram-service; PIM converts
        // most of that to 10 of pim-link. The gap should be dominated by
        // dram-queue.
        let cpu = record("k", "cpu-only", [10.0, 10.0, 0.0, 70.0, 20.0, 0.0]);
        let acc = record("k", "pim-acc", [10.0, 2.0, 3.0, 0.0, 15.0, 10.0]);
        let gap = attribute_gap(&cpu, &acc);
        assert!((gap.total_delta_ps - 70.0).abs() < 1e-9);
        assert!((gap.shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let (label, share) = gap.dominant();
        assert_eq!(label, "dram-queue");
        assert!((share - 1.0).abs() < 1e-9);
        // pim-link grew, so its share of the gap is negative.
        assert!(gap.shares[5] < 0.0);
        let json = gap.to_json_value().render();
        assert!(json.contains("\"dominant_component\":\"dram-queue\""));
    }

    #[test]
    fn identical_records_have_no_gap() {
        let r = record("k", "m", [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let gap = attribute_gap(&r, &r);
        assert_eq!(gap.total_delta_ps, 0.0);
        assert_eq!(gap.shares, [0.0; 6]);
    }

    #[test]
    fn json_and_table_expose_every_component() {
        let r = record("texture_tiling", "pim-acc", [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let json = r.to_json_value().render();
        for label in COMPONENT_LABELS {
            assert!(json.contains(&format!("\"{label}\"")), "missing {label}");
        }
        let parsed = pim_trace::JsonValue::parse(&json).unwrap();
        let shares = parsed.get("cycle_shares").unwrap();
        let total: f64 =
            COMPONENT_LABELS.iter().map(|l| shares.get(l).unwrap().as_f64().unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let table = render_explain_table(&[r]);
        assert!(table.contains("texture_tiling"));
        assert!(table.contains("pim-acc"));
        for label in COMPONENT_LABELS {
            assert!(table.contains(label));
        }
    }
}
