//! Wall-clock self-profiler: scoped timers over host time.
//!
//! The simulator's tracer measures *simulated* picoseconds; this profiler
//! measures where *host* wall time goes — experiment × phase × simulator
//! subsystem — so a slow repro run can be localized without an external
//! profiler. Mirrors [`pim_trace::Tracer`]'s handle design: a disabled
//! profiler is a `None` and every operation is a single branch, which the
//! `profiler_overhead` bench holds to <5% against no profiler at all.
//!
//! Keys are `/`-separated paths (`"texture_tiling/run/simulate"`); the
//! reporting helpers aggregate by prefix. Worker threads take a
//! [`Profiler::local`] handle that buffers observations in a plain map
//! and merges them into the shared profiler once on drop, so per-scope
//! cost on the hot path is a map insert, not a mutex acquisition.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pim_trace::JsonValue;

/// Accumulated wall time and call count for one key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Total wall time, in nanoseconds.
    pub wall_ns: u64,
    /// Number of scopes that closed on this key.
    pub calls: u64,
}

impl PhaseStat {
    /// Wall time in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ns as f64 / 1e6
    }

    fn merge(&mut self, other: PhaseStat) {
        self.wall_ns = self.wall_ns.saturating_add(other.wall_ns);
        self.calls = self.calls.saturating_add(other.calls);
    }
}

/// A cloneable handle to a shared wall-clock profile.
///
/// `Profiler::disabled()` carries no allocation at all; cloning either
/// variant is cheap (an `Option<Arc>` copy).
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<Mutex<BTreeMap<String, PhaseStat>>>>,
}

impl Profiler {
    /// An enabled profiler with an empty profile.
    pub fn new() -> Self {
        Self { inner: Some(Arc::new(Mutex::new(BTreeMap::new()))) }
    }

    /// A disabled profiler: every operation is a no-op behind one branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Time a scope: wall time from this call until the returned guard
    /// drops is added under `key`. Disabled profilers never read the
    /// clock.
    pub fn scope(&self, key: &str) -> ProfileScope<'_> {
        match &self.inner {
            Some(_) => ProfileScope { profiler: self, key: Some(key.to_string()), t0: Some(Instant::now()) },
            None => ProfileScope { profiler: self, key: None, t0: None },
        }
    }

    /// Record `wall_ns` under `key` directly (used by merged locals and
    /// callers that already measured).
    pub fn record_ns(&self, key: &str, wall_ns: u64) {
        if let Some(inner) = &self.inner {
            if let Ok(mut map) = inner.lock() {
                map.entry(key.to_string())
                    .or_default()
                    .merge(PhaseStat { wall_ns, calls: 1 });
            }
        }
    }

    /// A thread-local buffer over this profiler: scopes record into a
    /// plain map without locking, and everything merges into the shared
    /// profile when the local handle drops (or on [`LocalProfiler::flush`]).
    pub fn local(&self) -> LocalProfiler {
        LocalProfiler { parent: self.clone(), buffer: BTreeMap::new() }
    }

    /// Snapshot of the profile, by key.
    pub fn report(&self) -> BTreeMap<String, PhaseStat> {
        match &self.inner {
            Some(inner) => inner.lock().map(|m| m.clone()).unwrap_or_default(),
            None => BTreeMap::new(),
        }
    }

    /// The profile as a JSON object keyed by scope path, each entry
    /// `{wall_ms, calls}` (stable order: `BTreeMap` keys).
    pub fn to_json_value(&self) -> JsonValue {
        let mut o = JsonValue::object();
        for (key, stat) in self.report() {
            o = o.set(
                &key,
                JsonValue::object().set("wall_ms", stat.wall_ms()).set("calls", stat.calls),
            );
        }
        o
    }

    /// A human-readable table of the profile, widest consumers first.
    pub fn render_table(&self) -> String {
        let report = self.report();
        let total_ns: u64 = report.values().map(|s| s.wall_ns).sum();
        let mut rows: Vec<(&String, &PhaseStat)> = report.iter().collect();
        rows.sort_by(|a, b| b.1.wall_ns.cmp(&a.1.wall_ns).then(a.0.cmp(b.0)));
        let mut out = String::new();
        out.push_str(&format!(
            "{:<52} {:>10} {:>8} {:>7}\n",
            "scope", "wall ms", "calls", "share"
        ));
        for (key, stat) in rows {
            let share = if total_ns == 0 {
                0.0
            } else {
                stat.wall_ns as f64 / total_ns as f64 * 100.0
            };
            out.push_str(&format!(
                "{:<52} {:>10.2} {:>8} {:>6.1}%\n",
                key,
                stat.wall_ms(),
                stat.calls,
                share
            ));
        }
        out
    }
}

/// RAII guard from [`Profiler::scope`]; records elapsed wall time on drop.
#[derive(Debug)]
pub struct ProfileScope<'a> {
    profiler: &'a Profiler,
    key: Option<String>,
    t0: Option<Instant>,
}

impl Drop for ProfileScope<'_> {
    fn drop(&mut self) {
        if let (Some(key), Some(t0)) = (self.key.take(), self.t0) {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.profiler.record_ns(&key, ns);
        }
    }
}

/// A lock-free per-thread buffer over a shared [`Profiler`].
#[derive(Debug)]
pub struct LocalProfiler {
    parent: Profiler,
    buffer: BTreeMap<String, PhaseStat>,
}

impl LocalProfiler {
    /// Whether the parent profiler records anything.
    pub fn enabled(&self) -> bool {
        self.parent.enabled()
    }

    /// Time a closure's wall time under `key` (no-op timing when the
    /// parent is disabled; the closure always runs).
    pub fn time<R>(&mut self, key: &str, f: impl FnOnce() -> R) -> R {
        if !self.parent.enabled() {
            return f();
        }
        let t0 = Instant::now();
        let r = f();
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.buffer
            .entry(key.to_string())
            .or_default()
            .merge(PhaseStat { wall_ns: ns, calls: 1 });
        r
    }

    /// Merge the buffered observations into the shared profiler now.
    pub fn flush(&mut self) {
        if let Some(inner) = &self.parent.inner {
            if let Ok(mut map) = inner.lock() {
                for (key, stat) in std::mem::take(&mut self.buffer) {
                    map.entry(key).or_default().merge(stat);
                }
            }
        }
    }
}

impl Drop for LocalProfiler {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_accumulate_under_their_key() {
        let p = Profiler::new();
        {
            let _a = p.scope("exp/run");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _b = p.scope("exp/run");
        }
        let report = p.report();
        assert_eq!(report["exp/run"].calls, 2);
        assert!(report["exp/run"].wall_ns >= 1_000_000);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        {
            let _s = p.scope("never");
        }
        p.record_ns("never", 1);
        assert!(!p.enabled());
        assert!(p.report().is_empty());
        assert_eq!(p.to_json_value().render(), "{}");
    }

    #[test]
    fn local_buffers_merge_on_drop() {
        let p = Profiler::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let p = p.clone();
                std::thread::spawn(move || {
                    let mut local = p.local();
                    for _ in 0..10 {
                        local.time("worker/job", || std::hint::black_box(1 + 1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(p.report()["worker/job"].calls, 40);
    }

    #[test]
    fn table_and_json_are_stable_and_share_normalized() {
        let p = Profiler::new();
        p.record_ns("b/slow", 3_000_000);
        p.record_ns("a/fast", 1_000_000);
        let table = p.render_table();
        let slow_at = table.find("b/slow").unwrap();
        let fast_at = table.find("a/fast").unwrap();
        assert!(slow_at < fast_at, "widest consumer first:\n{table}");
        assert!(table.contains("75.0%"));
        let json = p.to_json_value().render();
        assert!(json.contains("\"a/fast\""));
        assert_eq!(json, p.to_json_value().render());
        let parsed = JsonValue::parse(&json).unwrap();
        assert_eq!(parsed.get("b/slow").unwrap().get("calls").unwrap().as_u64(), Some(1));
    }
}
