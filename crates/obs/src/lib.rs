//! # pim-obs — cross-layer observability for the PIM simulator
//!
//! Three answers to "where did the time go?", at three different layers:
//!
//! - [`explain`]: **simulated** time and energy, attributed across the
//!   six cost components (`compute / cache / coherence / dram-queue /
//!   dram-service / pim-link`) that `pim_core::SimContext` accumulates.
//!   Powers `repro --explain` and `BENCH_explain.json`, including the
//!   [`explain::attribute_gap`] analysis that localizes the divergent
//!   PIM-Acc headline speedup to specific component deltas.
//! - [`profiler`]: **host wall-clock** time, attributed across
//!   experiment × phase × subsystem with hand-rolled scoped timers.
//!   Powers `repro --profile`; the disabled profiler costs a single
//!   branch (asserted <5% overhead by the `profiler_overhead` bench).
//! - [`prometheus`]: text exposition of a [`pim_trace::MetricsReport`]
//!   for scrape-based monitoring of `pim-serve` (`/metrics?format=prometheus`).
//!
//! Like the rest of the workspace, this crate is std-only.

pub mod explain;
pub mod profiler;
pub mod prometheus;

pub use explain::{
    attribute_gap, render_explain_table, ExplainRecord, GapAttribution, COMPONENT_LABELS,
};
pub use profiler::{LocalProfiler, PhaseStat, ProfileScope, Profiler};
pub use prometheus::{
    render_prometheus, sanitize_metric_name, validate_prometheus, PROMETHEUS_CONTENT_TYPE,
};
