//! Prometheus text-exposition rendering of a [`MetricsReport`].
//!
//! Implements the text format version 0.0.4 expected by a Prometheus
//! scrape: one `# HELP` and `# TYPE` header per metric family, counters
//! and gauges as single samples, histograms as cumulative `_bucket`
//! series with an explicit `+Inf` bucket plus `_sum` and `_count`.
//! Metric names from the simulator use dots and dashes
//! (`serve.in_flight`, `jobs.wall-ms`); they are sanitized to the
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` grammar and prefixed with `dmpim_` so the
//! exported namespace is collision-free. `MetricsReport` is backed by
//! `BTreeMap`s, so output is byte-stable for a given snapshot.

use pim_trace::{HistogramSnapshot, MetricsReport};

/// The Content-Type a scrape endpoint must send with this output.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Map an internal metric name onto the Prometheus grammar: every
/// character outside `[a-zA-Z0-9_:]` becomes `_`, and the result is
/// prefixed with `dmpim_` (which also guarantees a legal leading
/// character).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("dmpim_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a HELP line: backslashes and newlines per the exposition spec.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Format a sample value. Prometheus accepts Go-style floats; Rust's
/// default `f64` formatting matches except for the infinities.
fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 { "+Inf".into() } else { "-Inf".into() }
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, raw_name: &str, h: &HistogramSnapshot) {
    out.push_str(&format!("# HELP {name} Histogram `{}` (bucket bounds in simulated ps).\n", escape_help(raw_name)));
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (i, bound) in h.bounds.iter().enumerate() {
        cumulative += h.counts.get(i).copied().unwrap_or(0);
        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{name}_sum {}\n", h.sum));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Render a full metrics snapshot in the Prometheus text format.
pub fn render_prometheus(report: &MetricsReport) -> String {
    let mut out = String::new();
    for (raw, value) in &report.counters {
        let name = sanitize_metric_name(raw);
        out.push_str(&format!("# HELP {name} Counter `{}`.\n", escape_help(raw)));
        out.push_str(&format!("# TYPE {name} counter\n"));
        out.push_str(&format!("{name} {value}\n"));
    }
    for (raw, value) in &report.gauges {
        let name = sanitize_metric_name(raw);
        out.push_str(&format!("# HELP {name} Gauge `{}`.\n", escape_help(raw)));
        out.push_str(&format!("# TYPE {name} gauge\n"));
        out.push_str(&format!("{name} {}\n", fmt_value(*value)));
    }
    for (raw, h) in &report.histograms {
        render_histogram(&mut out, &sanitize_metric_name(raw), raw, h);
    }
    out
}

/// A minimal validator for the exposition format, used by tests and the
/// serve integration suite: checks that every non-comment line is
/// `name{labels} value`, that every sample was preceded by a `# TYPE`
/// header for its family, and that histogram bucket counts are
/// cumulative. Returns the number of sample lines on success.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut typed: Vec<String> = Vec::new();
    let mut samples = 0usize;
    let mut last_bucket: Option<(String, u64)> = None;
    for (lineno, line) in text.lines().enumerate() {
        let err = |what: &str| Err(format!("line {}: {what}: {line:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            if parts.next().is_none() || name.is_empty() {
                return err("malformed comment header");
            }
            if keyword == "TYPE" {
                typed.push(name.to_string());
            } else if keyword != "HELP" {
                return err("unknown comment keyword");
            }
            continue;
        }
        let (series, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return err("sample line without value"),
        };
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return err("unparseable sample value");
        }
        let name = series.split('{').next().unwrap_or("");
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return err("illegal metric name");
        }
        let family_ok = typed.iter().any(|t| {
            name == t
                || name.strip_prefix(t.as_str()).is_some_and(|s| {
                    matches!(s, "_bucket" | "_sum" | "_count")
                })
        });
        if !family_ok {
            return err("sample without a preceding # TYPE");
        }
        if let Some(rest) = series.strip_suffix("\"}") {
            if let Some((bucket_name, _le)) = rest.split_once("_bucket{le=\"") {
                let count: u64 = value.parse().map_err(|_| {
                    format!("line {}: non-integer bucket count: {line:?}", lineno + 1)
                })?;
                if let Some((prev_name, prev_count)) = &last_bucket {
                    if prev_name == bucket_name && count < *prev_count {
                        return err("histogram buckets not cumulative");
                    }
                }
                last_bucket = Some((bucket_name.to_string(), count));
            }
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::Tracer;

    fn sample_report() -> MetricsReport {
        let t = Tracer::new();
        t.count("serve.jobs_completed", 7);
        t.gauge("serve.in_flight", 2.0);
        t.gauge("util.fraction", 0.625);
        t.register_histogram("job.wall-ms", &[10, 100, 1000]);
        t.observe("job.wall-ms", 5);
        t.observe("job.wall-ms", 100);
        t.observe("job.wall-ms", 5_000);
        t.metrics()
    }

    #[test]
    fn sanitizes_names_into_the_prometheus_grammar() {
        assert_eq!(sanitize_metric_name("serve.in_flight"), "dmpim_serve_in_flight");
        assert_eq!(sanitize_metric_name("job wall-ms"), "dmpim_job_wall_ms");
        assert_eq!(sanitize_metric_name("a:b"), "dmpim_a:b");
    }

    #[test]
    fn renders_counters_gauges_and_histograms_with_headers() {
        let text = render_prometheus(&sample_report());
        assert!(text.contains("# TYPE dmpim_serve_jobs_completed counter\n"));
        assert!(text.contains("dmpim_serve_jobs_completed 7\n"));
        assert!(text.contains("# TYPE dmpim_serve_in_flight gauge\n"));
        assert!(text.contains("dmpim_serve_in_flight 2\n"));
        assert!(text.contains("dmpim_util_fraction 0.625\n"));
        assert!(text.contains("# TYPE dmpim_job_wall_ms histogram\n"));
        // Cumulative buckets: 5 <= 10 -> 1; 100 <= 100 -> 2; 5000 only in +Inf.
        assert!(text.contains("dmpim_job_wall_ms_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("dmpim_job_wall_ms_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("dmpim_job_wall_ms_bucket{le=\"1000\"} 2\n"));
        assert!(text.contains("dmpim_job_wall_ms_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("dmpim_job_wall_ms_sum 5105\n"));
        assert!(text.contains("dmpim_job_wall_ms_count 3\n"));
        // Every HELP line names the raw metric so operators can map back.
        assert!(text.contains("`job.wall-ms`"));
    }

    #[test]
    fn rendered_output_passes_the_validator() {
        let text = render_prometheus(&sample_report());
        // counter 1 + gauges 2 + histogram (4 buckets + sum + count) = 9.
        assert_eq!(validate_prometheus(&text), Ok(9));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_prometheus("no_type_header 1\n").is_err());
        assert!(validate_prometheus("# TYPE x counter\nx one\n").is_err());
        assert!(validate_prometheus("# TYPE bad-name counter\nbad-name 1\n").is_err());
        let shrinking = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n";
        assert!(validate_prometheus(shrinking).is_err());
    }

    #[test]
    fn empty_report_renders_empty_document() {
        assert_eq!(render_prometheus(&MetricsReport::default()), "");
        assert_eq!(validate_prometheus(""), Ok(0));
    }

    #[test]
    fn infinite_gauges_use_prometheus_spelling() {
        let mut r = MetricsReport::default();
        r.gauges.insert("inf".into(), f64::INFINITY);
        let text = render_prometheus(&r);
        assert!(text.contains("dmpim_inf +Inf\n"));
        assert!(validate_prometheus(&text).is_ok());
    }
}
