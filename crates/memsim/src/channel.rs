//! Bandwidth-limited transfer channels with busy-until queueing.

use crate::Ps;

/// A point-to-point transfer resource with finite bandwidth.
///
/// The off-chip channel (32 GB/s in Table 1), the in-stack TSV path
/// (256 GB/s aggregate) and each vault's slice of it are all `Channel`s.
/// A transfer occupies the channel for `bytes / bandwidth`; if the channel
/// is still busy from earlier transfers the new one queues, which is how
/// bandwidth saturation turns into latency in this model.
///
/// ```
/// use pim_memsim::Channel;
/// let mut ch = Channel::new(32.0); // 32 GB/s
/// let t1 = ch.transfer(64, 0);
/// let t2 = ch.transfer(64, 0); // queued behind t1
/// assert_eq!(t2, 2 * t1);
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    ps_per_byte: f64,
    busy_until: Ps,
    carry: f64,
    bytes_moved: u64,
    stall_ps: u64,
}

impl Channel {
    /// Create a channel with the given bandwidth in GB/s (1e9 bytes/s).
    ///
    /// # Panics
    ///
    /// Panics if `gb_per_s` is not positive.
    pub fn new(gb_per_s: f64) -> Self {
        assert!(gb_per_s > 0.0, "bandwidth must be positive");
        Self {
            // 1 GB/s == 1 byte/ns == 1000 ps per byte at 1 GB/s.
            ps_per_byte: 1000.0 / gb_per_s,
            busy_until: 0,
            carry: 0.0,
            bytes_moved: 0,
            stall_ps: 0,
        }
    }

    /// Occupy the channel for `bytes` starting no earlier than `now`.
    ///
    /// Returns the latency from `now` until the transfer completes, i.e.
    /// queueing delay plus serialization time.
    pub fn transfer(&mut self, bytes: u64, now: Ps) -> Ps {
        let start = self.busy_until.max(now);
        let exact = bytes as f64 * self.ps_per_byte + self.carry;
        let dur = exact as u64;
        self.carry = exact - dur as f64;
        self.busy_until = start + dur;
        self.bytes_moved += bytes;
        self.stall_ps += start - now;
        self.busy_until - now
    }

    /// Total bytes moved across the channel.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Accumulated queueing delay experienced by transfers, in ps.
    pub fn total_stall_ps(&self) -> u64 {
        self.stall_ps
    }

    /// Time at which the channel next becomes idle.
    pub fn busy_until(&self) -> Ps {
        self.busy_until
    }

    /// Forget queueing state but keep traffic counters.
    pub fn reset_clock(&mut self) {
        self.busy_until = 0;
        self.carry = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_matches_bandwidth() {
        let mut ch = Channel::new(1.0); // 1 GB/s -> 1000 ps/B
        assert_eq!(ch.transfer(64, 0), 64_000);
    }

    #[test]
    fn idle_channel_does_not_queue() {
        let mut ch = Channel::new(32.0);
        let l1 = ch.transfer(64, 0);
        // Start the next transfer after the first has fully drained.
        let l2 = ch.transfer(64, 1_000_000);
        assert_eq!(l1, l2);
        assert_eq!(ch.total_stall_ps(), 0);
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut ch = Channel::new(32.0);
        let l1 = ch.transfer(64, 0);
        let l2 = ch.transfer(64, 0);
        assert_eq!(l2, 2 * l1);
        assert_eq!(ch.total_stall_ps(), l1);
    }

    #[test]
    fn bytes_are_counted() {
        let mut ch = Channel::new(32.0);
        ch.transfer(64, 0);
        ch.transfer(128, 0);
        assert_eq!(ch.bytes_moved(), 192);
    }

    #[test]
    fn fractional_ps_per_byte_accumulates() {
        // 3 GB/s -> 333.33 ps/B. 3000 transfers of 1 byte must total ~1 ms.
        let mut ch = Channel::new(3.0);
        for _ in 0..3000 {
            ch.transfer(1, 0);
        }
        let total = ch.busy_until();
        assert!((total as i64 - 1_000_000).abs() < 10, "total = {total}");
    }
}
