//! Bandwidth-limited transfer channels with busy-until queueing.

use pim_faults::{ChannelFaultConfig, SplitMix64};

use crate::error::ConfigError;
use crate::Ps;

/// Link-fault counters of a channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelFaultStats {
    /// Transactions dropped and retransmitted.
    pub dropped: u64,
    /// Transactions duplicated on the link.
    pub duplicated: u64,
}

/// Seeded per-channel fault injector (dropped / duplicated transactions).
#[derive(Debug, Clone)]
struct FaultInjector {
    drop_prob: f64,
    dup_prob: f64,
    rng: SplitMix64,
    stats: ChannelFaultStats,
}

/// A point-to-point transfer resource with finite bandwidth.
///
/// The off-chip channel (32 GB/s in Table 1), the in-stack TSV path
/// (256 GB/s aggregate) and each vault's slice of it are all `Channel`s.
/// A transfer occupies the channel for `bytes / bandwidth`; if the channel
/// is still busy from earlier transfers the new one queues, which is how
/// bandwidth saturation turns into latency in this model.
///
/// ```
/// use pim_memsim::Channel;
/// let mut ch = Channel::new(32.0).unwrap(); // 32 GB/s
/// let t1 = ch.transfer(64, 0);
/// let t2 = ch.transfer(64, 0); // queued behind t1
/// assert_eq!(t2, 2 * t1);
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    ps_per_byte: f64,
    busy_until: Ps,
    carry: f64,
    bytes_moved: u64,
    stall_ps: u64,
    faults: Option<FaultInjector>,
}

impl Channel {
    /// Create a channel with the given bandwidth in GB/s (1e9 bytes/s).
    ///
    /// # Errors
    ///
    /// [`ConfigError::NonPositiveBandwidth`] if `gb_per_s` is not
    /// positive (a zero-bandwidth link would serialize forever).
    pub fn new(gb_per_s: f64) -> Result<Self, ConfigError> {
        Self::validate_bandwidth(gb_per_s, "channel")?;
        Ok(Self::build(gb_per_s))
    }

    /// Validate a bandwidth, naming the link in any error.
    pub(crate) fn validate_bandwidth(
        gb_per_s: f64,
        what: &'static str,
    ) -> Result<(), ConfigError> {
        if gb_per_s > 0.0 {
            Ok(())
        } else {
            Err(ConfigError::NonPositiveBandwidth { what, gb_per_s })
        }
    }

    /// Build without validating; callers must have checked the bandwidth.
    pub(crate) fn build(gb_per_s: f64) -> Self {
        Self {
            // 1 GB/s == 1 byte/ns == 1000 ps per byte at 1 GB/s.
            ps_per_byte: 1000.0 / gb_per_s,
            busy_until: 0,
            carry: 0.0,
            bytes_moved: 0,
            stall_ps: 0,
            faults: None,
        }
    }

    /// Create a channel whose link drops and duplicates transactions with
    /// the seeded probabilities in `cfg`.
    ///
    /// A dropped transaction is retransmitted: the channel is occupied for
    /// the transfer twice. A duplicated transaction moves its bytes twice
    /// but completes when the first copy lands. With both probabilities at
    /// zero the channel behaves bit-identically to [`Channel::new`].
    ///
    /// # Errors
    ///
    /// Rejects a non-positive bandwidth or a probability outside `[0, 1]`.
    pub fn with_faults(gb_per_s: f64, cfg: ChannelFaultConfig) -> Result<Self, ConfigError> {
        Self::validate_bandwidth(gb_per_s, "channel")?;
        validate_prob(cfg.drop_prob, "drop_prob")?;
        validate_prob(cfg.dup_prob, "dup_prob")?;
        Ok(Self::build_with_faults(gb_per_s, cfg))
    }

    /// Build without validating; callers must have checked bandwidth and
    /// probabilities.
    pub(crate) fn build_with_faults(gb_per_s: f64, cfg: ChannelFaultConfig) -> Self {
        let mut ch = Self::build(gb_per_s);
        if cfg.drop_prob > 0.0 || cfg.dup_prob > 0.0 {
            ch.faults = Some(FaultInjector {
                drop_prob: cfg.drop_prob,
                dup_prob: cfg.dup_prob,
                rng: SplitMix64::new(cfg.seed),
                stats: ChannelFaultStats::default(),
            });
        }
        ch
    }

    /// Occupy the channel for `bytes` starting no earlier than `now`.
    ///
    /// Returns the latency from `now` until the transfer completes, i.e.
    /// queueing delay plus serialization time.
    pub fn transfer(&mut self, bytes: u64, now: Ps) -> Ps {
        let mut copies = 1u64;
        let mut completes_on_first = false;
        if let Some(inj) = self.faults.as_mut() {
            if inj.rng.chance(inj.drop_prob) {
                // Lost on the link: retransmit, so the payload crosses twice
                // and the requester waits for the second copy.
                inj.stats.dropped += 1;
                copies = 2;
            } else if inj.rng.chance(inj.dup_prob) {
                // Spurious duplicate: it consumes bandwidth behind the real
                // transfer but the requester only waits for the first copy.
                inj.stats.duplicated += 1;
                copies = 2;
                completes_on_first = true;
            }
        }
        let mut latency = 0;
        for copy in 0..copies {
            let l = self.transfer_once(bytes, now);
            if copy == 0 || !completes_on_first {
                latency = l;
            }
        }
        latency
    }

    fn transfer_once(&mut self, bytes: u64, now: Ps) -> Ps {
        let start = self.busy_until.max(now);
        let exact = bytes as f64 * self.ps_per_byte + self.carry;
        let dur = exact as u64;
        self.carry = exact - dur as f64;
        self.busy_until = start + dur;
        self.bytes_moved += bytes;
        self.stall_ps += start - now;
        self.busy_until - now
    }

    /// Dropped/duplicated transaction counters (zero for fault-free links).
    pub fn fault_stats(&self) -> ChannelFaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Total bytes moved across the channel.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Accumulated queueing delay experienced by transfers, in ps.
    pub fn total_stall_ps(&self) -> u64 {
        self.stall_ps
    }

    /// Time at which the channel next becomes idle.
    pub fn busy_until(&self) -> Ps {
        self.busy_until
    }

    /// Forget queueing state but keep traffic counters.
    pub fn reset_clock(&mut self) {
        self.busy_until = 0;
        self.carry = 0.0;
    }
}

/// Validate a probability, naming it in any error.
pub(crate) fn validate_prob(p: f64, what: &'static str) -> Result<(), ConfigError> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(ConfigError::InvalidProbability { what, p })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_matches_bandwidth() {
        let mut ch = Channel::new(1.0).unwrap(); // 1 GB/s -> 1000 ps/B
        assert_eq!(ch.transfer(64, 0), 64_000);
    }

    #[test]
    fn idle_channel_does_not_queue() {
        let mut ch = Channel::new(32.0).unwrap();
        let l1 = ch.transfer(64, 0);
        // Start the next transfer after the first has fully drained.
        let l2 = ch.transfer(64, 1_000_000);
        assert_eq!(l1, l2);
        assert_eq!(ch.total_stall_ps(), 0);
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut ch = Channel::new(32.0).unwrap();
        let l1 = ch.transfer(64, 0);
        let l2 = ch.transfer(64, 0);
        assert_eq!(l2, 2 * l1);
        assert_eq!(ch.total_stall_ps(), l1);
    }

    #[test]
    fn bytes_are_counted() {
        let mut ch = Channel::new(32.0).unwrap();
        ch.transfer(64, 0);
        ch.transfer(128, 0);
        assert_eq!(ch.bytes_moved(), 192);
    }

    #[test]
    fn zero_prob_fault_config_matches_plain_channel() {
        let cfg = ChannelFaultConfig { drop_prob: 0.0, dup_prob: 0.0, seed: 1 };
        let mut plain = Channel::new(32.0).unwrap();
        let mut faulty = Channel::with_faults(32.0, cfg).unwrap();
        for i in 0..100 {
            assert_eq!(plain.transfer(64, i * 10), faulty.transfer(64, i * 10));
        }
        assert_eq!(faulty.fault_stats(), ChannelFaultStats::default());
    }

    #[test]
    fn dropped_transactions_occupy_the_link_twice() {
        let cfg = ChannelFaultConfig { drop_prob: 1.0, dup_prob: 0.0, seed: 7 };
        let mut ch = Channel::with_faults(32.0, cfg).unwrap();
        let base = Channel::new(32.0).unwrap().transfer(64, 0);
        let l = ch.transfer(64, 0);
        assert_eq!(l, 2 * base);
        assert_eq!(ch.fault_stats().dropped, 1);
        assert_eq!(ch.bytes_moved(), 128);
    }

    #[test]
    fn duplicates_burn_bandwidth_but_complete_on_first_copy() {
        let cfg = ChannelFaultConfig { drop_prob: 0.0, dup_prob: 1.0, seed: 7 };
        let mut ch = Channel::with_faults(32.0, cfg).unwrap();
        let base = Channel::new(32.0).unwrap().transfer(64, 0);
        let l = ch.transfer(64, 0);
        assert_eq!(l, base); // requester waits only for the first copy
        assert_eq!(ch.fault_stats().duplicated, 1);
        assert_eq!(ch.bytes_moved(), 128); // but the link carried it twice
        // The duplicate occupies the link: the next transfer queues behind it.
        let mut fresh = Channel::new(32.0).unwrap();
        fresh.transfer(64, 0);
        assert!(ch.busy_until() > fresh.busy_until());
    }

    #[test]
    fn fault_draws_are_deterministic_per_seed() {
        let cfg = ChannelFaultConfig { drop_prob: 0.3, dup_prob: 0.2, seed: 99 };
        let mut a = Channel::with_faults(8.0, cfg).unwrap();
        let mut b = Channel::with_faults(8.0, cfg).unwrap();
        for i in 0..500 {
            assert_eq!(a.transfer(64, i * 5), b.transfer(64, i * 5));
        }
        assert_eq!(a.fault_stats(), b.fault_stats());
        assert!(a.fault_stats().dropped > 0 && a.fault_stats().duplicated > 0);
    }

    #[test]
    fn fractional_ps_per_byte_accumulates() {
        // 3 GB/s -> 333.33 ps/B. 3000 transfers of 1 byte must total ~1 ms.
        let mut ch = Channel::new(3.0).unwrap();
        for _ in 0..3000 {
            ch.transfer(1, 0);
        }
        let total = ch.busy_until();
        assert!((total as i64 - 1_000_000).abs() < 10, "total = {total}");
    }
}
