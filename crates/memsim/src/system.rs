//! The assembled memory system: caches in front of a DRAM backend.

use pim_faults::DmpimError;
use pim_trace::{TrackId, Tracer};

use crate::access::{lines_of, AccessKind, Activity, LINE_BYTES};
use crate::cache::{Cache, CacheStats};
use crate::channel::{Channel, ChannelFaultStats};
use crate::config::{DramKind, MemConfig};
use crate::dram::{BankArray, DramStats};
use crate::stacked::StackedMemory;
use crate::Ps;

/// Which compute engine is issuing an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// A SoC CPU core: L1 → LLC → (channel) → DRAM.
    Cpu,
    /// A PIM core in the logic layer: PIM L1 → vault DRAM over TSVs.
    PimCore,
    /// A PIM accelerator: 32 kB scratch buffer → vault DRAM over TSVs.
    PimAccel,
}

impl Port {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Port::Cpu => "cpu",
            Port::PimCore => "pim-core",
            Port::PimAccel => "pim-accel",
        }
    }
}

/// Exact decomposition of one access's critical-path latency.
///
/// The four components always sum to the access's `latency_ps`, so
/// downstream attribution (the `--explain` cost model) can apportion
/// exposed stall time across model layers without re-walking the access.
/// The lead-in `max` is attributed to whichever candidate won it, the
/// per-line occupancy to the SRAM level that absorbed it, and the
/// memory-wait tail to the slowest memory line's queue/array/link split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Private-cache / SRAM time: hit lead-ins plus per-line occupancy.
    pub cache_ps: Ps,
    /// Memory-controller and off-chip channel queueing/transfer time.
    pub queue_ps: Ps,
    /// DRAM array service time (row activate + column access).
    pub service_ps: Ps,
    /// Vault/TSV link time on the stacked internal path (PIM ports).
    pub link_ps: Ps,
}

impl LatencyBreakdown {
    /// Sum of all components; equals the owning access's `latency_ps`.
    pub fn total_ps(&self) -> Ps {
        self.cache_ps + self.queue_ps + self.service_ps + self.link_ps
    }
}

/// Private-cache hit lead-in on the PIM-core path (L1 at 1.5 GHz), in ps.
pub const PIM_L1_HIT_PS: Ps = 2_000;
/// Scratch-buffer hit lead-in on the PIM-accelerator path, in ps.
pub const SCRATCH_HIT_PS: Ps = 1_000;
/// Per-line occupancy of a CPU L1 line transfer (one line per 2 GHz cycle).
pub const CPU_LINE_PS: Ps = 500;
/// Per-line occupancy of a PIM SRAM line transfer (one line per 1 GHz cycle).
pub const PIM_LINE_PS: Ps = 1_000;

/// Outcome of [`MemorySystem::try_rows`]: how much of a strided descriptor
/// was committed on the all-hit fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowsOutcome {
    /// Lines per row of the committed streak (constant across it).
    pub lines_per_row: u64,
    /// Rows fully committed as all-hit rows. Each is bit-identical to a
    /// scalar access whose every line hit the first private level.
    pub full_rows: u64,
    /// When `Some(k)`: the row at index `full_rows` had its first `k`
    /// lines committed as hits before a line missed. The caller *must*
    /// complete that row via [`MemorySystem::finish_row`] with
    /// `skip_hits = k` before touching the system again.
    pub partial_hits: Option<u64>,
}

/// Latency and component activity of one (possibly ranged) access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Critical-path latency seen by the issuing engine, in ps.
    pub latency_ps: Ps,
    /// Exact split of `latency_ps` across cache/queue/service/link time.
    pub breakdown: LatencyBreakdown,
    /// Component activity for the energy model.
    pub activity: Activity,
    /// Cache lines that missed the last private level and went to memory.
    pub memory_lines: u64,
    /// Total lines the access touched.
    pub lines: u64,
}

#[derive(Debug, Clone)]
enum Backend {
    Lpddr3 { banks: BankArray, channel: Channel },
    Stacked(StackedMemory),
}

/// Resolved track ids for a registered tracer. Present only while tracing
/// is enabled, so the disabled path stays a single `Option` branch.
#[derive(Debug, Clone)]
struct TraceHooks {
    tracer: Tracer,
    dram: TrackId,
    vaults: Vec<TrackId>,
    /// Pre-interned `mem.vault.NN.lines` counter names, one per vault, so
    /// the per-access hot path never formats a metric name.
    vault_lines: Vec<String>,
}

fn kind_label(kind: AccessKind) -> &'static str {
    if kind.is_write() {
        "write"
    } else {
        "read"
    }
}

/// Histogram name for end-to-end access latency, keyed by issuing port
/// and access kind (static strings keep the disabled/enabled paths
/// allocation-free).
fn latency_metric(port: Port, kind: AccessKind) -> &'static str {
    match (port, kind.is_write()) {
        (Port::Cpu, false) => "mem.latency_ps.cpu.read",
        (Port::Cpu, true) => "mem.latency_ps.cpu.write",
        (Port::PimCore, false) => "mem.latency_ps.pim-core.read",
        (Port::PimCore, true) => "mem.latency_ps.pim-core.write",
        (Port::PimAccel, false) => "mem.latency_ps.pim-accel.read",
        (Port::PimAccel, true) => "mem.latency_ps.pim-accel.write",
    }
}

/// Histogram name for per-line DRAM service latency (array + channel).
fn dram_metric(kind: AccessKind) -> &'static str {
    if kind.is_write() {
        "dram.latency_ps.write"
    } else {
        "dram.latency_ps.read"
    }
}

/// A complete memory system instance.
///
/// Ranged accesses are first-class: a 4 kB streaming read is one call, the
/// model walks its cache lines, and the returned latency assumes the lines
/// pipeline (lead-in latency of the deepest level touched plus per-line
/// occupancy, with DRAM-bound lines serialized on the bandwidth-limited
/// channel). Channel queueing state persists across calls, so sustained
/// misses saturate bandwidth exactly as in hardware.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemConfig,
    cpu_l1: Cache,
    llc: Cache,
    pim_l1: Cache,
    scratch: Cache,
    backend: Backend,
    hooks: Option<TraceHooks>,
    /// Line-coalescing fast path: when the previous access was a
    /// single-line private-cache hit, `last_line` remembers its
    /// `(port, line)` so an immediate repeat can replay the hit without
    /// the per-line walk. `None` whenever the previous access touched
    /// anything deeper than the private cache.
    last_line: Option<(Port, u64)>,
    coalesce: bool,
}

impl MemorySystem {
    /// Build a memory system after validating the configuration.
    ///
    /// # Errors
    ///
    /// [`DmpimError::InvalidConfig`] describing the offending component
    /// when [`MemConfig::validate`] rejects the geometry, bandwidths, or
    /// fault probabilities.
    pub fn new(config: MemConfig) -> Result<Self, DmpimError> {
        config.validate()?;
        Ok(Self::build(config))
    }

    /// A known-good baseline system ([`MemConfig::chromebook_like`]).
    ///
    /// Used as a construction-poisoned stand-in when a caller must hold
    /// *some* memory system even though its requested configuration was
    /// rejected — the caller records the [`DmpimError`] and reports it
    /// instead of simulating.
    pub fn fallback() -> Self {
        Self::build(MemConfig::chromebook_like())
    }

    /// Build without validating. Callers must have validated `config`
    /// (the presets used by [`Self::fallback`] are valid by construction).
    fn build(config: MemConfig) -> Self {
        let backend = match (config.dram, config.channel_faults) {
            (DramKind::Lpddr3 { channel_gbps, timing }, cf) => Backend::Lpddr3 {
                banks: BankArray::build(timing),
                channel: match cf {
                    Some(cf) => Channel::build_with_faults(channel_gbps, cf),
                    None => Channel::build(channel_gbps),
                },
            },
            (DramKind::Stacked(s), Some(cf)) => {
                Backend::Stacked(StackedMemory::build_with_faults(s, cf))
            }
            (DramKind::Stacked(s), None) => Backend::Stacked(StackedMemory::build(s)),
        };
        Self {
            cpu_l1: Cache::build(config.cpu_l1),
            llc: Cache::build(config.llc),
            pim_l1: Cache::build(config.pim_l1),
            scratch: Cache::build(config.scratch),
            backend,
            hooks: None,
            last_line: None,
            coalesce: true,
            config,
        }
    }

    /// Enable or disable the line-coalescing fast path (and each cache's
    /// repeat-hit memo). On by default; the differential harness turns it
    /// off to compare against the reference per-line walk.
    pub fn set_fast_path(&mut self, on: bool) {
        self.coalesce = on;
        self.last_line = None;
        self.cpu_l1.set_fast_path(on);
        self.llc.set_fast_path(on);
        self.pim_l1.set_fast_path(on);
        self.scratch.set_fast_path(on);
    }

    /// Register `tracer` as the sink for memory-level events and metrics.
    ///
    /// Creates one `dram` track for the CPU-side memory path plus one
    /// track per vault on stacked backends. Passing a disabled tracer
    /// detaches all hooks, restoring the zero-overhead path.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        if !tracer.enabled() {
            self.hooks = None;
            return;
        }
        let dram = tracer.track("dram");
        let vaults = match &self.backend {
            Backend::Stacked(s) => {
                (0..s.config().vaults).map(|v| tracer.track(&format!("vault {v:02}"))).collect()
            }
            Backend::Lpddr3 { .. } => Vec::new(),
        };
        let vault_lines =
            (0..vaults.len()).map(|v| format!("mem.vault.{v:02}.lines")).collect();
        self.hooks = Some(TraceHooks { tracer: tracer.clone(), dram, vaults, vault_lines });
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Convenience: CPU-port access (see [`Self::access_from`]).
    ///
    /// The CPU path works on every backend, so this is infallible.
    pub fn access(&mut self, addr: u64, bytes: u64, kind: AccessKind, now: Ps) -> AccessOutcome {
        if bytes == 0 {
            return AccessOutcome::default();
        }
        self.cpu_access(addr, bytes, kind, now)
    }

    /// Issue an access of `bytes` at `addr` from the given port at time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`DmpimError::PortUnsupported`] if a PIM port is used on a
    /// system whose memory is not 3D-stacked ([`MemConfig::supports_pim`]
    /// is `false`).
    pub fn access_from(
        &mut self,
        port: Port,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        now: Ps,
    ) -> Result<AccessOutcome, DmpimError> {
        if bytes == 0 {
            return Ok(AccessOutcome::default());
        }
        match port {
            Port::Cpu => Ok(self.cpu_access(addr, bytes, kind, now)),
            Port::PimCore | Port::PimAccel => self.pim_access(port, addr, bytes, kind, now),
        }
    }

    /// Ranged-engine entry point: commit as many all-hit rows of the
    /// stride/run-length descriptor `(addr, bytes, stride) x rows` as
    /// possible, touching only the first private cache level.
    ///
    /// Each committed row is bit-identical (cache state, stats, memos) to
    /// the scalar walk `access_from(port, addr + i*stride, bytes, kind)`
    /// whose every line hit. The streak stops at the first row with a
    /// missing line (its leading hits are committed; finish it with
    /// [`Self::finish_row`]), at the first row whose line count differs
    /// from the streak's, or after `rows` rows.
    ///
    /// Returns a zero-progress outcome (and mutates nothing) whenever the
    /// fast path cannot be used: coalescing disabled, a tracer attached,
    /// a PIM port on a non-stacked backend, or an empty descriptor — the
    /// caller then falls back to the scalar walk, which also reproduces
    /// any port error.
    pub fn try_rows(
        &mut self,
        port: Port,
        addr: u64,
        bytes: u64,
        stride: u64,
        rows: u64,
        kind: AccessKind,
    ) -> RowsOutcome {
        let none = RowsOutcome::default();
        if bytes == 0 || rows == 0 || !self.coalesce || self.hooks.is_some() {
            return none;
        }
        let cache: &mut Cache = match port {
            Port::Cpu => &mut self.cpu_l1,
            Port::PimCore | Port::PimAccel => {
                if !matches!(self.backend, Backend::Stacked(_)) {
                    return none;
                }
                if port == Port::PimAccel {
                    &mut self.scratch
                } else {
                    &mut self.pim_l1
                }
            }
        };
        let lines_per_row = (addr + bytes - 1) / LINE_BYTES - addr / LINE_BYTES + 1;
        let mut full = 0u64;
        let mut partial = None;
        'rows: while full < rows {
            let a = addr + full * stride;
            let f = a / LINE_BYTES;
            if (a + bytes - 1) / LINE_BYTES - f + 1 != lines_per_row {
                break; // row shape changed; the next call starts a new streak
            }
            let hits = cache.try_hit_run(f, lines_per_row, kind);
            if hits < lines_per_row {
                partial = Some(hits);
                break 'rows;
            }
            full += 1;
        }
        // Arm/disarm the system-level coalescing memo exactly as the
        // scalar walk would after the last committed row (intermediate
        // values are unobservable: nothing else touches the system during
        // a streak). A partial row is finished by `finish_row`, which
        // re-applies the rule itself.
        if partial.is_none() && full > 0 {
            self.last_line = if lines_per_row == 1 {
                Some((port, (addr + (full - 1) * stride) / LINE_BYTES))
            } else {
                None
            };
        }
        RowsOutcome { lines_per_row, full_rows: full, partial_hits: partial }
    }

    /// Complete the partial row a [`Self::try_rows`] streak stopped in:
    /// resume the reference per-line walk after its first `skip_hits`
    /// lines (whose hit transitions `try_rows` already committed). The
    /// returned outcome is bit-identical to the full scalar access.
    ///
    /// # Errors
    ///
    /// [`DmpimError::PortUnsupported`] for a PIM port on a non-stacked
    /// backend (unreachable after a successful `try_rows`).
    pub fn finish_row(
        &mut self,
        port: Port,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        now: Ps,
        skip_hits: u64,
    ) -> Result<AccessOutcome, DmpimError> {
        if bytes == 0 {
            return Ok(AccessOutcome::default());
        }
        match port {
            Port::Cpu => Ok(self.cpu_walk(addr, bytes, kind, now, skip_hits)),
            Port::PimCore | Port::PimAccel => self.pim_walk(port, addr, bytes, kind, now, skip_hits),
        }
    }

    fn cpu_access(&mut self, addr: u64, bytes: u64, kind: AccessKind, now: Ps) -> AccessOutcome {
        let first_line = addr / LINE_BYTES;
        // Fast path: a single-line repeat of the previous L1 hit. The
        // cache replays the exact hit transitions (tick, MRU, stats,
        // dirty) and we replicate the hit's latency/activity/trace
        // accounting without walking the line range.
        if self.coalesce
            && self.last_line == Some((Port::Cpu, first_line))
            && (addr + bytes - 1) / LINE_BYTES == first_line
            && self.cpu_l1.coalesced_hit(addr, kind)
        {
            let mut out = AccessOutcome {
                latency_ps: self.config.l1_hit_ps + 500,
                breakdown: LatencyBreakdown {
                    cache_ps: self.config.l1_hit_ps + 500,
                    ..LatencyBreakdown::default()
                },
                lines: 1,
                ..AccessOutcome::default()
            };
            out.activity.l1_accesses = 1;
            if let Some(h) = &self.hooks {
                let t = &h.tracer;
                t.count("mem.cpu.accesses", 1);
                t.count("mem.cpu.lines", 1);
                t.count("mem.cpu.memory_lines", 0);
                t.count("cache.cpu.writebacks", 0);
                t.observe(latency_metric(Port::Cpu, kind), out.latency_ps);
            }
            return out;
        }
        self.cpu_walk(addr, bytes, kind, now, 0)
    }

    /// The reference CPU per-line walk. `skip_hits` seeds the walk as if
    /// its first `skip_hits` lines had already been walked and hit (their
    /// cache-state transitions were committed by [`Cache::try_hit`]); the
    /// loop resumes at exactly the line the scalar walk would be on, so
    /// the outcome is bit-identical to a full scalar access.
    fn cpu_walk(
        &mut self,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        now: Ps,
        skip_hits: u64,
    ) -> AccessOutcome {
        let first_line = addr / LINE_BYTES;
        let mut out = AccessOutcome::default();
        let mut lead: Ps = 0;
        let mut occupancy: Ps = 0;
        let mut mem_finish: Ps = now;
        let mut writebacks: u64 = 0;
        // Split of the winning lead candidate and of the slowest memory
        // line's wait, so `out.breakdown` sums exactly to `latency_ps`.
        let mut lead_split = LatencyBreakdown::default();
        let mut wait_split = LatencyBreakdown::default();
        let cfg = self.config;
        if skip_hits > 0 {
            out.lines = skip_hits;
            out.activity.l1_accesses = skip_hits;
            occupancy = CPU_LINE_PS * skip_hits;
            if cfg.l1_hit_ps > 0 {
                lead = cfg.l1_hit_ps;
                lead_split = LatencyBreakdown { cache_ps: lead, ..LatencyBreakdown::default() };
            }
        }
        for line in lines_of(addr, bytes).skip(skip_hits as usize) {
            out.lines += 1;
            out.activity.l1_accesses += 1;
            let l1 = self.cpu_l1.access(line, kind);
            if l1.hit {
                if cfg.l1_hit_ps > lead {
                    lead = cfg.l1_hit_ps;
                    lead_split =
                        LatencyBreakdown { cache_ps: lead, ..LatencyBreakdown::default() };
                }
                occupancy += 500; // one line per 2 GHz cycle
                continue;
            }
            // L1 writeback goes to the LLC (traffic only, off critical path).
            if let Some(wb) = l1.writeback {
                out.activity.llc_accesses += 1;
                writebacks += 1;
                if let Some(wb2) = self.llc.access(wb, AccessKind::Write).writeback {
                    self.memory_write(wb2, &mut out.activity, now);
                }
            }
            out.activity.llc_accesses += 1;
            let llc = self.llc.access(line, AccessKind::Read);
            if llc.hit {
                let cand = cfg.l1_hit_ps + cfg.llc_hit_ps;
                if cand > lead {
                    lead = cand;
                    lead_split =
                        LatencyBreakdown { cache_ps: cand, ..LatencyBreakdown::default() };
                }
                occupancy += 2_000;
                continue;
            }
            if let Some(wb) = llc.writeback {
                writebacks += 1;
                self.memory_write(wb, &mut out.activity, now);
            }
            out.memory_lines += 1;
            out.activity.memctrl_requests += 1;
            let (lat, array) = self.memory_read(line, &mut out.activity, now);
            let cand = cfg.l1_hit_ps + cfg.llc_hit_ps + cfg.memctrl_ps + array;
            if cand > lead {
                lead = cand;
                lead_split = LatencyBreakdown {
                    cache_ps: cfg.l1_hit_ps + cfg.llc_hit_ps,
                    queue_ps: cfg.memctrl_ps,
                    service_ps: array,
                    link_ps: 0,
                };
            }
            if now + lat > mem_finish {
                mem_finish = now + lat;
                let service = array.min(lat);
                wait_split = LatencyBreakdown {
                    service_ps: service,
                    queue_ps: lat - service,
                    ..LatencyBreakdown::default()
                };
            }
        }
        out.latency_ps = lead + occupancy + (mem_finish - now);
        out.breakdown = LatencyBreakdown {
            cache_ps: lead_split.cache_ps + occupancy + wait_split.cache_ps,
            queue_ps: lead_split.queue_ps + wait_split.queue_ps,
            service_ps: lead_split.service_ps + wait_split.service_ps,
            link_ps: lead_split.link_ps + wait_split.link_ps,
        };
        // Arm the fast path only when this access was itself a
        // single-line L1 hit (no LLC or memory involvement).
        self.last_line = if out.lines == 1
            && out.activity.llc_accesses == 0
            && out.memory_lines == 0
        {
            Some((Port::Cpu, first_line))
        } else {
            None
        };
        if let Some(h) = &self.hooks {
            let t = &h.tracer;
            t.count("mem.cpu.accesses", 1);
            t.count("mem.cpu.lines", out.lines);
            t.count("mem.cpu.memory_lines", out.memory_lines);
            t.count("cache.cpu.writebacks", writebacks);
            t.observe(latency_metric(Port::Cpu, kind), out.latency_ps);
            if out.memory_lines > 0 {
                t.complete_args(
                    h.dram,
                    kind_label(kind),
                    now,
                    out.latency_ps,
                    vec![("lines", out.lines.into()), ("memory_lines", out.memory_lines.into())],
                );
            }
        }
        out
    }

    fn pim_access(
        &mut self,
        port: Port,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        now: Ps,
    ) -> Result<AccessOutcome, DmpimError> {
        let first_line = addr / LINE_BYTES;
        // Fast path: single-line repeat of the previous private-cache hit
        // from the same PIM port (see `cpu_access`). `last_line` is only
        // ever keyed by a PIM port after a successful stacked-backend
        // access, so no backend re-check is needed here.
        if self.coalesce
            && port != Port::Cpu
            && self.last_line == Some((port, first_line))
            && (addr + bytes - 1) / LINE_BYTES == first_line
        {
            let (cache, hit_ps): (&mut Cache, Ps) = match port {
                Port::PimAccel => (&mut self.scratch, 1_000),
                _ => (&mut self.pim_l1, 2_000),
            };
            if cache.coalesced_hit(addr, kind) {
                let mut out = AccessOutcome {
                    latency_ps: hit_ps + 1_000,
                    breakdown: LatencyBreakdown {
                        cache_ps: hit_ps + 1_000,
                        ..LatencyBreakdown::default()
                    },
                    lines: 1,
                    ..AccessOutcome::default()
                };
                if port == Port::PimAccel {
                    out.activity.scratch_accesses = 1;
                } else {
                    out.activity.l1_accesses = 1;
                }
                if let Some(h) = &self.hooks {
                    let t = &h.tracer;
                    t.count("mem.pim.accesses", 1);
                    t.count("mem.pim.lines", 1);
                    t.count("mem.pim.memory_lines", 0);
                    t.count("cache.pim.writebacks", 0);
                    t.observe(latency_metric(port, kind), out.latency_ps);
                }
                return Ok(out);
            }
        }
        self.pim_walk(port, addr, bytes, kind, now, 0)
    }

    /// The reference PIM per-line walk; see [`Self::cpu_walk`] for the
    /// `skip_hits` resume contract.
    fn pim_walk(
        &mut self,
        port: Port,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        now: Ps,
        skip_hits: u64,
    ) -> Result<AccessOutcome, DmpimError> {
        let first_line = addr / LINE_BYTES;
        let mut out = AccessOutcome::default();
        let mut lead: Ps = 0;
        let mut occupancy: Ps = 0;
        let mut mem_finish: Ps = now;
        let mut writebacks: u64 = 0;
        // Per-vault (index, lines, max latency) touched by this access;
        // populated only while tracing so the disabled path never allocates.
        let mut per_vault: Vec<(usize, u64, Ps)> = Vec::new();
        let Self { pim_l1, scratch, backend, hooks, .. } = self;
        let (cache, hit_ps): (&mut Cache, Ps) = match port {
            Port::PimCore => (pim_l1, PIM_L1_HIT_PS),
            Port::PimAccel => (scratch, SCRATCH_HIT_PS),
            Port::Cpu => return Err(DmpimError::PortUnsupported { port: port.label() }),
        };
        if skip_hits > 0 {
            out.lines = skip_hits;
            if port == Port::PimAccel {
                out.activity.scratch_accesses = skip_hits;
            } else {
                out.activity.l1_accesses = skip_hits;
            }
            occupancy = PIM_LINE_PS * skip_hits;
            lead = hit_ps;
        }
        let stacked = match backend {
            Backend::Stacked(s) => s,
            Backend::Lpddr3 { .. } => {
                return Err(DmpimError::PortUnsupported { port: port.label() })
            }
        };
        // Array-service estimate per row hit/miss, used to split each
        // line's vault latency into DRAM service vs TSV-link time.
        let vault_cfg = stacked.config().vault;
        let note_vault = |per_vault: &mut Vec<(usize, u64, Ps)>, vault: usize, lat: Ps| {
            match per_vault.iter_mut().find(|e| e.0 == vault) {
                Some(e) => {
                    e.1 += 1;
                    e.2 = e.2.max(lat);
                }
                None => per_vault.push((vault, 1, lat)),
            }
        };
        // Wait split of the slowest memory line (service vs link), so the
        // final breakdown sums exactly to `latency_ps`.
        let mut wait_split = LatencyBreakdown::default();
        for line in lines_of(addr, bytes).skip(skip_hits as usize) {
            out.lines += 1;
            if port == Port::PimAccel {
                out.activity.scratch_accesses += 1;
            } else {
                out.activity.l1_accesses += 1;
            }
            let c = cache.access(line, kind);
            if c.hit {
                lead = lead.max(hit_ps);
                occupancy += 1_000; // one line per 1 GHz PIM cycle
                continue;
            }
            if let Some(wb) = c.writeback {
                let o = stacked.access_internal(wb, LINE_BYTES, AccessKind::Write, now);
                out.activity.dram_write_bytes += LINE_BYTES;
                out.activity.internal_bytes += LINE_BYTES;
                if o.row_hit {
                    out.activity.row_hits += 1;
                } else {
                    out.activity.row_misses += 1;
                }
                writebacks += 1;
                if let Some(h) = hooks.as_ref() {
                    h.tracer.observe(dram_metric(AccessKind::Write), o.latency_ps);
                    note_vault(&mut per_vault, o.vault, o.latency_ps);
                }
            }
            out.memory_lines += 1;
            out.activity.memctrl_requests += 1;
            let o = stacked.access_internal(line, LINE_BYTES, kind, now);
            out.activity.internal_bytes += LINE_BYTES;
            if kind.is_write() {
                out.activity.dram_write_bytes += LINE_BYTES;
            } else {
                out.activity.dram_read_bytes += LINE_BYTES;
            }
            if o.row_hit {
                out.activity.row_hits += 1;
            } else {
                out.activity.row_misses += 1;
            }
            if let Some(h) = hooks.as_ref() {
                h.tracer.observe(dram_metric(kind), o.latency_ps);
                note_vault(&mut per_vault, o.vault, o.latency_ps);
            }
            lead = lead.max(hit_ps);
            if now + o.latency_ps > mem_finish {
                mem_finish = now + o.latency_ps;
                let array = if o.row_hit {
                    vault_cfg.row_hit_ps
                } else {
                    vault_cfg.row_hit_ps + vault_cfg.row_miss_extra_ps
                };
                let service = array.min(o.latency_ps);
                wait_split = LatencyBreakdown {
                    service_ps: service,
                    link_ps: o.latency_ps - service,
                    ..LatencyBreakdown::default()
                };
            }
        }
        out.latency_ps = lead + occupancy + (mem_finish - now);
        // `lead` only ever carries the private SRAM hit latency on the PIM
        // path, so it lands in `cache_ps` wholesale.
        out.breakdown = LatencyBreakdown {
            cache_ps: lead + occupancy,
            queue_ps: 0,
            service_ps: wait_split.service_ps,
            link_ps: wait_split.link_ps,
        };
        if let Some(h) = hooks.as_ref() {
            let t = &h.tracer;
            t.count("mem.pim.accesses", 1);
            t.count("mem.pim.lines", out.lines);
            t.count("mem.pim.memory_lines", out.memory_lines);
            t.count("cache.pim.writebacks", writebacks);
            t.observe(latency_metric(port, kind), out.latency_ps);
            for (v, lines, dur) in per_vault {
                if let Some(&track) = h.vaults.get(v) {
                    t.count(h.vault_lines[v].as_str(), lines);
                    t.complete_args(track, kind_label(kind), now, dur, vec![("lines", lines.into())]);
                }
            }
        }
        self.last_line = if out.lines == 1 && out.memory_lines == 0 {
            Some((port, first_line))
        } else {
            None
        };
        Ok(out)
    }

    /// A writeback or fill reaching main memory from the CPU side.
    fn memory_write(&mut self, addr: u64, act: &mut Activity, now: Ps) {
        act.memctrl_requests += 1;
        act.dram_write_bytes += LINE_BYTES;
        let lat = match &mut self.backend {
            Backend::Lpddr3 { banks, channel } => {
                let d = banks.access(addr, LINE_BYTES, AccessKind::Write);
                channel.transfer(LINE_BYTES, now);
                act.offchip_bytes += LINE_BYTES;
                d.latency_ps
            }
            Backend::Stacked(s) => {
                let o = s.access_offchip(addr, LINE_BYTES, AccessKind::Write, now);
                act.offchip_bytes += LINE_BYTES;
                act.internal_bytes += LINE_BYTES;
                if o.row_hit {
                    act.row_hits += 1;
                } else {
                    act.row_misses += 1;
                }
                o.latency_ps
            }
        };
        if let Some(h) = &self.hooks {
            h.tracer.observe(dram_metric(AccessKind::Write), lat);
        }
    }

    /// A demand fill from main memory on the CPU side.
    ///
    /// Returns `(latency from now, array-only latency)`.
    fn memory_read(&mut self, addr: u64, act: &mut Activity, now: Ps) -> (Ps, Ps) {
        act.dram_read_bytes += LINE_BYTES;
        let out = match &mut self.backend {
            Backend::Lpddr3 { banks, channel } => {
                let d = banks.access(addr, LINE_BYTES, AccessKind::Read);
                let ch = channel.transfer(LINE_BYTES, now);
                act.offchip_bytes += LINE_BYTES;
                if d.row_hit {
                    act.row_hits += 1;
                } else {
                    act.row_misses += 1;
                }
                (ch + d.latency_ps, d.latency_ps)
            }
            Backend::Stacked(s) => {
                let o = s.access_offchip(addr, LINE_BYTES, AccessKind::Read, now);
                act.offchip_bytes += LINE_BYTES;
                act.internal_bytes += LINE_BYTES;
                if o.row_hit {
                    act.row_hits += 1;
                } else {
                    act.row_misses += 1;
                }
                // Approximate the array component for lead-in purposes.
                (o.latency_ps, s.config().vault.row_hit_ps)
            }
        };
        if let Some(h) = &self.hooks {
            h.tracer.observe(dram_metric(AccessKind::Read), out.0);
        }
        out
    }

    /// Statistics of the CPU L1.
    pub fn cpu_l1_stats(&self) -> CacheStats {
        self.cpu_l1.stats()
    }

    /// Statistics of the shared LLC (drives the paper's MPKI criterion).
    pub fn llc_stats(&self) -> CacheStats {
        self.llc.stats()
    }

    /// Statistics of the PIM-core L1.
    pub fn pim_l1_stats(&self) -> CacheStats {
        self.pim_l1.stats()
    }

    /// Row-locality and traffic counters of the DRAM backend.
    pub fn dram_stats(&self) -> DramStats {
        match &self.backend {
            Backend::Lpddr3 { banks, .. } => banks.stats(),
            Backend::Stacked(s) => s.stats(),
        }
    }

    /// Flush (invalidate) all CPU-side caches, returning dirty lines dropped.
    ///
    /// Used at offload boundaries so PIM logic observes CPU writes; the
    /// caller is responsible for pricing the returned writebacks.
    pub fn flush_cpu_caches(&mut self) -> u64 {
        self.last_line = None;
        self.cpu_l1.flush_all() + self.llc.flush_all()
    }

    /// Dropped/duplicated transaction counters across all transfer channels
    /// (all zero unless the system was built with `channel_faults`).
    pub fn channel_fault_stats(&self) -> ChannelFaultStats {
        match &self.backend {
            Backend::Lpddr3 { channel, .. } => channel.fault_stats(),
            Backend::Stacked(s) => s.fault_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> MemorySystem {
        MemorySystem::new(MemConfig::chromebook_like()).unwrap()
    }

    fn pim() -> MemorySystem {
        MemorySystem::new(MemConfig::pim_device()).unwrap()
    }

    #[test]
    fn cold_miss_costs_more_than_hit() {
        let mut m = base();
        let cold = m.access(0, 64, AccessKind::Read, 0);
        let warm = m.access(0, 64, AccessKind::Read, cold.latency_ps);
        assert!(cold.latency_ps > warm.latency_ps);
        assert_eq!(cold.memory_lines, 1);
        assert_eq!(warm.memory_lines, 0);
        assert_eq!(warm.activity.dram_read_bytes, 0);
    }

    #[test]
    fn ranged_access_touches_all_lines() {
        let mut m = base();
        let out = m.access(0, 4096, AccessKind::Read, 0);
        assert_eq!(out.lines, 64);
        assert_eq!(out.activity.l1_accesses, 64);
        assert_eq!(out.activity.dram_read_bytes, 64 * 64);
    }

    #[test]
    fn ranged_access_pipelines_instead_of_summing() {
        let mut m = base();
        let one = m.access(1 << 30, 64, AccessKind::Read, 0).latency_ps;
        let mut m2 = base();
        let range = m2.access(0, 4096, AccessKind::Read, 0).latency_ps;
        assert!(range < 64 * one, "range {range} vs 64x single {}", 64 * one);
        assert!(range > one);
    }

    #[test]
    fn pim_port_errors_on_lpddr3() {
        let mut m = base();
        let r = m.access_from(Port::PimCore, 0, 64, AccessKind::Read, 0);
        assert_eq!(r, Err(DmpimError::PortUnsupported { port: "pim-core" }));
        let r = m.access_from(Port::PimAccel, 0, 64, AccessKind::Read, 0);
        assert_eq!(r, Err(DmpimError::PortUnsupported { port: "pim-accel" }));
    }

    #[test]
    fn new_validates_config() {
        let mut cfg = MemConfig::chromebook_like();
        assert!(MemorySystem::new(cfg).is_ok());
        cfg.cpu_l1.associativity = 0;
        let err = MemorySystem::new(cfg).unwrap_err();
        assert!(matches!(err, DmpimError::InvalidConfig { .. }));
        assert!(err.to_string().contains("cpu_l1"));
    }

    #[test]
    fn fallback_is_the_baseline_preset() {
        let fb = MemorySystem::fallback();
        assert_eq!(*fb.config(), MemConfig::chromebook_like());
    }

    #[test]
    fn channel_faults_slow_the_faulty_system_down() {
        use pim_faults::ChannelFaultConfig;
        let mut cfg = MemConfig::pim_device();
        cfg.channel_faults = Some(ChannelFaultConfig { drop_prob: 0.5, dup_prob: 0.0, seed: 3 });
        let mut faulty = MemorySystem::new(cfg).unwrap();
        let mut clean = MemorySystem::new(MemConfig::pim_device()).unwrap();
        let mut t_faulty = 0;
        let mut t_clean = 0;
        for i in 0..64u64 {
            t_faulty += faulty
                .access_from(Port::PimCore, i * 4096, 4096, AccessKind::Read, t_faulty)
                .unwrap()
                .latency_ps;
            t_clean += clean
                .access_from(Port::PimCore, i * 4096, 4096, AccessKind::Read, t_clean)
                .unwrap()
                .latency_ps;
        }
        assert!(faulty.channel_fault_stats().dropped > 0);
        assert!(t_faulty > t_clean, "faulty {t_faulty} vs clean {t_clean}");
        assert_eq!(clean.channel_fault_stats(), ChannelFaultStats::default());
    }

    #[test]
    fn pim_core_access_avoids_offchip_channel() {
        let mut m = pim();
        let out = m.access_from(Port::PimCore, 0, 4096, AccessKind::Read, 0).unwrap();
        assert_eq!(out.activity.offchip_bytes, 0);
        assert_eq!(out.activity.internal_bytes, 4096);
        assert_eq!(out.activity.llc_accesses, 0);
    }

    #[test]
    fn cpu_access_on_stacked_crosses_both_paths() {
        let mut m = pim();
        let out = m.access(0, 64, AccessKind::Read, 0);
        assert_eq!(out.activity.offchip_bytes, 64);
        assert_eq!(out.activity.internal_bytes, 64);
    }

    #[test]
    fn pim_streaming_is_faster_than_cpu_streaming() {
        // A large cold stream: PIM's internal path should beat the CPU path.
        let mut cpu = pim();
        let mut t_cpu = 0;
        for i in 0..256u64 {
            t_cpu += cpu.access(i * 4096, 4096, AccessKind::Read, t_cpu).latency_ps;
        }
        let mut pimdev = pim();
        let mut t_pim = 0;
        for i in 0..256u64 {
            t_pim += pimdev
                .access_from(Port::PimCore, i * 4096, 4096, AccessKind::Read, t_pim)
                .unwrap()
                .latency_ps;
        }
        assert!(
            t_pim < t_cpu,
            "pim stream {t_pim} ps should beat cpu stream {t_cpu} ps"
        );
    }

    #[test]
    fn dirty_evictions_generate_dram_writes() {
        let mut m = base();
        // Write far more data than L1+LLC capacity, then stream a second
        // region; evictions must show up as DRAM writes.
        let mb = 4 * 1024 * 1024;
        m.access(0, mb, AccessKind::Write, 0);
        let out = m.access(1 << 30, mb, AccessKind::Read, 0);
        assert!(out.activity.dram_write_bytes > 0, "expected writebacks");
    }

    #[test]
    fn flush_cpu_caches_reports_dirty_lines() {
        let mut m = base();
        m.access(0, 64 * 10, AccessKind::Write, 0);
        let dirty = m.flush_cpu_caches();
        assert!(dirty >= 10);
        // After a flush the same read misses again.
        let out = m.access(0, 64, AccessKind::Read, 0);
        assert_eq!(out.memory_lines, 1);
    }

    #[test]
    fn llc_stats_expose_mpki_numerator() {
        let mut m = base();
        for i in 0..1000u64 {
            m.access(i * 4096, 64, AccessKind::Read, 0);
        }
        assert!(m.llc_stats().misses >= 900);
    }

    #[test]
    fn tracer_sees_vault_tracks_and_latency_metrics() {
        let t = Tracer::new();
        let mut m = pim();
        m.set_tracer(&t);
        m.access_from(Port::PimCore, 0, 4096, AccessKind::Read, 0).unwrap();
        m.access(1 << 20, 64, AccessKind::Read, 0);
        let tracks = t.tracks();
        assert!(tracks.iter().any(|n| n == "dram"));
        assert!(tracks.iter().any(|n| n == "vault 00"));
        assert!(t.event_count() > 0);
        let rep = t.metrics();
        assert!(rep.histograms.contains_key("mem.latency_ps.pim-core.read"));
        assert!(rep.histograms.contains_key("dram.latency_ps.read"));
        assert!(rep.counters["mem.pim.lines"] >= 64);
        assert!(rep.counters.keys().any(|k| k.starts_with("mem.vault.")));
    }

    #[test]
    fn tracing_does_not_change_outcomes() {
        let t = Tracer::new();
        let mut traced = pim();
        traced.set_tracer(&t);
        let mut plain = pim();
        for i in 0..8u64 {
            let a = traced
                .access_from(Port::PimCore, i * 4096, 4096, AccessKind::Read, 0)
                .unwrap();
            let b = plain
                .access_from(Port::PimCore, i * 4096, 4096, AccessKind::Read, 0)
                .unwrap();
            assert_eq!(a, b);
        }
        // Detaching restores the untraced hook state.
        traced.set_tracer(&Tracer::disabled());
        let a = traced.access(0, 64, AccessKind::Read, 0);
        let b = plain.access(0, 64, AccessKind::Read, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn per_kind_dram_latency_in_stats() {
        let mut m = pim();
        m.access_from(Port::PimCore, 0, 4096, AccessKind::Read, 0).unwrap();
        m.access_from(Port::PimCore, 1 << 20, 4096, AccessKind::Write, 0).unwrap();
        let s = m.dram_stats();
        assert!(s.reads >= 64);
        assert!(s.read_latency_ps > 0);
        assert!(s.avg_read_latency_ps() > 0.0);
        // Writes land in DRAM only on eviction, so only assert reads here;
        // the write-side accounting is covered by dram.rs unit tests.
    }

    #[test]
    fn breakdown_components_sum_to_latency() {
        // CPU path on LPDDR3: cold streams, warm hits, single lines.
        let mut m = base();
        for (addr, bytes) in
            [(0u64, 4096u64), (0, 64), (1 << 20, 64), (1 << 20, 64), (0, 1 << 16)]
        {
            let out = m.access(addr, bytes, AccessKind::Read, 0);
            assert_eq!(out.breakdown.total_ps(), out.latency_ps, "cpu {addr:#x}+{bytes}");
        }
        // PIM ports on the stacked backend, plus a CPU crossing.
        let mut p = pim();
        for port in [Port::PimCore, Port::PimAccel] {
            for (addr, bytes) in [(0u64, 4096u64), (0, 64), (0, 64), (1 << 22, 1 << 16)] {
                let out = p.access_from(port, addr, bytes, AccessKind::Read, 0).unwrap();
                assert_eq!(out.breakdown.total_ps(), out.latency_ps, "{port:?} {addr:#x}");
            }
        }
        let out = p.access(1 << 24, 4096, AccessKind::Read, 0);
        assert_eq!(out.breakdown.total_ps(), out.latency_ps);
    }

    #[test]
    fn breakdown_localizes_memory_time() {
        // A cold streaming read must attribute most latency past the caches.
        let mut m = base();
        let cold = m.access(0, 1 << 16, AccessKind::Read, 0);
        assert!(cold.breakdown.service_ps > 0, "{:?}", cold.breakdown);
        assert!(cold.breakdown.queue_ps > 0, "{:?}", cold.breakdown);
        assert_eq!(cold.breakdown.link_ps, 0);
        // A warm repeat is pure cache time.
        let warm = m.access(0, 64, AccessKind::Read, cold.latency_ps);
        assert_eq!(warm.breakdown.cache_ps, warm.latency_ps);
        assert_eq!(warm.breakdown.service_ps + warm.breakdown.queue_ps, 0);
        // PIM internal path: no off-chip queueing, but TSV link time shows.
        let mut p = pim();
        let out = p.access_from(Port::PimCore, 0, 1 << 16, AccessKind::Read, 0).unwrap();
        assert_eq!(out.breakdown.queue_ps, 0);
        assert!(out.breakdown.service_ps > 0, "{:?}", out.breakdown);
        assert!(out.breakdown.link_ps > 0, "{:?}", out.breakdown);
    }

    #[test]
    fn bandwidth_saturation_grows_latency() {
        let mut m = base();
        // Issue many cold lines at the same timestamp: channel queueing
        // must make later lines slower.
        let first = m.access(0, 64, AccessKind::Read, 0).latency_ps;
        let mut worst = first;
        for i in 1..512u64 {
            let out = m.access(i * 4096, 64, AccessKind::Read, 0);
            worst = worst.max(out.latency_ps);
        }
        assert!(worst > 4 * first, "queueing should dominate: {worst} vs {first}");
    }
}
