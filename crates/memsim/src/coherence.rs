//! CPU↔PIM coherence cost model (paper §8.2).
//!
//! The paper argues most PIM targets are fine-grained functions interleaved
//! with CPU work, so coherence between the CPU caches and PIM logic must be
//! cheap. It adopts a PIM-side directory in the logic layer with the CPU-side
//! directory as the global ordering point. We model the *costs* of that
//! scheme rather than its mechanism:
//!
//! * when an offload region begins, dirty CPU-cached lines belonging to the
//!   region are flushed so PIM observes them (one writeback each), and a
//!   directory hand-off message is exchanged;
//! * while PIM executes, each PIM miss consults the PIM-side directory
//!   (counted, priced by the energy model);
//! * when the region ends, CPU caches invalidate stale copies and another
//!   hand-off message is exchanged.

use crate::Ps;

/// Latency/size parameters for coherence actions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceConfig {
    /// One-way CPU↔PIM message latency across the off-chip channel, in ps.
    pub msg_latency_ps: Ps,
    /// Payload of a coherence message, in bytes (a header-sized packet).
    pub msg_bytes: u64,
    /// Fraction of an offload region's working set assumed dirty in CPU
    /// caches when the offload begins (drives flush traffic).
    pub dirty_fraction: f64,
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        Self { msg_latency_ps: 40_000, msg_bytes: 16, dirty_fraction: 0.05 }
    }
}

/// Counters describing coherence work performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Hand-off and acknowledgment messages exchanged.
    pub messages: u64,
    /// Dirty lines flushed from CPU caches at offload starts.
    pub flushed_lines: u64,
    /// Lines invalidated in CPU caches at offload ends.
    pub invalidated_lines: u64,
    /// PIM-side directory lookups.
    pub directory_lookups: u64,
}

/// The cost of one offload transition (begin or end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionCost {
    /// Latency added to the critical path, in ps.
    pub latency_ps: Ps,
    /// Cache lines written back to memory (begin) or invalidated (end).
    pub lines: u64,
    /// Bytes of coherence-message traffic crossing the off-chip channel.
    pub message_bytes: u64,
}

/// Tracks coherence activity across a simulation.
#[derive(Debug, Clone, Default)]
pub struct CoherenceModel {
    config: CoherenceConfig,
    stats: CoherenceStats,
}

impl CoherenceModel {
    /// Create a model with the given parameters.
    pub fn new(config: CoherenceConfig) -> Self {
        Self { config, stats: CoherenceStats::default() }
    }

    /// Parameters in use.
    pub fn config(&self) -> CoherenceConfig {
        self.config
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CoherenceStats {
        self.stats
    }

    /// An offload region over `region_bytes` of data begins.
    ///
    /// Dirty CPU-cached lines covering the region are flushed; a hand-off
    /// message and its acknowledgment cross the channel.
    pub fn offload_begin(&mut self, region_bytes: u64) -> TransitionCost {
        let lines = ((region_bytes as f64 * self.config.dirty_fraction) / 64.0).ceil() as u64;
        self.stats.messages += 2;
        self.stats.flushed_lines += lines;
        TransitionCost {
            // Flushes overlap each other; one round trip plus a drain tail.
            latency_ps: 2 * self.config.msg_latency_ps + lines / 8 * 1_000,
            lines,
            message_bytes: 2 * self.config.msg_bytes,
        }
    }

    /// The offload region ends; CPU caches shoot down stale copies.
    pub fn offload_end(&mut self, region_bytes: u64) -> TransitionCost {
        let lines = ((region_bytes as f64 * self.config.dirty_fraction) / 64.0).ceil() as u64;
        self.stats.messages += 2;
        self.stats.invalidated_lines += lines;
        TransitionCost {
            latency_ps: 2 * self.config.msg_latency_ps,
            lines,
            message_bytes: 2 * self.config.msg_bytes,
        }
    }

    /// Record a PIM-side directory lookup (one per PIM cache miss).
    pub fn directory_lookup(&mut self) {
        self.stats.directory_lookups += 1;
    }

    /// Record `n` PIM-side directory lookups at once — identical stats to
    /// calling [`Self::directory_lookup`] `n` times, without the loop.
    pub fn directory_lookups(&mut self, n: u64) {
        self.stats.directory_lookups += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_flushes_scale_with_region() {
        let mut m = CoherenceModel::new(CoherenceConfig::default());
        let small = m.offload_begin(64 * 1024);
        let large = m.offload_begin(64 * 1024 * 1024);
        assert!(large.lines > small.lines);
        assert!(large.latency_ps >= small.latency_ps);
        assert_eq!(m.stats().messages, 4);
    }

    #[test]
    fn end_invalidates_without_flush_traffic() {
        let mut m = CoherenceModel::new(CoherenceConfig::default());
        let t = m.offload_end(1024 * 1024);
        assert!(t.lines > 0);
        assert_eq!(m.stats().flushed_lines, 0);
        assert!(m.stats().invalidated_lines > 0);
        assert_eq!(t.message_bytes, 32);
    }

    #[test]
    fn directory_lookups_counted() {
        let mut m = CoherenceModel::default();
        for _ in 0..5 {
            m.directory_lookup();
        }
        assert_eq!(m.stats().directory_lookups, 5);
    }

    #[test]
    fn zero_byte_region_costs_only_messages() {
        let mut m = CoherenceModel::default();
        let t = m.offload_begin(0);
        assert_eq!(t.lines, 0);
        assert_eq!(t.latency_ps, 2 * m.config().msg_latency_ps);
    }
}
