//! Top-level memory-system configuration.

use pim_faults::ChannelFaultConfig;

use crate::cache::CacheConfig;
use crate::channel::{validate_prob, Channel};
use crate::dram::DramConfig;
use crate::error::ConfigError;
use crate::stacked::StackedConfig;
use crate::Ps;

/// Which main-memory technology backs the system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DramKind {
    /// Conventional off-chip LPDDR3 (Table 1's baseline memory).
    Lpddr3 {
        /// Channel bandwidth in GB/s (LPDDR3-1600 x64 ≈ 12.8 GB/s).
        channel_gbps: f64,
        /// Bank timing.
        timing: DramConfig,
    },
    /// 3D-stacked memory with a logic layer (enables PIM).
    Stacked(StackedConfig),
}

/// Full memory-system configuration: caches plus main memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Per-core CPU L1.
    pub cpu_l1: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// PIM-core private L1 (only used on stacked systems).
    pub pim_l1: CacheConfig,
    /// PIM-accelerator scratch buffer (32 kB in §9).
    pub scratch: CacheConfig,
    /// L1 hit latency, in ps.
    pub l1_hit_ps: Ps,
    /// LLC hit latency (beyond L1), in ps.
    pub llc_hit_ps: Ps,
    /// Memory-controller queueing/processing overhead per request, in ps.
    pub memctrl_ps: Ps,
    /// Main-memory technology.
    pub dram: DramKind,
    /// Link-fault injection (dropped/duplicated transactions) applied to
    /// every transfer channel. `None` leaves the channels ideal.
    pub channel_faults: Option<ChannelFaultConfig>,
}

impl MemConfig {
    /// The paper's characterization platform: SoC caches in front of LPDDR3.
    pub fn chromebook_like() -> Self {
        Self {
            cpu_l1: CacheConfig::soc_l1(),
            llc: CacheConfig::soc_llc(),
            pim_l1: CacheConfig::pim_l1(),
            scratch: CacheConfig::pim_l1(),
            l1_hit_ps: 1_500,
            llc_hit_ps: 10_000,
            memctrl_ps: 10_000,
            dram: DramKind::Lpddr3 { channel_gbps: 12.8, timing: DramConfig::lpddr3() },
            channel_faults: None,
        }
    }

    /// The paper's PIM platform: same SoC, 3D-stacked memory (Table 1).
    pub fn pim_device() -> Self {
        Self {
            dram: DramKind::Stacked(StackedConfig::hmc_like()),
            ..Self::chromebook_like()
        }
    }

    /// Whether this system has a logic layer PIM can live in.
    pub fn supports_pim(&self) -> bool {
        matches!(self.dram, DramKind::Stacked(_))
    }

    /// Check the configuration for inconsistencies before building a
    /// [`crate::MemorySystem`] from it.
    ///
    /// # Errors
    ///
    /// A typed [`ConfigError`] naming the offending component: one of the
    /// four caches, the main-memory channel/geometry, or an out-of-range
    /// fault probability.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.cpu_l1.validate("cpu_l1")?;
        self.llc.validate("llc")?;
        self.pim_l1.validate("pim_l1")?;
        self.scratch.validate("scratch")?;
        match self.dram {
            DramKind::Lpddr3 { channel_gbps, timing } => {
                Channel::validate_bandwidth(channel_gbps, "lpddr3 channel")?;
                timing.validate()?;
            }
            DramKind::Stacked(s) => s.validate()?,
        }
        if let Some(cf) = self.channel_faults {
            validate_prob(cf.drop_prob, "drop_prob")?;
            validate_prob(cf.dup_prob, "dup_prob")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_agree_with_table1() {
        let base = MemConfig::chromebook_like();
        assert!(!base.supports_pim());
        assert_eq!(base.cpu_l1.capacity_bytes, 64 * 1024);
        assert_eq!(base.llc.capacity_bytes, 2 * 1024 * 1024);

        let pim = MemConfig::pim_device();
        assert!(pim.supports_pim());
        match pim.dram {
            DramKind::Stacked(s) => {
                assert_eq!(s.vaults, 16);
                assert_eq!(s.internal_gbps, 256.0);
                assert_eq!(s.offchip_gbps, 32.0);
            }
            DramKind::Lpddr3 { .. } => panic!("pim_device must be stacked"),
        }
    }

    #[test]
    fn presets_validate_cleanly() {
        assert!(MemConfig::chromebook_like().validate().is_ok());
        assert!(MemConfig::pim_device().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_geometry_and_probabilities() {
        let mut cfg = MemConfig::chromebook_like();
        cfg.cpu_l1.associativity = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ZeroAssociativity { cache: "cpu_l1" })
        ));

        let mut cfg = MemConfig::chromebook_like();
        cfg.llc.capacity_bytes = 3 * 64; // 3 sets at 1-way: not a power of two
        cfg.llc.associativity = 1;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::NonPowerOfTwoSets { cache: "llc", sets: 3 })
        ));

        let mut cfg = MemConfig::pim_device();
        cfg.channel_faults =
            Some(ChannelFaultConfig { drop_prob: 1.5, dup_prob: 0.0, seed: 0 });
        assert!(cfg.validate().is_err());
        cfg.channel_faults =
            Some(ChannelFaultConfig { drop_prob: 0.01, dup_prob: 0.01, seed: 0 });
        assert!(cfg.validate().is_ok());
    }
}
