//! Top-level memory-system configuration.

use crate::cache::CacheConfig;
use crate::dram::DramConfig;
use crate::stacked::StackedConfig;
use crate::Ps;

/// Which main-memory technology backs the system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DramKind {
    /// Conventional off-chip LPDDR3 (Table 1's baseline memory).
    Lpddr3 {
        /// Channel bandwidth in GB/s (LPDDR3-1600 x64 ≈ 12.8 GB/s).
        channel_gbps: f64,
        /// Bank timing.
        timing: DramConfig,
    },
    /// 3D-stacked memory with a logic layer (enables PIM).
    Stacked(StackedConfig),
}

/// Full memory-system configuration: caches plus main memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Per-core CPU L1.
    pub cpu_l1: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// PIM-core private L1 (only used on stacked systems).
    pub pim_l1: CacheConfig,
    /// PIM-accelerator scratch buffer (32 kB in §9).
    pub scratch: CacheConfig,
    /// L1 hit latency, in ps.
    pub l1_hit_ps: Ps,
    /// LLC hit latency (beyond L1), in ps.
    pub llc_hit_ps: Ps,
    /// Memory-controller queueing/processing overhead per request, in ps.
    pub memctrl_ps: Ps,
    /// Main-memory technology.
    pub dram: DramKind,
}

impl MemConfig {
    /// The paper's characterization platform: SoC caches in front of LPDDR3.
    pub fn chromebook_like() -> Self {
        Self {
            cpu_l1: CacheConfig::soc_l1(),
            llc: CacheConfig::soc_llc(),
            pim_l1: CacheConfig::pim_l1(),
            scratch: CacheConfig::pim_l1(),
            l1_hit_ps: 1_500,
            llc_hit_ps: 10_000,
            memctrl_ps: 10_000,
            dram: DramKind::Lpddr3 { channel_gbps: 12.8, timing: DramConfig::lpddr3() },
        }
    }

    /// The paper's PIM platform: same SoC, 3D-stacked memory (Table 1).
    pub fn pim_device() -> Self {
        Self {
            dram: DramKind::Stacked(StackedConfig::hmc_like()),
            ..Self::chromebook_like()
        }
    }

    /// Whether this system has a logic layer PIM can live in.
    pub fn supports_pim(&self) -> bool {
        matches!(self.dram, DramKind::Stacked(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_agree_with_table1() {
        let base = MemConfig::chromebook_like();
        assert!(!base.supports_pim());
        assert_eq!(base.cpu_l1.capacity_bytes, 64 * 1024);
        assert_eq!(base.llc.capacity_bytes, 2 * 1024 * 1024);

        let pim = MemConfig::pim_device();
        assert!(pim.supports_pim());
        match pim.dram {
            DramKind::Stacked(s) => {
                assert_eq!(s.vaults, 16);
                assert_eq!(s.internal_gbps, 256.0);
                assert_eq!(s.offchip_gbps, 32.0);
            }
            DramKind::Lpddr3 { .. } => panic!("pim_device must be stacked"),
        }
    }
}
