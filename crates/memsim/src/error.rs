//! Typed configuration validation errors.
//!
//! Every memsim constructor validates its geometry and returns a
//! [`ConfigError`] instead of panicking, so an invalid configuration in a
//! sweep is a reportable job failure rather than a process abort. The
//! error folds into [`pim_faults::DmpimError::InvalidConfig`] via `From`,
//! which is what the offload layer and the sweep harness propagate.

use std::fmt;

use pim_faults::DmpimError;

/// Why a memory-system configuration was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A cache was configured with zero ways.
    ZeroAssociativity {
        /// Which cache (e.g. `cpu_l1`, `llc`).
        cache: &'static str,
    },
    /// A cache geometry yields a set count that is not a power of two
    /// (the index function requires one).
    NonPowerOfTwoSets {
        /// Which cache.
        cache: &'static str,
        /// The offending set count.
        sets: usize,
    },
    /// A bandwidth that must be positive was zero or negative.
    NonPositiveBandwidth {
        /// Which link (e.g. `channel`, `internal`, `off-chip`).
        what: &'static str,
        /// The offending value in GB/s.
        gb_per_s: f64,
    },
    /// A stacked memory was configured with zero vaults.
    ZeroVaults,
    /// A DRAM device was configured with zero banks.
    ZeroBanks,
    /// A DRAM device was configured with a zero-byte row buffer.
    ZeroRowBytes,
    /// A fault probability outside `[0, 1]`.
    InvalidProbability {
        /// Which probability (e.g. `drop_prob`).
        what: &'static str,
        /// The offending value.
        p: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroAssociativity { cache } => {
                write!(f, "{cache}: associativity must be nonzero")
            }
            ConfigError::NonPowerOfTwoSets { cache, sets } => {
                write!(f, "{cache}: set count must be a power of two, got {sets}")
            }
            ConfigError::NonPositiveBandwidth { what, gb_per_s } => {
                write!(f, "{what}: bandwidth must be positive, got {gb_per_s} GB/s")
            }
            ConfigError::ZeroVaults => write!(f, "stacked memory needs at least one vault"),
            ConfigError::ZeroBanks => write!(f, "DRAM needs at least one bank"),
            ConfigError::ZeroRowBytes => write!(f, "DRAM row buffer must be nonzero"),
            ConfigError::InvalidProbability { what, p } => {
                write!(f, "{what}: probability must be in [0, 1], got {p}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for DmpimError {
    fn from(e: ConfigError) -> Self {
        DmpimError::InvalidConfig { what: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_into_dmpim_error() {
        let e: DmpimError = ConfigError::ZeroVaults.into();
        assert!(matches!(e, DmpimError::InvalidConfig { .. }));
        assert_eq!(e.label(), "invalid-config");
        assert!(e.to_string().contains("vault"));
    }

    #[test]
    fn messages_name_the_offender() {
        let e = ConfigError::NonPowerOfTwoSets { cache: "llc", sets: 3 };
        assert!(e.to_string().contains("llc"));
        assert!(e.to_string().contains('3'));
    }
}
