//! Set-associative write-back, write-allocate cache model.

use crate::access::{AccessKind, LINE_BYTES};
use crate::error::ConfigError;

/// Geometry of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a multiple of `associativity * 64`.
    pub capacity_bytes: u64,
    /// Number of ways per set.
    pub associativity: usize,
}

impl CacheConfig {
    /// 64 kB, 4-way: the paper's per-core L1 (Table 1).
    pub fn soc_l1() -> Self {
        Self { capacity_bytes: 64 * 1024, associativity: 4 }
    }

    /// 2 MB, 8-way: the paper's shared LLC (Table 1).
    pub fn soc_llc() -> Self {
        Self { capacity_bytes: 2 * 1024 * 1024, associativity: 8 }
    }

    /// 32 kB, 4-way: the paper's PIM-core private L1 (Table 1 / §9).
    pub fn pim_l1() -> Self {
        Self { capacity_bytes: 32 * 1024, associativity: 4 }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / LINE_BYTES) as usize / self.associativity
    }

    /// Validate the geometry, naming the cache in any error.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroAssociativity`] for zero ways,
    /// [`ConfigError::NonPowerOfTwoSets`] when the implied set count is
    /// not a power of two (the index function needs one).
    pub fn validate(&self, name: &'static str) -> Result<(), ConfigError> {
        if self.associativity == 0 {
            return Err(ConfigError::ZeroAssociativity { cache: name });
        }
        let sets = self.sets();
        if !sets.is_power_of_two() {
            return Err(ConfigError::NonPowerOfTwoSets { cache: name, sets });
        }
        Ok(())
    }
}

/// Result of a single line-granularity cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Line-aligned address of a dirty line evicted to make room, if any.
    pub writeback: Option<u64>,
}

/// Hit/miss/traffic counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that found the line.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty evictions (each moves one line toward memory).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero when no accesses have occurred.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// The model tracks tags only — data always lives with the workload — so a
/// 2 MB LLC costs a few hundred kB of simulator state.
///
/// ```
/// use pim_memsim::{Cache, CacheConfig, AccessKind};
/// let mut c = Cache::new(CacheConfig::soc_l1()).unwrap();
/// assert!(!c.access(0x40, AccessKind::Read).hit);
/// assert!(c.access(0x40, AccessKind::Read).hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Way>,
    ways: usize,
    set_mask: u64,
    set_shift: u32,
    tick: u64,
    stats: CacheStats,
    /// Memoized `(line, absolute way index)` of the most recent access.
    /// Invariant: when `Some`, that way still holds exactly that line —
    /// every access rewrites the memo and every flush clears it, so the
    /// memo can never point at an evicted or stale way.
    last_hit: Option<(u64, u32)>,
    /// When false, the repeat-hit memo is ignored and every access walks
    /// the set. Used by the differential harness to prove the fast path
    /// is bit-identical to the walk.
    fast: bool,
}

impl Cache {
    /// Create an empty cache.
    ///
    /// # Errors
    ///
    /// Rejects geometries that fail [`CacheConfig::validate`]: zero
    /// associativity or a non-power-of-two set count.
    pub fn new(config: CacheConfig) -> Result<Self, ConfigError> {
        config.validate("cache")?;
        Ok(Self::build(config))
    }

    /// Build without validating. Callers must have validated `config`
    /// (directly or as part of a whole-system `MemConfig::validate`);
    /// an invalid geometry here would corrupt the set index math.
    pub(crate) fn build(config: CacheConfig) -> Self {
        let sets = config.sets();
        Self {
            config,
            sets: vec![Way::default(); sets * config.associativity],
            ways: config.associativity,
            set_mask: sets as u64 - 1,
            set_shift: (sets as u64 - 1).count_ones(),
            tick: 0,
            stats: CacheStats::default(),
            last_hit: None,
            fast: true,
        }
    }

    /// Enable or disable the repeat-hit fast path. Disabling also drops
    /// the memo so a later re-enable starts cold.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast = on;
        if !on {
            self.last_hit = None;
        }
    }

    /// Apply the exact hit-path state transitions to a known-resident way:
    /// one tick, one access, one hit, MRU promotion, dirty on write.
    fn record_repeat_hit(&mut self, idx: usize, kind: AccessKind) {
        self.tick += 1;
        self.stats.accesses += 1;
        self.stats.hits += 1;
        let w = &mut self.sets[idx];
        w.lru = self.tick;
        if kind.is_write() {
            w.dirty = true;
        }
    }

    /// Line-coalescing entry point for [`crate::MemorySystem`]: if `addr`
    /// falls in the same line as the previous access, replay the hit
    /// without the set walk and return `true`. The caller must only use
    /// this when it can also reproduce the hit's latency/energy
    /// accounting (it knows the previous access hit this cache).
    pub(crate) fn coalesced_hit(&mut self, addr: u64, kind: AccessKind) -> bool {
        if !self.fast {
            return false;
        }
        match self.last_hit {
            Some((line, way)) if line == addr / LINE_BYTES => {
                self.record_repeat_hit(way as usize, kind);
                true
            }
            _ => false,
        }
    }

    /// Commit hit transitions for up to `n` consecutive lines starting at
    /// `first_line`, stopping at (and not mutating on) the first miss.
    /// Returns how many lines hit. Bit-identical to calling
    /// [`Self::try_hit_line`] in a loop: ticks advance one per hit, each
    /// way's `lru` gets its own tick value, and the memo ends on the last
    /// hit line — the counters are simply added in one batch at the end.
    pub(crate) fn try_hit_run(&mut self, first_line: u64, n: u64, kind: AccessKind) -> u64 {
        let write = kind.is_write();
        let mut tick = self.tick;
        let mut last_hit = self.last_hit;
        let mut committed = 0u64;
        while committed < n {
            let line = first_line + committed;
            let idx = match last_hit {
                // The memo can only match on the first line of a run
                // (lines strictly increase), exactly as in the scalar
                // walk, where each hit rewrites the memo to its own line.
                Some((l, way)) if self.fast && l == line => way as usize,
                _ => {
                    let set = (line & self.set_mask) as usize;
                    let tag = line >> self.set_shift;
                    let base = set * self.ways;
                    match self.sets[base..base + self.ways]
                        .iter()
                        .position(|w| w.valid && w.tag == tag)
                    {
                        Some(i) => base + i,
                        None => break,
                    }
                }
            };
            tick += 1;
            let w = &mut self.sets[idx];
            w.lru = tick;
            if write {
                w.dirty = true;
            }
            last_hit = Some((line, idx as u32));
            committed += 1;
        }
        if committed > 0 {
            self.tick = tick;
            self.stats.accesses += committed;
            self.stats.hits += committed;
            self.last_hit = last_hit;
        }
        committed
    }

    /// Commit-if-hit for a single line: if the line is resident, apply
    /// the exact hit-path state transitions ([`Self::access`]'s hit arm:
    /// tick, access, hit, MRU, dirty-on-write, memo) and return `true`.
    /// On a miss *nothing* is mutated and `false` is returned, so the
    /// caller can replay the miss through [`Self::access`] with
    /// bit-identical results.
    ///
    /// Kept as the single-line reference implementation the
    /// `try_hit_run` differential test replays; production code takes
    /// the batched path.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub(crate) fn try_hit_line(&mut self, line: u64, kind: AccessKind) -> bool {
        if self.fast {
            if let Some((l, way)) = self.last_hit {
                if l == line {
                    self.record_repeat_hit(way as usize, kind);
                    return true;
                }
            }
        }
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let base = set * self.ways;
        let hit = self.sets[base..base + self.ways]
            .iter()
            .position(|w| w.valid && w.tag == tag);
        match hit {
            Some(i) => {
                self.tick += 1;
                self.stats.accesses += 1;
                self.stats.hits += 1;
                let w = &mut self.sets[base + i];
                w.lru = self.tick;
                if kind.is_write() {
                    w.dirty = true;
                }
                self.last_hit = Some((line, (base + i) as u32));
                true
            }
            None => false,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Counters accumulated since construction (or the last [`Self::reset_stats`]).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zero the counters without disturbing cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Access one line. `addr` may be unaligned; only its line matters.
    ///
    /// A miss allocates the line (write-allocate) and may evict the LRU way;
    /// if the victim is dirty its address is reported so the caller can send
    /// the writeback toward memory.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> CacheOutcome {
        let line = addr / LINE_BYTES;
        if self.fast {
            if let Some((l, way)) = self.last_hit {
                if l == line {
                    self.record_repeat_hit(way as usize, kind);
                    return CacheOutcome { hit: true, writeback: None };
                }
            }
        }
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        self.tick += 1;
        self.stats.accesses += 1;

        let base = set * self.ways;
        let ways = &mut self.sets[base..base + self.ways];

        if let Some(i) = ways.iter().position(|w| w.valid && w.tag == tag) {
            let way = &mut ways[i];
            way.lru = self.tick;
            if kind.is_write() {
                way.dirty = true;
            }
            self.stats.hits += 1;
            self.last_hit = Some((line, (base + i) as u32));
            return CacheOutcome { hit: true, writeback: None };
        }

        self.stats.misses += 1;
        // Victim: an invalid way if one exists, else true LRU.
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.lru + 1 } else { 0 })
            .map(|(i, _)| i)
            .unwrap_or(0); // ways is never empty: associativity is validated nonzero
        let w = &mut ways[victim];
        let writeback = if w.valid && w.dirty {
            self.stats.writebacks += 1;
            let victim_line = (w.tag << self.set_shift) | set as u64;
            Some(victim_line * LINE_BYTES)
        } else {
            None
        };
        *w = Way { tag, valid: true, dirty: kind.is_write(), lru: self.tick };
        self.last_hit = Some((line, (base + victim) as u32));
        CacheOutcome { hit: false, writeback }
    }

    /// Whether the line containing `addr` is currently resident.
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr / LINE_BYTES;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let base = set * self.ways;
        self.sets[base..base + self.ways]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Invalidate every line, returning how many dirty lines were dropped.
    ///
    /// Used by the coherence model when an offload region begins and the PIM
    /// logic must observe the CPU's writes (dirty lines are flushed).
    pub fn flush_all(&mut self) -> u64 {
        self.last_hit = None;
        let mut dirty = 0;
        for w in &mut self.sets {
            if w.valid && w.dirty {
                dirty += 1;
            }
            w.valid = false;
            w.dirty = false;
        }
        dirty
    }

    /// Number of currently valid lines (mainly for tests/diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 8 lines, 2-way => 4 sets.
        Cache::new(CacheConfig { capacity_bytes: 8 * LINE_BYTES, associativity: 2 }).unwrap()
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, AccessKind::Read).hit);
        assert!(c.access(0, AccessKind::Read).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to set 0 (4 sets => stride 4 lines = 256 B).
        c.access(0, AccessKind::Read);
        c.access(256, AccessKind::Read);
        c.access(0, AccessKind::Read); // touch 0: 256 becomes LRU
        c.access(512, AccessKind::Read); // evicts 256
        assert!(c.contains(0));
        assert!(!c.contains(256));
        assert!(c.contains(512));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0, AccessKind::Write);
        c.access(256, AccessKind::Read);
        let out = c.access(512, AccessKind::Read); // evicts line 0 (dirty)
        assert_eq!(out.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0, AccessKind::Read);
        c.access(256, AccessKind::Read);
        let out = c.access(512, AccessKind::Read);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Write); // hit, now dirty
        c.access(256, AccessKind::Read);
        let out = c.access(512, AccessKind::Read);
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn flush_all_counts_dirty_lines() {
        let mut c = tiny();
        c.access(0, AccessKind::Write);
        c.access(64, AccessKind::Read);
        assert_eq!(c.flush_all(), 1);
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.contains(0));
    }

    #[test]
    fn repeat_hit_memo_is_bit_identical_to_full_walk() {
        // An LCG-driven stream with long same-line runs (the memo's target
        // pattern) must leave stats, outcomes, residency and LRU order
        // identical with the memo disabled.
        let mut fast = tiny();
        let mut slow = tiny();
        slow.set_fast_path(false);
        let mut state = 0x5EEDu64;
        let mut addr = 0u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if state >> 62 != 0 {
                addr = (state >> 32) % (64 * LINE_BYTES);
            }
            let kind = if state & 1 == 0 { AccessKind::Read } else { AccessKind::Write };
            let a = fast.access(addr, kind);
            let b = slow.access(addr, kind);
            assert_eq!((a.hit, a.writeback), (b.hit, b.writeback));
        }
        assert_eq!(fast.stats(), slow.stats());
        assert_eq!(fast.resident_lines(), slow.resident_lines());
        // Flushing both must report the same dirty count (same dirty bits
        // and the same victims were chosen throughout).
        assert_eq!(fast.flush_all(), slow.flush_all());
    }

    #[test]
    fn try_hit_run_matches_per_line_loop() {
        // Seed both caches with an identical mix of resident lines, then
        // replay strided runs (some fully resident, some hitting holes)
        // through the batch and the per-line reference. All state —
        // stats, ticks (via later LRU decisions), memo, dirty bits —
        // must stay identical.
        let build = || {
            let mut c = tiny();
            for i in [0u64, 1, 2, 3, 5, 6, 9] {
                c.access(i * LINE_BYTES, AccessKind::Read);
            }
            c
        };
        let mut batch = build();
        let mut scalar = build();
        for (first, n, kind) in [
            (0u64, 4u64, AccessKind::Read),
            (2, 3, AccessKind::Write),   // stops at hole (line 4)
            (4, 2, AccessKind::Read),    // immediate miss: no mutation
            (5, 2, AccessKind::Write),
            (9, 1, AccessKind::Read),
            (0, 11, AccessKind::Read),   // long run across holes
        ] {
            let a = batch.try_hit_run(first, n, kind);
            let mut b = 0;
            while b < n && scalar.try_hit_line(first + b, kind) {
                b += 1;
            }
            assert_eq!(a, b, "run ({first},{n})");
            assert_eq!(batch.stats(), scalar.stats());
            assert_eq!(batch.last_hit, scalar.last_hit);
            assert_eq!(batch.tick, scalar.tick);
        }
        // Dirty bits and LRU order must also agree: flush both and force
        // identical evictions afterwards.
        assert_eq!(batch.flush_all(), scalar.flush_all());
    }

    #[test]
    fn memo_is_invalidated_by_flush() {
        let mut c = tiny();
        c.access(0, AccessKind::Write);
        c.access(0, AccessKind::Write); // memoized repeat hit
        assert_eq!(c.stats().hits, 1);
        c.flush_all();
        // After the flush the line is gone: the memo must not resurrect it.
        assert!(!c.access(0, AccessKind::Read).hit);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = tiny();
        for i in 0..16 {
            c.access(i * LINE_BYTES, AccessKind::Read);
        }
        assert_eq!(c.resident_lines(), 8);
    }

    #[test]
    fn paper_geometries_construct() {
        assert_eq!(Cache::new(CacheConfig::soc_l1()).unwrap().config().sets(), 256);
        assert_eq!(Cache::new(CacheConfig::soc_llc()).unwrap().config().sets(), 4096);
        assert_eq!(Cache::new(CacheConfig::pim_l1()).unwrap().config().sets(), 128);
    }

    #[test]
    fn invalid_geometries_are_typed_errors() {
        let zero_ways = CacheConfig { capacity_bytes: 8 * LINE_BYTES, associativity: 0 };
        assert!(matches!(
            Cache::new(zero_ways),
            Err(ConfigError::ZeroAssociativity { cache: "cache" })
        ));
        // 6 lines / 2 ways = 3 sets: not a power of two.
        let bad_sets = CacheConfig { capacity_bytes: 6 * LINE_BYTES, associativity: 2 };
        assert!(matches!(
            Cache::new(bad_sets),
            Err(ConfigError::NonPowerOfTwoSets { sets: 3, .. })
        ));
    }

    #[test]
    fn streaming_larger_than_cache_always_misses_after_warmup() {
        let mut c = tiny();
        // Two passes over 64 distinct lines: every access must miss.
        for _ in 0..2 {
            for i in 0..64u64 {
                c.access(i * LINE_BYTES, AccessKind::Read);
            }
        }
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 128);
    }
}
