//! Trace-driven memory-subsystem simulator.
//!
//! This crate models the memory side of a consumer-device SoC as described in
//! Table 1 of Boroumand et al., "Google Workloads for Consumer Devices:
//! Mitigating Data Movement Bottlenecks" (ASPLOS 2018):
//!
//! * set-associative write-back [`Cache`]s (L1, shared LLC, PIM-side L1),
//! * an LPDDR3-like baseline DRAM with banks, open rows, and an
//!   FR-FCFS-approximating scheduler window ([`dram`]),
//! * an HMC/HBM-like 3D-stacked memory with 16 vaults, a wide low-energy
//!   internal path, and a narrow off-chip channel ([`stacked`]),
//! * bandwidth-limited [`channel::Channel`]s with busy-until queueing, and
//! * a CPU↔PIM [`coherence`] cost model for offload boundaries.
//!
//! All time is kept in integer **picoseconds** so CPU (2 GHz), PIM core and
//! DRAM clock domains compose without rounding drift. The simulator is
//! *trace-driven*: workload kernels perform real computation and push their
//! loads/stores through [`MemorySystem::access`], which returns the latency
//! of the access and an [`Activity`] record that an energy model can price.
//!
//! # Example
//!
//! ```
//! use pim_memsim::{MemorySystem, MemConfig, AccessKind};
//!
//! let mut mem = MemorySystem::new(MemConfig::chromebook_like()).unwrap();
//! let out = mem.access(0x1000, 64, AccessKind::Read, 0);
//! assert!(out.latency_ps > 0);
//! let hit = mem.access(0x1000, 64, AccessKind::Read, out.latency_ps);
//! assert!(hit.latency_ps < out.latency_ps); // second access hits in L1
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod access;
pub mod cache;
pub mod channel;
pub mod coherence;
pub mod config;
pub mod dram;
pub mod error;
pub mod stacked;
pub mod system;

pub use access::{line_count, AccessKind, Activity, LINE_BYTES};
pub use cache::{Cache, CacheConfig, CacheStats};
pub use channel::{Channel, ChannelFaultStats};
pub use coherence::{CoherenceConfig, CoherenceModel, CoherenceStats};
pub use config::{DramKind, MemConfig};
pub use error::ConfigError;
pub use dram::{BankArray, DramConfig, DramStats, SchedulerPolicy};
pub use stacked::{StackedConfig, StackedMemory};
pub use system::{
    AccessOutcome, LatencyBreakdown, MemorySystem, Port, RowsOutcome, CPU_LINE_PS,
    PIM_L1_HIT_PS, PIM_LINE_PS, SCRATCH_HIT_PS,
};

// The fault-injection layer lives below the simulator so every crate in the
// workspace shares one error type and one notion of time.
pub use pim_faults::{ChannelFaultConfig, DmpimError, Ps};

/// Convert a frequency in GHz to a clock period in picoseconds.
///
/// ```
/// assert_eq!(pim_memsim::period_ps(2.0), 500);
/// ```
pub fn period_ps(ghz: f64) -> Ps {
    assert!(ghz > 0.0, "frequency must be positive");
    (1000.0 / ghz).round() as Ps
}
