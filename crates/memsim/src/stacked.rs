//! HMC/HBM-like 3D-stacked memory: vaults, TSV path, off-chip channel.

use pim_faults::ChannelFaultConfig;

use crate::access::AccessKind;
use crate::channel::{validate_prob, Channel, ChannelFaultStats};
use crate::dram::{BankArray, DramConfig, DramOutcome, DramStats};
use crate::error::ConfigError;
use crate::Ps;

/// Geometry and bandwidth of a 3D-stacked memory cube (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackedConfig {
    /// Number of vertical vaults in the cube.
    pub vaults: usize,
    /// Aggregate internal (logic-layer) bandwidth in GB/s.
    pub internal_gbps: f64,
    /// Off-chip channel bandwidth toward the SoC in GB/s.
    pub offchip_gbps: f64,
    /// Extra latency of crossing the off-chip channel (SerDes + controller),
    /// in ps.
    pub offchip_extra_ps: Ps,
    /// Per-vault DRAM timing.
    pub vault: DramConfig,
}

impl StackedConfig {
    /// The paper's configuration: 2 GB cube, 16 vaults, 256 GB/s internal,
    /// 32 GB/s off-chip channel.
    pub fn hmc_like() -> Self {
        Self {
            vaults: 16,
            internal_gbps: 256.0,
            offchip_gbps: 32.0,
            offchip_extra_ps: 20_000,
            vault: DramConfig::stacked_vault(),
        }
    }

    /// Validate the cube geometry, bandwidths, and per-vault timing.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroVaults`], a non-positive internal or off-chip
    /// bandwidth, or an invalid per-vault [`DramConfig`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.vaults == 0 {
            return Err(ConfigError::ZeroVaults);
        }
        Channel::validate_bandwidth(self.internal_gbps, "internal")?;
        Channel::validate_bandwidth(self.offchip_gbps, "off-chip")?;
        self.vault.validate()
    }
}

/// The result of one stacked-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackedOutcome {
    /// Total latency including channel time, in ps.
    pub latency_ps: Ps,
    /// Whether the vault access was a row hit.
    pub row_hit: bool,
    /// Which vault served the request.
    pub vault: usize,
}

/// A 3D-stacked DRAM cube with per-vault bank arrays.
///
/// Two ports exist:
///
/// * [`StackedMemory::access_offchip`] — the SoC path: request crosses the
///   32 GB/s off-chip channel, then the internal path, then a vault.
/// * [`StackedMemory::access_internal`] — the PIM path: logic-layer compute
///   reaches its vault over the TSVs only, with 8x the bandwidth and no
///   off-chip serialization (the source of PIM's data-movement savings).
#[derive(Debug, Clone)]
pub struct StackedMemory {
    config: StackedConfig,
    vaults: Vec<BankArray>,
    vault_channels: Vec<Channel>,
    offchip: Channel,
}

impl StackedMemory {
    /// Create a cube with all rows closed and channels idle.
    ///
    /// # Errors
    ///
    /// Rejects geometries that fail [`StackedConfig::validate`]: zero
    /// vaults, non-positive bandwidths, or degenerate vault DRAM.
    pub fn new(config: StackedConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self::build(config))
    }

    /// Build without validating. Callers must have validated `config`;
    /// zero vaults would divide the internal bandwidth by zero.
    pub(crate) fn build(config: StackedConfig) -> Self {
        let per_vault = config.internal_gbps / config.vaults as f64;
        Self {
            vaults: (0..config.vaults).map(|_| BankArray::build(config.vault)).collect(),
            vault_channels: (0..config.vaults).map(|_| Channel::build(per_vault)).collect(),
            offchip: Channel::build(config.offchip_gbps),
            config,
        }
    }

    /// Create a cube whose channels drop/duplicate transactions per `cf`.
    ///
    /// Each vault channel gets its own seed derived from `cf.seed` so fault
    /// draws stay independent across vaults but deterministic per cube.
    ///
    /// # Errors
    ///
    /// Rejects an invalid geometry (see [`StackedMemory::new`]) or a
    /// fault probability outside `[0, 1]`.
    pub fn with_faults(
        config: StackedConfig,
        cf: ChannelFaultConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        validate_prob(cf.drop_prob, "drop_prob")?;
        validate_prob(cf.dup_prob, "dup_prob")?;
        Ok(Self::build_with_faults(config, cf))
    }

    /// Build without validating; callers must have validated geometry and
    /// probabilities.
    pub(crate) fn build_with_faults(config: StackedConfig, cf: ChannelFaultConfig) -> Self {
        let mut cube = Self::build(config);
        let per_vault = config.internal_gbps / config.vaults as f64;
        cube.vault_channels = (0..config.vaults)
            .map(|v| {
                Channel::build_with_faults(
                    per_vault,
                    ChannelFaultConfig { seed: cf.seed.wrapping_add(1 + v as u64), ..cf },
                )
            })
            .collect();
        cube.offchip = Channel::build_with_faults(config.offchip_gbps, cf);
        cube
    }

    /// The configuration this cube was built with.
    pub fn config(&self) -> &StackedConfig {
        &self.config
    }

    /// Which vault serves `addr`.
    ///
    /// Interleaves vaults at row granularity: consecutive rows round-robin
    /// across vaults, the HMC default for streaming parallelism.
    pub fn vault_of(&self, addr: u64) -> usize {
        ((addr / self.config.vault.row_bytes) % self.config.vaults as u64) as usize
    }

    fn vault_access(&mut self, addr: u64, bytes: u64, kind: AccessKind, now: Ps) -> (DramOutcome, Ps, usize) {
        let v = self.vault_of(addr);
        let out = self.vaults[v].access(addr, bytes, kind);
        let chan = self.vault_channels[v].transfer(bytes, now);
        (out, chan, v)
    }

    /// Access from the SoC over the off-chip channel.
    pub fn access_offchip(&mut self, addr: u64, bytes: u64, kind: AccessKind, now: Ps) -> StackedOutcome {
        let off = self.offchip.transfer(bytes, now) + self.config.offchip_extra_ps;
        let (out, chan, v) = self.vault_access(addr, bytes, kind, now + off);
        StackedOutcome { latency_ps: off + chan + out.latency_ps, row_hit: out.row_hit, vault: v }
    }

    /// Access from PIM logic in the logic layer (internal path only).
    pub fn access_internal(&mut self, addr: u64, bytes: u64, kind: AccessKind, now: Ps) -> StackedOutcome {
        let (out, chan, v) = self.vault_access(addr, bytes, kind, now);
        StackedOutcome { latency_ps: chan + out.latency_ps, row_hit: out.row_hit, vault: v }
    }

    /// Aggregate row/traffic counters across all vaults.
    pub fn stats(&self) -> DramStats {
        let mut total = DramStats::default();
        for v in &self.vaults {
            total.merge(&v.stats());
        }
        total
    }

    /// Bytes that have crossed the off-chip channel.
    pub fn offchip_bytes(&self) -> u64 {
        self.offchip.bytes_moved()
    }

    /// Aggregate dropped/duplicated transaction counters across all channels.
    pub fn fault_stats(&self) -> ChannelFaultStats {
        let mut total = self.offchip.fault_stats();
        for ch in &self.vault_channels {
            let s = ch.fault_stats();
            total.dropped += s.dropped;
            total.duplicated += s.duplicated;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_cubes_are_typed_errors() {
        assert!(matches!(
            StackedMemory::new(StackedConfig { vaults: 0, ..StackedConfig::hmc_like() }),
            Err(ConfigError::ZeroVaults)
        ));
        assert!(matches!(
            StackedMemory::new(StackedConfig { internal_gbps: 0.0, ..StackedConfig::hmc_like() }),
            Err(ConfigError::NonPositiveBandwidth { what: "internal", .. })
        ));
        let cf = ChannelFaultConfig { drop_prob: 1.5, dup_prob: 0.0, seed: 1 };
        assert!(matches!(
            StackedMemory::with_faults(StackedConfig::hmc_like(), cf),
            Err(ConfigError::InvalidProbability { what: "drop_prob", .. })
        ));
    }

    #[test]
    fn internal_path_is_faster_than_offchip() {
        let mut m = StackedMemory::new(StackedConfig::hmc_like()).unwrap();
        let off = m.access_offchip(0, 64, AccessKind::Read, 0);
        let mut m2 = StackedMemory::new(StackedConfig::hmc_like()).unwrap();
        let int = m2.access_internal(0, 64, AccessKind::Read, 0);
        assert!(int.latency_ps < off.latency_ps);
    }

    #[test]
    fn rows_interleave_across_vaults() {
        let m = StackedMemory::new(StackedConfig::hmc_like()).unwrap();
        let row = m.config().vault.row_bytes;
        assert_eq!(m.vault_of(0), 0);
        assert_eq!(m.vault_of(row), 1);
        assert_eq!(m.vault_of(row * 16), 0);
    }

    #[test]
    fn offchip_traffic_counted_only_on_offchip_port() {
        let mut m = StackedMemory::new(StackedConfig::hmc_like()).unwrap();
        m.access_internal(0, 64, AccessKind::Read, 0);
        assert_eq!(m.offchip_bytes(), 0);
        m.access_offchip(0, 64, AccessKind::Read, 0);
        assert_eq!(m.offchip_bytes(), 64);
    }

    #[test]
    fn vault_stats_aggregate() {
        let mut m = StackedMemory::new(StackedConfig::hmc_like()).unwrap();
        let row = m.config().vault.row_bytes;
        for v in 0..4u64 {
            m.access_internal(v * row, 64, AccessKind::Write, 0);
        }
        let s = m.stats();
        assert_eq!(s.write_bytes, 4 * 64);
        assert_eq!(s.row_misses, 4);
    }

    #[test]
    fn faulty_cube_counts_link_faults_deterministically() {
        let cf = ChannelFaultConfig { drop_prob: 0.2, dup_prob: 0.1, seed: 11 };
        let mut a = StackedMemory::with_faults(StackedConfig::hmc_like(), cf).unwrap();
        let mut b = StackedMemory::with_faults(StackedConfig::hmc_like(), cf).unwrap();
        let row = a.config().vault.row_bytes;
        for i in 0..200u64 {
            let la = a.access_internal(i * row, 64, AccessKind::Read, 0).latency_ps;
            let lb = b.access_internal(i * row, 64, AccessKind::Read, 0).latency_ps;
            assert_eq!(la, lb);
        }
        assert_eq!(a.fault_stats(), b.fault_stats());
        assert!(a.fault_stats().dropped > 0);
    }

    #[test]
    fn parallel_vaults_beat_one_vault_under_load() {
        // Stream to 16 different vaults vs 16 accesses to one vault:
        // the former should finish sooner because vault channels are parallel.
        let cfg = StackedConfig::hmc_like();
        let row = cfg.vault.row_bytes;

        let mut spread = StackedMemory::new(cfg).unwrap();
        let mut spread_done = 0;
        for v in 0..16u64 {
            let out = spread.access_internal(v * row, 4096, AccessKind::Read, 0);
            spread_done = spread_done.max(out.latency_ps);
        }

        let mut single = StackedMemory::new(cfg).unwrap();
        let mut single_done = 0;
        for i in 0..16u64 {
            let out = single.access_internal(i * row * 16, 4096, AccessKind::Read, 0);
            single_done = single_done.max(out.latency_ps);
        }
        assert!(spread_done < single_done);
    }
}
