//! Access primitives shared by every level of the memory model.

/// Cache-line size used throughout the model, in bytes.
///
/// The paper's Chromebook platform (Intel Celeron N3060) and essentially all
/// mobile SoCs use 64-byte lines.
pub const LINE_BYTES: u64 = 64;

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load: data moves from memory toward the compute unit.
    Read,
    /// A store: data moves from the compute unit toward memory.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// Aggregate activity caused by one or more accesses.
///
/// An [`Activity`] is the currency between the memory model and the energy
/// model: every counter here corresponds to a component of the paper's
/// energy breakdown (CPU, L1, LLC, interconnect, memory controller, DRAM —
/// Figure 2). Activities are cheap to add together, so callers can aggregate
/// them per function tag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Activity {
    /// Lookups performed in a private L1 cache (CPU- or PIM-side).
    pub l1_accesses: u64,
    /// Lookups performed in the shared last-level cache.
    pub llc_accesses: u64,
    /// Requests that reached a memory controller.
    pub memctrl_requests: u64,
    /// Bytes read from DRAM arrays.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM arrays (including cache writebacks).
    pub dram_write_bytes: u64,
    /// Bytes that crossed the off-chip channel (SoC <-> memory).
    pub offchip_bytes: u64,
    /// Bytes that crossed only the in-stack (TSV) path of 3D-stacked memory.
    pub internal_bytes: u64,
    /// DRAM accesses that hit an open row.
    pub row_hits: u64,
    /// DRAM accesses that required activating a new row.
    pub row_misses: u64,
    /// Accesses served from a PIM accelerator's scratch buffer.
    pub scratch_accesses: u64,
}

impl Activity {
    /// An empty activity record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes touched in DRAM arrays.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Accumulate another record into this one.
    pub fn merge(&mut self, other: &Activity) {
        self.l1_accesses += other.l1_accesses;
        self.llc_accesses += other.llc_accesses;
        self.memctrl_requests += other.memctrl_requests;
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.offchip_bytes += other.offchip_bytes;
        self.internal_bytes += other.internal_bytes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.scratch_accesses += other.scratch_accesses;
    }
}

impl core::ops::AddAssign for Activity {
    fn add_assign(&mut self, rhs: Self) {
        self.merge(&rhs);
    }
}

/// Iterator over the cache lines touched by a `[addr, addr+bytes)` access.
///
/// Yields the line-aligned address of every line the access overlaps. Used by
/// every level of the hierarchy to split ranged (streaming) accesses.
///
/// ```
/// use pim_memsim::access::lines_of;
/// let lines: Vec<u64> = lines_of(60, 8).collect(); // straddles a boundary
/// assert_eq!(lines, vec![0, 64]);
/// ```
pub fn lines_of(addr: u64, bytes: u64) -> impl Iterator<Item = u64> {
    let first = addr / LINE_BYTES;
    let last = if bytes == 0 {
        first
    } else {
        (addr + bytes - 1) / LINE_BYTES
    };
    (first..=last).map(|l| l * LINE_BYTES)
}

/// Number of cache lines touched by a `[addr, addr+bytes)` access.
pub fn line_count(addr: u64, bytes: u64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    (addr + bytes - 1) / LINE_BYTES - addr / LINE_BYTES + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_of_single_line() {
        assert_eq!(lines_of(0, 1).collect::<Vec<_>>(), vec![0]);
        assert_eq!(lines_of(63, 1).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn lines_of_straddle() {
        assert_eq!(lines_of(63, 2).collect::<Vec<_>>(), vec![0, 64]);
    }

    #[test]
    fn lines_of_large_range() {
        assert_eq!(line_count(0, 4096), 64);
        assert_eq!(lines_of(0, 4096).count(), 64);
    }

    #[test]
    fn line_count_zero_bytes() {
        assert_eq!(line_count(100, 0), 0);
    }

    #[test]
    fn line_count_unaligned() {
        // 32..96 touches lines 0 and 64.
        assert_eq!(line_count(32, 64), 2);
    }

    #[test]
    fn activity_merge_adds_all_fields() {
        let mut a = Activity::new();
        let b = Activity {
            l1_accesses: 1,
            llc_accesses: 2,
            memctrl_requests: 3,
            dram_read_bytes: 4,
            dram_write_bytes: 5,
            offchip_bytes: 6,
            internal_bytes: 7,
            row_hits: 8,
            row_misses: 9,
            scratch_accesses: 10,
        };
        a.merge(&b);
        a += b;
        assert_eq!(a.l1_accesses, 2);
        assert_eq!(a.dram_bytes(), 18);
        assert_eq!(a.scratch_accesses, 20);
    }

    #[test]
    fn access_kind_is_write() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }
}
