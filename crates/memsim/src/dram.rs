//! DRAM bank/row model with an FR-FCFS-approximating scheduler window.

use crate::access::AccessKind;
use crate::error::ConfigError;
use crate::Ps;

/// Memory-controller scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// First-ready, first-come-first-served (Table 1's baseline scheduler).
    ///
    /// Approximated by letting each bank keep a small window of recently
    /// open rows: a request to any row in the window counts as a row hit,
    /// modeling the scheduler's ability to reorder row-hitting requests
    /// ahead of conflicting ones.
    FrFcfs {
        /// Reorder-window depth in rows per bank (4 is a typical queue's
        /// worth of exploitable locality).
        window: usize,
    },
    /// Strict in-order service; exactly one open row per bank.
    Fcfs,
}

impl Default for SchedulerPolicy {
    fn default() -> Self {
        SchedulerPolicy::FrFcfs { window: 4 }
    }
}

/// Timing/geometry of one bank array (one LPDDR3 device or one vault).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of banks.
    pub banks: usize,
    /// Row (page) size per bank, in bytes.
    pub row_bytes: u64,
    /// Latency of a column access to an open row (tCL), in ps.
    pub row_hit_ps: Ps,
    /// Additional latency to close + activate a row (tRP + tRCD), in ps.
    pub row_miss_extra_ps: Ps,
    /// Scheduling policy.
    pub policy: SchedulerPolicy,
}

impl DramConfig {
    /// LPDDR3-1600-like timing: 8 banks, 2 kB rows, ~15 ns CAS,
    /// ~30 ns extra for precharge + activate.
    pub fn lpddr3() -> Self {
        Self {
            banks: 8,
            row_bytes: 2048,
            row_hit_ps: 15_000,
            row_miss_extra_ps: 30_000,
            policy: SchedulerPolicy::default(),
        }
    }

    /// One vault of an HMC/HBM-like stack: shorter wires, lower latency.
    pub fn stacked_vault() -> Self {
        Self {
            banks: 8,
            row_bytes: 2048,
            row_hit_ps: 10_000,
            row_miss_extra_ps: 20_000,
            policy: SchedulerPolicy::default(),
        }
    }

    /// Validate the geometry.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroBanks`] or [`ConfigError::ZeroRowBytes`] for a
    /// degenerate device (the address mapping divides by both).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.banks == 0 {
            return Err(ConfigError::ZeroBanks);
        }
        if self.row_bytes == 0 {
            return Err(ConfigError::ZeroRowBytes);
        }
        Ok(())
    }
}

/// Row-locality counters for a bank array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Accesses that hit an open (or window-resident) row.
    pub row_hits: u64,
    /// Accesses that required a row activation.
    pub row_misses: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Read accesses served.
    pub reads: u64,
    /// Write accesses served.
    pub writes: u64,
    /// Summed array latency of read accesses, in ps.
    pub read_latency_ps: Ps,
    /// Summed array latency of write accesses, in ps.
    pub write_latency_ps: Ps,
}

impl DramStats {
    /// Row-hit ratio in `[0, 1]`; zero before any access.
    pub fn row_hit_ratio(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Mean array latency of a read access, in ps (zero before any read).
    pub fn avg_read_latency_ps(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_latency_ps as f64 / self.reads as f64
        }
    }

    /// Mean array latency of a write access, in ps (zero before any write).
    pub fn avg_write_latency_ps(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.write_latency_ps as f64 / self.writes as f64
        }
    }

    /// Fold `other`'s counters into `self` (used to aggregate vaults).
    pub fn merge(&mut self, other: &DramStats) {
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_latency_ps += other.read_latency_ps;
        self.write_latency_ps += other.write_latency_ps;
    }
}

#[derive(Debug, Clone)]
struct Bank {
    /// Most-recently-used first list of open/window rows.
    open_rows: Vec<u64>,
}

/// The outcome of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramOutcome {
    /// Whether the access hit in the row window.
    pub row_hit: bool,
    /// Array access latency (excludes any channel time), in ps.
    pub latency_ps: Ps,
}

/// A set of DRAM banks with open-row tracking.
///
/// Address mapping interleaves consecutive rows across banks
/// (`bank = (addr / row_bytes) % banks`), the standard mapping for
/// streaming-friendly row locality.
#[derive(Debug, Clone)]
pub struct BankArray {
    config: DramConfig,
    banks: Vec<Bank>,
    stats: DramStats,
}

impl BankArray {
    /// Create a bank array with all rows closed.
    ///
    /// # Errors
    ///
    /// Rejects geometries that fail [`DramConfig::validate`]: zero banks
    /// or a zero-byte row buffer.
    pub fn new(config: DramConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self::build(config))
    }

    /// Build without validating. Callers must have validated `config`;
    /// zero banks or rows would make the address mapping divide by zero.
    pub(crate) fn build(config: DramConfig) -> Self {
        Self {
            banks: vec![Bank { open_rows: Vec::new() }; config.banks],
            config,
            stats: DramStats::default(),
        }
    }

    /// The configuration this array was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Perform one access of `bytes` at `addr`.
    pub fn access(&mut self, addr: u64, bytes: u64, kind: AccessKind) -> DramOutcome {
        let global_row = addr / self.config.row_bytes;
        let bank_idx = (global_row % self.config.banks as u64) as usize;
        let row = global_row / self.config.banks as u64;
        let window = match self.config.policy {
            SchedulerPolicy::FrFcfs { window } => window.max(1),
            SchedulerPolicy::Fcfs => 1,
        };
        let bank = &mut self.banks[bank_idx];
        let hit = if let Some(pos) = bank.open_rows.iter().position(|&r| r == row) {
            // Move to front (most recently used).
            bank.open_rows.remove(pos);
            bank.open_rows.insert(0, row);
            true
        } else {
            bank.open_rows.insert(0, row);
            bank.open_rows.truncate(window);
            false
        };
        bank.open_rows.truncate(window);

        let latency_ps = if hit {
            self.stats.row_hits += 1;
            self.config.row_hit_ps
        } else {
            self.stats.row_misses += 1;
            self.config.row_hit_ps + self.config.row_miss_extra_ps
        };
        if kind.is_write() {
            self.stats.write_bytes += bytes;
            self.stats.writes += 1;
            self.stats.write_latency_ps += latency_ps;
        } else {
            self.stats.read_bytes += bytes;
            self.stats.reads += 1;
            self.stats.read_latency_ps += latency_ps;
        }
        DramOutcome { row_hit: hit, latency_ps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(policy: SchedulerPolicy) -> BankArray {
        BankArray::new(DramConfig { policy, ..DramConfig::lpddr3() }).unwrap()
    }

    #[test]
    fn degenerate_geometries_are_typed_errors() {
        assert!(matches!(
            BankArray::new(DramConfig { banks: 0, ..DramConfig::lpddr3() }),
            Err(ConfigError::ZeroBanks)
        ));
        assert!(matches!(
            BankArray::new(DramConfig { row_bytes: 0, ..DramConfig::lpddr3() }),
            Err(ConfigError::ZeroRowBytes)
        ));
    }

    #[test]
    fn sequential_stream_mostly_row_hits() {
        let mut a = arr(SchedulerPolicy::default());
        for line in 0..1024u64 {
            a.access(line * 64, 64, AccessKind::Read);
        }
        // 1024 lines = 64 kB = 32 rows => 32 misses, rest hits.
        assert_eq!(a.stats().row_misses, 32);
        assert_eq!(a.stats().row_hits, 992);
    }

    #[test]
    fn random_far_strides_mostly_miss_under_fcfs() {
        let mut a = arr(SchedulerPolicy::Fcfs);
        // Stride of exactly banks*row_bytes hits the same bank, new row each time.
        let stride = 8 * 2048;
        for i in 0..100u64 {
            a.access(i * stride, 64, AccessKind::Read);
        }
        assert_eq!(a.stats().row_hits, 0);
        assert_eq!(a.stats().row_misses, 100);
    }

    #[test]
    fn frfcfs_window_rescues_interleaved_rows() {
        // Alternate between two rows of the same bank: FCFS thrashes,
        // FR-FCFS's window keeps both effectively open.
        let stride = 8 * 2048; // same bank, next row
        let mut fcfs = arr(SchedulerPolicy::Fcfs);
        let mut fr = arr(SchedulerPolicy::FrFcfs { window: 4 });
        for i in 0..100 {
            let addr = (i % 2) * stride;
            fcfs.access(addr, 64, AccessKind::Read);
            fr.access(addr, 64, AccessKind::Read);
        }
        assert_eq!(fcfs.stats().row_hits, 0);
        assert_eq!(fr.stats().row_hits, 98); // all but the two cold misses
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut a = arr(SchedulerPolicy::default());
        let miss = a.access(0, 64, AccessKind::Read);
        let hit = a.access(64, 64, AccessKind::Read);
        assert!(!miss.row_hit && hit.row_hit);
        assert!(hit.latency_ps < miss.latency_ps);
    }

    #[test]
    fn read_write_bytes_tracked_separately() {
        let mut a = arr(SchedulerPolicy::default());
        a.access(0, 64, AccessKind::Read);
        a.access(64, 64, AccessKind::Write);
        let s = a.stats();
        assert_eq!(s.read_bytes, 64);
        assert_eq!(s.write_bytes, 64);
        assert!(s.row_hit_ratio() > 0.49 && s.row_hit_ratio() < 0.51);
    }

    #[test]
    fn per_kind_latency_surfaced() {
        let mut a = arr(SchedulerPolicy::default());
        let miss = a.access(0, 64, AccessKind::Read); // row miss
        let hit = a.access(64, 64, AccessKind::Write); // same row: hit
        let s = a.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.read_latency_ps, miss.latency_ps);
        assert_eq!(s.write_latency_ps, hit.latency_ps);
        assert!(s.avg_read_latency_ps() > s.avg_write_latency_ps());
    }

    #[test]
    fn merge_folds_all_counters() {
        let mut a = arr(SchedulerPolicy::default());
        a.access(0, 64, AccessKind::Read);
        let mut b = arr(SchedulerPolicy::default());
        b.access(0, 64, AccessKind::Write);
        let mut total = a.stats();
        total.merge(&b.stats());
        assert_eq!(total.reads, 1);
        assert_eq!(total.writes, 1);
        assert_eq!(total.read_bytes + total.write_bytes, 128);
        assert_eq!(total.row_misses, 2);
    }
}
