//! Chrome trace-event (a.k.a. Trace Event Format) exporter.
//!
//! The output loads in `chrome://tracing` and in Perfetto's legacy-trace
//! importer (<https://ui.perfetto.dev>). Layout choices:
//!
//! * one process (`pid` 0) named `dmpim`, one "thread" per [`TrackId`]
//!   (named via `thread_name` metadata events, ordered by registration),
//! * spans are `ph: "X"` complete events, markers are thread-scoped
//!   `ph: "i"` instants,
//! * timestamps are microseconds per the spec; the simulated picosecond
//!   clock is rendered as a fixed-point `us.6` decimal built from integer
//!   math, so the document is byte-deterministic.

use std::fmt::Write as _;

use crate::event::{ArgValue, EventKind, TraceEvent};
use crate::json::{write_escaped, write_f64};

/// Render `ps` as a microsecond timestamp with six fractional digits
/// (picosecond precision, integer math only).
fn write_us(out: &mut String, ps: u64) {
    let _ = write!(out, "{}.{:06}", ps / 1_000_000, ps % 1_000_000);
}

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(out, k);
        out.push(':');
        match v {
            ArgValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::F64(f) => write_f64(out, *f),
            ArgValue::Str(s) => write_escaped(out, s),
        }
    }
    out.push('}');
}

/// Serialize `events` over the named `tracks` into a Chrome trace JSON
/// document. Events are emitted in simulated-time order (stable for
/// equal timestamps, so insertion order breaks ties deterministically).
pub fn chrome_trace_json(tracks: &[String], events: &[TraceEvent], dropped: u64) -> String {
    // ~120 bytes per event line is a good preallocation estimate.
    let mut out = String::with_capacity(256 + tracks.len() * 96 + events.len() * 120);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"otherData\":{\"clockDomain\":\"simulated-ps\"");
    if dropped > 0 {
        let _ = write!(out, ",\"droppedEvents\":{dropped}");
    }
    out.push_str("},\"traceEvents\":[\n");

    let mut first = true;
    let mut push_sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };

    push_sep(&mut out);
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"dmpim\"}}",
    );
    for (tid, name) in tracks.iter().enumerate() {
        push_sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":"
        );
        write_escaped(&mut out, name);
        out.push_str("}}");
        // Sort index pins lane order to registration order in the viewer.
        push_sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"sort_index\":{tid}}}}}"
        );
    }

    // Order by simulated time; stable sort keeps insertion order for ties.
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| events[i].ts_ps);

    for i in order {
        let ev = &events[i];
        push_sep(&mut out);
        out.push_str("{\"name\":");
        write_escaped(&mut out, &ev.name);
        let _ = write!(out, ",\"pid\":0,\"tid\":{},\"ts\":", ev.track.index());
        write_us(&mut out, ev.ts_ps);
        match ev.kind {
            EventKind::Complete { dur_ps } => {
                out.push_str(",\"ph\":\"X\",\"dur\":");
                write_us(&mut out, dur_ps);
            }
            EventKind::Instant => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
        }
        if !ev.args.is_empty() {
            out.push_str(",\"args\":");
            write_args(&mut out, &ev.args);
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    #[test]
    fn timestamps_render_as_fixed_point_us() {
        let mut s = String::new();
        write_us(&mut s, 1_500_000); // 1.5 us
        assert_eq!(s, "1.500000");
        s.clear();
        write_us(&mut s, 42); // 42 ps
        assert_eq!(s, "0.000042");
    }

    #[test]
    fn export_contains_tracks_events_and_order() {
        let t = Tracer::new();
        let cpu = t.track("cpu");
        let faults = t.track("faults");
        // Insert out of time order; export must sort by ts.
        t.complete(cpu, "late", 2_000_000, 1_000_000);
        t.instant(faults, "early", 500);
        let json = t.chrome_trace();
        assert!(json.contains("\"name\":\"cpu\""));
        assert!(json.contains("\"name\":\"faults\""));
        let early = json.find("\"early\"").expect("early event present");
        let late = json.find("\"late\"").expect("late event present");
        assert!(early < late, "events must be ordered by simulated time");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"clockDomain\":\"simulated-ps\""));
    }

    #[test]
    fn export_notes_dropped_events() {
        let t = Tracer::with_max_events(1);
        let track = t.track("x");
        t.instant(track, "a", 0);
        t.instant(track, "b", 1);
        assert!(t.chrome_trace().contains("\"droppedEvents\":1"));
    }

    #[test]
    fn args_render_typed() {
        let mut s = String::new();
        write_args(
            &mut s,
            &[("n", ArgValue::U64(3)), ("r", ArgValue::F64(0.5)), ("k", ArgValue::Str("v".into()))],
        );
        assert_eq!(s, r#"{"n":3,"r":0.5,"k":"v"}"#);
    }

    #[test]
    fn disabled_tracer_exports_valid_empty_document() {
        let json = Tracer::disabled().chrome_trace();
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("process_name"));
    }
}
