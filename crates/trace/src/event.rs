//! The event vocabulary: tracks, spans, instants.

use std::borrow::Cow;

use crate::Ps;

/// Identifier of a track (a named timeline lane; exports as one "thread"
/// in the Chrome trace-event format).
///
/// Obtained from [`crate::Tracer::track`], which interns names so the same
/// name always maps to the same id. A disabled tracer hands out
/// [`TrackId::NONE`], which every emit call ignores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(pub(crate) u16);

impl TrackId {
    /// The placeholder id a disabled tracer returns.
    pub const NONE: TrackId = TrackId(u16::MAX);

    /// Zero-based index of this track in registration order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What shape of event this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span with a known duration (`ph: "X"` in the Chrome format).
    Complete {
        /// Duration in simulated ps.
        dur_ps: Ps,
    },
    /// A point-in-time marker (`ph: "i"`).
    Instant,
}

/// A typed argument attached to an event (rendered into the Chrome
/// `args` object).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(Cow<'static, str>),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(Cow::Borrowed(v))
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(Cow::Owned(v))
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The track (lane) the event belongs to.
    pub track: TrackId,
    /// Event name (span or marker label).
    pub name: Cow<'static, str>,
    /// Start (or occurrence) time in simulated ps.
    pub ts_ps: Ps,
    /// Span vs instant.
    pub kind: EventKind,
    /// Optional key/value annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// End time of the event (equals `ts_ps` for instants).
    pub fn end_ps(&self) -> Ps {
        match self.kind {
            EventKind::Complete { dur_ps } => self.ts_ps.saturating_add(dur_ps),
            EventKind::Instant => self.ts_ps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_ps_adds_duration() {
        let e = TraceEvent {
            track: TrackId(0),
            name: Cow::Borrowed("x"),
            ts_ps: 10,
            kind: EventKind::Complete { dur_ps: 5 },
            args: Vec::new(),
        };
        assert_eq!(e.end_ps(), 15);
        let i = TraceEvent { kind: EventKind::Instant, ..e };
        assert_eq!(i.end_ps(), 10);
    }

    #[test]
    fn arg_conversions() {
        assert_eq!(ArgValue::from(3u64), ArgValue::U64(3));
        assert_eq!(ArgValue::from("a"), ArgValue::Str(Cow::Borrowed("a")));
        assert!(matches!(ArgValue::from(1.5f64), ArgValue::F64(_)));
        assert!(matches!(ArgValue::from(String::from("s")), ArgValue::Str(_)));
    }
}
