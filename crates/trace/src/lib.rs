//! Simulated-time tracing and metrics for the PIM simulator.
//!
//! The rest of the workspace measures *aggregates* — end-of-run energy,
//! runtime, cache counters. This crate adds the *timeline*: spans and
//! instant events stamped with the **simulated picosecond clock** (never
//! wall time), plus a metrics registry of counters, gauges and fixed-bucket
//! histograms. Both are deterministic: the simulation is single-threaded
//! and seeded, so the same seed produces a byte-identical trace and
//! metrics dump (enforced by `tests/trace_determinism.rs` at the workspace
//! root).
//!
//! # Design
//!
//! * [`Tracer`] is a cheap-to-clone handle threaded through `SimContext`
//!   and `OffloadEngine`. A **disabled** tracer ([`Tracer::disabled`],
//!   also `Default`) is a `None` inside — every emit call returns before
//!   touching the heap, so instrumented code costs nothing when tracing
//!   is off (a wall-clock bench in `pim-bench` keeps this honest).
//! * Events live on **tracks** ([`TrackId`]) — one per engine, per vault,
//!   for kernel phases, and for injected faults — which export as named
//!   threads so Perfetto / `chrome://tracing` lays the run out as a swim-
//!   lane diagram.
//! * Exporters are hand-rolled (the workspace has a no-external-deps
//!   rule): [`chrome::chrome_trace_json`] emits the Chrome trace-event
//!   format, [`json::JsonValue`] is the tiny JSON writer every
//!   machine-readable artifact in the workspace shares, and
//!   [`MetricsReport::to_json`] dumps the registry.
//!
//! # Example
//!
//! ```
//! use pim_trace::Tracer;
//!
//! let tracer = Tracer::new();
//! let phases = tracer.track("kernel-phases");
//! tracer.complete(phases, "tiling", 0, 1_500_000);   // 1.5 us of simulated time
//! tracer.instant(phases, "fault", 750_000);
//! tracer.count("accesses", 64);
//! tracer.observe("latency_ps", 42_000);
//! let json = tracer.chrome_trace();
//! assert!(json.contains("\"tiling\""));
//! let metrics = tracer.metrics().to_json();
//! assert!(metrics.contains("\"accesses\""));
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod tracer;

pub use event::{ArgValue, EventKind, TraceEvent, TrackId};
pub use json::{JsonParseError, JsonValue};
pub use metrics::{Histogram, HistogramSnapshot, MetricsRegistry, MetricsReport};
pub use tracer::Tracer;

/// Picosecond timestamp in the *simulated* clock domain.
///
/// Matches `pim_faults::Ps` / `pim_memsim::Ps` structurally; this crate
/// sits below both in the dependency graph, so it declares its own alias.
pub type Ps = u64;
