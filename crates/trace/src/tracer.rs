//! The `Tracer` handle threaded through the simulator.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::chrome;
use crate::event::{ArgValue, EventKind, TraceEvent, TrackId};
use crate::metrics::{MetricsRegistry, MetricsReport};
use crate::Ps;

/// Hard ceiling on buffered events; beyond it events are counted as
/// dropped instead of growing without bound (the count is surfaced in
/// [`Tracer::dropped_events`] and the chrome export's metadata, never
/// silently).
const DEFAULT_MAX_EVENTS: usize = 4_000_000;

#[derive(Debug, Default)]
struct Inner {
    tracks: Vec<String>,
    track_ids: BTreeMap<String, u16>,
    events: Vec<TraceEvent>,
    max_events: usize,
    dropped: u64,
    metrics: MetricsRegistry,
}

/// A cheap-to-clone tracing handle.
///
/// Clones share the same buffer, so one `Tracer` can be handed to the
/// offload engine, every `SimContext`, and the memory system, and all
/// events land on one timeline. The **disabled** tracer (the `Default`)
/// holds nothing: every emit call is a branch on a `None` and returns —
/// no allocation, no locking. Callers that must build a `String` for an
/// event name guard on [`Tracer::enabled`] first so disabled runs never
/// touch the heap.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Tracer {
    /// An enabled tracer with an empty buffer.
    pub fn new() -> Self {
        Self::with_max_events(DEFAULT_MAX_EVENTS)
    }

    /// An enabled tracer that buffers at most `max_events` events.
    pub fn with_max_events(max_events: usize) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(Inner {
                max_events: max_events.max(1),
                ..Inner::default()
            }))),
        }
    }

    /// The no-op tracer (same as `Default`).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, Inner>> {
        // A poisoned lock only happens if a holder panicked; the buffer
        // itself is still consistent (all mutations are single calls), so
        // recover rather than propagate the panic.
        self.inner.as_ref().map(|m| m.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Intern `name` as a track, returning its id. Repeated calls with
    /// the same name return the same id. Disabled tracers return
    /// [`TrackId::NONE`].
    pub fn track(&self, name: &str) -> TrackId {
        let Some(mut inner) = self.lock() else {
            return TrackId::NONE;
        };
        if let Some(&id) = inner.track_ids.get(name) {
            return TrackId(id);
        }
        let id = inner.tracks.len().min(u16::MAX as usize - 1) as u16;
        inner.tracks.push(name.to_string());
        inner.track_ids.insert(name.to_string(), id);
        TrackId(id)
    }

    /// Names of all registered tracks, in registration order.
    pub fn tracks(&self) -> Vec<String> {
        self.lock().map(|i| i.tracks.clone()).unwrap_or_default()
    }

    fn emit(&self, ev: TraceEvent) {
        let Some(mut inner) = self.lock() else {
            return;
        };
        if ev.track == TrackId::NONE {
            return;
        }
        if inner.events.len() >= inner.max_events {
            inner.dropped += 1;
            return;
        }
        inner.events.push(ev);
    }

    /// Record a span of `dur_ps` starting at `ts_ps` on `track`.
    pub fn complete(&self, track: TrackId, name: impl Into<Cow<'static, str>>, ts_ps: Ps, dur_ps: Ps) {
        if !self.enabled() {
            return;
        }
        self.emit(TraceEvent {
            track,
            name: name.into(),
            ts_ps,
            kind: EventKind::Complete { dur_ps },
            args: Vec::new(),
        });
    }

    /// [`Tracer::complete`] with key/value annotations.
    pub fn complete_args(
        &self,
        track: TrackId,
        name: impl Into<Cow<'static, str>>,
        ts_ps: Ps,
        dur_ps: Ps,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled() {
            return;
        }
        self.emit(TraceEvent {
            track,
            name: name.into(),
            ts_ps,
            kind: EventKind::Complete { dur_ps },
            args,
        });
    }

    /// Record a point event at `ts_ps` on `track`.
    pub fn instant(&self, track: TrackId, name: impl Into<Cow<'static, str>>, ts_ps: Ps) {
        if !self.enabled() {
            return;
        }
        self.emit(TraceEvent {
            track,
            name: name.into(),
            ts_ps,
            kind: EventKind::Instant,
            args: Vec::new(),
        });
    }

    /// [`Tracer::instant`] with key/value annotations.
    pub fn instant_args(
        &self,
        track: TrackId,
        name: impl Into<Cow<'static, str>>,
        ts_ps: Ps,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled() {
            return;
        }
        self.emit(TraceEvent { track, name: name.into(), ts_ps, kind: EventKind::Instant, args });
    }

    /// Add `delta` to counter `name`.
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(mut inner) = self.lock() {
            inner.metrics.count(name, delta);
        }
    }

    /// Set gauge `name`.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(mut inner) = self.lock() {
            inner.metrics.gauge(name, value);
        }
    }

    /// Register gauge `name` at `initial` without overwriting an existing
    /// value, so a scrape endpoint reports the full gauge set from the
    /// first snapshot rather than only gauges that have been touched.
    pub fn register_gauge(&self, name: &str, initial: f64) {
        if let Some(mut inner) = self.lock() {
            inner.metrics.register_gauge(name, initial);
        }
    }

    /// Add `delta` to gauge `name` (registered at zero on first use).
    /// Deltas may be negative; used for live occupancy-style gauges such
    /// as queue depths and in-flight job counts.
    pub fn gauge_add(&self, name: &str, delta: f64) {
        if let Some(mut inner) = self.lock() {
            inner.metrics.gauge_add(name, delta);
        }
    }

    /// Current value of gauge `name` (zero if never set; always zero for
    /// a disabled tracer).
    pub fn gauge_value(&self, name: &str) -> f64 {
        self.lock().map(|i| i.metrics.gauge_value(name)).unwrap_or(0.0)
    }

    /// Record `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(mut inner) = self.lock() {
            inner.metrics.observe(name, value);
        }
    }

    /// Create (or reset) histogram `name` with explicit bucket bounds.
    pub fn register_histogram(&self, name: &str, bounds: &[u64]) {
        if let Some(mut inner) = self.lock() {
            inner.metrics.register_histogram(name, bounds);
        }
    }

    /// Snapshot of all metrics (empty for a disabled tracer).
    pub fn metrics(&self) -> MetricsReport {
        self.lock().map(|i| i.metrics.snapshot()).unwrap_or_default()
    }

    /// A copy of the buffered events (empty for a disabled tracer).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().map(|i| i.events.clone()).unwrap_or_default()
    }

    /// Number of buffered events.
    pub fn event_count(&self) -> usize {
        self.lock().map(|i| i.events.len()).unwrap_or(0)
    }

    /// Events refused because the buffer cap was reached.
    pub fn dropped_events(&self) -> u64 {
        self.lock().map(|i| i.dropped).unwrap_or(0)
    }

    /// Export the buffer in the Chrome trace-event format
    /// (`chrome://tracing` / Perfetto loadable). Empty-but-valid JSON for
    /// a disabled tracer.
    pub fn chrome_trace(&self) -> String {
        match self.lock() {
            Some(inner) => chrome::chrome_trace_json(&inner.tracks, &inner.events, inner.dropped),
            None => chrome::chrome_trace_json(&[], &[], 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let id = t.track("cpu");
        assert_eq!(id, TrackId::NONE);
        t.complete(id, "span", 0, 10);
        t.instant(id, "mark", 5);
        t.count("c", 1);
        t.observe("h", 1);
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.metrics(), MetricsReport::default());
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::new();
        let t2 = t.clone();
        let track = t.track("cpu");
        t2.complete(track, "a", 0, 1);
        t.instant(track, "b", 2);
        assert_eq!(t.event_count(), 2);
        assert_eq!(t2.event_count(), 2);
        t2.count("n", 3);
        assert_eq!(t.metrics().counters["n"], 3);
    }

    #[test]
    fn track_interning_is_stable() {
        let t = Tracer::new();
        let a = t.track("cpu");
        let b = t.track("vault 0");
        assert_eq!(t.track("cpu"), a);
        assert_ne!(a, b);
        assert_eq!(t.tracks(), vec!["cpu".to_string(), "vault 0".to_string()]);
    }

    #[test]
    fn event_cap_counts_drops() {
        let t = Tracer::with_max_events(2);
        let track = t.track("x");
        for i in 0..5 {
            t.instant(track, "e", i);
        }
        assert_eq!(t.event_count(), 2);
        assert_eq!(t.dropped_events(), 3);
    }

    #[test]
    fn dropped_counter_survives_export_round_trip() {
        // The 4M default cap is too big to exercise directly; a tracer
        // with a tiny cap proves the same path: events past the cap are
        // counted, and the count survives a chrome-trace export/parse
        // round trip as machine-readable metadata.
        let t = Tracer::with_max_events(3);
        let track = t.track("x");
        for i in 0..10 {
            t.complete(track, "e", i, 1);
        }
        assert_eq!(t.dropped_events(), 7);
        let doc = crate::JsonValue::parse(&t.chrome_trace()).expect("valid trace json");
        assert_eq!(doc.get("otherData").unwrap().get("droppedEvents").unwrap().as_u64(), Some(7));
        // 3 surviving events + process_name + thread_name/thread_sort_index.
        assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 3 + 3);
        // An uncapped tracer emits no droppedEvents key at all.
        let clean = Tracer::new();
        clean.instant(clean.track("y"), "e", 0);
        let doc = crate::JsonValue::parse(&clean.chrome_trace()).unwrap();
        assert!(doc.get("otherData").is_none_or(|o| o.get("droppedEvents").is_none()));
    }

    #[test]
    fn none_track_events_are_ignored() {
        let t = Tracer::new();
        t.complete(TrackId::NONE, "ghost", 0, 1);
        assert_eq!(t.event_count(), 0);
    }
}
