//! A minimal hand-rolled JSON writer.
//!
//! The workspace has a no-external-deps rule, so every machine-readable
//! artifact (`chrome://tracing` traces, metrics dumps, the `repro --json`
//! scorecard, `BENCH_repro.json`) is built on this value type instead of
//! `serde`. Object keys keep insertion order, floats render through Rust's
//! shortest-roundtrip `Display` (deterministic for a given value), and
//! non-finite floats become `null` — so a byte-identical input always
//! produces a byte-identical document.

use std::fmt::Write as _;

/// A JSON value that renders itself.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (`NaN`/`±inf` render as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> Self {
        JsonValue::Obj(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Self {
        JsonValue::Arr(Vec::new())
    }

    /// Insert a field (object variants only; no-op otherwise). Returns
    /// `self` for chaining.
    pub fn set(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        if let JsonValue::Obj(fields) = &mut self {
            fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Append an element (array variants only; no-op otherwise).
    pub fn push(mut self, value: impl Into<JsonValue>) -> Self {
        if let JsonValue::Arr(items) = &mut self {
            items.push(value.into());
        }
        self
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render with every top-level field of an object on its own line —
    /// enough pretty-printing for diffable artifacts without a formatter.
    pub fn render_pretty(&self) -> String {
        match self {
            JsonValue::Obj(fields) => {
                let mut out = String::from("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str("  ");
                    write_escaped(&mut out, k);
                    out.push_str(": ");
                    v.write(&mut out);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push('}');
                out
            }
            _ => self.render(),
        }
    }

    /// Parse a JSON document produced by this writer (or any standard
    /// JSON text). Numbers parse as `U64`/`I64` when they are integral
    /// and fit, `F64` otherwise; exponent notation is accepted on input
    /// even though the writer never emits it.
    ///
    /// # Errors
    ///
    /// A static description of the first syntax error, with its byte
    /// offset. Trailing non-whitespace after the document is an error.
    pub fn parse(text: &str) -> Result<Self, JsonParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonParseError { at: pos, what: "trailing characters" });
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as an f64 (integers widen; `None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::U64(v) => Some(*v as f64),
            JsonValue::I64(v) => Some(*v as f64),
            JsonValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a u64 (`None` for non-integers and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            JsonValue::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's elements (`None` for non-arrays).
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields (`None` for non-objects).
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Append the compact rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => write_f64(out, *v),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// The first syntax error hit by [`JsonValue::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What the parser expected or rejected.
    pub what: &'static str,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8, what: &'static str) -> Result<(), JsonParseError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonParseError { at: *pos, what })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonParseError { at: *pos, what: "unexpected end of input" }),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    JsonValue::Str(s) => s,
                    _ => return Err(JsonParseError { at: *pos, what: "expected string key" }),
                };
                skip_ws(bytes, pos);
                expect(bytes, pos, b':', "expected ':'")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(JsonParseError { at: *pos, what: "expected ',' or '}'" }),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(JsonParseError { at: *pos, what: "expected ',' or ']'" }),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static str,
    value: JsonValue,
) -> Result<JsonValue, JsonParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonParseError { at: *pos, what: "invalid literal" })
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonParseError { at: *pos, what: "unterminated string" }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonParseError { at: *pos, what: "invalid \\u escape" })?;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonParseError { at: *pos, what: "invalid escape" }),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so offsets
                // at char boundaries are safe to slice).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest)
                    .map_err(|_| JsonParseError { at: *pos, what: "invalid utf-8" })?;
                let c = s
                    .chars()
                    .next()
                    .ok_or(JsonParseError { at: *pos, what: "unterminated string" })?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonParseError { at: start, what: "invalid number" })?;
    if text.is_empty() || text == "-" {
        return Err(JsonParseError { at: start, what: "expected a value" });
    }
    if !float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(JsonValue::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(JsonValue::I64(v));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::F64)
        .map_err(|_| JsonParseError { at: start, what: "invalid number" })
}

/// Write `s` as a JSON string literal (quotes, escapes) into `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write a float as a JSON number (`null` when not finite). Rust's
/// `Display` for floats never uses exponent notation, so the output is
/// always a valid JSON number.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::U64(v as u64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::I64(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::object()
            .set("name", "pim")
            .set("n", 3u64)
            .set("ok", true)
            .set("ratio", 0.5)
            .set("items", JsonValue::array().push(1u64).push(2u64))
            .set("none", JsonValue::Null);
        assert_eq!(
            v.render(),
            r#"{"name":"pim","n":3,"ok":true,"ratio":0.5,"items":[1,2],"none":null}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        let v = JsonValue::from("a\"b\\c\nd\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::from(1.0f64).render(), "1");
    }

    #[test]
    fn floats_never_use_exponents() {
        assert_eq!(JsonValue::from(1e3f64).render(), "1000");
        assert!(!JsonValue::from(1e20f64).render().contains('e'));
    }

    #[test]
    fn pretty_render_is_line_per_field() {
        let v = JsonValue::object().set("a", 1u64).set("b", 2u64);
        let p = v.render_pretty();
        assert!(p.starts_with("{\n  \"a\": 1,\n"));
        assert!(p.ends_with('}'));
    }

    #[test]
    fn set_and_push_ignore_wrong_variants() {
        assert_eq!(JsonValue::Null.set("k", 1u64), JsonValue::Null);
        assert_eq!(JsonValue::Null.push(1u64), JsonValue::Null);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = JsonValue::object()
            .set("name", "pim \"quoted\"\n")
            .set("n", 3u64)
            .set("neg", -7i64)
            .set("ok", true)
            .set("ratio", 0.52734375)
            .set("items", JsonValue::array().push(1u64).push(JsonValue::Null))
            .set("nested", JsonValue::object().set("k", 2.5));
        let parsed = JsonValue::parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.render(), v.render());
    }

    #[test]
    fn parse_accepts_whitespace_and_exponents() {
        let v = JsonValue::parse(" { \"a\" : [ 1e3 , -2.5E-1 ] }\n").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1000.0));
        assert_eq!(arr[1].as_f64(), Some(-0.25));
    }

    #[test]
    fn parse_classifies_numbers() {
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::U64(42));
        assert_eq!(JsonValue::parse("-42").unwrap(), JsonValue::I64(-42));
        assert_eq!(JsonValue::parse("42.5").unwrap(), JsonValue::F64(42.5));
        assert_eq!(JsonValue::parse("42").unwrap().as_f64(), Some(42.0));
        assert_eq!(JsonValue::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "{\"a\":1,}", "truex", "1 2", "\"open"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = r#"{"wall_ms":12.5,"experiments":[{"id":"a","wall_ms":3}]}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.get("wall_ms").unwrap().as_f64(), Some(12.5));
        let exps = v.get("experiments").unwrap().as_array().unwrap();
        assert_eq!(exps[0].get("id").unwrap().as_str(), Some("a"));
        assert_eq!(exps[0].get("wall_ms").unwrap().as_u64(), Some(3));
        assert_eq!(v.as_object().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
    }
}
