//! A minimal hand-rolled JSON writer.
//!
//! The workspace has a no-external-deps rule, so every machine-readable
//! artifact (`chrome://tracing` traces, metrics dumps, the `repro --json`
//! scorecard, `BENCH_repro.json`) is built on this value type instead of
//! `serde`. Object keys keep insertion order, floats render through Rust's
//! shortest-roundtrip `Display` (deterministic for a given value), and
//! non-finite floats become `null` — so a byte-identical input always
//! produces a byte-identical document.

use std::fmt::Write as _;

/// A JSON value that renders itself.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (`NaN`/`±inf` render as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> Self {
        JsonValue::Obj(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Self {
        JsonValue::Arr(Vec::new())
    }

    /// Insert a field (object variants only; no-op otherwise). Returns
    /// `self` for chaining.
    pub fn set(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        if let JsonValue::Obj(fields) = &mut self {
            fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Append an element (array variants only; no-op otherwise).
    pub fn push(mut self, value: impl Into<JsonValue>) -> Self {
        if let JsonValue::Arr(items) = &mut self {
            items.push(value.into());
        }
        self
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render with every top-level field of an object on its own line —
    /// enough pretty-printing for diffable artifacts without a formatter.
    pub fn render_pretty(&self) -> String {
        match self {
            JsonValue::Obj(fields) => {
                let mut out = String::from("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str("  ");
                    write_escaped(&mut out, k);
                    out.push_str(": ");
                    v.write(&mut out);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push('}');
                out
            }
            _ => self.render(),
        }
    }

    /// Append the compact rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => write_f64(out, *v),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Write `s` as a JSON string literal (quotes, escapes) into `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write a float as a JSON number (`null` when not finite). Rust's
/// `Display` for floats never uses exponent notation, so the output is
/// always a valid JSON number.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::U64(v as u64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::I64(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::object()
            .set("name", "pim")
            .set("n", 3u64)
            .set("ok", true)
            .set("ratio", 0.5)
            .set("items", JsonValue::array().push(1u64).push(2u64))
            .set("none", JsonValue::Null);
        assert_eq!(
            v.render(),
            r#"{"name":"pim","n":3,"ok":true,"ratio":0.5,"items":[1,2],"none":null}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        let v = JsonValue::from("a\"b\\c\nd\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::from(1.0f64).render(), "1");
    }

    #[test]
    fn floats_never_use_exponents() {
        assert_eq!(JsonValue::from(1e3f64).render(), "1000");
        assert!(!JsonValue::from(1e20f64).render().contains('e'));
    }

    #[test]
    fn pretty_render_is_line_per_field() {
        let v = JsonValue::object().set("a", 1u64).set("b", 2u64);
        let p = v.render_pretty();
        assert!(p.starts_with("{\n  \"a\": 1,\n"));
        assert!(p.ends_with('}'));
    }

    #[test]
    fn set_and_push_ignore_wrong_variants() {
        assert_eq!(JsonValue::Null.set("k", 1u64), JsonValue::Null);
        assert_eq!(JsonValue::Null.push(1u64), JsonValue::Null);
    }
}
