//! Counters, gauges, and fixed-bucket histograms with stable snapshots.
//!
//! Everything is keyed by name in `BTreeMap`s, so a [`MetricsReport`]
//! always serializes in the same order — a requirement for byte-identical
//! artifacts across runs.

use std::collections::BTreeMap;

use crate::json::JsonValue;

/// Default histogram bucket boundaries: powers of four starting at 1 ns
/// (in ps). Covers 1 ns .. ~4 ms, the full range of simulated latencies
/// and backoff durations in this workspace.
pub const DEFAULT_BOUNDS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
];

/// A fixed-bucket histogram of `u64` observations.
///
/// `counts` has one slot per bound plus a final overflow slot; an
/// observation lands in the first bucket whose bound is `>=` the value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::with_bounds(&DEFAULT_BOUNDS)
    }
}

impl Histogram {
    /// Build a histogram with the given ascending bucket bounds.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        let mut b = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        let slots = b.len() + 1;
        Self { bounds: b, counts: vec![0; slots], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation (zero when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// A stable snapshot (bounds plus per-bucket counts).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
        }
    }
}

/// Frozen view of a [`Histogram`] for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds; the implicit last bucket is `+inf`.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (zero when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl HistogramSnapshot {
    /// JSON object for the metrics dump.
    pub fn to_json_value(&self) -> JsonValue {
        let mut bounds = JsonValue::array();
        for b in &self.bounds {
            bounds = bounds.push(*b);
        }
        let mut counts = JsonValue::array();
        for c in &self.counts {
            counts = counts.push(*c);
        }
        JsonValue::object()
            .set("count", self.count)
            .set("sum", self.sum)
            .set("min", self.min)
            .set("max", self.max)
            .set("bounds", bounds)
            .set("counts", counts)
    }
}

/// The mutable registry behind a [`crate::Tracer`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (created at zero on first use).
    pub fn count(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Set gauge `name` to `value`.
    pub fn gauge(&mut self, name: &str, value: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Register gauge `name` at `initial` only if it does not exist yet.
    /// Lets a subsystem declare its full gauge set up front so snapshots
    /// are shape-stable from the first scrape.
    pub fn register_gauge(&mut self, name: &str, initial: f64) {
        self.gauges.entry(name.to_string()).or_insert(initial);
    }

    /// Add `delta` (possibly negative) to gauge `name`, creating it at
    /// zero first. Occupancy-style gauges (queue depth, in-flight jobs)
    /// are maintained with paired `+1`/`-1` deltas.
    pub fn gauge_add(&mut self, name: &str, delta: f64) {
        *self.gauges.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Current value of gauge `name` (zero if never set).
    pub fn gauge_value(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Record `value` into histogram `name` (created with
    /// [`DEFAULT_BOUNDS`] on first use).
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Create (or replace) histogram `name` with explicit bucket bounds.
    pub fn register_histogram(&mut self, name: &str, bounds: &[u64]) {
        self.histograms.insert(name.to_string(), Histogram::with_bounds(bounds));
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Freeze the registry into a report.
    pub fn snapshot(&self) -> MetricsReport {
        MetricsReport {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }
}

/// A frozen, ordered snapshot of every metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Monotonic counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write gauges, by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms, by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsReport {
    /// The report as a [`JsonValue`] (stable field order).
    pub fn to_json_value(&self) -> JsonValue {
        let mut counters = JsonValue::object();
        for (k, v) in &self.counters {
            counters = counters.set(k, *v);
        }
        let mut gauges = JsonValue::object();
        for (k, v) in &self.gauges {
            gauges = gauges.set(k, *v);
        }
        let mut histograms = JsonValue::object();
        for (k, v) in &self.histograms {
            histograms = histograms.set(k, v.to_json_value());
        }
        JsonValue::object()
            .set("counters", counters)
            .set("gauges", gauges)
            .set("histograms", histograms)
    }

    /// Compact JSON rendering.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::with_bounds(&[10, 100]);
        h.observe(5);
        h.observe(10); // inclusive upper bound
        h.observe(50);
        h.observe(1_000); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 1_000);
        assert!((h.mean() - 266.25).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn registry_roundtrip() {
        let mut r = MetricsRegistry::new();
        r.count("reads", 2);
        r.count("reads", 3);
        r.gauge("occupancy", 0.5);
        r.observe("lat", 42);
        assert_eq!(r.counter("reads"), 5);
        assert_eq!(r.counter("nope"), 0);
        let rep = r.snapshot();
        assert_eq!(rep.counters["reads"], 5);
        assert_eq!(rep.histograms["lat"].count, 1);
        let json = rep.to_json();
        assert!(json.contains("\"reads\":5"));
        assert!(json.contains("\"occupancy\":0.5"));
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.count("b", 1);
            r.count("a", 2);
            r.observe("h", 10);
            r.snapshot().to_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn gauge_registration_and_deltas() {
        let mut r = MetricsRegistry::new();
        r.register_gauge("depth", 0.0);
        assert_eq!(r.gauge_value("depth"), 0.0);
        r.gauge_add("depth", 3.0);
        r.gauge_add("depth", -1.0);
        assert_eq!(r.gauge_value("depth"), 2.0);
        // register_gauge never clobbers a live value.
        r.register_gauge("depth", 99.0);
        assert_eq!(r.gauge_value("depth"), 2.0);
        assert_eq!(r.gauge_value("never-touched"), 0.0);
        assert!(r.snapshot().to_json().contains("\"depth\":2"));
    }

    #[test]
    fn register_histogram_sets_bounds() {
        let mut r = MetricsRegistry::new();
        r.register_histogram("lat", &[1, 2, 3]);
        r.observe("lat", 2);
        assert_eq!(r.snapshot().histograms["lat"].bounds, vec![1, 2, 3]);
    }

    #[test]
    fn every_default_bound_is_an_inclusive_upper_edge() {
        // A value exactly on a bound must land in that bound's bucket,
        // and bound+1 must land in the next one.
        for (i, &bound) in DEFAULT_BOUNDS.iter().enumerate() {
            let mut h = Histogram::default();
            h.observe(bound);
            h.observe(bound + 1);
            let s = h.snapshot();
            assert_eq!(s.counts[i], 1, "bound {bound} not inclusive");
            assert_eq!(s.counts[i + 1], 1, "bound {bound}+1 in wrong bucket");
            assert_eq!(s.count, 2);
        }
    }

    #[test]
    fn overflow_bucket_catches_everything_past_the_last_bound() {
        let last = *DEFAULT_BOUNDS.last().unwrap();
        let mut h = Histogram::default();
        h.observe(last); // last real bucket
        h.observe(last + 1); // first overflow value
        h.observe(u64::MAX); // extreme overflow
        let s = h.snapshot();
        assert_eq!(s.counts.len(), DEFAULT_BOUNDS.len() + 1);
        assert_eq!(s.counts[DEFAULT_BOUNDS.len() - 1], 1);
        assert_eq!(s.counts[DEFAULT_BOUNDS.len()], 2, "overflow bucket");
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn observed_sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::with_bounds(&[10]);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn zero_value_lands_in_the_first_bucket() {
        let mut h = Histogram::default();
        h.observe(0);
        let s = h.snapshot();
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn snapshot_json_round_trips_bucket_structure() {
        let mut h = Histogram::with_bounds(&[10, 100]);
        h.observe(10);
        h.observe(1_000);
        let rendered = h.snapshot().to_json_value().render();
        let v = JsonValue::parse(&rendered).unwrap();
        let bounds: Vec<u64> =
            v.get("bounds").unwrap().as_array().unwrap().iter().map(|b| b.as_u64().unwrap()).collect();
        let counts: Vec<u64> =
            v.get("counts").unwrap().as_array().unwrap().iter().map(|c| c.as_u64().unwrap()).collect();
        assert_eq!(bounds, vec![10, 100]);
        assert_eq!(counts, vec![1, 0, 1]);
        assert_eq!(v.get("count").unwrap().as_u64(), Some(2));
    }
}
