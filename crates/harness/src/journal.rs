//! The JSONL job journal behind `--resume`.
//!
//! Format: one JSON object per line, written with the same hand-rolled
//! conventions as `pim_trace::json` (escaping via
//! [`pim_trace::json::write_escaped`]). The first line is a header:
//!
//! ```text
//! {"journal":"pim-harness","version":1,"jobs":9}
//! ```
//!
//! Each subsequent line records one *terminal* job result:
//!
//! ```text
//! {"job":"texture tiling","status":"ok","attempts":1,"output":"..."}
//! {"job":"bricked","status":"quarantined","attempts":2,"error_label":"watchdog-timeout","error":"..."}
//! ```
//!
//! Lines are appended and flushed as each job completes, so a killed
//! sweep's journal is valid up to (at worst) one truncated trailing line,
//! which the reader tolerates by stopping at the first unparseable line.
//! Because entries carry the full result (including the output payload),
//! resuming re-runs only jobs with no journal line and merges to
//! bit-identical output.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use pim_trace::json::write_escaped;

use crate::job::{JobResult, JobStatus};
use crate::HarnessError;

/// Magic name in the header line.
const MAGIC: &str = "pim-harness";
/// Journal format version.
const VERSION: u64 = 1;

/// Append-only journal writer; one flushed line per completed job.
pub struct JournalWriter {
    path: PathBuf,
    out: BufWriter<File>,
}

impl JournalWriter {
    /// Start a fresh journal (truncates) and write the header.
    pub fn create(path: &Path, jobs: usize) -> Result<Self, HarnessError> {
        let file = File::create(path).map_err(|e| HarnessError::io(path, &e))?;
        let mut w = Self { path: path.to_path_buf(), out: BufWriter::new(file) };
        let header = format!("{{\"journal\":\"{MAGIC}\",\"version\":{VERSION},\"jobs\":{jobs}}}");
        w.line(&header)?;
        Ok(w)
    }

    /// Reopen an existing journal for appending (resume).
    pub fn append(path: &Path) -> Result<Self, HarnessError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| HarnessError::io(path, &e))?;
        Ok(Self { path: path.to_path_buf(), out: BufWriter::new(file) })
    }

    /// Record one terminal result.
    pub fn record(&mut self, r: &JobResult) -> Result<(), HarnessError> {
        let mut line = String::from("{\"job\":");
        write_escaped(&mut line, &r.id);
        line.push_str(",\"status\":");
        write_escaped(&mut line, r.status.label());
        line.push_str(&format!(",\"attempts\":{}", r.attempts));
        if let Some(label) = &r.error_label {
            line.push_str(",\"error_label\":");
            write_escaped(&mut line, label);
        }
        if let Some(err) = &r.error {
            line.push_str(",\"error\":");
            write_escaped(&mut line, err);
        }
        if let Some(out) = &r.output {
            line.push_str(",\"output\":");
            write_escaped(&mut line, out);
        }
        line.push('}');
        self.line(&line)
    }

    fn line(&mut self, s: &str) -> Result<(), HarnessError> {
        self.out
            .write_all(s.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .and_then(|()| self.out.flush())
            .map_err(|e| HarnessError::io(&self.path, &e))
    }
}

/// Parsed journal: completed results keyed by job id.
#[derive(Debug, Default)]
pub struct JournalState {
    /// Terminal results restored from the journal.
    pub completed: BTreeMap<String, JobResult>,
}

/// Read a journal back for `--resume`.
///
/// # Errors
///
/// Fails if the file cannot be read, the header is missing or does not
/// match this harness/version, or the recorded job count differs from the
/// sweep being resumed (the journal belongs to a different sweep). A
/// truncated or garbled trailing line is *not* an error: parsing stops
/// there and the affected job simply re-runs.
pub fn read_journal(path: &Path, expected_jobs: usize) -> Result<JournalState, HarnessError> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| HarnessError::io(path, &e))?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .and_then(parse_flat_object)
        .ok_or_else(|| HarnessError::mismatch(path, "missing or unreadable header line"))?;
    match (header.get("journal"), header.get("version"), header.get("jobs")) {
        (Some(Field::Str(m)), Some(Field::Num(v)), Some(Field::Num(jobs)))
            if m == MAGIC && *v == VERSION =>
        {
            if *jobs as usize != expected_jobs {
                return Err(HarnessError::mismatch(
                    path,
                    &format!("journal records {jobs} jobs but this sweep has {expected_jobs}"),
                ));
            }
        }
        _ => return Err(HarnessError::mismatch(path, "header is not a pim-harness v1 journal")),
    }

    let mut state = JournalState::default();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let Some(fields) = parse_flat_object(line) else {
            break; // truncated tail from a killed run: re-run from here
        };
        let Some(result) = result_from_fields(&fields) else {
            break;
        };
        state.completed.insert(result.id.clone(), result);
    }
    Ok(state)
}

fn result_from_fields(fields: &BTreeMap<String, Field>) -> Option<JobResult> {
    let id = match fields.get("job")? {
        Field::Str(s) => s.clone(),
        _ => return None,
    };
    let status = match fields.get("status")? {
        Field::Str(s) => JobStatus::from_label(s)?,
        _ => return None,
    };
    let attempts = match fields.get("attempts")? {
        Field::Num(n) => u32::try_from(*n).ok()?,
        _ => return None,
    };
    let get_str = |key: &str| match fields.get(key) {
        Some(Field::Str(s)) => Some(s.clone()),
        _ => None,
    };
    let output = get_str("output");
    // A succeeded entry must carry its payload; anything else is corrupt.
    if status == JobStatus::Succeeded && output.is_none() {
        return None;
    }
    Some(JobResult {
        id,
        status,
        attempts,
        output,
        error_label: get_str("error_label"),
        error: get_str("error"),
    })
}

/// A scalar field of a flat journal object.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// JSON string (unescaped).
    Str(String),
    /// Non-negative integer.
    Num(u64),
    /// JSON `null`.
    Null,
}

/// Parse one flat JSON object (string / unsigned-integer / null values
/// only — exactly what the journal writes). Returns `None` on any
/// malformation, including trailing garbage, so truncated lines from a
/// killed process are rejected rather than half-read.
pub fn parse_flat_object(line: &str) -> Option<BTreeMap<String, Field>> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = BTreeMap::new();
    if chars.next()? != '{' {
        return None;
    }
    if chars.peek() == Some(&'}') {
        chars.next();
        return if chars.next().is_none() { Some(fields) } else { None };
    }
    loop {
        if chars.next()? != '"' {
            return None;
        }
        let key = parse_string_body(&mut chars)?;
        if chars.next()? != ':' {
            return None;
        }
        let value = match chars.peek()? {
            '"' => {
                chars.next();
                Field::Str(parse_string_body(&mut chars)?)
            }
            'n' => {
                for expect in ['n', 'u', 'l', 'l'] {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                Field::Null
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                    n = n.checked_mul(10)?.checked_add(u64::from(d))?;
                    chars.next();
                }
                Field::Num(n)
            }
            _ => return None,
        };
        fields.insert(key, value);
        match chars.next()? {
            ',' => continue,
            '}' => break,
            _ => return None,
        }
    }
    if chars.next().is_none() {
        Some(fields)
    } else {
        None
    }
}

/// Parse a JSON string body after the opening quote, handling the escapes
/// `write_escaped` emits (plus `\uXXXX` surrogate pairs for safety).
fn parse_string_body(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let hi = parse_hex4(chars)?;
                    let cp = if (0xD800..0xDC00).contains(&hi) {
                        // Surrogate pair: expect \uXXXX low half next.
                        if chars.next()? != '\\' || chars.next()? != 'u' {
                            return None;
                        }
                        let lo = parse_hex4(chars)?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return None;
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        hi
                    };
                    out.push(char::from_u32(cp)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

fn parse_hex4(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<u32> {
    let mut v = 0u32;
    for _ in 0..4 {
        v = v * 16 + chars.next()?.to_digit(16)?;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobFailure;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pim-harness-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn write_then_read_round_trips() {
        let path = tmp("roundtrip.jsonl");
        let results = vec![
            JobResult::ok("plain", 1, "x=1|y=2.5".into()),
            JobResult::ok("weird \"chars\"\n\ttabs", 2, "line1\nline2\\end \u{1}".into()),
            JobResult::failed(
                "panicker",
                JobStatus::Failed,
                1,
                &JobFailure::Panicked { message: "index out of bounds: the len is 3".into() },
            ),
            JobResult::failed(
                "hung",
                JobStatus::Quarantined,
                2,
                &JobFailure::WallTimeout { limit_ms: 25 },
            ),
        ];
        {
            let mut w = JournalWriter::create(&path, results.len()).unwrap();
            for r in &results {
                w.record(r).unwrap();
            }
        }
        let state = read_journal(&path, results.len()).unwrap();
        assert_eq!(state.completed.len(), results.len());
        for r in &results {
            assert_eq!(state.completed.get(&r.id), Some(r));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let path = tmp("truncated.jsonl");
        {
            let mut w = JournalWriter::create(&path, 3).unwrap();
            w.record(&JobResult::ok("a", 1, "1".into())).unwrap();
            w.record(&JobResult::ok("b", 1, "2".into())).unwrap();
        }
        // Simulate a kill mid-write: chop the last line in half.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 10;
        std::fs::write(&path, &text[..cut]).unwrap();
        let state = read_journal(&path, 3).unwrap();
        assert_eq!(state.completed.len(), 1);
        assert!(state.completed.contains_key("a"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn job_count_mismatch_is_an_error() {
        let path = tmp("mismatch.jsonl");
        {
            JournalWriter::create(&path, 3).unwrap();
        }
        let err = read_journal(&path, 5).unwrap_err();
        assert!(err.to_string().contains("3 jobs"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let path = tmp("garbage.jsonl");
        std::fs::write(&path, "not json at all\n").unwrap();
        assert!(read_journal(&path, 1).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flat_parser_handles_escapes_and_rejects_garbage() {
        let obj = parse_flat_object(r#"{"a":"x\n\"y\"","n":42,"z":null}"#).unwrap();
        assert_eq!(obj.get("a"), Some(&Field::Str("x\n\"y\"".into())));
        assert_eq!(obj.get("n"), Some(&Field::Num(42)));
        assert_eq!(obj.get("z"), Some(&Field::Null));
        assert_eq!(parse_flat_object(r#"{"u":"A😀"}"#).unwrap().get("u"), Some(&Field::Str("A😀".into())));
        assert!(parse_flat_object(r#"{"a":"x""#).is_none(), "truncated");
        assert!(parse_flat_object(r#"{"a":1} trailing"#).is_none());
        assert!(parse_flat_object("").is_none());
        assert!(parse_flat_object("{}").is_some());
    }
}
