//! The JSONL job journal behind `--resume`.
//!
//! Format: one JSON object per line, written with the same hand-rolled
//! conventions as `pim_trace::json` (escaping via
//! [`pim_trace::json::write_escaped`]). The first line is a header:
//!
//! ```text
//! {"journal":"pim-harness","version":1,"jobs":9}
//! ```
//!
//! Each subsequent line records one *terminal* job result:
//!
//! ```text
//! {"job":"texture tiling","status":"ok","attempts":1,"output":"..."}
//! {"job":"bricked","status":"quarantined","attempts":2,"error_label":"watchdog-timeout","error":"..."}
//! ```
//!
//! Lines are appended and flushed as each job completes, so a killed
//! sweep's journal is valid up to (at worst) one truncated trailing line.
//! The reader is corruption-tolerant end to end: unparseable lines
//! anywhere in the body (truncated tails, interleaved partial writes,
//! embedded garbage) are skipped and counted, and duplicated records
//! restore once with the later record winning — resume never aborts on a
//! damaged journal and never runs a journaled job twice. Because entries
//! carry the full result (including the output payload), resuming re-runs
//! only jobs with no intact journal line and merges to bit-identical
//! output.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use pim_trace::json::write_escaped;

use crate::job::{JobResult, JobStatus};
use crate::HarnessError;

/// Magic name in the header line.
const MAGIC: &str = "pim-harness";
/// Journal format version.
const VERSION: u64 = 1;

/// Append-only journal writer; one flushed line per completed job.
pub struct JournalWriter {
    path: PathBuf,
    out: BufWriter<File>,
}

impl JournalWriter {
    /// Start a fresh journal (truncates) and write the header.
    pub fn create(path: &Path, jobs: usize) -> Result<Self, HarnessError> {
        let file = File::create(path).map_err(|e| HarnessError::io(path, &e))?;
        let mut w = Self { path: path.to_path_buf(), out: BufWriter::new(file) };
        let header = format!("{{\"journal\":\"{MAGIC}\",\"version\":{VERSION},\"jobs\":{jobs}}}");
        w.line(&header)?;
        Ok(w)
    }

    /// Reopen an existing journal for appending (resume).
    pub fn append(path: &Path) -> Result<Self, HarnessError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| HarnessError::io(path, &e))?;
        Ok(Self { path: path.to_path_buf(), out: BufWriter::new(file) })
    }

    /// Record one terminal result.
    pub fn record(&mut self, r: &JobResult) -> Result<(), HarnessError> {
        self.line(&record_line(r))
    }

    fn line(&mut self, s: &str) -> Result<(), HarnessError> {
        self.out
            .write_all(s.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .and_then(|()| self.out.flush())
            .map_err(|e| HarnessError::io(&self.path, &e))
    }
}

/// Render one terminal result as its journal line (no trailing newline).
///
/// Exposed so embedders that keep their own incremental journals — the
/// `pim-serve` server journal interleaves submission records with these
/// result records — serialize results in exactly the harness's format and
/// stay readable by [`parse_result_line`].
pub fn record_line(r: &JobResult) -> String {
    let mut line = String::from("{\"job\":");
    write_escaped(&mut line, &r.id);
    line.push_str(",\"status\":");
    write_escaped(&mut line, r.status.label());
    line.push_str(&format!(",\"attempts\":{}", r.attempts));
    if let Some(label) = &r.error_label {
        line.push_str(",\"error_label\":");
        write_escaped(&mut line, label);
    }
    if let Some(err) = &r.error {
        line.push_str(",\"error\":");
        write_escaped(&mut line, err);
    }
    if let Some(out) = &r.output {
        line.push_str(",\"output\":");
        write_escaped(&mut line, out);
    }
    line.push('}');
    line
}

/// Parse one result line written by [`record_line`] back into a
/// [`JobResult`]. Returns `None` for anything malformed — truncated
/// tails, partial lines, non-result records.
pub fn parse_result_line(line: &str) -> Option<JobResult> {
    result_from_fields(&parse_flat_object(line)?)
}

/// Parsed journal: completed results keyed by job id.
#[derive(Debug, Default)]
pub struct JournalState {
    /// Terminal results restored from the journal.
    pub completed: BTreeMap<String, JobResult>,
    /// Body lines that were corrupt (truncated, garbled, interleaved
    /// partial writes) and skipped rather than aborting the resume.
    pub skipped: usize,
    /// Result records that repeated a job id already restored; the later
    /// record wins, and the job is still resumed exactly once.
    pub duplicates: usize,
}

/// Read a journal back for `--resume`.
///
/// # Errors
///
/// Fails if the file cannot be read, the header is missing or does not
/// match this harness/version, or the recorded job count differs from the
/// sweep being resumed (the journal belongs to a different sweep).
///
/// Body corruption is *never* an error: truncated tails, interleaved
/// partial lines, embedded garbage, and duplicated records are skipped
/// and counted ([`JournalState::skipped`] / [`JournalState::duplicates`]).
/// A job whose record was destroyed simply re-runs; a job with any intact
/// record is restored exactly once, never re-run.
pub fn read_journal(path: &Path, expected_jobs: usize) -> Result<JournalState, HarnessError> {
    let bytes = std::fs::read(path).map_err(|e| HarnessError::io(path, &e))?;
    // Corruption can include invalid UTF-8; decode lossily so one garbled
    // line cannot abort the whole resume. Replacement characters make the
    // affected line unparseable, which is exactly skip-and-count.
    let text = String::from_utf8_lossy(&bytes);
    let mut lines = text.lines();
    let header = lines
        .next()
        .and_then(parse_flat_object)
        .ok_or_else(|| HarnessError::mismatch(path, "missing or unreadable header line"))?;
    match (header.get("journal"), header.get("version"), header.get("jobs")) {
        (Some(Field::Str(m)), Some(Field::Num(v)), Some(Field::Num(jobs)))
            if m == MAGIC && *v == VERSION =>
        {
            if *jobs as usize != expected_jobs {
                return Err(HarnessError::mismatch(
                    path,
                    &format!("journal records {jobs} jobs but this sweep has {expected_jobs}"),
                ));
            }
        }
        _ => return Err(HarnessError::mismatch(path, "header is not a pim-harness v1 journal")),
    }

    let mut state = JournalState::default();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let Some(result) = parse_result_line(line) else {
            state.skipped += 1;
            continue;
        };
        if state.completed.insert(result.id.clone(), result).is_some() {
            state.duplicates += 1;
        }
    }
    Ok(state)
}

fn result_from_fields(fields: &BTreeMap<String, Field>) -> Option<JobResult> {
    let id = match fields.get("job")? {
        Field::Str(s) => s.clone(),
        _ => return None,
    };
    let status = match fields.get("status")? {
        Field::Str(s) => JobStatus::from_label(s)?,
        _ => return None,
    };
    let attempts = match fields.get("attempts")? {
        Field::Num(n) => u32::try_from(*n).ok()?,
        _ => return None,
    };
    let get_str = |key: &str| match fields.get(key) {
        Some(Field::Str(s)) => Some(s.clone()),
        _ => None,
    };
    let output = get_str("output");
    // A succeeded entry must carry its payload; anything else is corrupt.
    if status == JobStatus::Succeeded && output.is_none() {
        return None;
    }
    Some(JobResult {
        id,
        status,
        attempts,
        output,
        error_label: get_str("error_label"),
        error: get_str("error"),
    })
}

/// A scalar field of a flat journal object.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// JSON string (unescaped).
    Str(String),
    /// Non-negative integer.
    Num(u64),
    /// JSON `null`.
    Null,
}

/// Parse one flat JSON object (string / unsigned-integer / null values
/// only — exactly what the journal writes). Returns `None` on any
/// malformation, including trailing garbage, so truncated lines from a
/// killed process are rejected rather than half-read.
pub fn parse_flat_object(line: &str) -> Option<BTreeMap<String, Field>> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = BTreeMap::new();
    if chars.next()? != '{' {
        return None;
    }
    if chars.peek() == Some(&'}') {
        chars.next();
        return if chars.next().is_none() { Some(fields) } else { None };
    }
    loop {
        if chars.next()? != '"' {
            return None;
        }
        let key = parse_string_body(&mut chars)?;
        if chars.next()? != ':' {
            return None;
        }
        let value = match chars.peek()? {
            '"' => {
                chars.next();
                Field::Str(parse_string_body(&mut chars)?)
            }
            'n' => {
                for expect in ['n', 'u', 'l', 'l'] {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                Field::Null
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                    n = n.checked_mul(10)?.checked_add(u64::from(d))?;
                    chars.next();
                }
                Field::Num(n)
            }
            _ => return None,
        };
        fields.insert(key, value);
        match chars.next()? {
            ',' => continue,
            '}' => break,
            _ => return None,
        }
    }
    if chars.next().is_none() {
        Some(fields)
    } else {
        None
    }
}

/// Parse a JSON string body after the opening quote, handling the escapes
/// `write_escaped` emits (plus `\uXXXX` surrogate pairs for safety).
fn parse_string_body(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let hi = parse_hex4(chars)?;
                    let cp = if (0xD800..0xDC00).contains(&hi) {
                        // Surrogate pair: expect \uXXXX low half next.
                        if chars.next()? != '\\' || chars.next()? != 'u' {
                            return None;
                        }
                        let lo = parse_hex4(chars)?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return None;
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        hi
                    };
                    out.push(char::from_u32(cp)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

fn parse_hex4(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<u32> {
    let mut v = 0u32;
    for _ in 0..4 {
        v = v * 16 + chars.next()?.to_digit(16)?;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobFailure;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pim-harness-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn write_then_read_round_trips() {
        let path = tmp("roundtrip.jsonl");
        let results = vec![
            JobResult::ok("plain", 1, "x=1|y=2.5".into()),
            JobResult::ok("weird \"chars\"\n\ttabs", 2, "line1\nline2\\end \u{1}".into()),
            JobResult::failed(
                "panicker",
                JobStatus::Failed,
                1,
                &JobFailure::Panicked { message: "index out of bounds: the len is 3".into() },
            ),
            JobResult::failed(
                "hung",
                JobStatus::Quarantined,
                2,
                &JobFailure::WallTimeout { limit_ms: 25 },
            ),
        ];
        {
            let mut w = JournalWriter::create(&path, results.len()).unwrap();
            for r in &results {
                w.record(r).unwrap();
            }
        }
        let state = read_journal(&path, results.len()).unwrap();
        assert_eq!(state.completed.len(), results.len());
        for r in &results {
            assert_eq!(state.completed.get(&r.id), Some(r));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let path = tmp("truncated.jsonl");
        {
            let mut w = JournalWriter::create(&path, 3).unwrap();
            w.record(&JobResult::ok("a", 1, "1".into())).unwrap();
            w.record(&JobResult::ok("b", 1, "2".into())).unwrap();
        }
        // Simulate a kill mid-write: chop the last line in half.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 10;
        std::fs::write(&path, &text[..cut]).unwrap();
        let state = read_journal(&path, 3).unwrap();
        assert_eq!(state.completed.len(), 1);
        assert!(state.completed.contains_key("a"));
        assert_eq!(state.skipped, 1, "the chopped line is counted, not fatal");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_journal_corruption_is_skipped_and_counted() {
        let path = tmp("midcorrupt.jsonl");
        {
            let mut w = JournalWriter::create(&path, 4).unwrap();
            w.record(&JobResult::ok("a", 1, "1".into())).unwrap();
            w.record(&JobResult::ok("b", 1, "2".into())).unwrap();
            w.record(&JobResult::ok("c", 1, "3".into())).unwrap();
        }
        // Garble the *middle* record: records after the damage must still
        // be restored (skip-and-count, not stop-at-first-error).
        let text = std::fs::read_to_string(&path).unwrap();
        let mangled: Vec<String> = text
            .lines()
            .map(|l| {
                if l.contains("\"job\":\"b\"") {
                    l.chars().take(l.len() / 2).collect()
                } else {
                    l.to_string()
                }
            })
            .collect();
        std::fs::write(&path, format!("{}\n", mangled.join("\n"))).unwrap();
        let state = read_journal(&path, 4).unwrap();
        assert_eq!(state.skipped, 1);
        assert!(state.completed.contains_key("a"));
        assert!(!state.completed.contains_key("b"), "damaged record re-runs");
        assert!(state.completed.contains_key("c"), "records after the damage survive");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_records_restore_once_with_later_winning() {
        let path = tmp("dup.jsonl");
        {
            let mut w = JournalWriter::create(&path, 2).unwrap();
            w.record(&JobResult::ok("a", 1, "first".into())).unwrap();
            w.record(&JobResult::ok("a", 2, "second".into())).unwrap();
            w.record(&JobResult::ok("b", 1, "only".into())).unwrap();
        }
        let state = read_journal(&path, 2).unwrap();
        assert_eq!(state.completed.len(), 2);
        assert_eq!(state.duplicates, 1);
        assert_eq!(state.completed["a"].output.as_deref(), Some("second"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nul_bytes_and_invalid_utf8_cannot_abort_the_read() {
        let path = tmp("nul.jsonl");
        {
            let mut w = JournalWriter::create(&path, 3).unwrap();
            w.record(&JobResult::ok("a", 1, "1".into())).unwrap();
        }
        // Append a line of raw NUL bytes and a line of invalid UTF-8 —
        // both classic torn-write debris.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"\x00\x00\x00\x00\n").unwrap();
        f.write_all(b"{\"job\":\"b\xff\xfe\n").unwrap();
        drop(f);
        let state = read_journal(&path, 3).unwrap();
        assert!(state.completed.contains_key("a"));
        assert_eq!(state.completed.len(), 1);
        assert_eq!(state.skipped, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn job_count_mismatch_is_an_error() {
        let path = tmp("mismatch.jsonl");
        {
            JournalWriter::create(&path, 3).unwrap();
        }
        let err = read_journal(&path, 5).unwrap_err();
        assert!(err.to_string().contains("3 jobs"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let path = tmp("garbage.jsonl");
        std::fs::write(&path, "not json at all\n").unwrap();
        assert!(read_journal(&path, 1).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flat_parser_handles_escapes_and_rejects_garbage() {
        let obj = parse_flat_object(r#"{"a":"x\n\"y\"","n":42,"z":null}"#).unwrap();
        assert_eq!(obj.get("a"), Some(&Field::Str("x\n\"y\"".into())));
        assert_eq!(obj.get("n"), Some(&Field::Num(42)));
        assert_eq!(obj.get("z"), Some(&Field::Null));
        assert_eq!(parse_flat_object(r#"{"u":"A😀"}"#).unwrap().get("u"), Some(&Field::Str("A😀".into())));
        assert!(parse_flat_object(r#"{"a":"x""#).is_none(), "truncated");
        assert!(parse_flat_object(r#"{"a":1} trailing"#).is_none());
        assert!(parse_flat_object("").is_none());
        assert!(parse_flat_object("{}").is_some());
    }
}
