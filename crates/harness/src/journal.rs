//! The JSONL job journal behind `--resume`.
//!
//! Format: one JSON object per line, written with the same hand-rolled
//! conventions as `pim_trace::json` (escaping via
//! [`pim_trace::json::write_escaped`]). The first line is a header:
//!
//! ```text
//! {"journal":"pim-harness","version":1,"jobs":9}
//! ```
//!
//! Each subsequent line records one *terminal* job result:
//!
//! ```text
//! {"job":"texture tiling","status":"ok","attempts":1,"output":"..."}
//! {"job":"bricked","status":"quarantined","attempts":2,"error_label":"watchdog-timeout","error":"..."}
//! ```
//!
//! Lines are appended and flushed as each job completes, so a killed
//! sweep's journal is valid up to (at worst) one truncated trailing line.
//! The reader is corruption-tolerant end to end: unparseable lines
//! anywhere in the body (truncated tails, interleaved partial writes,
//! embedded garbage) are skipped and counted, and duplicated records
//! restore once with the later record winning — resume never aborts on a
//! damaged journal and never runs a journaled job twice. Because entries
//! carry the full result (including the output payload), resuming re-runs
//! only jobs with no intact journal line and merges to bit-identical
//! output.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use pim_chaos::{ChaosConfig, ChaosFile, ChaosPlan};
use pim_trace::json::write_escaped;

use crate::job::{JobResult, JobStatus};
use crate::HarnessError;

/// Magic name in the header line.
const MAGIC: &str = "pim-harness";
/// Journal format version.
const VERSION: u64 = 1;

/// Bound on consecutive transient write stalls (`Interrupted`,
/// `WouldBlock`, `Ok(0)`) retried inside one record before the writer
/// gives up on the record.
const MAX_TRANSIENT_RETRIES: u32 = 64;

/// When to force journal bytes to stable storage.
///
/// `Off` trusts the OS page cache (fast; survives process death but not
/// power loss), `Data` calls `fdatasync` after every record, `Full` calls
/// `fsync` (data + metadata). Selected on the CLI via `--fsync=off|data|full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// No explicit sync; flush to the OS only.
    #[default]
    Off,
    /// `File::sync_data` after each record.
    Data,
    /// `File::sync_all` after each record.
    Full,
}

impl FsyncPolicy {
    /// Parse a `--fsync=` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(Self::Off),
            "data" => Some(Self::Data),
            "full" => Some(Self::Full),
            _ => None,
        }
    }

    /// CLI label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Data => "data",
            Self::Full => "full",
        }
    }
}

/// Where journal bytes go: a real file, a chaos-wrapped file, or an
/// in-memory buffer in tests. The sync hooks let [`FsyncPolicy`] work
/// through any sink; non-file sinks treat them as no-ops.
pub trait JournalSink: Write + Send {
    /// Flush file *data* to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Flush data and metadata to stable storage (`fsync`).
    fn sync_all(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl JournalSink for File {
    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        File::sync_all(self)
    }
}

impl JournalSink for ChaosFile {
    fn sync_data(&mut self) -> io::Result<()> {
        ChaosFile::sync_data(self)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        ChaosFile::sync_all(self)
    }
}

impl JournalSink for Vec<u8> {}

/// Line-oriented durable record writer shared by the harness journal and
/// the `pim-serve` write-ahead journal.
///
/// Guarantees, even over a faulty sink:
///
/// * transient stalls (`Interrupted`, `WouldBlock`, `Ok(0)` short writes)
///   are retried in place up to [`MAX_TRANSIENT_RETRIES`] — a record either
///   lands complete or the call errors;
/// * after a failed record (torn write, disk full, …) the writer is
///   *dirty*: the next successful write emits a leading guard newline so
///   the stranded fragment sits alone on a line the corruption-tolerant
///   reader skips — a torn record can never splice into a later one;
/// * per-record durability follows the [`FsyncPolicy`].
pub struct RecordWriter {
    path: PathBuf,
    sink: Box<dyn JournalSink>,
    fsync: FsyncPolicy,
    dirty: bool,
}

impl RecordWriter {
    /// Truncate/create `path` as the sink.
    pub fn create(path: &Path, fsync: FsyncPolicy) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::from_sink(path, Box::new(file), fsync))
    }

    /// Open `path` for appending.
    pub fn append(path: &Path, fsync: FsyncPolicy) -> io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self::from_sink(path, Box::new(file), fsync))
    }

    /// Wrap an arbitrary sink; `path` is only a label for error messages.
    pub fn from_sink(path: &Path, sink: Box<dyn JournalSink>, fsync: FsyncPolicy) -> Self {
        Self { path: path.to_path_buf(), sink, fsync, dirty: false }
    }

    /// The path label this writer reports in errors.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record line (newline added here). See the type docs for
    /// the fault-tolerance contract.
    pub fn write_line(&mut self, s: &str) -> io::Result<()> {
        if self.dirty {
            // Isolate the previous record's stranded fragment on its own
            // line. If the guard itself fails we stay dirty and the caller
            // sees this record as dropped.
            self.write_fully(b"\n")?;
            self.dirty = false;
        }
        let mut buf = Vec::with_capacity(s.len() + 1);
        buf.extend_from_slice(s.as_bytes());
        buf.push(b'\n');
        if let Err(e) = self.write_fully(&buf) {
            // Unknown how much of the failed call landed; be conservative.
            self.dirty = true;
            return Err(e);
        }
        if let Err(e) = self.sink.flush() {
            self.dirty = true;
            return Err(e);
        }
        match self.fsync {
            FsyncPolicy::Off => Ok(()),
            FsyncPolicy::Data => self.sink.sync_data(),
            FsyncPolicy::Full => self.sink.sync_all(),
        }
    }

    fn write_fully(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut off = 0;
        let mut stalls = 0u32;
        while off < buf.len() {
            match self.sink.write(&buf[off..]) {
                Ok(0) => {
                    stalls += 1;
                    if stalls > MAX_TRANSIENT_RETRIES {
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "journal sink persistently accepted zero bytes",
                        ));
                    }
                }
                Ok(n) => {
                    off += n;
                    stalls = 0;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
                    ) =>
                {
                    stalls += 1;
                    if stalls > MAX_TRANSIENT_RETRIES {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Append-only journal writer; one durably-written line per completed job.
pub struct JournalWriter {
    out: RecordWriter,
}

impl JournalWriter {
    /// Start a fresh journal (truncates) and write the header.
    pub fn create(path: &Path, jobs: usize) -> Result<Self, HarnessError> {
        Self::create_opts(path, jobs, FsyncPolicy::Off, None)
    }

    /// [`JournalWriter::create`] with an explicit durability policy and an
    /// optional chaos fault plan wrapped around the file.
    pub fn create_opts(
        path: &Path,
        jobs: usize,
        fsync: FsyncPolicy,
        chaos: Option<(ChaosConfig, u64)>,
    ) -> Result<Self, HarnessError> {
        let out = match chaos {
            Some((cfg, seed)) => {
                let file = ChaosFile::create(path, ChaosPlan::new(cfg, seed))
                    .map_err(|e| HarnessError::io(path, &e))?;
                RecordWriter::from_sink(path, Box::new(file), fsync)
            }
            None => RecordWriter::create(path, fsync).map_err(|e| HarnessError::io(path, &e))?,
        };
        let mut w = Self { out };
        let header = format!("{{\"journal\":\"{MAGIC}\",\"version\":{VERSION},\"jobs\":{jobs}}}");
        w.line(&header)?;
        Ok(w)
    }

    /// Reopen an existing journal for appending (resume).
    pub fn append(path: &Path) -> Result<Self, HarnessError> {
        Self::append_opts(path, FsyncPolicy::Off, None)
    }

    /// [`JournalWriter::append`] with an explicit durability policy and an
    /// optional chaos fault plan wrapped around the file.
    pub fn append_opts(
        path: &Path,
        fsync: FsyncPolicy,
        chaos: Option<(ChaosConfig, u64)>,
    ) -> Result<Self, HarnessError> {
        let out = match chaos {
            Some((cfg, seed)) => {
                let file = ChaosFile::append(path, ChaosPlan::new(cfg, seed))
                    .map_err(|e| HarnessError::io(path, &e))?;
                RecordWriter::from_sink(path, Box::new(file), fsync)
            }
            None => RecordWriter::append(path, fsync).map_err(|e| HarnessError::io(path, &e))?,
        };
        Ok(Self { out })
    }

    /// Record one terminal result.
    pub fn record(&mut self, r: &JobResult) -> Result<(), HarnessError> {
        self.line(&record_line(r))
    }

    fn line(&mut self, s: &str) -> Result<(), HarnessError> {
        let path = self.out.path().to_path_buf();
        self.out.write_line(s).map_err(|e| HarnessError::io(&path, &e))
    }
}

/// Rewrite a damaged journal atomically, healing it for future resumes:
/// a fresh header plus one intact line per restored record, written to
/// `<path>.tmp`, synced, then renamed over the original. Corrupt debris,
/// duplicate records, and torn fragments disappear; surviving records are
/// re-rendered byte-identically (the record codec round-trips).
pub fn compact_journal(
    path: &Path,
    state: &JournalState,
    jobs: usize,
) -> Result<(), HarnessError> {
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    let io_err = |e: &io::Error| HarnessError::io(&tmp, e);
    {
        let mut file = File::create(&tmp).map_err(|e| io_err(&e))?;
        let mut text =
            format!("{{\"journal\":\"{MAGIC}\",\"version\":{VERSION},\"jobs\":{jobs}}}\n");
        for r in state.completed.values() {
            text.push_str(&record_line(r));
            text.push('\n');
        }
        file.write_all(text.as_bytes()).map_err(|e| io_err(&e))?;
        file.sync_all().map_err(|e| io_err(&e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| HarnessError::io(path, &e))?;
    // Make the rename itself durable where the platform allows it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Render one terminal result as its journal line (no trailing newline).
///
/// Exposed so embedders that keep their own incremental journals — the
/// `pim-serve` server journal interleaves submission records with these
/// result records — serialize results in exactly the harness's format and
/// stay readable by [`parse_result_line`].
pub fn record_line(r: &JobResult) -> String {
    let mut line = String::from("{\"job\":");
    write_escaped(&mut line, &r.id);
    line.push_str(",\"status\":");
    write_escaped(&mut line, r.status.label());
    line.push_str(&format!(",\"attempts\":{}", r.attempts));
    if let Some(label) = &r.error_label {
        line.push_str(",\"error_label\":");
        write_escaped(&mut line, label);
    }
    if let Some(err) = &r.error {
        line.push_str(",\"error\":");
        write_escaped(&mut line, err);
    }
    if let Some(out) = &r.output {
        line.push_str(",\"output\":");
        write_escaped(&mut line, out);
    }
    if let Some(seed) = r.seed {
        line.push_str(&format!(",\"seed\":{seed}"));
    }
    line.push('}');
    line
}

/// Parse one result line written by [`record_line`] back into a
/// [`JobResult`]. Returns `None` for anything malformed — truncated
/// tails, partial lines, non-result records.
pub fn parse_result_line(line: &str) -> Option<JobResult> {
    result_from_fields(&parse_flat_object(line)?)
}

/// Parsed journal: completed results keyed by job id.
#[derive(Debug, Default)]
pub struct JournalState {
    /// Terminal results restored from the journal.
    pub completed: BTreeMap<String, JobResult>,
    /// Body lines that were corrupt (truncated, garbled, interleaved
    /// partial writes) and skipped rather than aborting the resume.
    pub skipped: usize,
    /// Result records that repeated a job id already restored; the later
    /// record wins, and the job is still resumed exactly once.
    pub duplicates: usize,
}

/// Read a journal back for `--resume`.
///
/// # Errors
///
/// Fails if the file cannot be read, the header is missing or does not
/// match this harness/version, or the recorded job count differs from the
/// sweep being resumed (the journal belongs to a different sweep).
///
/// Body corruption is *never* an error: truncated tails, interleaved
/// partial lines, embedded garbage, and duplicated records are skipped
/// and counted ([`JournalState::skipped`] / [`JournalState::duplicates`]).
/// A job whose record was destroyed simply re-runs; a job with any intact
/// record is restored exactly once, never re-run.
pub fn read_journal(path: &Path, expected_jobs: usize) -> Result<JournalState, HarnessError> {
    let bytes = std::fs::read(path).map_err(|e| HarnessError::io(path, &e))?;
    // Corruption can include invalid UTF-8; decode lossily so one garbled
    // line cannot abort the whole resume. Replacement characters make the
    // affected line unparseable, which is exactly skip-and-count.
    let text = String::from_utf8_lossy(&bytes);
    let mut lines = text.lines();
    let header = lines
        .next()
        .and_then(parse_flat_object)
        .ok_or_else(|| HarnessError::mismatch(path, "missing or unreadable header line"))?;
    match (header.get("journal"), header.get("version"), header.get("jobs")) {
        (Some(Field::Str(m)), Some(Field::Num(v)), Some(Field::Num(jobs)))
            if m == MAGIC && *v == VERSION =>
        {
            if *jobs as usize != expected_jobs {
                return Err(HarnessError::mismatch(
                    path,
                    &format!("journal records {jobs} jobs but this sweep has {expected_jobs}"),
                ));
            }
        }
        _ => return Err(HarnessError::mismatch(path, "header is not a pim-harness v1 journal")),
    }

    let mut state = JournalState::default();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let Some(result) = parse_result_line(line) else {
            state.skipped += 1;
            continue;
        };
        if state.completed.insert(result.id.clone(), result).is_some() {
            state.duplicates += 1;
        }
    }
    Ok(state)
}

fn result_from_fields(fields: &BTreeMap<String, Field>) -> Option<JobResult> {
    let id = match fields.get("job")? {
        Field::Str(s) => s.clone(),
        _ => return None,
    };
    let status = match fields.get("status")? {
        Field::Str(s) => JobStatus::from_label(s)?,
        _ => return None,
    };
    let attempts = match fields.get("attempts")? {
        Field::Num(n) => u32::try_from(*n).ok()?,
        _ => return None,
    };
    let get_str = |key: &str| match fields.get(key) {
        Some(Field::Str(s)) => Some(s.clone()),
        _ => None,
    };
    let output = get_str("output");
    // A succeeded entry must carry its payload; anything else is corrupt.
    if status == JobStatus::Succeeded && output.is_none() {
        return None;
    }
    let seed = match fields.get("seed") {
        Some(Field::Num(n)) => Some(*n),
        _ => None,
    };
    Some(JobResult {
        id,
        status,
        attempts,
        output,
        error_label: get_str("error_label"),
        error: get_str("error"),
        seed,
    })
}

/// A scalar field of a flat journal object.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// JSON string (unescaped).
    Str(String),
    /// Non-negative integer.
    Num(u64),
    /// JSON `null`.
    Null,
}

/// Parse one flat JSON object (string / unsigned-integer / null values
/// only — exactly what the journal writes). Returns `None` on any
/// malformation, including trailing garbage, so truncated lines from a
/// killed process are rejected rather than half-read.
pub fn parse_flat_object(line: &str) -> Option<BTreeMap<String, Field>> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = BTreeMap::new();
    if chars.next()? != '{' {
        return None;
    }
    if chars.peek() == Some(&'}') {
        chars.next();
        return if chars.next().is_none() { Some(fields) } else { None };
    }
    loop {
        if chars.next()? != '"' {
            return None;
        }
        let key = parse_string_body(&mut chars)?;
        if chars.next()? != ':' {
            return None;
        }
        let value = match chars.peek()? {
            '"' => {
                chars.next();
                Field::Str(parse_string_body(&mut chars)?)
            }
            'n' => {
                for expect in ['n', 'u', 'l', 'l'] {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                Field::Null
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                    n = n.checked_mul(10)?.checked_add(u64::from(d))?;
                    chars.next();
                }
                Field::Num(n)
            }
            _ => return None,
        };
        fields.insert(key, value);
        match chars.next()? {
            ',' => continue,
            '}' => break,
            _ => return None,
        }
    }
    if chars.next().is_none() {
        Some(fields)
    } else {
        None
    }
}

/// Parse a JSON string body after the opening quote, handling the escapes
/// `write_escaped` emits (plus `\uXXXX` surrogate pairs for safety).
fn parse_string_body(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let hi = parse_hex4(chars)?;
                    let cp = if (0xD800..0xDC00).contains(&hi) {
                        // Surrogate pair: expect \uXXXX low half next.
                        if chars.next()? != '\\' || chars.next()? != 'u' {
                            return None;
                        }
                        let lo = parse_hex4(chars)?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return None;
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        hi
                    };
                    out.push(char::from_u32(cp)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

fn parse_hex4(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<u32> {
    let mut v = 0u32;
    for _ in 0..4 {
        v = v * 16 + chars.next()?.to_digit(16)?;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobFailure;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pim-harness-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn write_then_read_round_trips() {
        let path = tmp("roundtrip.jsonl");
        let results = vec![
            JobResult::ok("plain", 1, "x=1|y=2.5".into()),
            JobResult::ok("weird \"chars\"\n\ttabs", 2, "line1\nline2\\end \u{1}".into()),
            JobResult::failed(
                "panicker",
                JobStatus::Failed,
                1,
                &JobFailure::Panicked { message: "index out of bounds: the len is 3".into() },
            ),
            JobResult::failed(
                "hung",
                JobStatus::Quarantined,
                2,
                &JobFailure::WallTimeout { limit_ms: 25 },
            ),
            JobResult::ok("seeded", 1, "payload".into()).with_seed(Some(u64::MAX)),
            JobResult::failed(
                "seeded-quarantine",
                JobStatus::Quarantined,
                2,
                &JobFailure::WallTimeout { limit_ms: 25 },
            )
            .with_seed(Some(7)),
        ];
        {
            let mut w = JournalWriter::create(&path, results.len()).unwrap();
            for r in &results {
                w.record(r).unwrap();
            }
        }
        let state = read_journal(&path, results.len()).unwrap();
        assert_eq!(state.completed.len(), results.len());
        for r in &results {
            assert_eq!(state.completed.get(&r.id), Some(r));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let path = tmp("truncated.jsonl");
        {
            let mut w = JournalWriter::create(&path, 3).unwrap();
            w.record(&JobResult::ok("a", 1, "1".into())).unwrap();
            w.record(&JobResult::ok("b", 1, "2".into())).unwrap();
        }
        // Simulate a kill mid-write: chop the last line in half.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 10;
        std::fs::write(&path, &text[..cut]).unwrap();
        let state = read_journal(&path, 3).unwrap();
        assert_eq!(state.completed.len(), 1);
        assert!(state.completed.contains_key("a"));
        assert_eq!(state.skipped, 1, "the chopped line is counted, not fatal");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_journal_corruption_is_skipped_and_counted() {
        let path = tmp("midcorrupt.jsonl");
        {
            let mut w = JournalWriter::create(&path, 4).unwrap();
            w.record(&JobResult::ok("a", 1, "1".into())).unwrap();
            w.record(&JobResult::ok("b", 1, "2".into())).unwrap();
            w.record(&JobResult::ok("c", 1, "3".into())).unwrap();
        }
        // Garble the *middle* record: records after the damage must still
        // be restored (skip-and-count, not stop-at-first-error).
        let text = std::fs::read_to_string(&path).unwrap();
        let mangled: Vec<String> = text
            .lines()
            .map(|l| {
                if l.contains("\"job\":\"b\"") {
                    l.chars().take(l.len() / 2).collect()
                } else {
                    l.to_string()
                }
            })
            .collect();
        std::fs::write(&path, format!("{}\n", mangled.join("\n"))).unwrap();
        let state = read_journal(&path, 4).unwrap();
        assert_eq!(state.skipped, 1);
        assert!(state.completed.contains_key("a"));
        assert!(!state.completed.contains_key("b"), "damaged record re-runs");
        assert!(state.completed.contains_key("c"), "records after the damage survive");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_records_restore_once_with_later_winning() {
        let path = tmp("dup.jsonl");
        {
            let mut w = JournalWriter::create(&path, 2).unwrap();
            w.record(&JobResult::ok("a", 1, "first".into())).unwrap();
            w.record(&JobResult::ok("a", 2, "second".into())).unwrap();
            w.record(&JobResult::ok("b", 1, "only".into())).unwrap();
        }
        let state = read_journal(&path, 2).unwrap();
        assert_eq!(state.completed.len(), 2);
        assert_eq!(state.duplicates, 1);
        assert_eq!(state.completed["a"].output.as_deref(), Some("second"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nul_bytes_and_invalid_utf8_cannot_abort_the_read() {
        let path = tmp("nul.jsonl");
        {
            let mut w = JournalWriter::create(&path, 3).unwrap();
            w.record(&JobResult::ok("a", 1, "1".into())).unwrap();
        }
        // Append a line of raw NUL bytes and a line of invalid UTF-8 —
        // both classic torn-write debris.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"\x00\x00\x00\x00\n").unwrap();
        f.write_all(b"{\"job\":\"b\xff\xfe\n").unwrap();
        drop(f);
        let state = read_journal(&path, 3).unwrap();
        assert!(state.completed.contains_key("a"));
        assert_eq!(state.completed.len(), 1);
        assert_eq!(state.skipped, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn job_count_mismatch_is_an_error() {
        let path = tmp("mismatch.jsonl");
        {
            JournalWriter::create(&path, 3).unwrap();
        }
        let err = read_journal(&path, 5).unwrap_err();
        assert!(err.to_string().contains("3 jobs"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let path = tmp("garbage.jsonl");
        std::fs::write(&path, "not json at all\n").unwrap();
        assert!(read_journal(&path, 1).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_policy_parses_cli_labels() {
        assert_eq!(FsyncPolicy::parse("off"), Some(FsyncPolicy::Off));
        assert_eq!(FsyncPolicy::parse("data"), Some(FsyncPolicy::Data));
        assert_eq!(FsyncPolicy::parse("full"), Some(FsyncPolicy::Full));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        for p in [FsyncPolicy::Off, FsyncPolicy::Data, FsyncPolicy::Full] {
            assert_eq!(FsyncPolicy::parse(p.label()), Some(p));
        }
    }

    #[test]
    fn synced_journal_round_trips_under_every_policy() {
        for policy in [FsyncPolicy::Off, FsyncPolicy::Data, FsyncPolicy::Full] {
            let path = tmp(&format!("fsync-{}.jsonl", policy.label()));
            {
                let mut w = JournalWriter::create_opts(&path, 2, policy, None).unwrap();
                w.record(&JobResult::ok("a", 1, "1".into())).unwrap();
                w.record(&JobResult::ok("b", 1, "2".into())).unwrap();
            }
            let state = read_journal(&path, 2).unwrap();
            assert_eq!(state.completed.len(), 2, "policy {}", policy.label());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn record_writer_retries_transient_stalls_to_completion() {
        use pim_chaos::{ChaosConfig, ChaosPlan, ChaosWriter};

        // A sink that storms Interrupted/WouldBlock/Ok(0) but never tears:
        // every record must land complete.
        struct Wrapped(ChaosWriter<Vec<u8>>);
        impl std::io::Write for Wrapped {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.write(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                self.0.flush()
            }
        }
        impl JournalSink for Wrapped {}

        for seed in 0..16 {
            let sink = Wrapped(ChaosWriter::new(
                Vec::new(),
                ChaosPlan::new(ChaosConfig::interrupts(), seed),
            ));
            let label = PathBuf::from("mem:interrupts");
            let mut w = RecordWriter::from_sink(&label, Box::new(sink), FsyncPolicy::Off);
            for i in 0..20 {
                w.write_line(&format!("{{\"line\":{i}}}")).unwrap();
            }
            // We cannot read the Vec back out through the Box<dyn>, but a
            // zero-error run is the property: no stall was ever terminal.
        }
    }

    #[test]
    fn dirty_writer_guards_torn_fragments_with_a_newline() {
        use std::sync::{Arc, Mutex};

        // A sink whose first write call tears mid-record, then heals. The
        // backing store is shared so the test can inspect what "landed on
        // disk" after the writer is boxed away.
        struct TearOnce {
            buf: Arc<Mutex<Vec<u8>>>,
            torn: bool,
        }
        impl std::io::Write for TearOnce {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if !self.torn {
                    self.torn = true;
                    let keep = buf.len() / 2;
                    self.buf.lock().unwrap().extend_from_slice(&buf[..keep]);
                    return Err(io::Error::new(io::ErrorKind::BrokenPipe, "torn"));
                }
                self.buf.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        impl JournalSink for TearOnce {}

        let shared = Arc::new(Mutex::new(Vec::new()));
        let label = PathBuf::from("mem:tear");
        let sink = TearOnce { buf: shared.clone(), torn: false };
        let mut w = RecordWriter::from_sink(&label, Box::new(sink), FsyncPolicy::Off);
        let first = record_line(&JobResult::ok("victim", 1, "lost".into()));
        assert!(w.write_line(&first).is_err(), "first record tears");
        let second = record_line(&JobResult::ok("survivor", 1, "kept".into()));
        w.write_line(&second).unwrap();

        let bytes = shared.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Torn fragment isolated on its own (unparseable) line; the
        // survivor record is intact and restorable.
        assert_eq!(lines.len(), 2, "fragment + survivor: {text:?}");
        assert!(parse_result_line(lines[0]).is_none(), "fragment must not parse");
        assert_eq!(
            parse_result_line(lines[1]).unwrap().id,
            "survivor",
            "guard newline isolated the fragment"
        );
    }

    #[test]
    fn compaction_heals_a_damaged_journal_atomically() {
        let path = tmp("compact.jsonl");
        {
            let mut w = JournalWriter::create(&path, 3).unwrap();
            w.record(&JobResult::ok("a", 1, "1".into())).unwrap();
            w.record(&JobResult::ok("a", 2, "1-again".into())).unwrap();
            w.record(&JobResult::ok("b", 1, "2".into())).unwrap();
        }
        // Damage: append torn debris.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"job\":\"c\",\"sta").unwrap();
        }
        let before = read_journal(&path, 3).unwrap();
        assert_eq!(before.skipped, 1);
        assert_eq!(before.duplicates, 1);

        compact_journal(&path, &before, 3).unwrap();
        assert!(!PathBuf::from(format!("{}.tmp", path.display())).exists());

        let after = read_journal(&path, 3).unwrap();
        assert_eq!(after.skipped, 0, "debris compacted away");
        assert_eq!(after.duplicates, 0);
        assert_eq!(after.completed.len(), 2);
        assert_eq!(after.completed["a"].output.as_deref(), Some("1-again"), "later record won");
        assert_eq!(after.completed["b"].output.as_deref(), Some("2"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flat_parser_handles_escapes_and_rejects_garbage() {
        let obj = parse_flat_object(r#"{"a":"x\n\"y\"","n":42,"z":null}"#).unwrap();
        assert_eq!(obj.get("a"), Some(&Field::Str("x\n\"y\"".into())));
        assert_eq!(obj.get("n"), Some(&Field::Num(42)));
        assert_eq!(obj.get("z"), Some(&Field::Null));
        assert_eq!(parse_flat_object(r#"{"u":"A😀"}"#).unwrap().get("u"), Some(&Field::Str("A😀".into())));
        assert!(parse_flat_object(r#"{"a":"x""#).is_none(), "truncated");
        assert!(parse_flat_object(r#"{"a":1} trailing"#).is_none());
        assert!(parse_flat_object("").is_none());
        assert!(parse_flat_object("{}").is_some());
    }
}
