//! Sweep-level failure reporting.
//!
//! After a sweep, the supervisor folds every terminal [`JobResult`] into a
//! [`SweepReport`]: per-job records in input order plus a
//! [`FailureSummary`] with succeeded / retried / quarantined / failed
//! counts and an error-label taxonomy. The summary is derived purely from
//! the results, so a resumed sweep (where some results were restored from
//! the journal) reports identically to an uninterrupted one.

use std::collections::BTreeMap;

use pim_trace::JsonValue;

use crate::job::{JobResult, JobStatus};

/// Aggregate counts over a sweep's terminal results.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailureSummary {
    /// Total jobs in the sweep.
    pub total: usize,
    /// Jobs that produced a payload.
    pub succeeded: usize,
    /// Jobs that needed more than one attempt (any terminal status).
    pub retried: usize,
    /// Jobs benched after repeated timeouts.
    pub quarantined: usize,
    /// Jobs that gave up for a non-timeout reason.
    pub failed: usize,
    /// Terminal-error taxonomy: label → count (e.g. `panic`,
    /// `wall-timeout`, `watchdog-timeout`, `invalid-config`, fault kinds).
    pub taxonomy: BTreeMap<String, u64>,
}

impl FailureSummary {
    /// Derive the summary from terminal results.
    pub fn from_results(results: &[JobResult]) -> Self {
        let mut s = FailureSummary { total: results.len(), ..Self::default() };
        for r in results {
            match r.status {
                JobStatus::Succeeded => s.succeeded += 1,
                JobStatus::Failed => s.failed += 1,
                JobStatus::Quarantined => s.quarantined += 1,
            }
            if r.attempts > 1 {
                s.retried += 1;
            }
            if let Some(label) = &r.error_label {
                *s.taxonomy.entry(label.clone()).or_insert(0) += 1;
            }
        }
        s
    }

    /// True when every job succeeded.
    pub fn all_ok(&self) -> bool {
        self.succeeded == self.total
    }

    /// Render as a JSON object (deterministic key order; the taxonomy is
    /// a `BTreeMap`, so label order is stable too).
    pub fn to_json_value(&self) -> JsonValue {
        let mut tax = JsonValue::object();
        for (label, count) in &self.taxonomy {
            tax = tax.set(label.as_str(), *count);
        }
        JsonValue::object()
            .set("total", self.total as u64)
            .set("succeeded", self.succeeded as u64)
            .set("retried", self.retried as u64)
            .set("quarantined", self.quarantined as u64)
            .set("failed", self.failed as u64)
            .set("taxonomy", tax)
    }

    /// One-line human rendering for CLI output.
    pub fn one_line(&self) -> String {
        format!(
            "{}/{} succeeded, {} retried, {} quarantined, {} failed",
            self.succeeded, self.total, self.retried, self.quarantined, self.failed
        )
    }
}

/// Everything a finished sweep produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Terminal results in the input job order (not completion order), so
    /// merged output is independent of worker count and scheduling.
    pub results: Vec<JobResult>,
    /// How many of those were restored from a resume journal instead of
    /// re-run.
    pub resumed: usize,
    /// Corrupt or foreign journal lines skipped during resume (truncated
    /// tails, interleaved partial writes, mangled ids). Zero for fresh
    /// runs; nonzero means the journal was damaged but the sweep healed
    /// by re-running the affected jobs.
    pub journal_skipped: usize,
    /// Terminal results that could not be persisted to the journal (torn
    /// write, disk full, …). The sweep still completed — journal
    /// degradation never aborts computation — but the affected jobs will
    /// re-run if this journal is later resumed.
    pub journal_dropped: usize,
}

impl SweepReport {
    /// Aggregate counts.
    pub fn summary(&self) -> FailureSummary {
        FailureSummary::from_results(&self.results)
    }

    /// True when every job succeeded.
    pub fn all_ok(&self) -> bool {
        self.summary().all_ok()
    }

    /// Quarantined results, in input order: the shards/jobs benched after
    /// repeated timeouts, each with its seed (when the job carried one) so
    /// the exact configuration can be replayed from the report alone.
    pub fn quarantined(&self) -> Vec<&JobResult> {
        self.results.iter().filter(|r| r.status == JobStatus::Quarantined).collect()
    }

    /// Render the failure report (summary + per-job dispositions) as a
    /// JSON object for scorecards and artifacts.
    pub fn to_json_value(&self) -> JsonValue {
        let summary = self.summary();
        let mut jobs = JsonValue::array();
        for r in &self.results {
            let mut o = JsonValue::object()
                .set("job", r.id.as_str())
                .set("status", r.status.label())
                .set("attempts", u64::from(r.attempts));
            if let Some(label) = &r.error_label {
                o = o.set("error_label", label.as_str());
            }
            if let Some(err) = &r.error {
                o = o.set("error", err.as_str());
            }
            if let Some(seed) = r.seed {
                o = o.set("seed", seed);
            }
            jobs = jobs.push(o);
        }
        // Quarantined jobs get a dedicated, scriptable block: id + seed +
        // taxonomy label, so a replay driver does not have to sift the
        // full per-job list.
        let mut quarantined = JsonValue::array();
        for r in self.quarantined() {
            let mut o = JsonValue::object().set("job", r.id.as_str());
            if let Some(seed) = r.seed {
                o = o.set("seed", seed);
            }
            if let Some(label) = &r.error_label {
                o = o.set("error_label", label.as_str());
            }
            quarantined = quarantined.push(o);
        }
        JsonValue::object()
            .set("summary", summary.to_json_value())
            .set("resumed", self.resumed as u64)
            .set("journal_skipped", self.journal_skipped as u64)
            .set("journal_dropped", self.journal_dropped as u64)
            .set("quarantined", quarantined)
            .set("jobs", jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobFailure;

    fn sample() -> Vec<JobResult> {
        vec![
            JobResult::ok("a", 1, "1".into()),
            JobResult::ok("b", 3, "2".into()),
            JobResult::failed("c", JobStatus::Failed, 1, &JobFailure::Panicked { message: "x".into() }),
            JobResult::failed("d", JobStatus::Quarantined, 2, &JobFailure::WallTimeout { limit_ms: 5 })
                .with_seed(Some(0xBEEF)),
        ]
    }

    #[test]
    fn summary_counts_and_taxonomy() {
        let s = FailureSummary::from_results(&sample());
        assert_eq!(s.total, 4);
        assert_eq!(s.succeeded, 2);
        assert_eq!(s.retried, 2, "b (3 attempts) and d (2 attempts)");
        assert_eq!(s.failed, 1);
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.taxonomy.get("panic"), Some(&1));
        assert_eq!(s.taxonomy.get("wall-timeout"), Some(&1));
        assert!(!s.all_ok());
    }

    #[test]
    fn report_json_is_deterministic() {
        let rep = SweepReport {
            results: sample(),
            resumed: 1,
            journal_skipped: 0,
            journal_dropped: 0,
        };
        let a = rep.to_json_value().render();
        let b = rep.to_json_value().render();
        assert_eq!(a, b);
        assert!(a.contains("\"quarantined\":1"));
        assert!(a.contains("\"resumed\":1"));
        assert!(a.contains("\"error_label\":\"panic\""));
    }

    #[test]
    fn quarantined_jobs_are_listed_with_replayable_seeds() {
        let rep = SweepReport {
            results: sample(),
            resumed: 0,
            journal_skipped: 0,
            journal_dropped: 0,
        };
        let q = rep.quarantined();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].id, "d");
        assert_eq!(q[0].seed, Some(0xBEEF));
        let json = rep.to_json_value().render();
        // The dedicated block carries id + seed + taxonomy so replays are
        // scriptable without sifting the per-job list.
        assert!(
            json.contains(
                "\"quarantined\":[{\"job\":\"d\",\"seed\":48879,\"error_label\":\"wall-timeout\"}]"
            ),
            "{json}"
        );
    }
}
