//! The supervised worker pool.
//!
//! A fixed pool of `std::thread` workers pops attempts from a shared
//! queue and runs each job closure under `catch_unwind`. The supervisor
//! thread (the caller of [`Harness::run`]) multiplexes worker completion
//! messages against wall-clock deadlines and delayed retries:
//!
//! * a panic becomes [`JobFailure::Panicked`] — the worker survives;
//! * a wall-deadline overrun abandons the stuck worker (std threads
//!   cannot be killed; the worker is left to finish or leak and a
//!   replacement is spawned) and counts as a timeout strike;
//! * timeout-class failures (wall or simulated watchdog) retry with
//!   capped exponential backoff until the strike limit quarantines the
//!   job; transient simulation faults retry up to `max_retries`;
//! * every terminal result is journaled immediately, so a killed sweep
//!   resumes from its journal re-running only unfinished jobs.

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pim_chaos::ChaosConfig;
use pim_faults::Watchdog;
use pim_trace::Tracer;

use crate::job::{Job, JobCtx, JobFailure, JobResult, JobStatus};
use crate::journal::{compact_journal, read_journal, FsyncPolicy, JournalWriter};
use crate::report::SweepReport;

/// Retry, quarantine, deadline, and parallelism policy for one sweep.
#[derive(Debug, Clone)]
pub struct HarnessPolicy {
    /// Worker threads. 1 reproduces a serial run exactly.
    pub workers: usize,
    /// Max ordinary retries for transient simulation faults.
    pub max_retries: u32,
    /// Timeout strikes (wall or simulated watchdog) before a job is
    /// quarantined.
    pub quarantine_strikes: u32,
    /// Base backoff between retries of the same job.
    pub retry_backoff: Duration,
    /// Cap on the exponentially growing backoff.
    pub backoff_cap: Duration,
    /// Per-attempt wall-clock deadline; `None` disables wall supervision.
    pub wall_deadline: Option<Duration>,
    /// Simulated-time watchdog handed to every job via [`JobCtx`].
    pub watchdog: Watchdog,
    /// Journal durability: when to force record bytes to stable storage.
    pub fsync: FsyncPolicy,
}

impl Default for HarnessPolicy {
    fn default() -> Self {
        Self {
            workers: 1,
            max_retries: 2,
            quarantine_strikes: 2,
            retry_backoff: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(80),
            wall_deadline: None,
            watchdog: Watchdog::unlimited(),
            fsync: FsyncPolicy::Off,
        }
    }
}

impl HarnessPolicy {
    /// Backoff before retry number `retry` (1-based), doubling from
    /// [`HarnessPolicy::retry_backoff`] up to [`HarnessPolicy::backoff_cap`].
    ///
    /// Fully saturating: any retry count — up to `u32::MAX` — and any
    /// base/cap combination produces a well-defined duration clamped to
    /// the cap, never an overflow panic.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1);
        // 2^exp as a saturating u32 factor; Duration::saturating_mul
        // absorbs the rest. Exponents ≥ 31 would overflow the shift and
        // are already far past any realistic cap.
        let factor = match 1u32.checked_shl(exp) {
            Some(f) if exp < 31 => f,
            _ => u32::MAX,
        };
        self.retry_backoff.saturating_mul(factor).min(self.backoff_cap)
    }
}

/// Errors from the harness itself (never from jobs — those are folded
/// into [`JobResult`]s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// Journal file I/O failed.
    Io {
        /// Journal path.
        path: String,
        /// OS error rendered as text.
        what: String,
    },
    /// A resume journal does not belong to this sweep.
    JournalMismatch {
        /// Journal path.
        path: String,
        /// What disagreed.
        what: String,
    },
    /// Two jobs share an id; the journal could not distinguish them.
    DuplicateJob {
        /// The offending id.
        id: String,
    },
}

impl HarnessError {
    pub(crate) fn io(path: &Path, e: &std::io::Error) -> Self {
        Self::Io { path: path.display().to_string(), what: e.to_string() }
    }

    pub(crate) fn mismatch(path: &Path, what: &str) -> Self {
        Self::JournalMismatch { path: path.display().to_string(), what: what.to_string() }
    }
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Io { path, what } => write!(f, "journal {path}: {what}"),
            HarnessError::JournalMismatch { path, what } => {
                write!(f, "journal {path} does not match this sweep: {what}")
            }
            HarnessError::DuplicateJob { id } => write!(f, "duplicate job id {id:?}"),
        }
    }
}

impl std::error::Error for HarnessError {}

/// The sweep runner. Build with [`Harness::new`], optionally attach a
/// tracer and journal, then call [`Harness::run`].
pub struct Harness {
    policy: HarnessPolicy,
    tracer: Tracer,
    journal: Option<PathBuf>,
    resume: bool,
    journal_chaos: Option<(ChaosConfig, u64)>,
}

impl Harness {
    /// A harness with the given policy, no tracing, no journal.
    pub fn new(policy: HarnessPolicy) -> Self {
        Self {
            policy,
            tracer: Tracer::disabled(),
            journal: None,
            resume: false,
            journal_chaos: None,
        }
    }

    /// Attach a tracer; each job gets its own `job:<id>` track.
    #[must_use]
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self
    }

    /// Journal terminal results to `path`, truncating any existing file.
    #[must_use]
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self.resume = false;
        self
    }

    /// Resume from (and keep appending to) the journal at `path`.
    #[must_use]
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self.resume = true;
        self
    }

    /// Wrap the journal file in a seeded chaos fault plan (testing only):
    /// journal writes then suffer the plan's torn writes, transient stalls
    /// and disk-full onsets while the sweep itself keeps computing.
    #[must_use]
    pub fn with_journal_chaos(mut self, cfg: ChaosConfig, seed: u64) -> Self {
        self.journal_chaos = Some((cfg, seed));
        self
    }

    /// Run the sweep to completion and return the merged report.
    ///
    /// # Errors
    ///
    /// Only harness-level problems (duplicate job ids, journal I/O or
    /// mismatch) surface as `Err`. Job failures of every kind — panics,
    /// timeouts, simulation errors — are captured in the report.
    pub fn run(&self, jobs: Vec<Job>) -> Result<SweepReport, HarnessError> {
        let mut seen = HashSet::new();
        for j in &jobs {
            if !seen.insert(j.id.clone()) {
                return Err(HarnessError::DuplicateJob { id: j.id.clone() });
            }
        }

        // Restore completed work from the journal when resuming.
        let mut slots: Vec<Option<JobResult>> = vec![None; jobs.len()];
        let mut resumed = 0usize;
        let mut journal_skipped = 0usize;
        let mut writer = match (&self.journal, self.resume) {
            (Some(path), true) if path.exists() => {
                let state = read_journal(path, jobs.len())?;
                // Corrupt lines were skipped by the reader; entries whose
                // (possibly mangled) id matches no job in this sweep are
                // skipped the same way — a damaged journal re-runs work,
                // it never aborts the resume.
                journal_skipped = state.skipped
                    + state.completed.keys().filter(|id| !seen.contains(*id)).count();
                for (idx, job) in jobs.iter().enumerate() {
                    if let Some(r) = state.completed.get(&job.id) {
                        slots[idx] = Some(r.clone());
                        resumed += 1;
                    }
                }
                if state.skipped > 0 || state.duplicates > 0 {
                    // Heal the damage before appending: rewrite the journal
                    // as header + intact records via atomic tmp+rename. A
                    // failed compaction (e.g. full disk) is not fatal — the
                    // reader tolerates the debris anyway.
                    if let Err(e) = compact_journal(path, &state, jobs.len()) {
                        eprintln!("pim-harness: journal compaction skipped: {e}");
                    }
                }
                Some(JournalWriter::append_opts(path, self.policy.fsync, self.journal_chaos)?)
            }
            // Resuming from a journal that does not exist yet degrades to
            // a fresh journaled run, so the first and the resumed
            // invocation can share a command line.
            (Some(path), _) => {
                match JournalWriter::create_opts(
                    path,
                    jobs.len(),
                    self.policy.fsync,
                    self.journal_chaos,
                ) {
                    Ok(w) => Some(w),
                    // The file was created but the header write failed
                    // (torn write, disk already full, …). A headerless
                    // journal can never be resumed, so drop it and keep
                    // computing unjournaled rather than aborting the sweep.
                    Err(e) if path.exists() => {
                        eprintln!(
                            "pim-harness: journal disabled (header write failed), \
                             sweep continues unjournaled: {e}"
                        );
                        let _ = std::fs::remove_file(path);
                        None
                    }
                    Err(e) => return Err(e),
                }
            }
            (None, _) => None,
        };
        // With the journal requested but unavailable, every pending result
        // counts as dropped from persistence.
        let journal_disabled = self.journal.is_some() && writer.is_none();

        let pending: Vec<usize> =
            (0..jobs.len()).filter(|&i| slots[i].is_none()).collect();
        let mut journal_dropped = if pending.is_empty() {
            0
        } else {
            self.supervise(&jobs, &pending, &mut slots, writer.as_mut())?
        };
        if journal_disabled {
            journal_dropped += pending.len();
        }
        drop(writer);

        let results = slots.into_iter().map(|s| s.expect("every job has a terminal result")).collect();
        Ok(SweepReport { results, resumed, journal_skipped, journal_dropped })
    }

    /// Run the pending jobs on the pool, filling `slots`. Returns how many
    /// terminal results could not be journaled (journal degradation: the
    /// sweep keeps computing; dropped records simply re-run on resume).
    fn supervise(
        &self,
        jobs: &[Job],
        pending: &[usize],
        slots: &mut [Option<JobResult>],
        writer: Option<&mut JournalWriter>,
    ) -> Result<usize, HarnessError> {
        let mut writer = JournalLane { writer, dropped: 0, warned: false };
        let workers = self.policy.workers.max(1).min(pending.len().max(1));
        let shared = Arc::new(Shared::default());
        let jobs_arc: Arc<Vec<Job>> = Arc::new(jobs.to_vec());
        let (tx, rx) = std::sync::mpsc::channel::<Msg>();

        let mut pool = Pool { next_id: 0, handles: HashMap::new() };
        for _ in 0..workers {
            pool.spawn(&jobs_arc, &shared, &tx, &self.tracer, self.policy.watchdog);
        }

        // Per-job supervision state, keyed by job index.
        let mut state: HashMap<usize, Supervision> =
            pending.iter().map(|&i| (i, Supervision::default())).collect();
        let mut outstanding: HashMap<usize, Outstanding> = HashMap::new();
        let mut delayed: Vec<(Instant, Attempt)> = Vec::new();
        let mut remaining = pending.len();

        // Initial dispatch in input order.
        {
            let mut q = shared.queue.lock().expect("queue poisoned");
            for &idx in pending {
                q.ready.push_back(Attempt { job_idx: idx, attempt: 1 });
                outstanding
                    .insert(idx, Outstanding { attempt: 1, worker: None, deadline: None });
            }
            shared.cv.notify_all();
        }

        while remaining > 0 {
            // Promote due retries.
            let now = Instant::now();
            let mut promoted = false;
            delayed.retain(|(due, att)| {
                if *due <= now {
                    let mut q = shared.queue.lock().expect("queue poisoned");
                    q.ready.push_back(*att);
                    promoted = true;
                    false
                } else {
                    true
                }
            });
            if promoted {
                shared.cv.notify_all();
            }

            // Sleep until the next message, deadline, or retry due time.
            let next_deadline = outstanding
                .values()
                .filter_map(|o| o.deadline)
                .chain(delayed.iter().map(|(due, _)| *due))
                .min();
            let msg = match next_deadline {
                Some(at) => {
                    let wait = at.saturating_duration_since(Instant::now());
                    match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
                        Ok(m) => Some(m),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                None => match rx.recv() {
                    Ok(m) => Some(m),
                    Err(_) => break,
                },
            };

            match msg {
                Some(Msg::Started { worker, job_idx, attempt }) => {
                    // The deadline clock starts when a worker actually
                    // picks the attempt up, not while it sits queued.
                    if let Some(o) = outstanding.get_mut(&job_idx) {
                        if o.attempt == attempt {
                            o.worker = Some(worker);
                            o.deadline =
                                self.policy.wall_deadline.map(|d| Instant::now() + d);
                        }
                    }
                }
                Some(Msg::Done { job_idx, attempt, outcome, .. }) => {
                    let current = outstanding.get(&job_idx).map(|o| o.attempt);
                    if current != Some(attempt) {
                        // Stale completion from an abandoned worker whose
                        // attempt was already written off.
                        continue;
                    }
                    outstanding.remove(&job_idx);
                    let st = state.get_mut(&job_idx).expect("supervised job");
                    match outcome {
                        Ok(output) => {
                            let r = JobResult::ok(jobs[job_idx].id.clone(), attempt, output)
                                .with_seed(jobs[job_idx].seed);
                            writer.record(&r);
                            slots[job_idx] = Some(r);
                            remaining -= 1;
                        }
                        Err(failure) => {
                            match self.disposition(st, &failure) {
                                Disposition::Retry(delay) => {
                                    let next = Attempt { job_idx, attempt: attempt + 1 };
                                    outstanding.insert(
                                        job_idx,
                                        Outstanding {
                                            attempt: attempt + 1,
                                            worker: None,
                                            deadline: None,
                                        },
                                    );
                                    delayed.push((Instant::now() + delay, next));
                                }
                                Disposition::Terminal(status) => {
                                    let r = JobResult::failed(
                                        jobs[job_idx].id.clone(),
                                        status,
                                        attempt,
                                        &failure,
                                    )
                                    .with_seed(jobs[job_idx].seed);
                                    writer.record(&r);
                                    slots[job_idx] = Some(r);
                                    remaining -= 1;
                                }
                            }
                        }
                    }
                }
                None => {
                    // A deadline or retry timer fired. Handle expired
                    // wall deadlines: abandon the stuck worker, spawn a
                    // replacement, and treat the attempt as a WallTimeout.
                    let now = Instant::now();
                    let expired: Vec<usize> = outstanding
                        .iter()
                        .filter(|(_, o)| o.deadline.is_some_and(|d| d <= now))
                        .map(|(&idx, _)| idx)
                        .collect();
                    for job_idx in expired {
                        let Some(o) = outstanding.remove(&job_idx) else { continue };
                        let attempt = o.attempt;
                        if let Some(w) = o.worker {
                            // Flag the stuck worker to retire when (if)
                            // it ever finishes, detach its handle, and
                            // keep the pool at strength.
                            pool.abandon(&shared, w);
                            pool.spawn(
                                &jobs_arc,
                                &shared,
                                &tx,
                                &self.tracer,
                                self.policy.watchdog,
                            );
                        }
                        let limit_ms = self
                            .policy
                            .wall_deadline
                            .map_or(0, |d| d.as_millis() as u64);
                        let failure = JobFailure::WallTimeout { limit_ms };
                        let st = state.get_mut(&job_idx).expect("supervised job");
                        match self.disposition(st, &failure) {
                            Disposition::Retry(delay) => {
                                outstanding.insert(
                                    job_idx,
                                    Outstanding {
                                        attempt: attempt + 1,
                                        worker: None,
                                        deadline: None,
                                    },
                                );
                                delayed.push((
                                    Instant::now() + delay,
                                    Attempt { job_idx, attempt: attempt + 1 },
                                ));
                            }
                            Disposition::Terminal(status) => {
                                let r = JobResult::failed(
                                    jobs[job_idx].id.clone(),
                                    status,
                                    attempt,
                                    &failure,
                                )
                                .with_seed(jobs[job_idx].seed);
                                writer.record(&r);
                                slots[job_idx] = Some(r);
                                remaining -= 1;
                            }
                        }
                    }
                }
            }
        }

        // Shut the pool down; abandoned workers are detached, not joined.
        {
            let mut q = shared.queue.lock().expect("queue poisoned");
            q.shutdown = true;
            shared.cv.notify_all();
        }
        drop(rx);
        pool.join_live();
        Ok(writer.dropped)
    }

    /// Decide what to do with a failed attempt.
    fn disposition(&self, st: &mut Supervision, failure: &JobFailure) -> Disposition {
        if failure.is_timeout() {
            st.strikes += 1;
            if st.strikes >= self.policy.quarantine_strikes {
                return Disposition::Terminal(JobStatus::Quarantined);
            }
            return Disposition::Retry(self.policy.backoff_for(st.strikes));
        }
        if failure.is_transient() {
            st.transient_retries += 1;
            if st.transient_retries > self.policy.max_retries {
                return Disposition::Terminal(JobStatus::Failed);
            }
            return Disposition::Retry(self.policy.backoff_for(st.transient_retries));
        }
        // Panics and persistent errors (invalid config, unrecoverable
        // faults, …) are deterministic: retrying cannot help.
        Disposition::Terminal(JobStatus::Failed)
    }
}

/// Degrading journal front-end for the supervisor: a failed record write
/// (torn write, full disk, …) is counted and logged once instead of
/// aborting the sweep — the computation always completes; a dropped record
/// simply re-runs on the next resume.
struct JournalLane<'a> {
    writer: Option<&'a mut JournalWriter>,
    dropped: usize,
    warned: bool,
}

impl JournalLane<'_> {
    fn record(&mut self, r: &JobResult) {
        if let Some(w) = self.writer.as_deref_mut() {
            if let Err(e) = w.record(r) {
                self.dropped += 1;
                if !self.warned {
                    self.warned = true;
                    eprintln!(
                        "pim-harness: journal degraded (record dropped, sweep continues): {e}"
                    );
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Attempt {
    job_idx: usize,
    attempt: u32,
}

#[derive(Debug)]
struct Outstanding {
    attempt: u32,
    /// Worker currently executing the attempt (set on `Started`).
    worker: Option<usize>,
    deadline: Option<Instant>,
}

#[derive(Debug, Default)]
struct Supervision {
    strikes: u32,
    transient_retries: u32,
}

enum Disposition {
    Retry(Duration),
    Terminal(JobStatus),
}

enum Msg {
    Started { worker: usize, job_idx: usize, attempt: u32 },
    Done { job_idx: usize, attempt: u32, outcome: Result<String, JobFailure> },
}

#[derive(Default)]
struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
}

#[derive(Default)]
struct QueueState {
    ready: VecDeque<Attempt>,
    /// Worker ids told to retire at their next queue interaction.
    abandoned: HashSet<usize>,
    shutdown: bool,
}

struct Pool {
    next_id: usize,
    handles: HashMap<usize, std::thread::JoinHandle<()>>,
}

impl Pool {
    fn spawn(
        &mut self,
        jobs: &Arc<Vec<Job>>,
        shared: &Arc<Shared>,
        tx: &Sender<Msg>,
        tracer: &Tracer,
        watchdog: Watchdog,
    ) {
        let id = self.next_id;
        self.next_id += 1;
        let jobs = Arc::clone(jobs);
        let shared = Arc::clone(shared);
        let tx = tx.clone();
        let tracer = tracer.clone();
        let handle = std::thread::Builder::new()
            .name(format!("pim-harness-worker-{id}"))
            .spawn(move || worker_loop(id, &jobs, &shared, &tx, &tracer, watchdog))
            .expect("spawn worker thread");
        self.handles.insert(id, handle);
    }

    /// Flag a stuck worker to retire at its next queue interaction and
    /// detach its handle. std threads cannot be killed: a worker hung
    /// forever in a job simply leaks until process exit, which is why
    /// [`Pool::join_live`] must not wait on it.
    fn abandon(&mut self, shared: &Arc<Shared>, worker: usize) {
        {
            let mut q = shared.queue.lock().expect("queue poisoned");
            q.abandoned.insert(worker);
        }
        self.handles.remove(&worker);
    }

    fn join_live(self) {
        for (_, h) in self.handles {
            // Worker threads never panic (jobs run under catch_unwind);
            // join errors could only come from external thread death.
            let _ = h.join();
        }
    }
}

fn worker_loop(
    id: usize,
    jobs: &Arc<Vec<Job>>,
    shared: &Arc<Shared>,
    tx: &Sender<Msg>,
    tracer: &Tracer,
    watchdog: Watchdog,
) {
    loop {
        let task = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if q.abandoned.remove(&id) {
                    return;
                }
                if let Some(t) = q.ready.pop_front() {
                    break t;
                }
                if q.shutdown {
                    return;
                }
                q = shared.cv.wait(q).expect("queue poisoned");
            }
        };

        let job = &jobs[task.job_idx];
        if tx
            .send(Msg::Started { worker: id, job_idx: task.job_idx, attempt: task.attempt })
            .is_err()
        {
            return;
        }
        let track = tracer.track(&format!("job:{}", job.id));
        let ctx = JobCtx {
            job_id: job.id.clone(),
            attempt: task.attempt,
            tracer: tracer.clone(),
            track,
            watchdog,
        };
        let run = Arc::clone(&job.run);
        let outcome = match catch_unwind(AssertUnwindSafe(|| run(&ctx))) {
            Ok(Ok(payload)) => Ok(payload),
            Ok(Err(e)) => Err(JobFailure::Sim(e)),
            Err(panic) => Err(JobFailure::Panicked { message: panic_message(&*panic) }),
        };
        if tx
            .send(Msg::Done { job_idx: task.job_idx, attempt: task.attempt, outcome })
            .is_err()
        {
            return;
        }

        // If the supervisor wrote this attempt off and abandoned us while
        // we were stuck in it, the top-of-loop check retires this worker:
        // a replacement already took our place.
    }
}

/// Render a caught panic payload as text.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_saturates_at_the_cap() {
        let p = HarnessPolicy {
            retry_backoff: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(80),
            ..HarnessPolicy::default()
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(5));
        assert_eq!(p.backoff_for(2), Duration::from_millis(10));
        assert_eq!(p.backoff_for(4), Duration::from_millis(40));
        // Retry 5 doubles to exactly the cap; retry 6 would overshoot and
        // is clamped — the cap boundary.
        assert_eq!(p.backoff_for(5), Duration::from_millis(80));
        assert_eq!(p.backoff_for(6), Duration::from_millis(80));
    }

    #[test]
    fn extreme_retry_counts_cannot_overflow_duration_math() {
        let p = HarnessPolicy {
            retry_backoff: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(80),
            ..HarnessPolicy::default()
        };
        // Shift exponents at and past the u32 width, including u32::MAX,
        // must clamp to the cap rather than panic on `1 << 32`.
        for retry in [31, 32, 33, 64, 1_000_000, u32::MAX] {
            assert_eq!(p.backoff_for(retry), Duration::from_millis(80), "retry={retry}");
        }
        // A pathological base backoff saturates inside Duration, then
        // clamps to the cap.
        let huge = HarnessPolicy {
            retry_backoff: Duration::MAX,
            backoff_cap: Duration::from_secs(1),
            ..HarnessPolicy::default()
        };
        assert_eq!(huge.backoff_for(u32::MAX), Duration::from_secs(1));
        // Retry 0 (not a real retry number, but callers may pass it)
        // degrades to the base backoff instead of underflowing.
        assert_eq!(p.backoff_for(0), Duration::from_millis(5));
    }
}
