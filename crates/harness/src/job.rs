//! Jobs, attempt outcomes, and terminal results.
//!
//! A [`Job`] is a named closure producing a deterministic string payload.
//! The supervisor runs each attempt under `catch_unwind`, classifies the
//! outcome as a [`JobFailure`] on error, and eventually records a terminal
//! [`JobResult`] for every job — the unit that is journaled and merged.

use std::fmt;
use std::sync::Arc;

use pim_faults::{DmpimError, Watchdog};
use pim_trace::{Tracer, TrackId};

/// The closure type a job runs. It receives per-attempt context and
/// returns the job's payload string (merged into sweep output) or a
/// simulation error.
pub type JobFn = dyn Fn(&JobCtx) -> Result<String, DmpimError> + Send + Sync;

/// One schedulable unit of work in a sweep.
///
/// The closure is held in an [`Arc`] because an abandoned (hung) worker
/// may still be executing it while the supervisor dispatches a retry on a
/// replacement worker.
#[derive(Clone)]
pub struct Job {
    /// Stable identifier; the journal keys completed work by this id, so
    /// it must be unique within a sweep and stable across resumes.
    pub id: String,
    /// The work itself.
    pub run: Arc<JobFn>,
    /// Deterministic seed this job was derived from, if any. Carried into
    /// the terminal [`JobResult`] and the journal so quarantined
    /// configurations can be replayed from the failure report alone.
    pub seed: Option<u64>,
}

impl Job {
    /// Build a job from an id and a closure.
    pub fn new<F>(id: impl Into<String>, f: F) -> Self
    where
        F: Fn(&JobCtx) -> Result<String, DmpimError> + Send + Sync + 'static,
    {
        Self { id: id.into(), run: Arc::new(f), seed: None }
    }

    /// Attach the deterministic seed this job was derived from.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }
}

impl fmt::Debug for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Job").field("id", &self.id).finish_non_exhaustive()
    }
}

/// Per-attempt context handed to the job closure.
#[derive(Debug, Clone)]
pub struct JobCtx {
    /// The job's id (same as [`Job::id`]).
    pub job_id: String,
    /// 1-based attempt number (2+ means this is a retry).
    pub attempt: u32,
    /// Shared tracer; a no-op when the harness runs untraced.
    pub tracer: Tracer,
    /// A track dedicated to this job (`job:<id>`) so its spans do not
    /// interleave with sibling jobs on shared tracks.
    pub track: TrackId,
    /// Simulated-time watchdog the job should arm on its contexts so hung
    /// simulations trip [`DmpimError::WatchdogTimeout`] instead of
    /// spinning forever.
    pub watchdog: Watchdog,
}

/// Why one attempt of a job did not produce a payload.
#[derive(Debug, Clone, PartialEq)]
pub enum JobFailure {
    /// The closure panicked; the panic was caught and the payload message
    /// extracted where possible.
    Panicked {
        /// Panic payload rendered as text.
        message: String,
    },
    /// The attempt exceeded the harness's wall-clock deadline and its
    /// worker was abandoned.
    WallTimeout {
        /// The deadline that was exceeded, in milliseconds.
        limit_ms: u64,
    },
    /// The closure returned a typed simulation error.
    Sim(DmpimError),
}

impl JobFailure {
    /// Short taxonomy label for failure-report counts.
    pub fn label(&self) -> &'static str {
        match self {
            JobFailure::Panicked { .. } => "panic",
            JobFailure::WallTimeout { .. } => "wall-timeout",
            JobFailure::Sim(e) => e.label(),
        }
    }

    /// True for timeout-class failures (wall-clock or simulated
    /// watchdog), which count as strikes toward quarantine.
    pub fn is_timeout(&self) -> bool {
        matches!(self, JobFailure::WallTimeout { .. })
            || matches!(self, JobFailure::Sim(DmpimError::WatchdogTimeout { .. }))
    }

    /// True for transient simulation faults worth an ordinary retry.
    pub fn is_transient(&self) -> bool {
        matches!(self, JobFailure::Sim(e) if e.is_transient())
    }
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobFailure::Panicked { message } => write!(f, "panicked: {message}"),
            JobFailure::WallTimeout { limit_ms } => {
                write!(f, "exceeded wall-clock deadline of {limit_ms} ms")
            }
            JobFailure::Sim(e) => write!(f, "{e}"),
        }
    }
}

/// Terminal disposition of a job after all retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Produced a payload (possibly after retries).
    Succeeded,
    /// Gave up: panic, exhausted transient retries, or a persistent
    /// non-timeout error.
    Failed,
    /// Hit the timeout strike limit and was benched; its configuration is
    /// considered bricked.
    Quarantined,
}

impl JobStatus {
    /// Journal / JSON label.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Succeeded => "ok",
            JobStatus::Failed => "failed",
            JobStatus::Quarantined => "quarantined",
        }
    }

    /// Inverse of [`JobStatus::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(JobStatus::Succeeded),
            "failed" => Some(JobStatus::Failed),
            "quarantined" => Some(JobStatus::Quarantined),
            _ => None,
        }
    }
}

/// The journaled, mergeable record of one finished job.
///
/// Everything is carried as strings so that a result restored from the
/// journal is bit-identical to one computed in-process.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Job id.
    pub id: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Total attempts consumed (1 = first try succeeded or failed hard).
    pub attempts: u32,
    /// Payload for succeeded jobs.
    pub output: Option<String>,
    /// Taxonomy label of the terminal failure, if any.
    pub error_label: Option<String>,
    /// Human-readable terminal failure, if any.
    pub error: Option<String>,
    /// Seed copied from [`Job::seed`] (round-tripped through the journal)
    /// so failed or quarantined configurations are replayable from the
    /// report alone.
    pub seed: Option<u64>,
}

impl JobResult {
    /// A successful result.
    pub fn ok(id: impl Into<String>, attempts: u32, output: String) -> Self {
        Self {
            id: id.into(),
            status: JobStatus::Succeeded,
            attempts,
            output: Some(output),
            error_label: None,
            error: None,
            seed: None,
        }
    }

    /// A terminal failure (failed or quarantined).
    pub fn failed(id: impl Into<String>, status: JobStatus, attempts: u32, failure: &JobFailure) -> Self {
        Self {
            id: id.into(),
            status,
            attempts,
            output: None,
            error_label: Some(failure.label().to_string()),
            error: Some(failure.to_string()),
            seed: None,
        }
    }

    /// Attach the originating job's seed.
    #[must_use]
    pub fn with_seed(mut self, seed: Option<u64>) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_faults::FaultKind;

    #[test]
    fn failure_classification() {
        let p = JobFailure::Panicked { message: "boom".into() };
        assert_eq!(p.label(), "panic");
        assert!(!p.is_timeout());
        assert!(!p.is_transient());

        let w = JobFailure::WallTimeout { limit_ms: 10 };
        assert_eq!(w.label(), "wall-timeout");
        assert!(w.is_timeout());

        let sim_wd = JobFailure::Sim(DmpimError::WatchdogTimeout {
            what: "events",
            limit: 5,
            at_ps: 100,
        });
        assert_eq!(sim_wd.label(), "watchdog-timeout");
        assert!(sim_wd.is_timeout());
        assert!(!sim_wd.is_transient());

        let t = JobFailure::Sim(DmpimError::FaultTransient { kind: FaultKind::BitFlip, at_ps: 1 });
        assert!(t.is_transient());
        assert!(!t.is_timeout());
    }

    #[test]
    fn status_labels_round_trip() {
        for s in [JobStatus::Succeeded, JobStatus::Failed, JobStatus::Quarantined] {
            assert_eq!(JobStatus::from_label(s.label()), Some(s));
        }
        assert_eq!(JobStatus::from_label("nope"), None);
    }
}
