//! Supervised, resumable, panic-isolated sweep runner.
//!
//! Large reproduction sweeps (workload × execution mode × fault plan)
//! must survive individual bad configurations: one panicking kernel, one
//! hung simulation, or one invalid geometry must not abort the other
//! hundreds of jobs, and a killed sweep must not restart from zero. This
//! crate supplies that layer with nothing beyond `std`:
//!
//! * **Isolation** — a fixed pool of worker threads runs each [`Job`]
//!   under `catch_unwind`; a panic becomes a typed
//!   [`JobFailure::Panicked`] in the failure report.
//! * **Supervision** — per-attempt wall-clock deadlines abandon stuck
//!   workers, and the simulated-time [`pim_faults::Watchdog`] is threaded
//!   to every job so runaway simulations trip
//!   `DmpimError::WatchdogTimeout`. Timeout strikes quarantine a job;
//!   transient faults retry with capped exponential backoff.
//! * **Resume** — a JSONL journal checkpoints each terminal result; a
//!   killed sweep resumed via [`Harness::resume_from`] re-runs only
//!   unfinished jobs and merges to bit-identical output (results carry
//!   their payloads as strings, so restored and recomputed runs render
//!   identically).
//! * **Determinism** — results are merged in input-job order, so
//!   `workers = N` produces byte-identical merged output to a serial run
//!   for any `N`.
//!
//! ```
//! use pim_harness::{Harness, HarnessPolicy, Job};
//!
//! let jobs: Vec<Job> = (0..4)
//!     .map(|i| Job::new(format!("square-{i}"), move |_ctx| Ok(format!("{}", i * i))))
//!     .collect();
//! let report = Harness::new(HarnessPolicy { workers: 2, ..HarnessPolicy::default() })
//!     .run(jobs)
//!     .unwrap();
//! assert!(report.all_ok());
//! assert_eq!(report.results[3].output.as_deref(), Some("9"));
//! ```

pub mod job;
pub mod journal;
pub mod report;
pub mod supervisor;

pub use job::{Job, JobCtx, JobFailure, JobResult, JobStatus};
pub use journal::{FsyncPolicy, JournalSink, RecordWriter};
pub use report::{FailureSummary, SweepReport};
pub use supervisor::{Harness, HarnessError, HarnessPolicy};

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use pim_faults::{DmpimError, FaultKind};

    use super::*;

    fn quick_policy(workers: usize) -> HarnessPolicy {
        HarnessPolicy {
            workers,
            retry_backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..HarnessPolicy::default()
        }
    }

    fn square_jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| Job::new(format!("sq-{i:02}"), move |_ctx| Ok(format!("{}", i * i))))
            .collect()
    }

    #[test]
    fn parallel_matches_serial() {
        let serial = Harness::new(quick_policy(1)).run(square_jobs(8)).unwrap();
        let parallel = Harness::new(quick_policy(4)).run(square_jobs(8)).unwrap();
        assert_eq!(serial.results, parallel.results);
        assert_eq!(
            serial.to_json_value().render(),
            parallel.to_json_value().render(),
            "merged report must be independent of worker count"
        );
    }

    #[test]
    fn panic_is_isolated_and_siblings_survive() {
        let mut jobs = square_jobs(5);
        jobs.insert(
            2,
            Job::new("panicker", |_ctx| -> Result<String, DmpimError> {
                panic!("injected panic");
            }),
        );
        let report = Harness::new(quick_policy(3)).run(jobs).unwrap();
        let summary = report.summary();
        assert_eq!(summary.total, 6);
        assert_eq!(summary.succeeded, 5);
        assert_eq!(summary.failed, 1);
        assert_eq!(summary.taxonomy.get("panic"), Some(&1));
        let failed = &report.results[2];
        assert_eq!(failed.status, JobStatus::Failed);
        assert_eq!(failed.attempts, 1, "panics are deterministic: no retry");
        assert!(failed.error.as_deref().unwrap().contains("injected panic"));
    }

    #[test]
    fn transient_faults_retry_then_succeed() {
        let tries = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&tries);
        let jobs = vec![Job::new("flaky", move |ctx| {
            t.fetch_add(1, Ordering::SeqCst);
            if ctx.attempt < 3 {
                Err(DmpimError::FaultTransient { kind: FaultKind::BitFlip, at_ps: 7 })
            } else {
                Ok("recovered".to_string())
            }
        })];
        let report = Harness::new(quick_policy(1)).run(jobs).unwrap();
        assert_eq!(tries.load(Ordering::SeqCst), 3);
        let r = &report.results[0];
        assert_eq!(r.status, JobStatus::Succeeded);
        assert_eq!(r.attempts, 3);
        assert_eq!(report.summary().retried, 1);
    }

    #[test]
    fn transient_retries_are_capped() {
        let jobs = vec![Job::new("always-flaky", |_ctx| {
            Err(DmpimError::FaultTransient { kind: FaultKind::BitFlip, at_ps: 1 })
        })];
        let policy = HarnessPolicy { max_retries: 2, ..quick_policy(1) };
        let report = Harness::new(policy).run(jobs).unwrap();
        let r = &report.results[0];
        assert_eq!(r.status, JobStatus::Failed);
        assert_eq!(r.attempts, 3, "initial try + 2 retries");
        assert!(report.summary().taxonomy.contains_key("bit-flip"));
    }

    #[test]
    fn watchdog_timeouts_quarantine_after_strikes() {
        let jobs = vec![Job::new("hung-sim", |_ctx| {
            Err(DmpimError::WatchdogTimeout { what: "host events", limit: 10, at_ps: 99 })
        })];
        let policy = HarnessPolicy { quarantine_strikes: 2, ..quick_policy(1) };
        let report = Harness::new(policy).run(jobs).unwrap();
        let r = &report.results[0];
        assert_eq!(r.status, JobStatus::Quarantined);
        assert_eq!(r.attempts, 2);
        assert_eq!(report.summary().quarantined, 1);
        assert_eq!(report.summary().taxonomy.get("watchdog-timeout"), Some(&1));
    }

    #[test]
    fn wall_deadline_abandons_hung_workers() {
        let mut jobs = square_jobs(3);
        jobs.push(Job::new("hung-wall", |_ctx| {
            std::thread::sleep(Duration::from_millis(400));
            Ok("too late".to_string())
        }));
        let policy = HarnessPolicy {
            wall_deadline: Some(Duration::from_millis(30)),
            quarantine_strikes: 2,
            ..quick_policy(2)
        };
        let report = Harness::new(policy).run(jobs).unwrap();
        let hung = &report.results[3];
        assert_eq!(hung.status, JobStatus::Quarantined);
        assert_eq!(hung.error_label.as_deref(), Some("wall-timeout"));
        assert_eq!(report.summary().succeeded, 3, "siblings survive the hang");
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let jobs = vec![
            Job::new("same", |_ctx| Ok(String::new())),
            Job::new("same", |_ctx| Ok(String::new())),
        ];
        assert!(matches!(
            Harness::new(quick_policy(1)).run(jobs),
            Err(HarnessError::DuplicateJob { .. })
        ));
    }

    #[test]
    fn journal_resume_skips_completed_jobs() {
        let mut path = std::env::temp_dir();
        path.push(format!("pim-harness-lib-resume-{}.jsonl", std::process::id()));

        let ran = Arc::new(AtomicUsize::new(0));
        let make_jobs = |counter: Arc<AtomicUsize>| -> Vec<Job> {
            (0..6)
                .map(|i| {
                    let c = Arc::clone(&counter);
                    Job::new(format!("j{i}"), move |_ctx| {
                        c.fetch_add(1, Ordering::SeqCst);
                        Ok(format!("out-{i}"))
                    })
                })
                .collect()
        };

        // Full journaled run as the reference.
        let reference = Harness::new(quick_policy(1))
            .with_journal(&path)
            .run(make_jobs(Arc::clone(&ran)))
            .unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 6);

        // Simulate a kill after 3 completed jobs: keep header + 3 lines.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: Vec<&str> = text.lines().take(4).collect();
        std::fs::write(&path, format!("{}\n", keep.join("\n"))).unwrap();

        let reran = Arc::new(AtomicUsize::new(0));
        let resumed = Harness::new(quick_policy(1))
            .resume_from(&path)
            .run(make_jobs(Arc::clone(&reran)))
            .unwrap();
        assert_eq!(reran.load(Ordering::SeqCst), 3, "only unfinished jobs re-run");
        assert_eq!(resumed.resumed, 3);
        assert_eq!(resumed.results, reference.results);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn per_job_tracks_are_created_when_traced() {
        let tracer = pim_trace::Tracer::new();
        let jobs = vec![Job::new("traced", |ctx: &JobCtx| {
            ctx.tracer.complete(ctx.track, "work", 0, 100);
            Ok("done".to_string())
        })];
        let report = Harness::new(quick_policy(1)).with_tracer(&tracer).run(jobs).unwrap();
        assert!(report.all_ok());
        assert!(tracer.tracks().iter().any(|t| t == "job:traced"), "{:?}", tracer.tracks());
    }
}
