//! End-to-end journal corruption matrix: a hand-damaged journal —
//! truncated tail, partial line, NUL bytes, invalid UTF-8, duplicate and
//! foreign records — must resume by skipping-and-counting the damage,
//! restoring every intact record exactly once, and re-running only the
//! jobs whose records were destroyed. Resume never aborts and never runs
//! a journaled job twice.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pim_chaos::ChaosConfig;
use pim_harness::journal::record_line;
use pim_harness::{Harness, HarnessPolicy, Job, JobResult, JobStatus};

const IDS: [&str; 6] = ["j0", "j1", "j2", "j3", "j4", "j5"];

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pim-harness-corrupt-{}-{name}", std::process::id()))
}

/// The sweep's jobs: deterministic output, with a shared per-id run
/// counter so the test can prove which closures executed.
fn jobs(counters: &Arc<BTreeMap<String, AtomicUsize>>) -> Vec<Job> {
    IDS.iter()
        .map(|id| {
            let counters = Arc::clone(counters);
            Job::new(*id, move |ctx| {
                counters[&ctx.job_id].fetch_add(1, Ordering::SeqCst);
                Ok(format!("out:{}", ctx.job_id))
            })
        })
        .collect()
}

fn counters() -> Arc<BTreeMap<String, AtomicUsize>> {
    Arc::new(IDS.iter().map(|id| (id.to_string(), AtomicUsize::new(0))).collect())
}

fn record(id: &str, attempts: u32) -> String {
    record_line(&JobResult {
        id: id.to_string(),
        status: JobStatus::Succeeded,
        attempts,
        output: Some(format!("out:{id}")),
        error_label: None,
        error: None,
        seed: None,
    })
}

#[test]
fn resume_survives_the_full_corruption_matrix_without_rerunning_intact_work() {
    let path = temp_path("matrix.jsonl");
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"{\"journal\":\"pim-harness\",\"version\":1,\"jobs\":6}\n");
    // Two intact records.
    bytes.extend_from_slice(record("j0", 1).as_bytes());
    bytes.push(b'\n');
    bytes.extend_from_slice(record("j1", 1).as_bytes());
    bytes.push(b'\n');
    // A duplicate record for j0 with a different attempt count: the later
    // record wins and j0 still restores exactly once.
    bytes.extend_from_slice(record("j0", 3).as_bytes());
    bytes.push(b'\n');
    // A record truncated mid-write (torn tail from a SIGKILL).
    let torn = record("j2", 1);
    bytes.extend_from_slice(&torn.as_bytes()[..torn.len() / 2]);
    bytes.push(b'\n');
    // NUL-byte garbage from a corrupt sector.
    bytes.extend_from_slice(b"\x00\x00\x00{\"job\":\n");
    // Invalid UTF-8 mid-line.
    bytes.extend_from_slice(b"{\"job\":\"\xff\xfe broken\"}\n");
    // An intact record for a job this sweep does not have.
    bytes.extend_from_slice(record("ghost", 1).as_bytes());
    bytes.push(b'\n');
    std::fs::write(&path, &bytes).unwrap();

    let runs = counters();
    let report = Harness::new(HarnessPolicy { workers: 2, ..HarnessPolicy::default() })
        .resume_from(&path)
        .run(jobs(&runs))
        .expect("a damaged journal must never abort the resume");

    // j0 and j1 restored from the journal; the other four re-ran.
    assert_eq!(report.resumed, 2);
    // Three corrupt lines plus the foreign `ghost` record, all counted.
    assert_eq!(report.journal_skipped, 4);
    assert_eq!(runs["j0"].load(Ordering::SeqCst), 0, "restored job must not re-run");
    assert_eq!(runs["j1"].load(Ordering::SeqCst), 0, "restored job must not re-run");
    for id in ["j2", "j3", "j4", "j5"] {
        assert_eq!(runs[id].load(Ordering::SeqCst), 1, "{id} re-runs exactly once");
    }

    // Results are complete, in input order, and the duplicate's later
    // record won (attempts 3, not 1).
    assert!(report.all_ok());
    let by_id: Vec<(&str, u32, Option<&str>)> = report
        .results
        .iter()
        .map(|r| (r.id.as_str(), r.attempts, r.output.as_deref()))
        .collect();
    assert_eq!(by_id[0], ("j0", 3, Some("out:j0")));
    assert_eq!(by_id[1], ("j1", 1, Some("out:j1")));
    for (n, id) in IDS.iter().enumerate().skip(2) {
        let expected = format!("out:{id}");
        assert_eq!(by_id[n], (*id, 1, Some(expected.as_str())));
    }

    // Second resume from the healed (appended) journal: everything is now
    // on record, nothing runs, and the merged output is bit-identical.
    let runs2 = counters();
    let report2 = Harness::new(HarnessPolicy { workers: 2, ..HarnessPolicy::default() })
        .resume_from(&path)
        .run(jobs(&runs2))
        .unwrap();
    assert_eq!(report2.resumed, 6);
    for id in IDS {
        assert_eq!(runs2[id].load(Ordering::SeqCst), 0, "{id} must not re-run");
    }
    let lines: Vec<String> = report.results.iter().map(record_line).collect();
    let lines2: Vec<String> = report2.results.iter().map(record_line).collect();
    assert_eq!(lines, lines2, "resumed sweep is bit-identical to the healed one");

    std::fs::remove_file(&path).ok();
}

#[test]
fn journal_written_through_interrupts_and_short_writes_resumes_complete() {
    // Transient writer faults — injected `Interrupted`/`WouldBlock` and
    // short writes — must be retried through invisibly: every record
    // lands intact and a resume restores all six jobs without re-running
    // any of them.
    let cfg = ChaosConfig {
        interrupt: 0.35,
        would_block: 0.20,
        write_zero: 0.10,
        short_write: 0.50,
        ..ChaosConfig::none()
    };
    for seed in 0..8 {
        let path = temp_path(&format!("transient-{seed}.jsonl"));
        std::fs::remove_file(&path).ok();

        let runs = counters();
        let report = Harness::new(HarnessPolicy { workers: 2, ..HarnessPolicy::default() })
            .with_journal(&path)
            .with_journal_chaos(cfg, seed)
            .run(jobs(&runs))
            .unwrap();
        assert!(report.all_ok());
        assert_eq!(
            report.journal_dropped, 0,
            "seed {seed}: transient faults must never drop a record"
        );

        let runs2 = counters();
        let resumed = Harness::new(HarnessPolicy { workers: 2, ..HarnessPolicy::default() })
            .resume_from(&path)
            .run(jobs(&runs2))
            .unwrap();
        assert_eq!(resumed.resumed, IDS.len(), "seed {seed}: every record must survive");
        assert_eq!(resumed.journal_skipped, 0, "seed {seed}: no torn debris expected");
        for id in IDS {
            assert_eq!(runs2[id].load(Ordering::SeqCst), 0, "seed {seed}: {id} re-ran");
        }
        let lines: Vec<String> = report.results.iter().map(record_line).collect();
        let lines2: Vec<String> = resumed.results.iter().map(record_line).collect();
        assert_eq!(lines, lines2, "seed {seed}: restored records diverged");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn resume_from_a_journal_that_is_all_damage_reruns_everything() {
    let path = temp_path("alldamage.jsonl");
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"{\"journal\":\"pim-harness\",\"version\":1,\"jobs\":6}\n");
    bytes.extend_from_slice(b"\x00\x00\x00\x00\n{\"jo\n");
    let torn = record("j4", 1);
    bytes.extend_from_slice(&torn.as_bytes()[..torn.len() - 4]);
    std::fs::write(&path, &bytes).unwrap();

    let runs = counters();
    let report = Harness::new(HarnessPolicy { workers: 2, ..HarnessPolicy::default() })
        .resume_from(&path)
        .run(jobs(&runs))
        .unwrap();
    assert_eq!(report.resumed, 0);
    assert_eq!(report.journal_skipped, 3);
    assert!(report.all_ok());
    for id in IDS {
        assert_eq!(runs[id].load(Ordering::SeqCst), 1, "{id} re-runs exactly once");
    }
    std::fs::remove_file(&path).ok();
}
