//! The harness half of the seeded chaos matrix.
//!
//! Every family × seed runs a full journaled sweep with fault injection
//! on the journal file (`pim-chaos` wraps the writer; the computation
//! itself is never touched) and asserts the two headline properties:
//!
//! 1. **Degradation never corrupts output** — the sweep completes and
//!    its merged results are byte-identical to an unjournaled reference
//!    run, no matter what happened to the journal.
//! 2. **Every surviving journal resumes bit-identically** — a fresh
//!    harness resuming from whatever bytes survived re-runs only the
//!    dropped jobs and merges to the same byte-identical results.
//!
//! Seed count defaults to 64 per family; `PIM_CHAOS_SEEDS` overrides it
//! (the CI smoke uses a small count, `scripts/chaos_smoke.sh --full`
//! forces the full matrix).

use std::path::PathBuf;
use std::time::Duration;

use pim_chaos::ChaosConfig;
use pim_harness::{Harness, HarnessPolicy, Job, SweepReport};

fn seeds() -> u64 {
    std::env::var("PIM_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

fn quick_policy() -> HarnessPolicy {
    HarnessPolicy {
        workers: 2,
        retry_backoff: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        ..HarnessPolicy::default()
    }
}

/// A deterministic sweep with hostile payloads: quotes, newlines,
/// non-ASCII, and an empty output, so record escaping is stressed too.
fn make_jobs() -> Vec<Job> {
    let mut jobs: Vec<Job> = (0..10)
        .map(|i| Job::new(format!("sq-{i:02}"), move |_ctx| Ok(format!("{}", i * i))))
        .collect();
    jobs.push(Job::new("weird", |_ctx| {
        Ok("line1\nline2 \"quoted\"\ttabbed — ünïcode".to_string())
    }));
    jobs.push(Job::new("empty", |_ctx| Ok(String::new())));
    jobs
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pim-chaos-matrix-{}-{name}.jsonl", std::process::id()))
}

fn reference() -> SweepReport {
    Harness::new(quick_policy()).run(make_jobs()).unwrap()
}

/// What a family is expected to do to the journal across the matrix.
enum Drops {
    /// The fault must actually fire somewhere (else the matrix proves
    /// nothing).
    Expected,
    /// Every fault is transient and must be retried through invisibly.
    None,
}

fn run_family(family: &str, cfg: ChaosConfig, drops: Drops) {
    let reference = reference();
    let mut dropped_total = 0usize;
    for seed in 0..seeds() {
        let path = temp_path(&format!("{family}-{seed}"));
        std::fs::remove_file(&path).ok();

        // Chaos sweep: the journal may tear, stall, or fill up, but the
        // merged results must not notice.
        let report = Harness::new(quick_policy())
            .with_journal(&path)
            .with_journal_chaos(cfg, seed)
            .run(make_jobs())
            .unwrap();
        assert_eq!(
            report.results, reference.results,
            "{family} seed {seed}: journal chaos changed computed results"
        );
        dropped_total += report.journal_dropped;

        // Resume from whatever survived (a journal whose header write
        // failed was removed — the sweep ran unjournaled, nothing to
        // resume).
        if path.exists() {
            let resumed = Harness::new(quick_policy())
                .resume_from(&path)
                .run(make_jobs())
                .unwrap();
            assert_eq!(
                resumed.results, reference.results,
                "{family} seed {seed}: resume from surviving journal diverged"
            );
            // Acked-implies-durable: a record that was not counted
            // dropped must be restorable (a dropped one may still
            // survive as a lucky near-complete tear, hence >=).
            assert!(
                resumed.resumed + report.journal_dropped >= reference.results.len(),
                "{family} seed {seed}: {} restored + {} dropped < {} jobs — \
                 an acked record vanished",
                resumed.resumed,
                report.journal_dropped,
                reference.results.len()
            );
        }
        std::fs::remove_file(&path).ok();
    }
    match drops {
        Drops::Expected => assert!(
            dropped_total > 0,
            "{family}: no journal record was ever dropped across {} seeds — \
             the fault injector is not firing",
            seeds()
        ),
        Drops::None => assert_eq!(
            dropped_total, 0,
            "{family}: transient faults must be retried through, never dropped"
        ),
    }
}

#[test]
fn torn_writes_never_corrupt_results_and_journals_resume() {
    run_family("torn-writes", ChaosConfig::torn_writes(), Drops::Expected);
}

#[test]
fn interrupt_storms_are_retried_through() {
    run_family("interrupts", ChaosConfig::interrupts(), Drops::None);
}

#[test]
fn disk_full_degrades_gracefully_and_survivors_resume() {
    // Budget covers the header and a handful of records; the onset lands
    // mid-sweep, so part of the journal survives and part drops.
    run_family("disk-full", ChaosConfig::disk_full(400), Drops::Expected);
}

#[test]
fn chaos_disabled_is_transparent() {
    run_family("none", ChaosConfig::none(), Drops::None);
}
