//! Wall-clock throughput of the real workload kernels (the library's own
//! compute, independent of the simulator).
//!
//! A self-contained harness (`cargo bench -p pim-bench --bench kernels`):
//! the container has no third-party benchmark crate, so each kernel is
//! timed with `std::time::Instant` over a fixed iteration count after a
//! short warm-up.

use std::hint::black_box;
use std::time::Instant;

use pim_chrome::bitmap::{blend_pixel, Bitmap};
use pim_chrome::lzo::{compress, decompress, synthetic_tab_dump};
use pim_chrome::tiling::tile_bitmap;
use pim_core::rng::SplitMix64;
use pim_tfmobile::gemm::gemm_quantized;
use pim_tfmobile::matrix::Matrix;
use pim_tfmobile::pack::{pack_lhs, pack_rhs};
use pim_tfmobile::quantize::{quantize_f32, requantize_i32};
use pim_vp9::deblock::deblock_plane;
use pim_vp9::encoder::{encode_frame, EncoderConfig};
use pim_vp9::entropy::{BoolReader, BoolWriter};
use pim_vp9::frame::SyntheticVideo;
use pim_vp9::interp::interpolate_block;
use pim_vp9::me::diamond_search;

/// Time `f` over `iters` iterations (plus a 10% warm-up) and print the
/// per-iteration latency; `bytes` (if nonzero) adds a throughput column.
fn bench<T>(name: &str, iters: u32, bytes: u64, mut f: impl FnMut() -> T) {
    for _ in 0..iters.div_ceil(10) {
        black_box(f());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_s = t0.elapsed().as_secs_f64() / iters as f64;
    if bytes > 0 {
        let mbps = bytes as f64 / per_s / (1 << 20) as f64;
        println!("{name:<32} {:>10.1} us/iter  {mbps:>8.0} MB/s", per_s * 1e6);
    } else {
        println!("{name:<32} {:>10.1} us/iter", per_s * 1e6);
    }
}

fn chrome_kernels() {
    println!("[chrome]");
    let bm = Bitmap::synthetic(512, 512, 1);
    bench("texture_tiling_512", 50, bm.bytes(), || tile_bitmap(&bm));

    bench("alpha_blend_64k_px", 50, 0, || {
        let mut acc = 0u32;
        for i in 0..65_536u32 {
            acc ^= blend_pixel(0x80FF_00FF ^ i, 0xFF00_FF00 | i);
        }
        acc
    });

    let pages = synthetic_tab_dump(64, 2);
    let total: u64 = pages.iter().map(|p| p.len() as u64).sum();
    bench("lzo_compress_256k", 30, total, || {
        pages.iter().map(|p| compress(p).len()).sum::<usize>()
    });
    let packed: Vec<Vec<u8>> = pages.iter().map(|p| compress(p)).collect();
    bench("lzo_decompress_256k", 30, total, || {
        packed
            .iter()
            .map(|p| decompress(p).map(|v| v.len()).unwrap_or(0))
            .sum::<usize>()
    });
}

fn tf_kernels() {
    println!("[tfmobile]");
    let a = Matrix::synthetic_u8(128, 256, 3);
    let b_m = Matrix::synthetic_u8(256, 64, 4);
    bench("gemm_u8_128x256x64", 30, 0, || gemm_quantized(&a, &b_m, 128, 128));
    bench("pack_lhs_128x256", 100, 0, || pack_lhs(&a));
    bench("pack_rhs_256x64", 100, 0, || pack_rhs(&b_m));

    let f = Matrix::synthetic(256, 256, 4.0, 5);
    bench("quantize_f32_64k", 100, 0, || quantize_f32(&f));
    let r = Matrix::from_vec(256, 256, (0..65_536).map(|i| (i * 37) % 20_000 - 10_000).collect());
    bench("requantize_i32_64k", 100, 0, || requantize_i32(&r));
}

fn vp9_kernels() {
    println!("[vp9]");
    let video = SyntheticVideo::new(320, 192, 2, 7);
    let f0 = video.frame(0);
    let f1 = video.frame(1);

    bench("interpolate_16x16_subpel", 200, 0, || {
        interpolate_block(&f0, 8 * 100 + 3, 8 * 80 + 5, 16, 16)
    });
    bench("diamond_search_16x16", 200, 0, || diamond_search(&f1, &f0, 96, 96, 16, 16));
    bench("deblock_320x192", 30, 0, || {
        let mut p = f0.clone();
        deblock_plane(&mut p, 8)
    });
    let (_, recon, _) = encode_frame(&f0, &[], EncoderConfig::default());
    bench("encode_inter_320x192", 10, 0, || {
        encode_frame(&f1, &[&recon], EncoderConfig::default())
    });

    let mut rng = SplitMix64::new(9);
    let bits: Vec<(u8, bool)> =
        (0..10_000).map(|_| (rng.next_range(1, 255) as u8, rng.chance(0.3))).collect();
    bench("bool_coder_10k_symbols", 50, 0, || {
        let mut w = BoolWriter::new();
        for &(p, bit) in &bits {
            w.put(p, bit);
        }
        let data = w.finish();
        let mut r = BoolReader::new(&data);
        let mut acc = 0u32;
        for &(p, _) in &bits {
            acc += r.get(p) as u32;
        }
        acc
    });
}

fn main() {
    chrome_kernels();
    tf_kernels();
    vp9_kernels();
}
