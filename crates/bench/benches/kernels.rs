//! Wall-clock throughput of the real workload kernels (the library's own
//! compute, independent of the simulator).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pim_chrome::bitmap::{blend_pixel, Bitmap};
use pim_chrome::lzo::{compress, decompress, synthetic_tab_dump};
use pim_chrome::tiling::tile_bitmap;
use pim_core::rng::SplitMix64;
use pim_tfmobile::gemm::gemm_quantized;
use pim_tfmobile::matrix::Matrix;
use pim_tfmobile::pack::{pack_lhs, pack_rhs};
use pim_tfmobile::quantize::{quantize_f32, requantize_i32};
use pim_vp9::deblock::deblock_plane;
use pim_vp9::encoder::{encode_frame, EncoderConfig};
use pim_vp9::entropy::{BoolReader, BoolWriter};
use pim_vp9::frame::SyntheticVideo;
use pim_vp9::interp::interpolate_block;
use pim_vp9::me::diamond_search;

fn chrome_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("chrome");
    let bm = Bitmap::synthetic(512, 512, 1);
    g.throughput(Throughput::Bytes(bm.bytes()));
    g.bench_function("texture_tiling_512", |b| b.iter(|| tile_bitmap(&bm)));

    g.bench_function("alpha_blend_64k_px", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..65_536u32 {
                acc ^= blend_pixel(0x80FF_00FF ^ i, 0xFF00_FF00 | i);
            }
            acc
        })
    });

    let pages = synthetic_tab_dump(64, 2);
    let total: u64 = pages.iter().map(|p| p.len() as u64).sum();
    g.throughput(Throughput::Bytes(total));
    g.bench_function("lzo_compress_256k", |b| {
        b.iter(|| pages.iter().map(|p| compress(p).len()).sum::<usize>())
    });
    let packed: Vec<Vec<u8>> = pages.iter().map(|p| compress(p)).collect();
    g.bench_function("lzo_decompress_256k", |b| {
        b.iter(|| packed.iter().map(|p| decompress(p).unwrap().len()).sum::<usize>())
    });
    g.finish();
}

fn tf_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("tfmobile");
    let a = Matrix::synthetic_u8(128, 256, 3);
    let b_m = Matrix::synthetic_u8(256, 64, 4);
    g.bench_function("gemm_u8_128x256x64", |b| {
        b.iter(|| gemm_quantized(&a, &b_m, 128, 128))
    });
    g.bench_function("pack_lhs_128x256", |b| b.iter(|| pack_lhs(&a)));
    g.bench_function("pack_rhs_256x64", |b| b.iter(|| pack_rhs(&b_m)));

    let f = Matrix::synthetic(256, 256, 4.0, 5);
    g.bench_function("quantize_f32_64k", |b| b.iter(|| quantize_f32(&f)));
    let r = Matrix::from_vec(256, 256, (0..65_536).map(|i| (i as i32 * 37) % 20_000 - 10_000).collect());
    g.bench_function("requantize_i32_64k", |b| b.iter(|| requantize_i32(&r)));
    g.finish();
}

fn vp9_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("vp9");
    g.sample_size(20);
    let video = SyntheticVideo::new(320, 192, 2, 7);
    let f0 = video.frame(0);
    let f1 = video.frame(1);

    g.bench_function("interpolate_16x16_subpel", |b| {
        b.iter(|| interpolate_block(&f0, 8 * 100 + 3, 8 * 80 + 5, 16, 16))
    });
    g.bench_function("diamond_search_16x16", |b| {
        b.iter(|| diamond_search(&f1, &f0, 96, 96, 16, 16))
    });
    g.bench_function("deblock_320x192", |b| {
        b.iter_batched(|| f0.clone(), |mut p| deblock_plane(&mut p, 8), BatchSize::SmallInput)
    });
    g.bench_function("encode_inter_320x192", |b| {
        let (_, recon, _) = encode_frame(&f0, &[], EncoderConfig::default());
        b.iter(|| encode_frame(&f1, &[&recon], EncoderConfig::default()))
    });

    let mut rng = SplitMix64::new(9);
    let bits: Vec<(u8, bool)> =
        (0..10_000).map(|_| (rng.next_range(1, 255) as u8, rng.chance(0.3))).collect();
    g.bench_function("bool_coder_10k_symbols", |b| {
        b.iter(|| {
            let mut w = BoolWriter::new();
            for &(p, bit) in &bits {
                w.put(p, bit);
            }
            let data = w.finish();
            let mut r = BoolReader::new(&data);
            let mut acc = 0u32;
            for &(p, _) in &bits {
                acc += r.get(p) as u32;
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, chrome_kernels, tf_kernels, vp9_kernels);
criterion_main!(benches);
