//! Throughput of the simulator itself: cache lookups, DRAM accesses,
//! ranged accesses through the full memory system, and an end-to-end
//! offload run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pim_core::{ExecutionMode, OffloadEngine};
use pim_memsim::{
    AccessKind, BankArray, Cache, CacheConfig, DramConfig, MemConfig, MemorySystem,
};

fn memsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("memsim");

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("cache_streaming_10k_lines", |b| {
        let mut cache = Cache::new(CacheConfig::soc_llc());
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                cache.access(addr, AccessKind::Read);
                addr = addr.wrapping_add(64);
            }
        })
    });

    g.bench_function("dram_bank_10k_accesses", |b| {
        let mut banks = BankArray::new(DramConfig::lpddr3());
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                banks.access(addr, 64, AccessKind::Read);
                addr = addr.wrapping_add(64);
            }
        })
    });

    g.throughput(Throughput::Bytes(4096 * 256));
    g.bench_function("memory_system_ranged_1mb", |b| {
        let mut m = MemorySystem::new(MemConfig::chromebook_like());
        let mut now = 0;
        let mut base = 0u64;
        b.iter(|| {
            for i in 0..256u64 {
                let out = m.access(base + i * 4096, 4096, AccessKind::Read, now);
                now += out.latency_ps;
            }
            base = base.wrapping_add(1 << 20);
        })
    });

    g.bench_function("pim_port_ranged_1mb", |b| {
        let mut m = MemorySystem::new(MemConfig::pim_device());
        let mut now = 0;
        let mut base = 0u64;
        b.iter(|| {
            for i in 0..256u64 {
                let out =
                    m.access_from(pim_memsim::Port::PimCore, base + i * 4096, 4096, AccessKind::Read, now);
                now += out.latency_ps;
            }
            base = base.wrapping_add(1 << 20);
        })
    });
    g.finish();
}

fn offload(c: &mut Criterion) {
    let mut g = c.benchmark_group("offload");
    g.sample_size(10);
    let engine = OffloadEngine::new();
    g.bench_function("tiling_kernel_full_sweep_128", |b| {
        b.iter(|| {
            let mut k = pim_chrome::tiling::TextureTilingKernel::new(128, 128, 1);
            let r = engine.run_all(&mut k);
            r.len()
        })
    });
    g.bench_function("tiling_kernel_cpu_only_256", |b| {
        b.iter(|| {
            let mut k = pim_chrome::tiling::TextureTilingKernel::new(256, 256, 1);
            engine.run(&mut k, ExecutionMode::CpuOnly).runtime_ps
        })
    });
    g.finish();
}

criterion_group!(benches, memsim, offload);
criterion_main!(benches);
