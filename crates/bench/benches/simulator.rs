//! Throughput of the simulator itself: cache lookups, DRAM accesses,
//! ranged accesses through the full memory system, and an end-to-end
//! offload run.
//!
//! A self-contained harness (`cargo bench -p pim-bench --bench simulator`)
//! timed with `std::time::Instant` — see `kernels.rs` for the rationale.

use std::hint::black_box;
use std::time::Instant;

use pim_core::{ExecutionMode, OffloadEngine};
use pim_memsim::{
    AccessKind, BankArray, Cache, CacheConfig, DramConfig, MemConfig, MemorySystem,
};

/// Time `f` over `iters` iterations (plus a 10% warm-up) and print the
/// per-iteration latency.
fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    for _ in 0..iters.div_ceil(10) {
        black_box(f());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_s = t0.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<32} {:>10.1} us/iter", per_s * 1e6);
}

fn memsim() {
    println!("[memsim]");
    let mut cache = Cache::new(CacheConfig::soc_llc()).expect("valid preset");
    let mut addr = 0u64;
    bench("cache_streaming_10k_lines", 100, || {
        for _ in 0..10_000 {
            cache.access(addr, AccessKind::Read);
            addr = addr.wrapping_add(64);
        }
    });

    let mut banks = BankArray::new(DramConfig::lpddr3()).expect("valid preset");
    let mut addr = 0u64;
    bench("dram_bank_10k_accesses", 100, || {
        for _ in 0..10_000 {
            banks.access(addr, 64, AccessKind::Read);
            addr = addr.wrapping_add(64);
        }
    });

    let mut m = MemorySystem::new(MemConfig::chromebook_like()).expect("valid preset");
    let mut now = 0;
    let mut base = 0u64;
    bench("memory_system_ranged_1mb", 50, || {
        for i in 0..256u64 {
            let out = m.access(base + i * 4096, 4096, AccessKind::Read, now);
            now += out.latency_ps;
        }
        base = base.wrapping_add(1 << 20);
    });

    let mut m = MemorySystem::new(MemConfig::pim_device()).expect("valid preset");
    let mut now = 0;
    let mut base = 0u64;
    bench("pim_port_ranged_1mb", 50, || {
        for i in 0..256u64 {
            // The PIM port is fallible (it errors on non-stacked memory);
            // on this config every access succeeds.
            if let Ok(out) =
                m.access_from(pim_memsim::Port::PimCore, base + i * 4096, 4096, AccessKind::Read, now)
            {
                now += out.latency_ps;
            }
        }
        base = base.wrapping_add(1 << 20);
    });
}

fn offload() {
    println!("[offload]");
    let engine = OffloadEngine::new();
    bench("tiling_kernel_full_sweep_128", 10, || {
        let mut k = pim_chrome::tiling::TextureTilingKernel::new(128, 128, 1);
        let r = engine.run_all(&mut k);
        r.len()
    });
    bench("tiling_kernel_cpu_only_256", 10, || {
        let mut k = pim_chrome::tiling::TextureTilingKernel::new(256, 256, 1);
        engine.run(&mut k, ExecutionMode::CpuOnly).runtime_ps
    });
}

fn main() {
    memsim();
    offload();
}
