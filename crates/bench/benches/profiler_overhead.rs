//! Wall-clock overhead of the `pim-obs` self-profiler.
//!
//! Runs the same kernel sweep three ways — no profiler in the loop (the
//! baseline), a disabled profiler whose `scope()` calls sit on the hot
//! path, and an enabled profiler recording every scope — comparing
//! best-of-N wall times. The disabled profiler is the claimed
//! single-branch no-op: its best-of-N ratio against the baseline is
//! asserted under 1.05 in full mode, which is what licenses leaving
//! `profiler.scope(..)` calls permanently in `repro`'s sweep code.
//! `--smoke` (used by `scripts/check.sh`) runs a single small repetition
//! and only prints the ratios — wall-clock assertions are too noisy for
//! shared CI runners.
//!
//! ```text
//! cargo bench -p pim-bench --bench profiler_overhead            # assert <5%
//! cargo bench -p pim-bench --bench profiler_overhead -- --smoke # print only
//! ```

use std::hint::black_box;
use std::time::Instant;

use pim_chrome::tiling::TextureTilingKernel;
use pim_core::{ExecutionMode, OffloadEngine};
use pim_obs::Profiler;

#[derive(Clone, Copy)]
enum Mode {
    Baseline,
    Disabled,
    Enabled,
}

/// Best-of-`reps` wall time of one profiled sweep, in seconds. A fresh
/// profiler per rep keeps the enabled-mode phase map from accumulating
/// across repetitions.
fn best_of(reps: u32, px: usize, mode: Mode) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..reps {
        let profiler = match mode {
            Mode::Baseline | Mode::Disabled => Profiler::disabled(),
            Mode::Enabled => Profiler::new(),
        };
        let engine = OffloadEngine::new();
        let mut k = TextureTilingKernel::new(px, px, u64::from(rep));
        let t0 = Instant::now();
        match mode {
            Mode::Baseline => {
                black_box(engine.run(&mut k, ExecutionMode::PimAcc));
            }
            Mode::Disabled | Mode::Enabled => {
                let _scope = profiler.scope("bench/tiling/pim-acc");
                black_box(engine.run(&mut k, ExecutionMode::PimAcc));
            }
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, px) = if smoke { (3, 128) } else { (20, 512) };
    black_box(best_of(2, px, Mode::Baseline)); // warmup
    let base = best_of(reps, px, Mode::Baseline);
    let off = best_of(reps, px, Mode::Disabled);
    let on = best_of(reps, px, Mode::Enabled);
    println!(
        "profiler_overhead: baseline {:>8.2} ms, disabled-profiler {:>8.2} ms (x{:.4}), enabled {:>8.2} ms (x{:.2})",
        base * 1e3,
        off * 1e3,
        off / base,
        on * 1e3,
        on / base
    );
    if smoke {
        println!("profiler_overhead: smoke mode, ratio not asserted");
        return;
    }
    let ratio = off / base;
    assert!(
        ratio < 1.05,
        "disabled-profiler overhead {:.2}% exceeds the 5% budget",
        (ratio - 1.0) * 100.0
    );
    println!("profiler_overhead: PASS (disabled profiler <5% overhead)");
}
