//! Wall-clock overhead of the tracing layer.
//!
//! Runs the same kernel through the offload engine in three modes —
//! no tracer attached (the pre-tracing baseline), a disabled tracer
//! attached, and an enabled tracer — comparing best-of-N wall times.
//! The disabled tracer is the claimed no-op fast path: its best-of-N
//! ratio against the baseline is asserted to be under 1.05 in full mode.
//! The enabled ratio is reported for information. `--smoke` (used by
//! `scripts/check.sh`) runs a single small repetition and only prints
//! the ratios — wall-clock assertions are too noisy for shared CI
//! runners.
//!
//! ```text
//! cargo bench -p pim-bench --bench trace_overhead            # assert <5%
//! cargo bench -p pim-bench --bench trace_overhead -- --smoke # print only
//! ```

use std::hint::black_box;
use std::time::Instant;

use pim_chrome::tiling::TextureTilingKernel;
use pim_core::{ExecutionMode, OffloadEngine, Tracer};

#[derive(Clone, Copy)]
enum Mode {
    Baseline,
    Disabled,
    Enabled,
}

/// Best-of-`reps` wall time of one run, in seconds. A fresh tracer per
/// rep keeps the enabled-mode event buffer from growing across
/// repetitions and skewing later samples.
fn best_of(reps: u32, px: usize, mode: Mode) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..reps {
        let engine = match mode {
            Mode::Baseline => OffloadEngine::new(),
            Mode::Disabled => OffloadEngine::new().with_tracer(&Tracer::disabled()),
            Mode::Enabled => OffloadEngine::new().with_tracer(&Tracer::new()),
        };
        let mut k = TextureTilingKernel::new(px, px, u64::from(rep));
        let t0 = Instant::now();
        black_box(engine.run(&mut k, ExecutionMode::PimAcc));
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, px) = if smoke { (3, 128) } else { (20, 512) };
    black_box(best_of(2, px, Mode::Baseline)); // warmup
    let base = best_of(reps, px, Mode::Baseline);
    let off = best_of(reps, px, Mode::Disabled);
    let on = best_of(reps, px, Mode::Enabled);
    println!(
        "trace_overhead: baseline {:>8.2} ms, disabled-tracer {:>8.2} ms (x{:.4}), enabled {:>8.2} ms (x{:.2})",
        base * 1e3,
        off * 1e3,
        off / base,
        on * 1e3,
        on / base
    );
    if smoke {
        println!("trace_overhead: smoke mode, ratio not asserted");
        return;
    }
    let ratio = off / base;
    assert!(
        ratio < 1.05,
        "disabled-tracer overhead {:.2}% exceeds the 5% budget",
        (ratio - 1.0) * 100.0
    );
    println!("trace_overhead: PASS (disabled tracer <5% overhead)");
}
