//! Throughput of the line-coalescing fast path against the full walk.
//!
//! A self-contained harness (`cargo bench -p pim-bench --bench hotpath`)
//! timed with `std::time::Instant` — see `kernels.rs` for the rationale.
//! Each pattern is run once with coalescing (the default) and once with
//! `set_fast_path(false)`, so the printout shows exactly what the memo
//! buys on repeat-heavy streams and what it costs on adversarial ones.

use std::hint::black_box;
use std::time::Instant;

use pim_core::rng::SplitMix64;
use pim_core::{AccessKind, EngineTiming, Platform, Port, SimContext};

/// Time `f` over `iters` iterations (plus a 10% warm-up) and print the
/// per-iteration latency.
fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    for _ in 0..iters.div_ceil(10) {
        black_box(f());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_s = t0.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<40} {:>10.1} us/iter", per_s * 1e6);
}

fn ctx(port: Port, fast: bool) -> SimContext {
    let (platform, timing) = match port {
        Port::Cpu => (Platform::baseline(), EngineTiming::soc_cpu()),
        Port::PimCore => (Platform::pim(), EngineTiming::pim_core()),
        Port::PimAccel => (Platform::pim(), EngineTiming::pim_accel()),
    };
    let mut ctx = SimContext::new(platform, timing, port);
    ctx.set_fast_path(fast);
    ctx
}

/// Sequential small accesses: every line is touched 8 times in a row,
/// the exact pattern per-element kernel loops produce.
fn repeat_stream(ctx: &mut SimContext) {
    let buf = ctx.alloc(1 << 20);
    for i in 0..(1u64 << 14) {
        ctx.access(buf.addr(i * 8), 8, AccessKind::Read);
    }
}

/// Random single-line accesses across a 4 MB working set: the memo
/// almost never matches, so this bounds its overhead.
fn random_stream(ctx: &mut SimContext) {
    let buf = ctx.alloc(4 << 20);
    let mut rng = SplitMix64::new(1);
    for _ in 0..(1 << 14) {
        let line = rng.next_below((4 << 20) / 64);
        ctx.access(buf.addr(line * 64), 8, AccessKind::Read);
    }
}

/// Strided plane walk issued as ranged descriptors: each `read_rows`
/// call covers a 512 B x 1024-row rectangle of a 1 KB-pitch,
/// LLC-resident plane in a single descriptor — the hot-rect shape the
/// VP9 kernels hand the engine, where row streaks hit and commit in
/// batch. With the fast path off the same calls decompose into the
/// per-row scalar walk, so fast vs slow is ranged vs scalar.
fn ranged_stream(ctx: &mut SimContext) {
    let buf = ctx.alloc(1 << 20);
    for rect in 0..16u64 {
        ctx.read_rows(buf.addr((rect * 31) % 512), 512, 1024, 1024);
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = |n: u32| if smoke { 2 } else { n };
    for port in [Port::Cpu, Port::PimCore, Port::PimAccel] {
        println!("[{port:?}]");
        bench("repeat_16k_fast", iters(50), || {
            let mut c = ctx(port, true);
            repeat_stream(&mut c);
            c.now_ps()
        });
        bench("repeat_16k_slow", iters(50), || {
            let mut c = ctx(port, false);
            repeat_stream(&mut c);
            c.now_ps()
        });
        bench("random_16k_fast", iters(50), || {
            let mut c = ctx(port, true);
            random_stream(&mut c);
            c.now_ps()
        });
        bench("random_16k_slow", iters(50), || {
            let mut c = ctx(port, false);
            random_stream(&mut c);
            c.now_ps()
        });
        // ranged_vs_scalar: the same 64k-row strided walk as one
        // descriptor per column (fast) and decomposed into the per-row
        // scalar loop (slow) — the headline ratio of this PR.
        bench("ranged_vs_scalar/ranged_64k", iters(50), || {
            let mut c = ctx(port, true);
            ranged_stream(&mut c);
            c.now_ps()
        });
        bench("ranged_vs_scalar/scalar_64k", iters(50), || {
            let mut c = ctx(port, false);
            ranged_stream(&mut c);
            c.now_ps()
        });
    }
}
