//! The attribution sweep behind `repro --explain`.
//!
//! Re-runs the nine-kernel catalog across the three study modes and
//! converts each run's [`pim_core::CostBreakdown`] and
//! [`pim_core::EnergyBreakdown`] into [`pim_obs::ExplainRecord`]s — one
//! per experiment × platform. The sweep rides the same supervised
//! harness as the scorecard, with record lines as the job payloads, so
//! `--jobs 1` and parallel runs produce bit-identical attributions (the
//! floats travel as shortest-round-trip strings and the harness merges
//! results in submission order).
//!
//! The aggregate analysis differences the summed CPU-only attribution
//! against the summed PIM-Acc attribution to localize the headline
//! speedup — this reproduction's 2.94× vs the paper's 1.54× — to
//! specific cost components (see `BENCH_explain.json`'s `headline_gap`).

use pim_core::{
    Component, DmpimError, ExecutionMode, OffloadEngine, RunReport, Tracer,
    Watchdog,
};
use pim_harness::{Harness, HarnessError, HarnessPolicy, SweepReport};
use pim_obs::{attribute_gap, ExplainRecord, GapAttribution, Profiler};
use pim_trace::JsonValue;

use crate::jobs::{kernel_catalog, KernelFactory};

/// Lowercase platform slug used in record lines and JSON.
pub fn mode_slug(mode: ExecutionMode) -> &'static str {
    match mode {
        ExecutionMode::CpuOnly => "cpu-only",
        ExecutionMode::PimCore => "pim-core",
        ExecutionMode::PimAcc => "pim-acc",
    }
}

/// Convert one run report into an attribution record.
///
/// Cycle attribution copies the context's [`pim_core::CostBreakdown`]
/// verbatim (same six labels, same order). Energy attribution maps the
/// six [`Component`]s onto the same labels: CPU→compute, L1+LLC→cache,
/// MemCtrl→dram-queue, DRAM→dram-service, and Interconnect→pim-link —
/// the interconnect meter covers the off-chip channel (CPU-only), the
/// stacked-memory link, and coherence messages, none of which are
/// separable in the energy model, so the energy `coherence` column is
/// structurally zero (the *cycle* coherence column is real).
pub fn record_from_report(kernel: &str, report: &RunReport) -> ExplainRecord {
    let e = &report.energy;
    let act = &report.activity;
    let row_total = act.row_hits + act.row_misses;
    ExplainRecord {
        kernel: kernel.to_string(),
        mode: mode_slug(report.mode).to_string(),
        runtime_ps: report.runtime_ps,
        cycle_ps: report.cost.as_array(),
        energy_pj: [
            e.get(Component::Cpu),
            e.get(Component::L1) + e.get(Component::Llc),
            0.0,
            e.get(Component::MemCtrl),
            e.get(Component::Dram),
            e.get(Component::Interconnect),
        ],
        row_hit_rate: if row_total == 0 {
            0.0
        } else {
            act.row_hits as f64 / row_total as f64
        },
        mpki: report.mpki,
        bytes_moved: act.offchip_bytes + act.internal_bytes,
    }
}

/// Separator between the three per-mode record lines inside one job
/// payload (record lines never contain it).
const RECORD_SEP: char = ';';

/// Measure one kernel's attribution across the three study modes,
/// encoded as a single `;`-joined payload line.
fn measure_explain(
    name: &'static str,
    factory: KernelFactory,
    tracer: &Tracer,
    watchdog: Watchdog,
    profiler: &Profiler,
) -> Result<String, DmpimError> {
    let engine = OffloadEngine::new().with_tracer(tracer).with_watchdog(watchdog);
    let mut kernel = factory();
    let mut lines = Vec::with_capacity(3);
    for mode in ExecutionMode::ALL {
        let _scope = profiler.scope(&format!("explain/{name}/{}", mode_slug(mode)));
        let report = engine.try_run(kernel.as_mut(), mode)?;
        lines.push(record_from_report(name, &report).to_line());
    }
    Ok(lines.iter().map(String::as_str).collect::<Vec<_>>().join(&RECORD_SEP.to_string()))
}

/// Outcome of [`explain_sweep`]: records in catalog × mode order plus
/// the harness failure report.
pub type ExplainOutcome = (Vec<ExplainRecord>, SweepReport);

/// Run the attribution sweep through the supervised harness.
pub fn explain_sweep(
    smoke: bool,
    policy: HarnessPolicy,
    profiler: &Profiler,
) -> Result<ExplainOutcome, HarnessError> {
    let jobs = kernel_catalog(smoke)
        .into_iter()
        .map(|(name, _kind, factory)| {
            let profiler = profiler.clone();
            pim_harness::Job::new(format!("explain:{name}"), move |ctx: &pim_harness::JobCtx| {
                measure_explain(name, factory, &ctx.tracer, ctx.watchdog, &profiler)
            })
        })
        .collect();
    let report = Harness::new(policy).run(jobs)?;
    let records = report
        .results
        .iter()
        .filter_map(|r| r.output.as_deref())
        .flat_map(|payload| payload.split(RECORD_SEP))
        .filter_map(ExplainRecord::parse_line)
        .collect();
    Ok((records, report))
}

/// The aggregate headline analysis: summed CPU-only vs summed PIM-Acc
/// attribution across every kernel, plus the measured mean speedup.
pub struct HeadlineGap {
    /// Mean per-kernel PIM-Acc speedup (the scorecard's divergent 2.94×).
    pub measured_speedup: f64,
    /// Catalog-wide CPU-only attribution (sums of per-kernel records).
    pub cpu_total: ExplainRecord,
    /// Catalog-wide PIM-Acc attribution.
    pub acc_total: ExplainRecord,
    /// Component-wise account of the time PIM-Acc saves.
    pub gap: GapAttribution,
}

fn sum_records(records: &[&ExplainRecord], mode: &str) -> ExplainRecord {
    let mut out = ExplainRecord {
        kernel: "ALL".to_string(),
        mode: mode.to_string(),
        runtime_ps: 0,
        cycle_ps: [0.0; 6],
        energy_pj: [0.0; 6],
        row_hit_rate: 0.0,
        mpki: 0.0,
        bytes_moved: 0,
    };
    let mut hits = 0.0;
    for r in records {
        out.runtime_ps += r.runtime_ps;
        for i in 0..6 {
            out.cycle_ps[i] += r.cycle_ps[i];
            out.energy_pj[i] += r.energy_pj[i];
        }
        hits += r.row_hit_rate;
        out.mpki += r.mpki;
        out.bytes_moved += r.bytes_moved;
    }
    if !records.is_empty() {
        out.row_hit_rate = hits / records.len() as f64;
        out.mpki /= records.len() as f64;
    }
    out
}

/// Compute the headline-gap analysis from a full record set. `None` when
/// the set has no CPU-only/PIM-Acc pairs to compare.
pub fn headline_gap(records: &[ExplainRecord]) -> Option<HeadlineGap> {
    let cpu: Vec<&ExplainRecord> = records.iter().filter(|r| r.mode == "cpu-only").collect();
    let acc: Vec<&ExplainRecord> = records.iter().filter(|r| r.mode == "pim-acc").collect();
    if cpu.is_empty() || acc.is_empty() {
        return None;
    }
    let mut speedups = Vec::new();
    for c in &cpu {
        if let Some(a) = acc.iter().find(|a| a.kernel == c.kernel) {
            if a.runtime_ps > 0 {
                speedups.push(c.runtime_ps as f64 / a.runtime_ps as f64);
            }
        }
    }
    let cpu_total = sum_records(&cpu, "cpu-only");
    let acc_total = sum_records(&acc, "pim-acc");
    let gap = attribute_gap(&cpu_total, &acc_total);
    Some(HeadlineGap {
        measured_speedup: pim_core::report::mean(&speedups),
        cpu_total,
        acc_total,
        gap,
    })
}

/// Render the full `BENCH_explain.json` document.
pub fn explain_json(records: &[ExplainRecord], report: &SweepReport) -> String {
    let mut arr = JsonValue::array();
    for r in records {
        arr = arr.push(r.to_json_value());
    }
    let mut doc = JsonValue::object()
        .set("source", "dmpim repro --explain")
        .set("records", arr);
    if let Some(h) = headline_gap(records) {
        doc = doc.set(
            "headline_gap",
            JsonValue::object()
                .set("paper_speedup", 1.54)
                .set("measured_speedup", h.measured_speedup)
                .set("cpu_total", h.cpu_total.to_json_value())
                .set("acc_total", h.acc_total.to_json_value())
                .set("attribution", h.gap.to_json_value()),
        );
    }
    doc = doc.set("harness", report.to_json_value());
    doc.render_pretty()
}

/// The human-readable `--explain` report: the per-record table plus a
/// prose localization of the headline speedup gap.
pub fn explain_text(records: &[ExplainRecord]) -> String {
    let mut out = pim_obs::render_explain_table(records);
    if let Some(h) = headline_gap(records) {
        let (label, share) = h.gap.dominant();
        out.push('\n');
        out.push_str(&format!(
            "headline: measured mean PIM-Acc speedup {:.2}x (paper: 1.54x)\n",
            h.measured_speedup
        ));
        out.push_str(&format!(
            "gap attribution: of the {:.3} ms PIM-Acc saves over CPU-only across the catalog,\n",
            h.gap.total_delta_ps / 1e9
        ));
        for (i, l) in pim_obs::COMPONENT_LABELS.iter().enumerate() {
            out.push_str(&format!(
                "  {l:>12}: {:>6.1}%  ({:+.3} ms)\n",
                h.gap.shares[i] * 100.0,
                h.gap.delta_ps[i] / 1e9
            ));
        }
        out.push_str(&format!(
            "dominant component: {label} ({:.1}% of the saved time) — the simulated CPU \
             spends most of its extra time there, which is why this reproduction's \
             speedup overshoots the paper's average\n",
            share * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_records() -> (Vec<ExplainRecord>, SweepReport) {
        explain_sweep(true, HarnessPolicy::default(), &Profiler::disabled()).unwrap()
    }

    #[test]
    fn sweep_yields_one_record_per_kernel_and_mode() {
        let (records, report) = smoke_records();
        assert!(report.all_ok(), "{:?}", report.summary());
        let kernels = kernel_catalog(true).len();
        assert_eq!(records.len(), kernels * 3);
        for (_name, _kind, _f) in kernel_catalog(true) {
            for mode in ExecutionMode::ALL {
                assert!(
                    records.iter().any(|r| r.kernel == _name && r.mode == mode_slug(mode)),
                    "missing {}/{}",
                    _name,
                    mode_slug(mode)
                );
            }
        }
    }

    #[test]
    fn cycle_shares_sum_to_one_and_match_runtime() {
        let (records, _) = smoke_records();
        for r in &records {
            let total: f64 = r.cycle_shares().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}/{}: {total}", r.kernel, r.mode);
            let esum: f64 = r.energy_shares().iter().sum();
            assert!((esum - 1.0).abs() < 1e-9, "{}/{}: {esum}", r.kernel, r.mode);
            // Attributed time never exceeds the simulated clock.
            assert!(
                r.cycle_total_ps() <= r.runtime_ps as f64 * (1.0 + 1e-9),
                "{}/{}: attributed {} > runtime {}",
                r.kernel,
                r.mode,
                r.cycle_total_ps(),
                r.runtime_ps
            );
        }
    }

    #[test]
    fn headline_gap_names_a_dominant_component() {
        let (records, report) = smoke_records();
        let h = headline_gap(&records).expect("cpu and acc records exist");
        assert!(h.measured_speedup > 1.0, "PIM-Acc should win: {}", h.measured_speedup);
        assert!(h.gap.total_delta_ps > 0.0);
        let (label, share) = h.gap.dominant();
        assert!(pim_obs::COMPONENT_LABELS.contains(&label));
        assert!(share > 0.0);
        let text = explain_text(&records);
        assert!(text.contains("dominant component"), "{text}");
        assert!(text.contains(label), "{text}");
        let json = explain_json(&records, &report);
        assert!(json.contains("\"headline_gap\""), "{json}");
        assert!(json.contains("\"dominant_component\""), "{json}");
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let serial = explain_sweep(
            true,
            HarnessPolicy { workers: 1, ..Default::default() },
            &Profiler::disabled(),
        )
        .unwrap()
        .0;
        let parallel = explain_sweep(
            true,
            HarnessPolicy { workers: 4, ..Default::default() },
            &Profiler::disabled(),
        )
        .unwrap()
        .0;
        let a: Vec<String> = serial.iter().map(ExplainRecord::to_line).collect();
        let b: Vec<String> = parallel.iter().map(ExplainRecord::to_line).collect();
        assert_eq!(a, b, "attribution must not depend on worker count");
    }
}
