//! Sweep jobs for the supervised harness behind `repro`.
//!
//! Every unit of sweep work — one kernel measured across the three study
//! modes, or one experiment regenerated — is packaged as a
//! [`pim_harness::Job`] so the repro CLI gets panic isolation, watchdog
//! supervision, retry/quarantine policy and journal-based resume for
//! free. Jobs communicate through their payload *strings* (see
//! [`KernelMetrics::to_line`]): a result restored from a resume journal
//! is byte-identical to one computed in-process, which is what makes
//! resumed scorecards bit-identical to uninterrupted ones.

use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pim_core::{
    DmpimError, ExecutionMode, Kernel, OffloadEngine, OpMix, PimTargetKind, ResiliencePolicy,
    SimContext, Tracer, Watchdog,
};
use pim_harness::{Harness, HarnessError, HarnessPolicy, Job, SweepReport};
use pim_vp9::driver::{MotionEstimationKernel, SubPixelInterpolationKernel};

use crate::scorecard::{
    entries_from_metrics, metrics_from_shards, KernelMetrics, ModeShard, ScorecardEntry,
};

/// A capture-free kernel constructor. Plain `fn` pointers (not boxed
/// closures) so a catalog entry is trivially `Send + Sync` and can be
/// moved into retried job attempts.
pub type KernelFactory = fn() -> Box<dyn Kernel>;

/// Every PIM-target kernel with its workload: name, paper target, and a
/// factory building a fresh kernel instance per job attempt. `smoke`
/// swaps the paper-scale inputs for two small kernels (tests and the
/// harness selftest).
pub fn kernel_catalog(smoke: bool) -> Vec<(&'static str, PimTargetKind, KernelFactory)> {
    use pim_chrome::lzo::{CompressionKernel, DecompressionKernel};
    use pim_chrome::tiling::TextureTilingKernel;
    use pim_chrome::ColorBlittingKernel;
    use pim_vp9::driver::{
        DeblockingFilterKernel, MotionEstimationKernel, SubPixelInterpolationKernel,
    };
    if smoke {
        return vec![
            ("texture tiling", PimTargetKind::TextureTiling, || {
                Box::new(TextureTilingKernel::new(128, 128, 1))
            }),
            ("color blitting", PimTargetKind::ColorBlitting, || {
                Box::new(ColorBlittingKernel::new(vec![32, 64], 128, 1))
            }),
        ];
    }
    vec![
        ("texture tiling", PimTargetKind::TextureTiling, || {
            Box::new(TextureTilingKernel::paper_input())
        }),
        ("color blitting", PimTargetKind::ColorBlitting, || {
            Box::new(ColorBlittingKernel::paper_input())
        }),
        ("compression", PimTargetKind::Compression, || Box::new(CompressionKernel::paper_input())),
        ("decompression", PimTargetKind::Compression, || {
            Box::new(DecompressionKernel::paper_input())
        }),
        ("packing", PimTargetKind::Packing, || {
            Box::new(pim_tfmobile::pack::PackingKernel::paper_input())
        }),
        ("quantization", PimTargetKind::Quantization, || {
            Box::new(pim_tfmobile::quantize::QuantizationKernel::paper_input())
        }),
        ("sub-pixel interpolation", PimTargetKind::SubPixelInterpolation, || {
            Box::new(SubPixelInterpolationKernel::paper_input())
        }),
        ("deblocking filter", PimTargetKind::DeblockingFilter, || {
            Box::new(DeblockingFilterKernel::paper_input())
        }),
        ("motion estimation", PimTargetKind::MotionEstimation, || {
            Box::new(MotionEstimationKernel::paper_input())
        }),
    ]
}

/// Run one kernel through the three study modes (CPU-only, PIM-Core,
/// PIM-Acc) and encode the scorecard measurements as a journal line.
fn measure(
    name: &'static str,
    kind: PimTargetKind,
    factory: KernelFactory,
    tracer: &Tracer,
    watchdog: Watchdog,
) -> Result<String, DmpimError> {
    let engine = OffloadEngine::new().with_tracer(tracer).with_watchdog(watchdog);
    let mut kernel = factory();
    let cpu = engine.try_run(kernel.as_mut(), ExecutionMode::CpuOnly)?;
    let core = engine.try_run(kernel.as_mut(), ExecutionMode::PimCore)?;
    let acc = engine.try_run(kernel.as_mut(), ExecutionMode::PimAcc)?;
    Ok(KernelMetrics::from_reports(name, kind, &cpu, &core, &acc).to_line())
}

/// Measure one catalog kernel by name through the three study modes —
/// the `pim-serve` resolver entry point for `kernel:<name>` specs.
///
/// # Errors
///
/// `DmpimError::UnknownExperiment` for a name not in the catalog;
/// otherwise whatever the simulation itself raises.
pub fn measure_kernel(
    name: &str,
    smoke: bool,
    tracer: &Tracer,
    watchdog: Watchdog,
) -> Result<String, DmpimError> {
    let (n, kind, factory) = kernel_catalog(smoke)
        .into_iter()
        .find(|(n, ..)| *n == name)
        .ok_or_else(|| DmpimError::UnknownExperiment { id: format!("kernel:{name}") })?;
    measure(n, kind, factory, tracer, watchdog)
}

/// Shared sink for per-attempt wall times. Timing lives *outside* the
/// job payloads and the resume journal on purpose: journal lines (and
/// thus merged [`pim_harness::JobResult`]s) stay bit-identical across
/// runs, while timing — which never is — travels on the side. Every
/// attempt pushes its own entry (retried and failed attempts included),
/// so a retried job's abandoned wall time is visible instead of silently
/// replaced. Jobs restored from a resume journal simply have no entry.
pub type JobTimings = Arc<Mutex<Vec<(String, u64)>>>;

/// Wrap a job body so each attempt's wall time lands in `timings` —
/// success or failure — under the job's name.
pub fn timed_job<F>(name: impl Into<String>, timings: Option<JobTimings>, body: F) -> Job
where
    F: Fn(&pim_harness::JobCtx) -> Result<String, DmpimError> + Send + Sync + 'static,
{
    let name = name.into();
    Job::new(name.clone(), move |ctx| {
        let t0 = Instant::now();
        let out = body(ctx);
        if let Some(sink) = &timings {
            if let Ok(mut v) = sink.lock() {
                v.push((name.clone(), t0.elapsed().as_millis() as u64));
            }
        }
        out
    })
}

/// Kernels whose three study modes run as separate harness shard jobs
/// (the two big video kernels: together ~80% of an unsharded sweep's
/// wall time, so mode-level shards are what lets `--jobs N` shorten the
/// critical path). Their compute caches are shared across the shards,
/// so the pure pixel work still happens once per sweep.
pub const SHARDED_KERNELS: [&str; 2] = ["sub-pixel interpolation", "motion estimation"];

/// Job id of one study-mode shard: `<kernel>@<mode label>`.
pub fn shard_job_id(name: &str, mode: ExecutionMode) -> String {
    format!("{name}@{}", mode.label())
}

/// Measure one study mode of `kernel` and encode it as a shard line.
fn measure_mode(
    name: &str,
    kind: PimTargetKind,
    kernel: &mut dyn Kernel,
    mode: ExecutionMode,
    tracer: &Tracer,
    watchdog: Watchdog,
) -> Result<String, DmpimError> {
    let engine = OffloadEngine::new().with_tracer(tracer).with_watchdog(watchdog);
    let report = engine.try_run(kernel, mode)?;
    Ok(ModeShard::from_report(name, kind, &report).to_line())
}

/// Three shard jobs (one per study mode) for a kernel whose clones share
/// a compute cache. Every shard (and every retried attempt) clones the
/// same prototype, so whichever runs first computes the pure pixel work
/// and the rest reuse it — the simulated replay stays per-mode and is
/// bit-identical to running the three modes inside one job.
fn sharded_kernel_jobs<K>(
    name: &'static str,
    kind: PimTargetKind,
    proto: K,
    timings: Option<JobTimings>,
) -> Vec<Job>
where
    K: Kernel + Clone + Send + Sync + 'static,
{
    ExecutionMode::ALL
        .into_iter()
        .map(|mode| {
            let proto = proto.clone();
            timed_job(shard_job_id(name, mode), timings.clone(), move |ctx| {
                let mut kernel = proto.clone();
                measure_mode(name, kind, &mut kernel, mode, &ctx.tracer, ctx.watchdog)
            })
        })
        .collect()
}

fn metrics_jobs_timed(smoke: bool, timings: Option<JobTimings>) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (name, kind, factory) in kernel_catalog(smoke) {
        match name {
            "sub-pixel interpolation" => jobs.extend(sharded_kernel_jobs(
                name,
                kind,
                SubPixelInterpolationKernel::paper_input(),
                timings.clone(),
            )),
            "motion estimation" => jobs.extend(sharded_kernel_jobs(
                name,
                kind,
                MotionEstimationKernel::paper_input(),
                timings.clone(),
            )),
            _ => jobs.push(timed_job(name, timings.clone(), move |ctx| {
                measure(name, kind, factory, &ctx.tracer, ctx.watchdog)
            })),
        }
    }
    jobs
}

/// Fold sweep payload lines — plain [`KernelMetrics`] lines and per-mode
/// [`ModeShard`] lines — into kernel metrics, in catalog (`order`)
/// position. A sharded kernel contributes only when all three of its
/// mode shards are present: a failed shard degrades to a missing kernel,
/// exactly like a failed unsharded job. Keying by catalog order (not
/// result order) makes the merge independent of worker scheduling.
pub fn merge_metric_lines<'a>(
    order: &[&str],
    lines: impl IntoIterator<Item = &'a str>,
) -> Vec<KernelMetrics> {
    let mut plain: Vec<KernelMetrics> = Vec::new();
    let mut shards: Vec<ModeShard> = Vec::new();
    for line in lines {
        if let Some(s) = ModeShard::parse(line) {
            shards.push(s);
        } else if let Some(m) = KernelMetrics::parse(line) {
            plain.push(m);
        }
    }
    order
        .iter()
        .filter_map(|&name| {
            if let Some(m) = plain.iter().find(|m| m.name == name) {
                return Some(m.clone());
            }
            let find = |mode| shards.iter().find(|s| s.name == name && s.mode == mode);
            match (
                find(ExecutionMode::CpuOnly),
                find(ExecutionMode::PimCore),
                find(ExecutionMode::PimAcc),
            ) {
                (Some(cpu), Some(core), Some(acc)) => Some(metrics_from_shards(cpu, core, acc)),
                _ => None,
            }
        })
        .collect()
}

/// Fold per-attempt timings into per-job `(id, total_ms, attempts)`
/// aggregates, preserving first-seen order.
pub fn aggregate_timings(timings: &[(String, u64)]) -> Vec<(String, u64, u64)> {
    let mut out: Vec<(String, u64, u64)> = Vec::new();
    for (name, ms) in timings {
        if let Some(slot) = out.iter_mut().find(|(n, ..)| n == name) {
            slot.1 += ms;
            slot.2 += 1;
        } else {
            out.push((name.clone(), *ms, 1));
        }
    }
    out
}

/// One measurement job per catalog kernel.
pub fn metrics_jobs(smoke: bool) -> Vec<Job> {
    metrics_jobs_timed(smoke, None)
}

/// Compute the scorecard measurements in-process (no journal, current
/// thread). Round-trips every measurement through its journal line so
/// the values are bit-identical to a harness/resume run.
pub(crate) fn collect_metrics(smoke: bool) -> Vec<KernelMetrics> {
    let tracer = Tracer::default();
    kernel_catalog(smoke)
        .into_iter()
        .filter_map(|(name, kind, factory)| {
            measure(name, kind, factory, &tracer, Watchdog::unlimited()).ok()
        })
        .filter_map(|line| KernelMetrics::parse(&line))
        .collect()
}

/// Result of [`scorecard_sweep`]: the merged scorecard entries, the
/// harness failure report, and per-job wall times in `(id, ms)` form.
pub type SweepOutcome = (Vec<ScorecardEntry>, SweepReport, Vec<(String, u64)>);

/// Run the scorecard sweep through the harness: one job per kernel,
/// optional journal/resume, merged back into scorecard entries plus the
/// harness's failure report. Jobs whose measurement failed (panic,
/// timeout, invalid config) are reported in the [`SweepReport`] and
/// simply absent from the aggregation.
pub fn scorecard_sweep(
    smoke: bool,
    policy: HarnessPolicy,
    journal: Option<&Path>,
    resume: bool,
) -> Result<SweepOutcome, HarnessError> {
    let mut harness = Harness::new(policy);
    if let Some(path) = journal {
        harness = if resume { harness.resume_from(path) } else { harness.with_journal(path) };
    }
    let timings: JobTimings = Arc::new(Mutex::new(Vec::new()));
    let report = harness.run(metrics_jobs_timed(smoke, Some(timings.clone())))?;
    let order: Vec<&str> = kernel_catalog(smoke).into_iter().map(|(n, ..)| n).collect();
    let metrics =
        merge_metric_lines(&order, report.results.iter().filter_map(|r| r.output.as_deref()));
    let timings = timings.lock().map(|v| v.clone()).unwrap_or_default();
    Ok((entries_from_metrics(&metrics), report, timings))
}

/// One job per experiment id, for the default `repro` run. Each job's
/// payload is the experiment's full text report.
pub fn experiment_jobs() -> Vec<Job> {
    crate::EXPERIMENTS
        .iter()
        .map(|&id| Job::new(id, move |_ctx| crate::run_experiment(id)))
        .collect()
}

/// A deliberately hung simulation: spins until a watchdog poisons the
/// context. Unsupervised, this kernel never terminates — which is
/// exactly what the harness selftest needs to prove supervision works.
struct RunawayKernel;

impl Kernel for RunawayKernel {
    fn name(&self) -> &'static str {
        "runaway"
    }

    fn run(&mut self, ctx: &mut SimContext) {
        while !ctx.is_poisoned() {
            ctx.ops(OpMix::scalar(64));
        }
    }
}

/// The `repro --selftest-harness` sweep: two real kernel measurements
/// plus one panicking job and one hung simulation. Returns the report
/// and any deviations from the expected disposition (empty = pass).
pub fn selftest(workers: usize) -> Result<(SweepReport, Vec<String>), HarnessError> {
    let policy = HarnessPolicy {
        workers: workers.max(1),
        max_retries: 1,
        quarantine_strikes: 2,
        retry_backoff: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(8),
        wall_deadline: None,
        // Generous enough for the smoke kernels, but the runaway kernel
        // burns host events forever and trips it within milliseconds.
        watchdog: Watchdog::new(u64::MAX, 2_000_000),
        ..Default::default()
    };
    let mut jobs = metrics_jobs(true);
    jobs.push(Job::new("panicker", |_ctx| -> Result<String, DmpimError> {
        panic!("injected selftest panic");
    }));
    jobs.push(Job::new("runaway", |ctx| {
        let engine = OffloadEngine::new().with_watchdog(ctx.watchdog).with_resilience(
            ResiliencePolicy { max_retries: 0, allow_fallback: false, ..Default::default() },
        );
        let mut kernel = RunawayKernel;
        engine.try_run(&mut kernel, ExecutionMode::CpuOnly)?;
        Ok("unreachable".to_string())
    }));
    let report = Harness::new(policy).run(jobs)?;

    let summary = report.summary();
    let mut mismatches = Vec::new();
    for (what, got, want) in [
        ("succeeded", summary.succeeded, 2),
        ("failed", summary.failed, 1),
        ("quarantined", summary.quarantined, 1),
    ] {
        if got != want {
            mismatches.push(format!("expected {want} {what} job(s), got {got}"));
        }
    }
    for (label, want) in [("panic", 1), ("watchdog-timeout", 1)] {
        let got = summary.taxonomy.get(label).copied().unwrap_or(0);
        if got != want {
            mismatches.push(format!("expected taxonomy {label}={want}, got {got}"));
        }
    }
    Ok((report, mismatches))
}

#[cfg(test)]
mod tests {
    use pim_harness::JobStatus;

    use super::*;

    #[test]
    fn catalog_covers_all_nine_targets_at_paper_scale() {
        assert_eq!(kernel_catalog(false).len(), 9);
        assert_eq!(kernel_catalog(true).len(), 2);
        // Seven unsharded kernels plus three mode shards for each of the
        // two sharded ones.
        assert_eq!(metrics_jobs(false).len(), 13);
        let ids: Vec<String> = metrics_jobs(false).iter().map(|j| j.id.clone()).collect();
        for name in SHARDED_KERNELS {
            for mode in ExecutionMode::ALL {
                assert!(ids.contains(&shard_job_id(name, mode)), "{name}/{mode:?}");
            }
            assert!(!ids.contains(&name.to_string()), "{name} must not also run unsharded");
        }
    }

    #[test]
    fn sharded_mode_jobs_merge_bit_identical_to_one_job_measurement() {
        // Unsharded reference: all three modes measured inside one job,
        // exactly as `measure` does.
        let tracer = Tracer::default();
        let engine = OffloadEngine::new().with_tracer(&tracer);
        let mut k = MotionEstimationKernel::small();
        let cpu = engine.try_run(&mut k, ExecutionMode::CpuOnly).unwrap();
        let core = engine.try_run(&mut k, ExecutionMode::PimCore).unwrap();
        let acc = engine.try_run(&mut k, ExecutionMode::PimAcc).unwrap();
        let want = KernelMetrics::from_reports(
            "motion estimation",
            pim_core::PimTargetKind::MotionEstimation,
            &cpu,
            &core,
            &acc,
        );

        for workers in [1, 3] {
            let jobs = sharded_kernel_jobs(
                "motion estimation",
                pim_core::PimTargetKind::MotionEstimation,
                MotionEstimationKernel::small(),
                None,
            );
            let policy = HarnessPolicy { workers, ..Default::default() };
            let report = Harness::new(policy).run(jobs).unwrap();
            assert!(report.all_ok(), "{:?}", report.summary());
            let merged = merge_metric_lines(
                &["motion estimation"],
                report.results.iter().filter_map(|r| r.output.as_deref()),
            );
            assert_eq!(merged.len(), 1, "workers={workers}");
            let m = &merged[0];
            assert_eq!(m.name, want.name);
            assert_eq!(m.dm.to_bits(), want.dm.to_bits(), "workers={workers}");
            assert_eq!(m.core_cut.to_bits(), want.core_cut.to_bits(), "workers={workers}");
            assert_eq!(m.acc_cut.to_bits(), want.acc_cut.to_bits(), "workers={workers}");
            assert_eq!(m.acc_speed.to_bits(), want.acc_speed.to_bits(), "workers={workers}");
        }
    }

    #[test]
    fn merge_requires_all_three_shards_and_keeps_catalog_order() {
        let shard = |name: &str, mode: ExecutionMode| {
            ModeShard {
                name: name.to_string(),
                kind: pim_core::PimTargetKind::MotionEstimation,
                mode,
                total_pj: 100.0,
                runtime_ps: 10,
                dm: 0.5,
            }
            .to_line()
        };
        // Two of three shards: the kernel is absent, like a failed job.
        let partial = [shard("me", ExecutionMode::CpuOnly), shard("me", ExecutionMode::PimAcc)];
        assert!(merge_metric_lines(&["me"], partial.iter().map(String::as_str)).is_empty());
        // Full set plus a plain line, delivered out of catalog order: the
        // output follows the catalog, not the result stream.
        let plain = KernelMetrics {
            name: "tiling".to_string(),
            kind: pim_core::PimTargetKind::TextureTiling,
            dm: 0.8,
            core_cut: 0.5,
            acc_cut: 0.6,
            acc_speed: 1.4,
        };
        let lines = [
            shard("me", ExecutionMode::PimAcc),
            plain.to_line(),
            shard("me", ExecutionMode::CpuOnly),
            shard("me", ExecutionMode::PimCore),
        ];
        let merged = merge_metric_lines(&["tiling", "me"], lines.iter().map(String::as_str));
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].name, "tiling");
        assert_eq!(merged[1].name, "me");
        assert_eq!(merged[1].acc_speed, 1.0);
    }

    #[test]
    fn metric_lines_round_trip() {
        let tracer = Tracer::default();
        for (name, kind, factory) in kernel_catalog(true) {
            let line = measure(name, kind, factory, &tracer, Watchdog::unlimited()).unwrap();
            let m = KernelMetrics::parse(&line).expect("line parses");
            assert_eq!(m.name, name);
            assert_eq!(m.kind, kind);
            assert_eq!(m.to_line(), line, "shortest-roundtrip f64 must be stable");
        }
    }

    #[test]
    fn harness_sweep_matches_in_process_scorecard() {
        let (entries, report, timings) =
            scorecard_sweep(true, HarnessPolicy { workers: 2, ..Default::default() }, None, false)
                .unwrap();
        assert!(report.all_ok(), "{:?}", report.summary());
        assert_eq!(timings.len(), kernel_catalog(true).len(), "one timing per fresh job");
        let direct = crate::scorecard::scorecard(true);
        assert_eq!(entries.len(), direct.len());
        for (a, b) in entries.iter().zip(&direct) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.quantity, b.quantity);
            assert_eq!(a.measured.to_bits(), b.measured.to_bits(), "{}/{}", a.id, a.quantity);
        }
    }

    #[test]
    fn timings_record_every_attempt_including_failures() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        use pim_core::FaultKind;

        let timings: JobTimings = Arc::new(Mutex::new(Vec::new()));
        let tries = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&tries);
        let job = timed_job("flaky", Some(Arc::clone(&timings)), move |_ctx| {
            if t.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(DmpimError::FaultTransient { kind: FaultKind::BitFlip, at_ps: 1 })
            } else {
                Ok("done".to_string())
            }
        });
        let policy = HarnessPolicy {
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            ..Default::default()
        };
        let report = Harness::new(policy).run(vec![job]).unwrap();
        assert!(report.all_ok(), "{:?}", report.summary());
        let v = timings.lock().unwrap();
        assert_eq!(v.len(), 2, "one timing entry per attempt, failures included: {v:?}");
        assert!(v.iter().all(|(n, _)| n == "flaky"), "{v:?}");
        let agg = aggregate_timings(&v);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].0, "flaky");
        assert_eq!(agg[0].2, 2, "aggregate counts both attempts");
    }

    #[test]
    fn selftest_isolates_panic_and_quarantines_runaway() {
        let (report, mismatches) = selftest(2).unwrap();
        assert!(mismatches.is_empty(), "{mismatches:?}");
        let runaway = report.results.iter().find(|r| r.id == "runaway").unwrap();
        assert_eq!(runaway.status, JobStatus::Quarantined);
        assert_eq!(runaway.attempts, 2, "two timeout strikes then quarantine");
        let panicker = report.results.iter().find(|r| r.id == "panicker").unwrap();
        assert_eq!(panicker.status, JobStatus::Failed);
        assert_eq!(panicker.attempts, 1, "panics are deterministic: no retry");
    }
}
