//! Sweep jobs for the supervised harness behind `repro`.
//!
//! Every unit of sweep work — one kernel measured across the three study
//! modes, or one experiment regenerated — is packaged as a
//! [`pim_harness::Job`] so the repro CLI gets panic isolation, watchdog
//! supervision, retry/quarantine policy and journal-based resume for
//! free. Jobs communicate through their payload *strings* (see
//! [`KernelMetrics::to_line`]): a result restored from a resume journal
//! is byte-identical to one computed in-process, which is what makes
//! resumed scorecards bit-identical to uninterrupted ones.

use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pim_core::{
    DmpimError, ExecutionMode, Kernel, OffloadEngine, OpMix, PimTargetKind, ResiliencePolicy,
    SimContext, Tracer, Watchdog,
};
use pim_harness::{Harness, HarnessError, HarnessPolicy, Job, SweepReport};

use crate::scorecard::{entries_from_metrics, KernelMetrics, ScorecardEntry};

/// A capture-free kernel constructor. Plain `fn` pointers (not boxed
/// closures) so a catalog entry is trivially `Send + Sync` and can be
/// moved into retried job attempts.
pub type KernelFactory = fn() -> Box<dyn Kernel>;

/// Every PIM-target kernel with its workload: name, paper target, and a
/// factory building a fresh kernel instance per job attempt. `smoke`
/// swaps the paper-scale inputs for two small kernels (tests and the
/// harness selftest).
pub fn kernel_catalog(smoke: bool) -> Vec<(&'static str, PimTargetKind, KernelFactory)> {
    use pim_chrome::lzo::{CompressionKernel, DecompressionKernel};
    use pim_chrome::tiling::TextureTilingKernel;
    use pim_chrome::ColorBlittingKernel;
    use pim_vp9::driver::{
        DeblockingFilterKernel, MotionEstimationKernel, SubPixelInterpolationKernel,
    };
    if smoke {
        return vec![
            ("texture tiling", PimTargetKind::TextureTiling, || {
                Box::new(TextureTilingKernel::new(128, 128, 1))
            }),
            ("color blitting", PimTargetKind::ColorBlitting, || {
                Box::new(ColorBlittingKernel::new(vec![32, 64], 128, 1))
            }),
        ];
    }
    vec![
        ("texture tiling", PimTargetKind::TextureTiling, || {
            Box::new(TextureTilingKernel::paper_input())
        }),
        ("color blitting", PimTargetKind::ColorBlitting, || {
            Box::new(ColorBlittingKernel::paper_input())
        }),
        ("compression", PimTargetKind::Compression, || Box::new(CompressionKernel::paper_input())),
        ("decompression", PimTargetKind::Compression, || {
            Box::new(DecompressionKernel::paper_input())
        }),
        ("packing", PimTargetKind::Packing, || {
            Box::new(pim_tfmobile::pack::PackingKernel::paper_input())
        }),
        ("quantization", PimTargetKind::Quantization, || {
            Box::new(pim_tfmobile::quantize::QuantizationKernel::paper_input())
        }),
        ("sub-pixel interpolation", PimTargetKind::SubPixelInterpolation, || {
            Box::new(SubPixelInterpolationKernel::paper_input())
        }),
        ("deblocking filter", PimTargetKind::DeblockingFilter, || {
            Box::new(DeblockingFilterKernel::paper_input())
        }),
        ("motion estimation", PimTargetKind::MotionEstimation, || {
            Box::new(MotionEstimationKernel::paper_input())
        }),
    ]
}

/// Run one kernel through the three study modes (CPU-only, PIM-Core,
/// PIM-Acc) and encode the scorecard measurements as a journal line.
fn measure(
    name: &'static str,
    kind: PimTargetKind,
    factory: KernelFactory,
    tracer: &Tracer,
    watchdog: Watchdog,
) -> Result<String, DmpimError> {
    let engine = OffloadEngine::new().with_tracer(tracer).with_watchdog(watchdog);
    let mut kernel = factory();
    let cpu = engine.try_run(kernel.as_mut(), ExecutionMode::CpuOnly)?;
    let core = engine.try_run(kernel.as_mut(), ExecutionMode::PimCore)?;
    let acc = engine.try_run(kernel.as_mut(), ExecutionMode::PimAcc)?;
    Ok(KernelMetrics::from_reports(name, kind, &cpu, &core, &acc).to_line())
}

/// Measure one catalog kernel by name through the three study modes —
/// the `pim-serve` resolver entry point for `kernel:<name>` specs.
///
/// # Errors
///
/// `DmpimError::UnknownExperiment` for a name not in the catalog;
/// otherwise whatever the simulation itself raises.
pub fn measure_kernel(
    name: &str,
    smoke: bool,
    tracer: &Tracer,
    watchdog: Watchdog,
) -> Result<String, DmpimError> {
    let (n, kind, factory) = kernel_catalog(smoke)
        .into_iter()
        .find(|(n, ..)| *n == name)
        .ok_or_else(|| DmpimError::UnknownExperiment { id: format!("kernel:{name}") })?;
    measure(n, kind, factory, tracer, watchdog)
}

/// Shared sink for per-attempt wall times. Timing lives *outside* the
/// job payloads and the resume journal on purpose: journal lines (and
/// thus merged [`pim_harness::JobResult`]s) stay bit-identical across
/// runs, while timing — which never is — travels on the side. Every
/// attempt pushes its own entry (retried and failed attempts included),
/// so a retried job's abandoned wall time is visible instead of silently
/// replaced. Jobs restored from a resume journal simply have no entry.
pub type JobTimings = Arc<Mutex<Vec<(String, u64)>>>;

/// Wrap a job body so each attempt's wall time lands in `timings` —
/// success or failure — under the job's name.
pub fn timed_job<F>(name: &'static str, timings: Option<JobTimings>, body: F) -> Job
where
    F: Fn(&pim_harness::JobCtx) -> Result<String, DmpimError> + Send + Sync + 'static,
{
    Job::new(name, move |ctx| {
        let t0 = Instant::now();
        let out = body(ctx);
        if let Some(sink) = &timings {
            if let Ok(mut v) = sink.lock() {
                v.push((name.to_string(), t0.elapsed().as_millis() as u64));
            }
        }
        out
    })
}

fn metrics_jobs_timed(smoke: bool, timings: Option<JobTimings>) -> Vec<Job> {
    kernel_catalog(smoke)
        .into_iter()
        .map(|(name, kind, factory)| {
            timed_job(name, timings.clone(), move |ctx| {
                measure(name, kind, factory, &ctx.tracer, ctx.watchdog)
            })
        })
        .collect()
}

/// Fold per-attempt timings into per-job `(id, total_ms, attempts)`
/// aggregates, preserving first-seen order.
pub fn aggregate_timings(timings: &[(String, u64)]) -> Vec<(String, u64, u64)> {
    let mut out: Vec<(String, u64, u64)> = Vec::new();
    for (name, ms) in timings {
        if let Some(slot) = out.iter_mut().find(|(n, ..)| n == name) {
            slot.1 += ms;
            slot.2 += 1;
        } else {
            out.push((name.clone(), *ms, 1));
        }
    }
    out
}

/// One measurement job per catalog kernel.
pub fn metrics_jobs(smoke: bool) -> Vec<Job> {
    metrics_jobs_timed(smoke, None)
}

/// Compute the scorecard measurements in-process (no journal, current
/// thread). Round-trips every measurement through its journal line so
/// the values are bit-identical to a harness/resume run.
pub(crate) fn collect_metrics(smoke: bool) -> Vec<KernelMetrics> {
    let tracer = Tracer::default();
    kernel_catalog(smoke)
        .into_iter()
        .filter_map(|(name, kind, factory)| {
            measure(name, kind, factory, &tracer, Watchdog::unlimited()).ok()
        })
        .filter_map(|line| KernelMetrics::parse(&line))
        .collect()
}

/// Result of [`scorecard_sweep`]: the merged scorecard entries, the
/// harness failure report, and per-job wall times in `(id, ms)` form.
pub type SweepOutcome = (Vec<ScorecardEntry>, SweepReport, Vec<(String, u64)>);

/// Run the scorecard sweep through the harness: one job per kernel,
/// optional journal/resume, merged back into scorecard entries plus the
/// harness's failure report. Jobs whose measurement failed (panic,
/// timeout, invalid config) are reported in the [`SweepReport`] and
/// simply absent from the aggregation.
pub fn scorecard_sweep(
    smoke: bool,
    policy: HarnessPolicy,
    journal: Option<&Path>,
    resume: bool,
) -> Result<SweepOutcome, HarnessError> {
    let mut harness = Harness::new(policy);
    if let Some(path) = journal {
        harness = if resume { harness.resume_from(path) } else { harness.with_journal(path) };
    }
    let timings: JobTimings = Arc::new(Mutex::new(Vec::new()));
    let report = harness.run(metrics_jobs_timed(smoke, Some(timings.clone())))?;
    let metrics: Vec<KernelMetrics> = report
        .results
        .iter()
        .filter_map(|r| r.output.as_deref())
        .filter_map(KernelMetrics::parse)
        .collect();
    let timings = timings.lock().map(|v| v.clone()).unwrap_or_default();
    Ok((entries_from_metrics(&metrics), report, timings))
}

/// One job per experiment id, for the default `repro` run. Each job's
/// payload is the experiment's full text report.
pub fn experiment_jobs() -> Vec<Job> {
    crate::EXPERIMENTS
        .iter()
        .map(|&id| Job::new(id, move |_ctx| crate::run_experiment(id)))
        .collect()
}

/// A deliberately hung simulation: spins until a watchdog poisons the
/// context. Unsupervised, this kernel never terminates — which is
/// exactly what the harness selftest needs to prove supervision works.
struct RunawayKernel;

impl Kernel for RunawayKernel {
    fn name(&self) -> &'static str {
        "runaway"
    }

    fn run(&mut self, ctx: &mut SimContext) {
        while !ctx.is_poisoned() {
            ctx.ops(OpMix::scalar(64));
        }
    }
}

/// The `repro --selftest-harness` sweep: two real kernel measurements
/// plus one panicking job and one hung simulation. Returns the report
/// and any deviations from the expected disposition (empty = pass).
pub fn selftest(workers: usize) -> Result<(SweepReport, Vec<String>), HarnessError> {
    let policy = HarnessPolicy {
        workers: workers.max(1),
        max_retries: 1,
        quarantine_strikes: 2,
        retry_backoff: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(8),
        wall_deadline: None,
        // Generous enough for the smoke kernels, but the runaway kernel
        // burns host events forever and trips it within milliseconds.
        watchdog: Watchdog::new(u64::MAX, 2_000_000),
        ..Default::default()
    };
    let mut jobs = metrics_jobs(true);
    jobs.push(Job::new("panicker", |_ctx| -> Result<String, DmpimError> {
        panic!("injected selftest panic");
    }));
    jobs.push(Job::new("runaway", |ctx| {
        let engine = OffloadEngine::new().with_watchdog(ctx.watchdog).with_resilience(
            ResiliencePolicy { max_retries: 0, allow_fallback: false, ..Default::default() },
        );
        let mut kernel = RunawayKernel;
        engine.try_run(&mut kernel, ExecutionMode::CpuOnly)?;
        Ok("unreachable".to_string())
    }));
    let report = Harness::new(policy).run(jobs)?;

    let summary = report.summary();
    let mut mismatches = Vec::new();
    for (what, got, want) in [
        ("succeeded", summary.succeeded, 2),
        ("failed", summary.failed, 1),
        ("quarantined", summary.quarantined, 1),
    ] {
        if got != want {
            mismatches.push(format!("expected {want} {what} job(s), got {got}"));
        }
    }
    for (label, want) in [("panic", 1), ("watchdog-timeout", 1)] {
        let got = summary.taxonomy.get(label).copied().unwrap_or(0);
        if got != want {
            mismatches.push(format!("expected taxonomy {label}={want}, got {got}"));
        }
    }
    Ok((report, mismatches))
}

#[cfg(test)]
mod tests {
    use pim_harness::JobStatus;

    use super::*;

    #[test]
    fn catalog_covers_all_nine_targets_at_paper_scale() {
        assert_eq!(kernel_catalog(false).len(), 9);
        assert_eq!(kernel_catalog(true).len(), 2);
    }

    #[test]
    fn metric_lines_round_trip() {
        let tracer = Tracer::default();
        for (name, kind, factory) in kernel_catalog(true) {
            let line = measure(name, kind, factory, &tracer, Watchdog::unlimited()).unwrap();
            let m = KernelMetrics::parse(&line).expect("line parses");
            assert_eq!(m.name, name);
            assert_eq!(m.kind, kind);
            assert_eq!(m.to_line(), line, "shortest-roundtrip f64 must be stable");
        }
    }

    #[test]
    fn harness_sweep_matches_in_process_scorecard() {
        let (entries, report, timings) =
            scorecard_sweep(true, HarnessPolicy { workers: 2, ..Default::default() }, None, false)
                .unwrap();
        assert!(report.all_ok(), "{:?}", report.summary());
        assert_eq!(timings.len(), kernel_catalog(true).len(), "one timing per fresh job");
        let direct = crate::scorecard::scorecard(true);
        assert_eq!(entries.len(), direct.len());
        for (a, b) in entries.iter().zip(&direct) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.quantity, b.quantity);
            assert_eq!(a.measured.to_bits(), b.measured.to_bits(), "{}/{}", a.id, a.quantity);
        }
    }

    #[test]
    fn timings_record_every_attempt_including_failures() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        use pim_core::FaultKind;

        let timings: JobTimings = Arc::new(Mutex::new(Vec::new()));
        let tries = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&tries);
        let job = timed_job("flaky", Some(Arc::clone(&timings)), move |_ctx| {
            if t.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(DmpimError::FaultTransient { kind: FaultKind::BitFlip, at_ps: 1 })
            } else {
                Ok("done".to_string())
            }
        });
        let policy = HarnessPolicy {
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            ..Default::default()
        };
        let report = Harness::new(policy).run(vec![job]).unwrap();
        assert!(report.all_ok(), "{:?}", report.summary());
        let v = timings.lock().unwrap();
        assert_eq!(v.len(), 2, "one timing entry per attempt, failures included: {v:?}");
        assert!(v.iter().all(|(n, _)| n == "flaky"), "{v:?}");
        let agg = aggregate_timings(&v);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].0, "flaky");
        assert_eq!(agg[0].2, 2, "aggregate counts both attempts");
    }

    #[test]
    fn selftest_isolates_panic_and_quarantines_runaway() {
        let (report, mismatches) = selftest(2).unwrap();
        assert!(mismatches.is_empty(), "{mismatches:?}");
        let runaway = report.results.iter().find(|r| r.id == "runaway").unwrap();
        assert_eq!(runaway.status, JobStatus::Quarantined);
        assert_eq!(runaway.attempts, 2, "two timeout strikes then quarantine");
        let panicker = report.results.iter().find(|r| r.id == "panicker").unwrap();
        assert_eq!(panicker.status, JobStatus::Failed);
        assert_eq!(panicker.attempts, 1, "panics are deterministic: no retry");
    }
}
