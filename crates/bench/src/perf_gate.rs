//! The wall-clock perf-regression gate behind `repro --perf-gate`.
//!
//! `repro --json` appends one compact line per run to
//! `BENCH_history.jsonl` (total wall time plus per-experiment wall
//! times). The gate takes the median over the last few runs — wall time
//! is noisy; a single slow run must not fail CI — and compares each
//! experiment against the committed `BENCH_baseline.json`, after
//! correcting for overall machine speed: every per-experiment budget is
//! scaled by `median_total / baseline_total`, so a uniformly slower CI
//! runner shifts no verdicts while a *relative* regression in one
//! experiment stands out regardless of host.
//!
//! Verdicts: an experiment whose speed-corrected ratio exceeds the hard
//! threshold (default +25%) fails the gate; past the soft threshold
//! (default +10%) it only warns (`::warning::` so GitHub annotates the
//! run). Experiments under the noise floor (default 50 ms in the
//! baseline) are skipped — their timings are dominated by jitter.

use std::fmt::Write as _;
use std::path::Path;

use pim_trace::JsonValue;

/// Gate thresholds.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Median window over the newest history lines.
    pub window: usize,
    /// Soft threshold: warn above this speed-corrected ratio.
    pub warn_ratio: f64,
    /// Hard threshold: fail above this speed-corrected ratio.
    pub fail_ratio: f64,
    /// Baseline wall times under this many ms are jitter: skip them.
    pub noise_floor_ms: u64,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self { window: 3, warn_ratio: 1.10, fail_ratio: 1.25, noise_floor_ms: 50 }
    }
}

/// Per-experiment verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Within budget.
    Ok,
    /// Past the soft threshold: annotate, don't fail.
    Warn,
    /// Past the hard threshold: fail the gate.
    Fail,
    /// No comparable data (below noise floor, or missing on one side).
    Skipped,
}

/// One experiment's comparison.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Experiment id.
    pub id: String,
    /// Committed budget, ms.
    pub baseline_ms: u64,
    /// Median of the history window, ms.
    pub median_ms: u64,
    /// `median / (baseline * machine_scale)`; 0 when skipped.
    pub ratio: f64,
    /// The verdict.
    pub verdict: Verdict,
    /// Why a skipped experiment was skipped.
    pub note: String,
}

/// The whole gate outcome.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// History lines actually used.
    pub runs_used: usize,
    /// Baseline total wall time, ms.
    pub baseline_total_ms: u64,
    /// Median total wall time over the window, ms.
    pub median_total_ms: u64,
    /// `median_total / baseline_total` — the machine-speed correction.
    pub machine_scale: f64,
    /// Per-experiment findings, baseline order.
    pub findings: Vec<Finding>,
}

impl GateReport {
    /// True when no finding failed.
    pub fn passed(&self) -> bool {
        !self.findings.iter().any(|f| f.verdict == Verdict::Fail)
    }

    /// Render the human/CI report. Warn lines use the `::warning::`
    /// GitHub workflow-command syntax so CI annotates without failing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf gate: median of {} run(s), total {} ms vs baseline {} ms (machine scale {:.2})",
            self.runs_used, self.median_total_ms, self.baseline_total_ms, self.machine_scale
        );
        for f in &self.findings {
            match f.verdict {
                Verdict::Ok => {
                    let _ = writeln!(
                        out,
                        "  ok   {:<24} {:>6} ms (budget {} ms, ratio {:.2})",
                        f.id, f.median_ms, f.baseline_ms, f.ratio
                    );
                }
                Verdict::Warn => {
                    let _ = writeln!(
                        out,
                        "::warning::perf gate: {} at {} ms is {:.0}% over its {} ms budget (noise-tolerated)",
                        f.id,
                        f.median_ms,
                        (f.ratio - 1.0) * 100.0,
                        f.baseline_ms
                    );
                }
                Verdict::Fail => {
                    let _ = writeln!(
                        out,
                        "  FAIL {:<24} {:>6} ms is {:.0}% over its {} ms budget",
                        f.id,
                        f.median_ms,
                        (f.ratio - 1.0) * 100.0,
                        f.baseline_ms
                    );
                }
                Verdict::Skipped => {
                    let _ = writeln!(out, "  skip {:<24} {}", f.id, f.note);
                }
            }
        }
        let _ = writeln!(out, "perf gate: {}", if self.passed() { "pass" } else { "FAIL" });
        out
    }
}

/// One parsed history/baseline document: total + per-experiment ms.
#[derive(Debug, Clone)]
pub struct RunTiming {
    /// Total sweep wall time, ms.
    pub total_ms: u64,
    /// Per-experiment `(id, wall_ms)`.
    pub experiments: Vec<(String, u64)>,
}

impl RunTiming {
    /// Parse one history line / baseline document.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(text).map_err(|e| format!("bad timing json: {e}"))?;
        let total_ms = doc
            .get("wall_ms")
            .and_then(JsonValue::as_u64)
            .ok_or("missing numeric wall_ms")?;
        let mut experiments = Vec::new();
        if let Some(arr) = doc.get("experiments").and_then(JsonValue::as_array) {
            for e in arr {
                let id = e.get("id").and_then(JsonValue::as_str).ok_or("experiment without id")?;
                let ms = e
                    .get("wall_ms")
                    .and_then(JsonValue::as_u64)
                    .ok_or("experiment without wall_ms")?;
                experiments.push((id.to_string(), ms));
            }
        }
        Ok(Self { total_ms, experiments })
    }
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    if xs.is_empty() {
        0
    } else {
        xs[xs.len() / 2]
    }
}

/// Compare the newest history entries against the baseline.
///
/// The history is heterogeneous: `repro --json` appends full scorecard
/// lines while `repro --fleet` appends single-experiment fleet lines.
/// Totals are only comparable between runs that did comparable work, so
/// the machine-speed correction is computed from the newest
/// `config.window` **scale-comparable** lines — those containing at
/// least half of the baseline's experiment ids. Per-experiment samples
/// are drawn from the newest `config.window` lines *containing that
/// experiment*, wherever they sit in the file, so a burst of fleet runs
/// neither skews the kernel budgets nor starves the fleet budget of
/// samples. Homogeneous histories behave exactly as before.
pub fn evaluate(history: &[RunTiming], baseline: &RunTiming, config: &GateConfig) -> GateReport {
    let window = config.window.max(1);
    let need = baseline.experiments.len().div_ceil(2).max(1);
    let comparable: Vec<&RunTiming> = history
        .iter()
        .rev()
        .filter(|r| {
            baseline
                .experiments
                .iter()
                .filter(|(id, _)| r.experiments.iter().any(|(n, _)| n == id))
                .count()
                >= need
        })
        .take(window)
        .collect();
    // Degenerate histories (no comparable line at all) fall back to the
    // raw newest window rather than a dead gate.
    let scale_window: Vec<&RunTiming> = if comparable.is_empty() {
        history.iter().rev().take(window).collect()
    } else {
        comparable
    };
    let median_total_ms = median(scale_window.iter().map(|r| r.total_ms).collect());
    let machine_scale = if baseline.total_ms == 0 {
        1.0
    } else {
        (median_total_ms as f64 / baseline.total_ms as f64).max(0.01)
    };
    let mut findings = Vec::new();
    for (id, baseline_ms) in &baseline.experiments {
        let samples: Vec<u64> = history
            .iter()
            .rev()
            .filter_map(|r| {
                r.experiments.iter().find(|(n, _)| n == id).map(|&(_, ms)| ms)
            })
            .take(window)
            .collect();
        let mut f = Finding {
            id: id.clone(),
            baseline_ms: *baseline_ms,
            median_ms: median(samples.clone()),
            ratio: 0.0,
            verdict: Verdict::Skipped,
            note: String::new(),
        };
        if *baseline_ms < config.noise_floor_ms {
            f.note = format!("baseline {baseline_ms} ms is under the {} ms noise floor", config.noise_floor_ms);
        } else if samples.is_empty() {
            f.note = "no samples in the history window".to_string();
        } else {
            f.ratio = f.median_ms as f64 / (*baseline_ms as f64 * machine_scale);
            f.verdict = if f.ratio > config.fail_ratio {
                Verdict::Fail
            } else if f.ratio > config.warn_ratio {
                Verdict::Warn
            } else {
                Verdict::Ok
            };
        }
        findings.push(f);
    }
    GateReport {
        runs_used: scale_window.len(),
        baseline_total_ms: baseline.total_ms,
        median_total_ms,
        machine_scale,
        findings,
    }
}

/// Load history + baseline from disk and evaluate. Errors are strings
/// ready for `eprintln!`.
pub fn run_gate(
    history_path: &Path,
    baseline_path: &Path,
    config: &GateConfig,
) -> Result<GateReport, String> {
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let baseline = RunTiming::parse(&baseline_text)
        .map_err(|e| format!("baseline {}: {e}", baseline_path.display()))?;
    let history_text = std::fs::read_to_string(history_path)
        .map_err(|e| format!("cannot read history {}: {e} (run `repro --json` first)", history_path.display()))?;
    let mut history = Vec::new();
    for (lineno, line) in history_text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        // A torn final line (crashed run) degrades to a short window, not
        // a dead gate.
        match RunTiming::parse(line) {
            Ok(r) => history.push(r),
            Err(e) => eprintln!(
                "perf gate: skipping {} line {}: {e}",
                history_path.display(),
                lineno + 1
            ),
        }
    }
    if history.is_empty() {
        return Err(format!("history {} has no usable runs", history_path.display()));
    }
    Ok(evaluate(&history, &baseline, config))
}

/// The compact history line `repro --json` appends for each run.
pub fn history_line(total_ms: u64, experiments: &[(String, u64, u64)]) -> String {
    let mut arr = JsonValue::array();
    for (id, ms, attempts) in experiments {
        arr = arr.push(
            JsonValue::object()
                .set("id", id.as_str())
                .set("wall_ms", *ms)
                .set("attempts", *attempts),
        );
    }
    JsonValue::object().set("wall_ms", total_ms).set("experiments", arr).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(total: u64, exps: &[(&str, u64)]) -> RunTiming {
        RunTiming {
            total_ms: total,
            experiments: exps.iter().map(|&(n, ms)| (n.to_string(), ms)).collect(),
        }
    }

    #[test]
    fn history_line_round_trips() {
        let line = history_line(
            120,
            &[("a".to_string(), 100, 1), ("b".to_string(), 20, 2)],
        );
        let parsed = RunTiming::parse(&line).unwrap();
        assert_eq!(parsed.total_ms, 120);
        assert_eq!(parsed.experiments, vec![("a".to_string(), 100), ("b".to_string(), 20)]);
    }

    #[test]
    fn within_budget_passes() {
        let baseline = run(1000, &[("a", 600), ("b", 400)]);
        let history = vec![run(1020, &[("a", 610), ("b", 410)])];
        let report = evaluate(&history, &baseline, &GateConfig::default());
        assert!(report.passed());
        assert!(report.findings.iter().all(|f| f.verdict == Verdict::Ok));
    }

    #[test]
    fn per_experiment_regression_fails_even_on_a_fast_machine() {
        // Machine is 2x faster overall, but `a` regressed 2x relative to
        // its share: must fail despite its absolute time matching baseline.
        let baseline = run(1000, &[("a", 500), ("b", 500)]);
        let history = vec![run(750, &[("a", 500), ("b", 250)])];
        let report = evaluate(&history, &baseline, &GateConfig::default());
        let a = report.findings.iter().find(|f| f.id == "a").unwrap();
        assert_eq!(a.verdict, Verdict::Fail, "{report:?}");
        assert!(!report.passed());
    }

    #[test]
    fn uniform_slowdown_is_machine_speed_not_a_regression() {
        let baseline = run(1000, &[("a", 600), ("b", 400)]);
        let history = vec![run(3000, &[("a", 1800), ("b", 1200)])];
        let report = evaluate(&history, &baseline, &GateConfig::default());
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn median_of_three_shrugs_off_one_noisy_run() {
        let baseline = run(1000, &[("a", 600), ("b", 400)]);
        let history = vec![
            run(1000, &[("a", 600), ("b", 400)]),
            run(5000, &[("a", 4400), ("b", 600)]), // one bad run
            run(1010, &[("a", 605), ("b", 405)]),
        ];
        let report = evaluate(&history, &baseline, &GateConfig::default());
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.median_total_ms, 1010);
    }

    #[test]
    fn noise_floor_and_missing_data_skip_instead_of_failing() {
        let baseline = run(1000, &[("tiny", 5), ("gone", 500), ("a", 495)]);
        let history = vec![run(1000, &[("a", 500)])];
        let report = evaluate(&history, &baseline, &GateConfig::default());
        assert!(report.passed(), "{}", report.render());
        let tiny = report.findings.iter().find(|f| f.id == "tiny").unwrap();
        assert_eq!(tiny.verdict, Verdict::Skipped);
        assert!(tiny.note.contains("noise floor"));
        let gone = report.findings.iter().find(|f| f.id == "gone").unwrap();
        assert_eq!(gone.verdict, Verdict::Skipped);
    }

    #[test]
    fn soft_threshold_warns_without_failing() {
        let baseline = run(1000, &[("a", 500), ("b", 500)]);
        // `a` 15% over after correction: warn, still pass. Keep the total
        // consistent so the machine-scale correction stays near 1.
        let history = vec![run(1000, &[("a", 575), ("b", 425)])];
        let report = evaluate(&history, &baseline, &GateConfig::default());
        let a = report.findings.iter().find(|f| f.id == "a").unwrap();
        assert_eq!(a.verdict, Verdict::Warn, "{report:?}");
        assert!(report.passed());
        assert!(report.render().contains("::warning::"), "{}", report.render());
    }

    #[test]
    fn fleet_only_lines_do_not_skew_the_machine_scale() {
        // Two fleet runs land after the last scorecard run. The old gate
        // took the raw newest window — median total 100 ms → machine
        // scale 0.1 → every kernel "regresses" 10x. The hardened gate
        // computes the scale only from scale-comparable lines and samples
        // each experiment from the newest lines containing it.
        let baseline = run(1000, &[("a", 600), ("b", 400)]);
        let history = vec![
            run(1010, &[("a", 605), ("b", 405)]),
            run(100, &[("fleet-sweep", 100)]),
            run(110, &[("fleet-sweep", 110)]),
        ];
        let report = evaluate(&history, &baseline, &GateConfig::default());
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.median_total_ms, 1010, "scale from the scorecard line only");
        let a = report.findings.iter().find(|f| f.id == "a").unwrap();
        assert_eq!(a.verdict, Verdict::Ok, "{}", report.render());
        assert_eq!(a.median_ms, 605, "sampled from the line that contains it");
    }

    #[test]
    fn fleet_budget_is_sampled_from_fleet_lines() {
        let baseline = run(1000, &[("a", 500), ("b", 350), ("fleet-sweep", 150)]);
        let history = vec![
            run(1000, &[("a", 500), ("b", 350)]),
            run(160, &[("fleet-sweep", 155)]),
            run(1010, &[("a", 505), ("b", 355)]),
        ];
        let report = evaluate(&history, &baseline, &GateConfig::default());
        let fleet = report.findings.iter().find(|f| f.id == "fleet-sweep").unwrap();
        assert_eq!(fleet.verdict, Verdict::Ok, "{}", report.render());
        assert_eq!(fleet.median_ms, 155);
        // And a genuine fleet regression still fails.
        let bad = vec![
            run(1000, &[("a", 500), ("b", 350)]),
            run(400, &[("fleet-sweep", 400)]),
        ];
        let report = evaluate(&bad, &baseline, &GateConfig::default());
        let fleet = report.findings.iter().find(|f| f.id == "fleet-sweep").unwrap();
        assert_eq!(fleet.verdict, Verdict::Fail, "{}", report.render());
    }

    #[test]
    fn history_with_no_comparable_lines_falls_back_to_raw_window() {
        let baseline = run(1000, &[("a", 600), ("b", 400)]);
        let history = vec![run(1000, &[("other", 1000)])];
        let report = evaluate(&history, &baseline, &GateConfig::default());
        assert_eq!(report.runs_used, 1);
        assert!(report.passed(), "missing data skips, never fails: {}", report.render());
    }

    #[test]
    fn gate_reads_files_and_tolerates_torn_lines() {
        let dir = std::env::temp_dir();
        let hist = dir.join(format!("pim-gate-hist-{}.jsonl", std::process::id()));
        let base = dir.join(format!("pim-gate-base-{}.json", std::process::id()));
        std::fs::write(
            &base,
            "{\"wall_ms\":1000,\"experiments\":[{\"id\":\"a\",\"wall_ms\":600},{\"id\":\"b\",\"wall_ms\":400}]}",
        )
        .unwrap();
        let good = "{\"wall_ms\":1010,\"experiments\":[{\"id\":\"a\",\"wall_ms\":606},{\"id\":\"b\",\"wall_ms\":404}]}";
        std::fs::write(&hist, format!("{good}\n{{\"wall_ms\": 12, \"exp")).unwrap();
        let report = run_gate(&hist, &base, &GateConfig::default()).unwrap();
        assert_eq!(report.runs_used, 1, "torn line skipped");
        assert!(report.passed());
        let _ = std::fs::remove_file(&hist);
        let _ = std::fs::remove_file(&base);
    }
}
