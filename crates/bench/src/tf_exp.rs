//! TensorFlow Mobile experiments: Figures 6, 7 and 19.

use pim_core::report::fraction_table;
use pim_core::{Platform, SimContext};
use pim_tfmobile::inference::run_inference;
use pim_tfmobile::network::{Network, NetworkKind};
use pim_tfmobile::pipeline::{paper_shape, run_pipeline};

fn breakdowns() -> Vec<pim_tfmobile::inference::InferenceBreakdown> {
    NetworkKind::ALL
        .iter()
        .map(|&kind| {
            let net = Network::new(kind);
            let mut ctx = SimContext::cpu_only(Platform::baseline());
            run_inference(&net, &mut ctx)
        })
        .collect()
}

/// Figure 6: per-network inference energy breakdown.
pub fn fig6() -> String {
    let bs = breakdowns();
    let rows: Vec<_> = bs
        .iter()
        .map(|b| (b.network.to_string(), b.energy_fractions.clone()))
        .collect();
    let avg_pq: f64 = bs
        .iter()
        .map(|b| b.energy_fractions[0].1 + b.energy_fractions[1].1)
        .sum::<f64>()
        / bs.len() as f64;
    let avg_dm: f64 = bs.iter().map(|b| b.dm_fraction).sum::<f64>() / bs.len() as f64;
    let avg_share: f64 = bs.iter().map(|b| b.pack_quant_dm_share).sum::<f64>() / bs.len() as f64;
    format!(
        "Figure 6 — inference energy breakdown (full-scale networks)\n{}\
         AVG packing+quantization: {:.1}% of energy (paper: 39.3%)\n\
         AVG data movement: {:.1}% of energy (paper: 57.3%)\n\
         AVG packing+quantization share of DM energy: {:.1}% (paper: 54.4%)\n",
        fraction_table(&rows),
        100.0 * avg_pq,
        100.0 * avg_dm,
        100.0 * avg_share,
    )
}

/// Figure 7: per-network execution-time breakdown.
pub fn fig7() -> String {
    let bs = breakdowns();
    let rows: Vec<_> = bs
        .iter()
        .map(|b| (b.network.to_string(), b.time_fractions.clone()))
        .collect();
    let avg_pq: f64 = bs
        .iter()
        .map(|b| b.time_fractions[0].1 + b.time_fractions[1].1)
        .sum::<f64>()
        / bs.len() as f64;
    format!(
        "Figure 7 — inference execution-time breakdown\n{}\
         AVG packing+quantization: {:.1}% of time (paper: 27.4%)\n",
        fraction_table(&rows),
        100.0 * avg_pq,
    )
}

/// Figure 19: pack/quant energy by mode + speedup vs number of GEMMs.
pub fn fig19() -> String {
    let (g, q) = paper_shape();
    let r = run_pipeline(g, q, &[1, 4, 16]);
    let [cpu, core, acc] = r.stage_energy_pj;
    let mut out = String::from("Figure 19 — packing + quantization offload\n");
    out.push_str(&format!(
        "stage energy per GEMM, normalized: CPU-Only 1.000  PIM-Core {:.3}  PIM-Acc {:.3}\n",
        core / cpu,
        acc / cpu
    ));
    out.push_str("  (paper: energy cut ~50.9% / 54.9% on average)\n\n");
    out.push_str("GEMMs   CPU-Only   PIM-Core speedup   PIM-Acc speedup\n");
    for p in &r.points {
        out.push_str(&format!(
            "{:>5}      1.00x            {:.2}x             {:.2}x\n",
            p.gemms,
            p.speedup_core(),
            p.speedup_acc()
        ));
    }
    out.push_str("  (paper: 1 GEMM -> 1.13x/1.17x; 16 GEMMs -> 1.57x/1.98x)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig19_report_has_all_counts() {
        let s = fig19();
        for n in ["    1", "    4", "   16"] {
            assert!(s.contains(n), "missing row {n:?} in:\n{s}");
        }
    }
}
