//! Cross-workload summaries: Table 1, the headline averages, and the
//! §3.2/§3.3 identification + area feasibility report.

use pim_core::area::{AreaModel, PimTargetKind, PIM_CORE_MM2};
use pim_core::identify::{evaluate, CandidateProfile};
use pim_core::report::mean;
use pim_core::{Kernel, OffloadEngine, Platform, RunReport};

/// Table 1: the evaluated system configuration.
pub fn table1() -> String {
    format!(
        "Table 1 — evaluated system configuration\n\nBaseline platform:\n{}\nPIM platform:\n{}",
        Platform::baseline().table1(),
        Platform::pim().table1()
    )
}

/// Every PIM-target kernel with its workload, for aggregate sweeps.
/// The catalog itself lives in [`crate::jobs`] so the harness-driven
/// scorecard sweep and these serial summaries measure identical inputs.
pub(crate) fn all_kernels() -> Vec<(&'static str, PimTargetKind, Box<dyn Kernel>)> {
    crate::jobs::kernel_catalog(false)
        .into_iter()
        .map(|(name, kind, factory)| (name, kind, factory()))
        .collect()
}

pub(crate) fn sweep() -> Vec<(&'static str, PimTargetKind, Vec<RunReport>)> {
    let engine = OffloadEngine::new();
    // The fourth report per kernel is PIM-Core as a 4-core per-vault
    // cluster (Table 1 provides 16; 4 is a conservative mid-point).
    let cluster = OffloadEngine::new().with_pim_cluster(4);
    all_kernels()
        .into_iter()
        .map(|(name, kind, mut k)| {
            let mut reports = engine.run_all(k.as_mut());
            reports.push(cluster.run(k.as_mut(), pim_core::ExecutionMode::PimCore));
            (name, kind, reports)
        })
        .collect()
}

/// The paper's §1/§12 headline numbers across every PIM target.
pub fn headline() -> String {
    let results = sweep();
    let mut core_energy = Vec::new();
    let mut acc_energy = Vec::new();
    let mut core_speed = Vec::new();
    let mut core4_speed = Vec::new();
    let mut acc_speed = Vec::new();
    let mut dm = Vec::new();
    let mut out = String::from("Headline summary across all PIM targets\n\n");
    out.push_str(&format!(
        "{:<26}{:>10}{:>10}{:>10}{:>10}{:>10}{:>9}\n",
        "kernel", "E core", "E acc", "S core", "S core*4", "S acc", "DM frac"
    ));
    for (name, _, r) in &results {
        let (cpu, core, acc, core4) = (&r[0], &r[1], &r[2], &r[3]);
        core_energy.push(core.energy_vs(cpu));
        acc_energy.push(acc.energy_vs(cpu));
        core_speed.push(core.speedup_vs(cpu));
        core4_speed.push(core4.speedup_vs(cpu));
        acc_speed.push(acc.speedup_vs(cpu));
        dm.push(cpu.energy.data_movement_fraction());
        out.push_str(&format!(
            "{:<26}{:>10.3}{:>10.3}{:>9.2}x{:>9.2}x{:>9.2}x{:>8.1}%\n",
            name,
            core.energy_vs(cpu),
            acc.energy_vs(cpu),
            core.speedup_vs(cpu),
            core4.speedup_vs(cpu),
            acc.speedup_vs(cpu),
            100.0 * cpu.energy.data_movement_fraction()
        ));
    }
    out.push_str(&format!(
        "\nAVG CPU-only data-movement share: {:.1}% (paper: 62.7% across workloads)\n\
         AVG PIM-Core: energy -{:.1}% (paper: 49.1%), speedup {:.2}x single-core / {:.2}x\n\
           as a 4-core per-vault cluster (paper: 1.45x avg, up to 2.2x)\n\
         AVG PIM-Acc:  energy -{:.1}% (paper: 55.4%), speedup {:.2}x (paper: 1.54x avg, up to 2.5x)\n",
        100.0 * mean(&dm),
        100.0 * (1.0 - mean(&core_energy)),
        mean(&core_speed),
        mean(&core4_speed),
        100.0 * (1.0 - mean(&acc_energy)),
        mean(&acc_speed),
    ));
    out
}

/// The §3.2 identification pipeline + §3.3 area feasibility for every
/// target, with profiles measured from the kernel sweeps.
pub fn area() -> String {
    let area = AreaModel::default();
    let results = sweep();
    let mut out = String::from("PIM-target identification (§3.2) and area feasibility (§3.3)\n\n");
    out.push_str(&format!(
        "PIM core: {:.2} mm² = {:.1}% of the per-vault budget (paper: <=9.4%)\n\n",
        PIM_CORE_MM2,
        100.0 * area.pim_core_fraction()
    ));
    for (name, kind, r) in &results {
        let (cpu, core, acc) = (&r[0], &r[1], &r[2]);
        let best_pim = core.runtime_ps.min(acc.runtime_ps);
        let profile = CandidateProfile {
            name: (*name).to_string(),
            // Workload-level fractions come from the characterization
            // figures; the kernel sweeps establish >5% for every target.
            workload_energy_fraction: 0.10,
            workload_dm_fraction: 0.08,
            mpki: cpu.mpki,
            own_dm_fraction: cpu.energy.data_movement_fraction(),
            pim_slowdown: best_pim as f64 / cpu.runtime_ps as f64,
            accel_area_mm2: kind.accelerator_mm2(),
        };
        let verdict = evaluate(&profile, &area);
        out.push_str(&format!(
            "{name}: accelerator {:.2} mm² = {:.1}% of vault budget — {}",
            kind.accelerator_mm2(),
            100.0 * area.fraction_of_vault(kind.accelerator_mm2()),
            verdict
        ));
    }
    out.push_str(
        "\nNote: motion estimation's measured MPKI and data-movement share sit\n\
         below the paper's thresholds in this reproduction (the SIMD SAD\n\
         cost model is conservative and the microbenchmark's reference\n\
         working set partially fits the LLC); the paper's own counters\n\
         classify it as memory-intensive. See EXPERIMENTS.md.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use pim_chrome::tiling::TextureTilingKernel;

    use super::*;

    #[test]
    fn table1_covers_both_platforms() {
        let t = table1();
        assert!(t.contains("LPDDR3"));
        assert!(t.contains("16 vaults"));
    }

    #[test]
    fn kernel_catalog_covers_all_targets() {
        assert_eq!(all_kernels().len(), 9);
    }

    #[test]
    fn headline_shape_on_a_fast_subset() {
        // Avoid the full 4K sweep in tests: run two cheap kernels and
        // check the aggregate direction.
        let engine = OffloadEngine::new();
        let mut k = TextureTilingKernel::new(128, 128, 1);
        let r = engine.run_all(&mut k);
        assert!(r[1].energy_vs(&r[0]) < 1.0);
        assert!(r[2].speedup_vs(&r[0]) >= r[1].speedup_vs(&r[0]) * 0.9);
    }
}
