//! Observability sweep: the traced run behind `repro --trace` / `--metrics`.
//!
//! One sweep exercises every track family the tracer knows about — the
//! CPU and PIM engine tracks, the DRAM/vault occupancy tracks, the
//! kernel-phase track and the fault/recovery tracks — so a single
//! `--trace` invocation yields a Perfetto-loadable timeline of the whole
//! offload story.

use pim_chrome::tiling::TextureTilingKernel;
use pim_chrome::ColorBlittingKernel;
use pim_core::{ExecutionMode, FaultConfig, OffloadEngine, Tracer};

/// The artifacts of one traced sweep.
#[derive(Debug)]
pub struct ObsArtifacts {
    /// Chrome trace-event JSON (load in Perfetto / `chrome://tracing`).
    pub chrome_trace: String,
    /// Flat metrics dump: counters, gauges, histograms.
    pub metrics: String,
    /// Number of trace events captured.
    pub event_count: usize,
    /// Track names, in registration order.
    pub tracks: Vec<String>,
}

/// Run the observability sweep. `smoke` shrinks the inputs for tests;
/// the CLI uses the paper-scale inputs.
pub fn traced_sweep(smoke: bool) -> ObsArtifacts {
    let tracer = Tracer::new();
    let engine = OffloadEngine::new().with_tracer(&tracer);
    let (mut tile, mut blit) = if smoke {
        (TextureTilingKernel::new(64, 64, 7), ColorBlittingKernel::new(vec![32, 64], 128, 7))
    } else {
        (TextureTilingKernel::paper_input(), ColorBlittingKernel::paper_input())
    };
    // CPU and PIM runs cover the engine, DRAM/vault and kernel-phase tracks.
    engine.run(&mut tile, ExecutionMode::CpuOnly);
    engine.run(&mut tile, ExecutionMode::PimAcc);
    engine.run(&mut blit, ExecutionMode::PimCore);
    // One fault-injected resilient run covers the fault + recovery tracks.
    let cfg = FaultConfig { vault_fail_prob: 1.0, horizon_ps: 1, ..FaultConfig::none() };
    OffloadEngine::new()
        .with_faults(cfg, 9)
        .with_tracer(&tracer)
        .run(&mut tile, ExecutionMode::PimAcc);
    ObsArtifacts {
        chrome_trace: tracer.chrome_trace(),
        metrics: tracer.metrics().to_json(),
        event_count: tracer.event_count(),
        tracks: tracer.tracks(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_track_families() {
        let a = traced_sweep(true);
        for want in ["cpu", "pim-accel", "pim-core", "kernel-phases", "faults", "recovery", "dram"]
        {
            assert!(a.tracks.iter().any(|t| t == want), "missing track {want}: {:?}", a.tracks);
        }
        assert!(a.tracks.iter().any(|t| t.starts_with("vault ")), "{:?}", a.tracks);
        assert!(a.tracks.len() >= 4);
        assert!(a.event_count > 0);
        assert!(a.chrome_trace.contains("\"traceEvents\""));
        assert!(a.metrics.contains("faults.tripped"));
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = traced_sweep(true);
        let b = traced_sweep(true);
        assert_eq!(a.chrome_trace, b.chrome_trace);
        assert_eq!(a.metrics, b.metrics);
    }
}
