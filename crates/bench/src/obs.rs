//! Observability sweep: the traced run behind `repro --trace` / `--metrics`.
//!
//! One sweep exercises every track family the tracer knows about — the
//! CPU and PIM engine tracks, the DRAM/vault occupancy tracks, the
//! kernel-phase track and the fault/recovery tracks — so a single
//! `--trace` invocation yields a Perfetto-loadable timeline of the whole
//! offload story.
//!
//! The four runs execute as supervised harness jobs on a single worker:
//! each gets its own `job:<id>` track, and the serial schedule keeps the
//! trace byte-for-byte deterministic while still isolating a panicking
//! run from its siblings.

use pim_chrome::tiling::TextureTilingKernel;
use pim_chrome::ColorBlittingKernel;
use pim_core::{ExecutionMode, FaultConfig, OffloadEngine, Tracer};
use pim_harness::{Harness, HarnessPolicy, Job};

/// The artifacts of one traced sweep.
#[derive(Debug)]
pub struct ObsArtifacts {
    /// Chrome trace-event JSON (load in Perfetto / `chrome://tracing`).
    pub chrome_trace: String,
    /// Flat metrics dump: counters, gauges, histograms.
    pub metrics: String,
    /// Number of trace events captured.
    pub event_count: usize,
    /// Track names, in registration order.
    pub tracks: Vec<String>,
}

fn tile(smoke: bool) -> TextureTilingKernel {
    if smoke {
        TextureTilingKernel::new(64, 64, 7)
    } else {
        TextureTilingKernel::paper_input()
    }
}

fn blit(smoke: bool) -> ColorBlittingKernel {
    if smoke {
        ColorBlittingKernel::new(vec![32, 64], 128, 7)
    } else {
        ColorBlittingKernel::paper_input()
    }
}

/// Run the observability sweep. `smoke` shrinks the inputs for tests;
/// the CLI uses the paper-scale inputs.
pub fn traced_sweep(smoke: bool) -> ObsArtifacts {
    let tracer = Tracer::new();
    // CPU and PIM runs cover the engine, DRAM/vault and kernel-phase
    // tracks; the fault-injected resilient run covers fault + recovery.
    let jobs = vec![
        Job::new("tiling-cpu", move |ctx: &pim_harness::JobCtx| {
            let engine = OffloadEngine::new().with_tracer(&ctx.tracer);
            engine.run(&mut tile(smoke), ExecutionMode::CpuOnly);
            Ok(String::new())
        }),
        Job::new("tiling-pim-acc", move |ctx: &pim_harness::JobCtx| {
            let engine = OffloadEngine::new().with_tracer(&ctx.tracer);
            engine.run(&mut tile(smoke), ExecutionMode::PimAcc);
            Ok(String::new())
        }),
        Job::new("blit-pim-core", move |ctx: &pim_harness::JobCtx| {
            let engine = OffloadEngine::new().with_tracer(&ctx.tracer);
            engine.run(&mut blit(smoke), ExecutionMode::PimCore);
            Ok(String::new())
        }),
        Job::new("tiling-faulted", move |ctx: &pim_harness::JobCtx| {
            let cfg = FaultConfig { vault_fail_prob: 1.0, horizon_ps: 1, ..FaultConfig::none() };
            OffloadEngine::new()
                .with_faults(cfg, 9)
                .with_tracer(&ctx.tracer)
                .run(&mut tile(smoke), ExecutionMode::PimAcc);
            Ok(String::new())
        }),
    ];
    // One worker: the traced runs must interleave identically run-to-run.
    Harness::new(HarnessPolicy::default())
        .with_tracer(&tracer)
        .run(jobs)
        .expect("obs sweep is journal-free with unique job ids");
    ObsArtifacts {
        chrome_trace: tracer.chrome_trace(),
        metrics: tracer.metrics().to_json(),
        event_count: tracer.event_count(),
        tracks: tracer.tracks(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_track_families() {
        let a = traced_sweep(true);
        for want in ["cpu", "pim-accel", "pim-core", "kernel-phases", "faults", "recovery", "dram"]
        {
            assert!(a.tracks.iter().any(|t| t == want), "missing track {want}: {:?}", a.tracks);
        }
        assert!(a.tracks.iter().any(|t| t.starts_with("vault ")), "{:?}", a.tracks);
        // Each harness job gets a dedicated track.
        for want in ["job:tiling-cpu", "job:tiling-pim-acc", "job:blit-pim-core", "job:tiling-faulted"]
        {
            assert!(a.tracks.iter().any(|t| t == want), "missing track {want}: {:?}", a.tracks);
        }
        assert!(a.tracks.len() >= 4);
        assert!(a.event_count > 0);
        assert!(a.chrome_trace.contains("\"traceEvents\""));
        assert!(a.metrics.contains("faults.tripped"));
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = traced_sweep(true);
        let b = traced_sweep(true);
        assert_eq!(a.chrome_trace, b.chrome_trace);
        assert_eq!(a.metrics, b.metrics);
    }
}
