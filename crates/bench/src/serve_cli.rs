//! `repro`'s server and thin-client modes for `pim-serve`.
//!
//! * `repro --serve <addr>` runs the fault-tolerant sweep service with
//!   this crate's catalog wired in: `experiment:<id>` specs resolve to
//!   [`crate::run_experiment`], `kernel:<name>` (and `kernel-smoke:`) to
//!   [`crate::jobs::measure_kernel`].
//! * `repro --connect <addr>` submits all 23 experiments, waits for each
//!   in paper order, and prints **byte-identical** stdout to the default
//!   in-process `repro` run — results travel as strings end to end
//!   (journal, wire, memory), so a scorecard assembled from a served,
//!   crashed, and recovered sweep matches an uninterrupted serial one.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use pim_core::DmpimError;
use pim_harness::{FailureSummary, FsyncPolicy, JobResult};
use pim_serve::{
    signal, Client, QuotaPolicy, Scheduler, Resolver, ServeError, ServePolicy, Server,
    ShutdownMode,
};
use pim_trace::Tracer;

/// The catalog resolver: maps job specs to this crate's simulations.
///
/// `fleet-shard:<seed>:<start>:<count>` evaluates one fleet shard at the
/// default sketch geometry and returns the mergeable
/// [`pim_fleet::ShardSummary`] payload — so a `pim-serve` deployment can
/// farm fleet shards across machines and a coordinator folds the
/// summaries exactly as the in-process sweep does.
pub fn resolver() -> Resolver {
    Arc::new(|spec, ctx| {
        if let Some(id) = spec.strip_prefix("experiment:") {
            crate::run_experiment(id)
        } else if let Some(name) = spec.strip_prefix("kernel:") {
            crate::jobs::measure_kernel(name, false, &ctx.tracer, ctx.watchdog)
        } else if let Some(name) = spec.strip_prefix("kernel-smoke:") {
            crate::jobs::measure_kernel(name, true, &ctx.tracer, ctx.watchdog)
        } else if let Some(rest) = spec.strip_prefix("fleet-shard:") {
            let parts: Vec<&str> = rest.split(':').collect();
            let parsed: Option<(u64, u64, u64)> = match parts.as_slice() {
                [seed, start, count] => match (seed.parse(), start.parse(), count.parse()) {
                    (Ok(s), Ok(st), Ok(c)) => Some((s, st, c)),
                    _ => None,
                },
                _ => None,
            };
            match parsed {
                Some((seed, start, count)) if count > 0 => Ok(pim_fleet::evaluate_shard(
                    seed,
                    start,
                    count,
                    pim_fleet::SketchConfig::default(),
                )
                .render()),
                _ => Err(DmpimError::UnknownExperiment { id: spec.to_string() }),
            }
        } else {
            Err(DmpimError::UnknownExperiment { id: spec.to_string() })
        }
    })
}

/// Server-mode knobs from the CLI.
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7009` (port 0 for ephemeral).
    pub addr: String,
    /// Worker threads.
    pub workers: usize,
    /// Journal path; `None` disables crash recovery.
    pub journal: Option<PathBuf>,
    /// Per-client in-flight quota (0 = unlimited).
    pub quota: usize,
    /// Global queue bound (0 = unlimited).
    pub queue_depth: usize,
    /// Journal durability (`--fsync=off|data|full`).
    pub fsync: FsyncPolicy,
}

/// Run the service until a drain completes (SIGTERM/ctrl-c or a client
/// `shutdown` op) or a hard stop.
pub fn run_server(opts: &ServeOptions) -> Result<(), ServeError> {
    signal::install();
    let policy = ServePolicy {
        workers: opts.workers.max(1),
        quota: QuotaPolicy {
            max_in_flight_per_client: opts.quota,
            max_queue_depth: opts.queue_depth,
        },
        fsync: opts.fsync,
        ..ServePolicy::default()
    };
    let tracer = Tracer::new();
    let scheduler = Arc::new(Scheduler::start(
        policy,
        resolver(),
        tracer.clone(),
        opts.journal.as_deref(),
    )?);
    let server = Server::bind(&opts.addr, scheduler, tracer)?;
    eprintln!(
        "pim-serve: listening on {} ({} workers{})",
        server.local_addr(),
        opts.workers.max(1),
        match &opts.journal {
            Some(p) => format!(", journal {} (fsync={})", p.display(), opts.fsync.label()),
            None => ", no journal".to_string(),
        }
    );
    let out = server.run();
    eprintln!("pim-serve: stopped");
    out
}

/// Submit every experiment, wait for the results in paper order, and
/// print them exactly as the in-process run does. Returns the terminal
/// results for the caller's summary/exit-code logic.
pub fn run_client(addr: &str, drain: bool) -> Result<Vec<JobResult>, ServeError> {
    let mut client = Client::connect(addr, "repro")?;
    for id in crate::EXPERIMENTS {
        // Idempotent by id: a rerun after a server crash re-attaches to
        // journaled jobs instead of re-running them.
        client.submit(id, &format!("experiment:{id}"))?;
    }
    let mut results = Vec::with_capacity(crate::EXPERIMENTS.len());
    for id in crate::EXPERIMENTS {
        results.push(client.wait(id, None)?);
    }
    if drain {
        client.shutdown(ShutdownMode::Drain)?;
    }
    print_results(&results);
    Ok(results)
}

/// Render served results byte-identically to `repro`'s default run.
pub fn print_results(results: &[JobResult]) {
    for r in results {
        banner(&r.id);
        match &r.output {
            Some(text) => println!("{text}"),
            None => eprintln!(
                "experiment {} {}: {}",
                r.id,
                r.status.label(),
                r.error.as_deref().unwrap_or("unknown error")
            ),
        }
    }
    eprintln!("harness: {}", FailureSummary::from_results(results).one_line());
}

/// The banner `repro` prints before each experiment's report.
pub fn banner(id: &str) {
    println!("{}", "=".repeat(72));
    println!("== {id}");
    println!("{}", "=".repeat(72));
}

/// Connect-retry helper for scripts racing a just-started server.
pub fn connect_with_retry(addr: &str, name: &str, budget: Duration) -> Result<Client, ServeError> {
    let deadline = std::time::Instant::now() + budget;
    loop {
        match Client::connect(addr, name) {
            Ok(c) => return Ok(c),
            Err(e) if std::time::Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[cfg(test)]
mod tests {
    use pim_serve::WaitOutcome;

    use super::*;

    #[test]
    fn resolver_covers_experiments_and_kernels_and_rejects_garbage() {
        let r = resolver();
        let tracer = Tracer::disabled();
        let ctx = pim_harness::JobCtx {
            job_id: "t".into(),
            attempt: 1,
            tracer: tracer.clone(),
            track: tracer.track("t"),
            watchdog: pim_core::Watchdog::unlimited(),
        };
        let fig1 = r("experiment:fig1", &ctx).unwrap();
        assert_eq!(fig1, crate::run_experiment("fig1").unwrap(), "resolver output matches direct");
        let kernel = r("kernel-smoke:texture tiling", &ctx).unwrap();
        assert!(kernel.contains("texture tiling"), "{kernel}");
        assert!(r("experiment:nope", &ctx).is_err());
        assert!(r("kernel:nope", &ctx).is_err());
        assert!(r("garbage", &ctx).is_err());
    }

    #[test]
    fn fleet_shard_spec_returns_the_mergeable_summary() {
        let r = resolver();
        let tracer = Tracer::disabled();
        let ctx = pim_harness::JobCtx {
            job_id: "t".into(),
            attempt: 1,
            tracer: tracer.clone(),
            track: tracer.track("t"),
            watchdog: pim_core::Watchdog::unlimited(),
        };
        let payload = r("fleet-shard:7:100:50", &ctx).unwrap();
        let direct =
            pim_fleet::evaluate_shard(7, 100, 50, pim_fleet::SketchConfig::default()).render();
        assert_eq!(payload, direct, "served shard must match the in-process evaluation");
        assert!(pim_fleet::ShardSummary::parse(&payload).is_ok());
        assert!(r("fleet-shard:7:100", &ctx).is_err(), "missing field");
        assert!(r("fleet-shard:7:x:50", &ctx).is_err(), "non-numeric field");
        assert!(r("fleet-shard:7:100:0", &ctx).is_err(), "empty shard");
    }

    #[test]
    fn served_experiment_matches_in_process_byte_for_byte() {
        // Full loop through the scheduler (no TCP): the served payload
        // must equal the direct call exactly.
        let s = Scheduler::start(
            ServePolicy { workers: 2, ..ServePolicy::default() },
            resolver(),
            Tracer::disabled(),
            None,
        )
        .unwrap();
        for id in ["fig1", "fig18", "table1"] {
            s.submit("test", id, &format!("experiment:{id}"));
        }
        for id in ["fig1", "fig18", "table1"] {
            match s.wait(id, Some(Duration::from_secs(60))) {
                WaitOutcome::Done(r) => {
                    assert_eq!(
                        r.output.as_deref(),
                        Some(crate::run_experiment(id).unwrap().as_str()),
                        "{id}"
                    );
                }
                other => panic!("{id}: {other:?}"),
            }
        }
        s.drain();
        s.join();
    }
}
