//! The machine-readable scorecard behind `repro --json`.
//!
//! `EXPERIMENTS.md` records paper-vs-measured values as a hand-maintained
//! table; this module computes the headline subset of those quantities
//! programmatically and renders them as structured JSON so downstream
//! tooling (CI dashboards, regression diffing) can consume the
//! reproduction's state without scraping markdown.

use pim_core::area::AreaModel;
use pim_core::report::mean;
use pim_core::{ExecutionMode, JsonValue, Kernel, OffloadEngine, PimTargetKind, RunReport};

use crate::summary_exp;

/// One paper-vs-measured comparison.
#[derive(Debug, Clone)]
pub struct ScorecardEntry {
    /// Experiment id (matches `EXPERIMENTS` / `DESIGN.md`).
    pub id: &'static str,
    /// What is being compared.
    pub quantity: &'static str,
    /// The paper's value.
    pub paper: f64,
    /// This reproduction's value.
    pub measured: f64,
    /// `match` (within 15%), `band` (within 60%), else `divergent`.
    pub verdict: &'static str,
}

fn verdict(paper: f64, measured: f64) -> &'static str {
    if paper == 0.0 {
        return if measured == 0.0 { "match" } else { "divergent" };
    }
    let rel = (measured - paper).abs() / paper.abs();
    if rel <= 0.15 {
        "match"
    } else if rel <= 0.60 {
        "band"
    } else {
        "divergent"
    }
}

fn entry(id: &'static str, quantity: &'static str, paper: f64, measured: f64) -> ScorecardEntry {
    ScorecardEntry { id, quantity, paper, measured, verdict: verdict(paper, measured) }
}

fn smoke_kernels() -> Vec<(&'static str, PimTargetKind, Box<dyn Kernel>)> {
    use pim_chrome::tiling::TextureTilingKernel;
    use pim_chrome::ColorBlittingKernel;
    vec![
        ("texture tiling", PimTargetKind::TextureTiling, Box::new(TextureTilingKernel::new(128, 128, 1))),
        ("color blitting", PimTargetKind::ColorBlitting, Box::new(ColorBlittingKernel::new(vec![32, 64], 128, 1))),
    ]
}

/// Compute the scorecard. `smoke` swaps the full nine-kernel paper-scale
/// sweep for two small kernels (tests); the CLI always runs full scale.
pub fn scorecard(smoke: bool) -> Vec<ScorecardEntry> {
    let results: Vec<(&'static str, PimTargetKind, Vec<RunReport>)> = if smoke {
        let engine = OffloadEngine::new();
        smoke_kernels()
            .into_iter()
            .map(|(name, kind, mut k)| {
                let mut r = engine.run_all(k.as_mut());
                r.push(engine.run(k.as_mut(), ExecutionMode::PimCore));
                (name, kind, r)
            })
            .collect()
    } else {
        summary_exp::sweep()
    };

    let mut dm = Vec::new();
    let mut core_cut = Vec::new();
    let mut acc_cut = Vec::new();
    let mut acc_speed = Vec::new();
    let mut browser_core_cut = Vec::new();
    let mut video_acc_cut = Vec::new();
    let mut tiling_dm = None;
    for (_, kind, r) in &results {
        let (cpu, core, acc) = (&r[0], &r[1], &r[2]);
        dm.push(cpu.energy.data_movement_fraction());
        core_cut.push(1.0 - core.energy_vs(cpu));
        acc_cut.push(1.0 - acc.energy_vs(cpu));
        acc_speed.push(acc.speedup_vs(cpu));
        match kind {
            PimTargetKind::TextureTiling | PimTargetKind::ColorBlitting | PimTargetKind::Compression => {
                browser_core_cut.push(1.0 - core.energy_vs(cpu));
            }
            PimTargetKind::SubPixelInterpolation
            | PimTargetKind::DeblockingFilter
            | PimTargetKind::MotionEstimation => {
                video_acc_cut.push(1.0 - acc.energy_vs(cpu));
            }
            _ => {}
        }
        if *kind == PimTargetKind::TextureTiling {
            tiling_dm = Some(cpu.energy.data_movement_fraction());
        }
    }

    let mut out = vec![
        entry("headline", "avg CPU-only data-movement energy share", 0.627, mean(&dm)),
        entry("headline", "avg PIM-Core energy reduction", 0.491, mean(&core_cut)),
        entry("headline", "avg PIM-Acc energy reduction", 0.554, mean(&acc_cut)),
        entry("headline", "avg PIM-Acc speedup", 1.54, mean(&acc_speed)),
        entry(
            "area",
            "PIM core fraction of per-vault area budget",
            0.094,
            AreaModel::default().pim_core_fraction(),
        ),
    ];
    if let Some(t) = tiling_dm {
        out.push(entry("fig2", "texture-tiling data-movement energy share", 0.815, t));
    }
    if !browser_core_cut.is_empty() {
        out.push(entry(
            "fig18",
            "browser kernels avg PIM-Core energy reduction",
            0.513,
            mean(&browser_core_cut),
        ));
    }
    if !video_acc_cut.is_empty() {
        out.push(entry(
            "fig20",
            "video kernels avg PIM-Acc energy reduction",
            0.666,
            mean(&video_acc_cut),
        ));
    }
    out
}

/// Render entries as the `repro --json` document.
pub fn to_json(entries: &[ScorecardEntry]) -> String {
    let mut arr = JsonValue::array();
    for e in entries {
        arr = arr.push(
            JsonValue::object()
                .set("id", e.id)
                .set("quantity", e.quantity)
                .set("paper", e.paper)
                .set("measured", e.measured)
                .set("verdict", e.verdict),
        );
    }
    JsonValue::object()
        .set("source", "dmpim repro --json")
        .set("scorecard", arr)
        .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scorecard_has_stable_structure() {
        let entries = scorecard(true);
        assert!(entries.len() >= 6, "{entries:?}");
        assert!(entries.iter().any(|e| e.id == "headline"));
        assert!(entries.iter().any(|e| e.id == "area"));
        assert!(entries.iter().any(|e| e.id == "fig2"));
        for e in &entries {
            assert!(e.measured.is_finite(), "{e:?}");
            assert!(["match", "band", "divergent"].contains(&e.verdict));
        }
        // The area model is input-independent: always a match.
        let area = entries.iter().find(|e| e.id == "area").unwrap();
        assert_eq!(area.verdict, "match");
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let a = to_json(&scorecard(true));
        let b = to_json(&scorecard(true));
        assert_eq!(a, b);
        assert!(a.contains("\"scorecard\""));
        assert!(a.contains("\"verdict\""));
        assert!(a.starts_with('{') && a.trim_end().ends_with('}'));
    }

    #[test]
    fn verdict_bands() {
        assert_eq!(verdict(1.0, 1.1), "match");
        assert_eq!(verdict(1.0, 1.5), "band");
        assert_eq!(verdict(1.0, 3.0), "divergent");
        assert_eq!(verdict(0.0, 0.0), "match");
    }
}
