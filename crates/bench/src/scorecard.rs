//! The machine-readable scorecard behind `repro --json`.
//!
//! `EXPERIMENTS.md` records paper-vs-measured values as a hand-maintained
//! table; this module computes the headline subset of those quantities
//! programmatically and renders them as structured JSON so downstream
//! tooling (CI dashboards, regression diffing) can consume the
//! reproduction's state without scraping markdown.
//!
//! Measurement and aggregation are split so the harness can parallelize
//! the former: each kernel's sweep produces a [`KernelMetrics`] encoded
//! as a journal-safe line, and [`entries_from_metrics`] folds any set of
//! lines into scorecard entries. `f64`s use Rust's shortest round-trip
//! `Display`, so a scorecard rebuilt from journaled lines is
//! bit-identical to one computed in-process.

use pim_core::area::AreaModel;
use pim_core::report::mean;
use pim_core::{ExecutionMode, JsonValue, PimTargetKind, RunReport};
use pim_harness::{FailureSummary, SweepReport};

/// One paper-vs-measured comparison.
#[derive(Debug, Clone)]
pub struct ScorecardEntry {
    /// Experiment id (matches `EXPERIMENTS` / `DESIGN.md`).
    pub id: &'static str,
    /// What is being compared.
    pub quantity: &'static str,
    /// The paper's value.
    pub paper: f64,
    /// This reproduction's value.
    pub measured: f64,
    /// `match` (within 15%), `band` (within 60%), else `divergent`.
    pub verdict: &'static str,
}

fn verdict(paper: f64, measured: f64) -> &'static str {
    if paper == 0.0 {
        return if measured == 0.0 { "match" } else { "divergent" };
    }
    let rel = (measured - paper).abs() / paper.abs();
    if rel <= 0.15 {
        "match"
    } else if rel <= 0.60 {
        "band"
    } else {
        "divergent"
    }
}

fn entry(id: &'static str, quantity: &'static str, paper: f64, measured: f64) -> ScorecardEntry {
    ScorecardEntry { id, quantity, paper, measured, verdict: verdict(paper, measured) }
}

/// The measurements one kernel contributes to the scorecard, in a form
/// that survives a journal round-trip.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMetrics {
    /// Kernel display name (catalog key).
    pub name: String,
    /// Which paper target the kernel belongs to (drives grouping).
    pub kind: PimTargetKind,
    /// CPU-only data-movement energy share.
    pub dm: f64,
    /// PIM-Core energy reduction vs CPU-only (1 − E_core/E_cpu).
    pub core_cut: f64,
    /// PIM-Acc energy reduction vs CPU-only.
    pub acc_cut: f64,
    /// PIM-Acc speedup vs CPU-only.
    pub acc_speed: f64,
}

impl KernelMetrics {
    /// Derive the measurements from the three study-mode reports.
    pub fn from_reports(
        name: &str,
        kind: PimTargetKind,
        cpu: &RunReport,
        core: &RunReport,
        acc: &RunReport,
    ) -> Self {
        Self {
            name: name.to_string(),
            kind,
            dm: cpu.energy.data_movement_fraction(),
            core_cut: 1.0 - core.energy_vs(cpu),
            acc_cut: 1.0 - acc.energy_vs(cpu),
            acc_speed: acc.speedup_vs(cpu),
        }
    }

    /// Encode as `name|kind|dm|core_cut|acc_cut|acc_speed`. The floats
    /// use shortest round-trip formatting, so [`KernelMetrics::parse`]
    /// recovers the exact bits.
    pub fn to_line(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}",
            self.name,
            self.kind.label(),
            self.dm,
            self.core_cut,
            self.acc_cut,
            self.acc_speed
        )
    }

    /// Inverse of [`KernelMetrics::to_line`]; `None` on any malformed
    /// field (a corrupted journal line degrades to a missing kernel, not
    /// a crash).
    pub fn parse(line: &str) -> Option<Self> {
        let mut parts = line.split('|');
        let name = parts.next()?.to_string();
        let kind_label = parts.next()?;
        let kind = PimTargetKind::ALL.into_iter().find(|k| k.label() == kind_label)?;
        let dm = parts.next()?.parse().ok()?;
        let core_cut = parts.next()?.parse().ok()?;
        let acc_cut = parts.next()?.parse().ok()?;
        let acc_speed = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Self { name, kind, dm, core_cut, acc_cut, acc_speed })
    }
}

/// One study-mode measurement of a sharded kernel sweep, in a form that
/// survives a journal round-trip.
///
/// [`KernelMetrics::from_reports`] only reads each report's total energy,
/// runtime and (for the CPU baseline) data-movement fraction, so a shard
/// carries exactly those three values. Floats use shortest round-trip
/// formatting; [`metrics_from_shards`] then applies the same arithmetic
/// to the same bit patterns, making a sharded sweep's merged metrics
/// bit-identical to an unsharded one's.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeShard {
    /// Kernel display name (catalog key).
    pub name: String,
    /// Which paper target the kernel belongs to.
    pub kind: PimTargetKind,
    /// The study mode this shard measured.
    pub mode: ExecutionMode,
    /// The run's total energy, `RunReport::energy.total_pj()`.
    pub total_pj: f64,
    /// The run's end-to-end runtime in ps.
    pub runtime_ps: u64,
    /// The run's data-movement energy fraction (used from the CPU-Only
    /// shard; carried on all three for symmetry).
    pub dm: f64,
}

impl ModeShard {
    /// Capture the merge-relevant values of one study-mode report.
    pub fn from_report(name: &str, kind: PimTargetKind, report: &RunReport) -> Self {
        Self {
            name: name.to_string(),
            kind,
            mode: report.mode,
            total_pj: report.energy.total_pj(),
            runtime_ps: report.runtime_ps,
            dm: report.energy.data_movement_fraction(),
        }
    }

    /// Encode as `shard|name|kind|mode|total_pj|runtime_ps|dm`. The
    /// `shard|` prefix keeps shard lines from parsing as
    /// [`KernelMetrics`] lines and vice versa ("shard" is not a kind
    /// label, and a kernel name is not one either).
    pub fn to_line(&self) -> String {
        format!(
            "shard|{}|{}|{}|{}|{}|{}",
            self.name,
            self.kind.label(),
            self.mode.label(),
            self.total_pj,
            self.runtime_ps,
            self.dm
        )
    }

    /// Inverse of [`ModeShard::to_line`]; `None` on any malformed field.
    pub fn parse(line: &str) -> Option<Self> {
        let rest = line.strip_prefix("shard|")?;
        let mut parts = rest.split('|');
        let name = parts.next()?.to_string();
        let kind_label = parts.next()?;
        let kind = PimTargetKind::ALL.into_iter().find(|k| k.label() == kind_label)?;
        let mode_label = parts.next()?;
        let mode = ExecutionMode::ALL.into_iter().find(|m| m.label() == mode_label)?;
        let total_pj = parts.next()?.parse().ok()?;
        let runtime_ps = parts.next()?.parse().ok()?;
        let dm = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Self { name, kind, mode, total_pj, runtime_ps, dm })
    }
}

/// Merge the three study-mode shards of one kernel into its metrics.
///
/// Performs bit-for-bit the arithmetic of [`KernelMetrics::from_reports`]
/// on the values the shards transported, so the result is bit-identical
/// to measuring all three modes in one job — the property that keeps a
/// sharded scorecard byte-identical at any worker count.
pub fn metrics_from_shards(cpu: &ModeShard, core: &ModeShard, acc: &ModeShard) -> KernelMetrics {
    KernelMetrics {
        name: cpu.name.clone(),
        kind: cpu.kind,
        dm: cpu.dm,
        core_cut: 1.0 - core.total_pj / cpu.total_pj,
        acc_cut: 1.0 - acc.total_pj / cpu.total_pj,
        acc_speed: cpu.runtime_ps as f64 / acc.runtime_ps as f64,
    }
}

/// Fold per-kernel measurements into the paper-vs-measured entries.
pub fn entries_from_metrics(metrics: &[KernelMetrics]) -> Vec<ScorecardEntry> {
    let mut dm = Vec::new();
    let mut core_cut = Vec::new();
    let mut acc_cut = Vec::new();
    let mut acc_speed = Vec::new();
    let mut browser_core_cut = Vec::new();
    let mut video_acc_cut = Vec::new();
    let mut tiling_dm = None;
    for m in metrics {
        dm.push(m.dm);
        core_cut.push(m.core_cut);
        acc_cut.push(m.acc_cut);
        acc_speed.push(m.acc_speed);
        match m.kind {
            PimTargetKind::TextureTiling
            | PimTargetKind::ColorBlitting
            | PimTargetKind::Compression => {
                browser_core_cut.push(m.core_cut);
            }
            PimTargetKind::SubPixelInterpolation
            | PimTargetKind::DeblockingFilter
            | PimTargetKind::MotionEstimation => {
                video_acc_cut.push(m.acc_cut);
            }
            _ => {}
        }
        if m.kind == PimTargetKind::TextureTiling {
            tiling_dm = Some(m.dm);
        }
    }

    let mut out = vec![
        entry("headline", "avg CPU-only data-movement energy share", 0.627, mean(&dm)),
        entry("headline", "avg PIM-Core energy reduction", 0.491, mean(&core_cut)),
        entry("headline", "avg PIM-Acc energy reduction", 0.554, mean(&acc_cut)),
        entry("headline", "avg PIM-Acc speedup", 1.54, mean(&acc_speed)),
        entry(
            "area",
            "PIM core fraction of per-vault area budget",
            0.094,
            AreaModel::default().pim_core_fraction(),
        ),
    ];
    if let Some(t) = tiling_dm {
        out.push(entry("fig2", "texture-tiling data-movement energy share", 0.815, t));
    }
    if !browser_core_cut.is_empty() {
        out.push(entry(
            "fig18",
            "browser kernels avg PIM-Core energy reduction",
            0.513,
            mean(&browser_core_cut),
        ));
    }
    if !video_acc_cut.is_empty() {
        out.push(entry(
            "fig20",
            "video kernels avg PIM-Acc energy reduction",
            0.666,
            mean(&video_acc_cut),
        ));
    }
    out
}

/// Compute the scorecard. `smoke` swaps the full nine-kernel paper-scale
/// sweep for two small kernels (tests); the CLI always runs full scale.
pub fn scorecard(smoke: bool) -> Vec<ScorecardEntry> {
    entries_from_metrics(&crate::jobs::collect_metrics(smoke))
}

/// Known divergences the CI gate accepts, as `(id, quantity)` pairs.
/// Each one must be documented in `EXPERIMENTS.md`; currently the single
/// waiver is the headline PIM-Acc speedup, where this reproduction's
/// accelerators outperform the paper's average (see EXPERIMENTS.md).
pub const WAIVED_DIVERGENCES: [(&str, &str); 1] = [("headline", "avg PIM-Acc speedup")];

/// The reasons a `repro --json` run should exit non-zero: non-waived
/// divergent verdicts, plus any quarantined or failed sweep jobs.
pub fn gate_failures(
    entries: &[ScorecardEntry],
    harness: Option<&FailureSummary>,
) -> Vec<String> {
    let mut out = Vec::new();
    for e in entries {
        let waived =
            WAIVED_DIVERGENCES.iter().any(|&(id, q)| id == e.id && q == e.quantity);
        if e.verdict == "divergent" && !waived {
            out.push(format!(
                "scorecard: {}/{} divergent (paper {}, measured {})",
                e.id, e.quantity, e.paper, e.measured
            ));
        }
    }
    if let Some(s) = harness {
        if s.quarantined > 0 {
            out.push(format!("harness: {} job(s) quarantined", s.quarantined));
        }
        if s.failed > 0 {
            out.push(format!("harness: {} job(s) failed", s.failed));
        }
    }
    out
}

/// Render entries as the `repro --json` document.
pub fn to_json(entries: &[ScorecardEntry]) -> String {
    to_json_with_harness(entries, None)
}

/// Render entries plus the harness failure report (when the scorecard
/// was produced by a supervised sweep) as the `repro --json` document.
pub fn to_json_with_harness(entries: &[ScorecardEntry], harness: Option<&SweepReport>) -> String {
    let mut arr = JsonValue::array();
    for e in entries {
        arr = arr.push(
            JsonValue::object()
                .set("id", e.id)
                .set("quantity", e.quantity)
                .set("paper", e.paper)
                .set("measured", e.measured)
                .set("verdict", e.verdict),
        );
    }
    let mut doc = JsonValue::object()
        .set("source", "dmpim repro --json")
        .set("scorecard", arr)
        .set("scorecard_summary", summary_value(entries));
    if let Some(report) = harness {
        doc = doc.set("harness", report.to_json_value());
    }
    doc.render_pretty()
}

/// The `scorecard_summary` block: verdict counts plus the waived
/// divergences, so dashboards can read the reproduction's state without
/// re-deriving it from the entry array.
fn summary_value(entries: &[ScorecardEntry]) -> JsonValue {
    let count = |v: &str| entries.iter().filter(|e| e.verdict == v).count() as u64;
    let mut waived = JsonValue::array();
    for e in entries {
        if e.verdict == "divergent"
            && WAIVED_DIVERGENCES.iter().any(|&(id, q)| id == e.id && q == e.quantity)
        {
            waived = waived
                .push(JsonValue::object().set("id", e.id).set("quantity", e.quantity));
        }
    }
    JsonValue::object()
        .set("entries", entries.len() as u64)
        .set("match", count("match"))
        .set("band", count("band"))
        .set("divergent", count("divergent"))
        .set("waived", waived)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scorecard_has_stable_structure() {
        let entries = scorecard(true);
        assert!(entries.len() >= 6, "{entries:?}");
        assert!(entries.iter().any(|e| e.id == "headline"));
        assert!(entries.iter().any(|e| e.id == "area"));
        assert!(entries.iter().any(|e| e.id == "fig2"));
        for e in &entries {
            assert!(e.measured.is_finite(), "{e:?}");
            assert!(["match", "band", "divergent"].contains(&e.verdict));
        }
        // The area model is input-independent: always a match.
        let area = entries.iter().find(|e| e.id == "area").unwrap();
        assert_eq!(area.verdict, "match");
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let a = to_json(&scorecard(true));
        let b = to_json(&scorecard(true));
        assert_eq!(a, b);
        assert!(a.contains("\"scorecard\""));
        assert!(a.contains("\"verdict\""));
        assert!(a.starts_with('{') && a.trim_end().ends_with('}'));
    }

    #[test]
    fn verdict_bands() {
        assert_eq!(verdict(1.0, 1.1), "match");
        assert_eq!(verdict(1.0, 1.5), "band");
        assert_eq!(verdict(1.0, 3.0), "divergent");
        assert_eq!(verdict(0.0, 0.0), "match");
    }

    #[test]
    fn metrics_line_round_trips_exact_bits() {
        let m = KernelMetrics {
            name: "texture tiling".to_string(),
            kind: PimTargetKind::TextureTiling,
            dm: 0.1 + 0.2, // deliberately non-representable
            core_cut: f64::MIN_POSITIVE,
            acc_cut: 1.0 / 3.0,
            acc_speed: 2.940000000000001,
        };
        let back = KernelMetrics::parse(&m.to_line()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.dm.to_bits(), m.dm.to_bits());
        assert_eq!(back.acc_speed.to_bits(), m.acc_speed.to_bits());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(KernelMetrics::parse("too|few|fields").is_none());
        assert!(KernelMetrics::parse("n|no-such-kind|0.1|0.2|0.3|1.0").is_none());
        assert!(KernelMetrics::parse("n|texture tiling|0.1|0.2|0.3|1.0|extra").is_none());
        assert!(KernelMetrics::parse("n|texture tiling|0.1|0.2|xyz|1.0").is_none());
        assert!(KernelMetrics::parse("n|texture tiling|0.1|0.2|0.3|1.0").is_some());
    }

    #[test]
    fn shard_lines_round_trip_and_do_not_collide_with_metric_lines() {
        let s = ModeShard {
            name: "motion estimation".to_string(),
            kind: PimTargetKind::MotionEstimation,
            mode: ExecutionMode::PimAcc,
            total_pj: 0.1 + 0.2,
            runtime_ps: 123_456_789,
            dm: 1.0 / 3.0,
        };
        let back = ModeShard::parse(&s.to_line()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.total_pj.to_bits(), s.total_pj.to_bits());
        // A shard line must not parse as a plain metrics line, and vice
        // versa — the sweep mixes both in one result stream.
        assert!(KernelMetrics::parse(&s.to_line()).is_none());
        let m = KernelMetrics {
            name: "texture tiling".to_string(),
            kind: PimTargetKind::TextureTiling,
            dm: 0.5,
            core_cut: 0.4,
            acc_cut: 0.3,
            acc_speed: 1.5,
        };
        assert!(ModeShard::parse(&m.to_line()).is_none());
        assert!(ModeShard::parse("shard|n|no-such-kind|CPU-Only|1|2|3").is_none());
        assert!(ModeShard::parse("shard|n|texture tiling|no-such-mode|1|2|3").is_none());
    }

    #[test]
    fn gate_waives_documented_divergences_only() {
        let waived = entry("headline", "avg PIM-Acc speedup", 1.54, 2.94);
        assert_eq!(waived.verdict, "divergent");
        assert!(gate_failures(&[waived], None).is_empty());

        let real = entry("fig2", "texture-tiling data-movement energy share", 0.815, 0.1);
        assert_eq!(real.verdict, "divergent");
        let failures = gate_failures(&[real], None);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("fig2"));
    }

    #[test]
    fn gate_flags_quarantined_and_failed_jobs() {
        let mut summary = FailureSummary { total: 3, succeeded: 1, ..Default::default() };
        summary.quarantined = 1;
        summary.failed = 1;
        let failures = gate_failures(&[], Some(&summary));
        assert_eq!(failures.len(), 2);
        assert!(failures.iter().any(|f| f.contains("quarantined")));
        assert!(failures.iter().any(|f| f.contains("failed")));
    }
}
