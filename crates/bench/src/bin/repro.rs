//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p pim-bench --release --bin repro                 # everything
//! cargo run -p pim-bench --release --bin repro -- --experiment fig18
//! cargo run -p pim-bench --release --bin repro -- --list
//! cargo run -p pim-bench --release --bin repro -- --json       # scorecard JSON + BENCH_repro.json
//! cargo run -p pim-bench --release --bin repro -- --json --jobs 4 --journal sweep.jsonl
//! cargo run -p pim-bench --release --bin repro -- --json --jobs 4 --resume sweep.jsonl
//! cargo run -p pim-bench --release --bin repro -- --trace trace.json --metrics metrics.json
//! cargo run -p pim-bench --release --bin repro -- --explain          # attribution + BENCH_explain.json
//! cargo run -p pim-bench --release --bin repro -- --json --profile   # wall-clock phase table on stderr
//! cargo run -p pim-bench --release --bin repro -- --perf-gate        # history vs BENCH_baseline.json
//! cargo run -p pim-bench --release --bin repro -- --selftest-harness
//! ```
//!
//! Every sweep runs under the supervised harness: `--jobs N` fans the
//! work across N panic-isolated workers (merged output is byte-identical
//! to `--jobs 1`), `--journal` checkpoints each finished job to a JSONL
//! file (`--fsync off|data|full` picks how hard each record is pushed to
//! stable storage), and `--resume` re-runs only the jobs a killed sweep
//! left unfinished. `--trace` writes a Chrome trace-event file (open in
//! Perfetto or `chrome://tracing`); `--metrics` writes the flat metrics
//! dump from the same traced sweep. `--json` prints the paper-vs-measured
//! scorecard plus the harness failure report as JSON, archives both
//! (with wall-clock timing) to `BENCH_repro.json`, and exits non-zero on
//! any non-waived divergent verdict or any quarantined/failed job.
//! `--selftest-harness` runs a tiny sweep with an injected panic and a
//! hung simulation and verifies the harness isolates both.
//!
//! Observability mode (see `DESIGN.md` §4h): `--explain` runs the
//! bottleneck-attribution sweep (per-kernel × per-mode cycle/energy
//! breakdowns across six cost components), prints the table plus a
//! component-wise account of the measured-vs-paper headline speedup gap,
//! and archives `BENCH_explain.json`. `--profile` turns on the pim-obs
//! self-profiler (a no-op branch when off — asserted <5% overhead by the
//! `profiler_overhead` bench) and prints the phase table to stderr.
//! `--perf-gate` medians the recent `BENCH_history.jsonl` runs (appended
//! by every `--json` sweep) against the committed `BENCH_baseline.json`
//! budgets: machine-speed-corrected, warn >10%, fail >25%, noise floor
//! 50 ms (see `scripts/perf_gate.sh`).
//!
//! Fleet mode (see `DESIGN.md` §4i):
//!
//! ```text
//! cargo run -p pim-bench --release --bin repro -- --fleet \
//!     --devices 1000000 --seed 7 --jobs 4 --fleet-checkpoint fleet.ckpt
//! ```
//!
//! `--fleet` sweeps a deterministically sampled device population
//! (DRAM class, cache size, thermal envelope, fault rate, workload mix)
//! through the analytic energy model, folding results into
//! constant-memory sketches. `--fleet-checkpoint` makes the sweep
//! crash-safe: every folded batch is persisted atomically and a killed
//! run resumes to a byte-identical `BENCH_fleet.json`. `--mem-budget`
//! caps resident sketch state (resolution degrades, recorded in the
//! report, instead of OOM-ing); `--fleet-offset` replays a quarantined
//! shard's device range in isolation. Wall time feeds the perf gate as
//! the `fleet-sweep` experiment.
//!
//! Service mode (see `DESIGN.md` §4f):
//!
//! ```text
//! cargo run -p pim-bench --release --bin repro -- --serve 127.0.0.1:7009 \
//!     --jobs 4 --journal serve.jsonl            # fault-tolerant sweep service
//! cargo run -p pim-bench --release --bin repro -- --connect 127.0.0.1:7009
//! cargo run -p pim-bench --release --bin repro -- --connect 127.0.0.1:7009 --drain
//! ```
//!
//! `--serve` runs the `pim-serve` scheduler (work stealing, per-client
//! quotas via `--quota`/`--queue-depth`, wall/watchdog supervision,
//! journal-backed crash recovery) with this crate's catalog. `--connect`
//! submits all 23 experiments as jobs and prints stdout byte-identical
//! to the default in-process run — even when the server was SIGKILLed
//! and restarted mid-sweep, because submissions are idempotent and
//! finished jobs replay from the journal. `--drain` asks the server to
//! shut down gracefully once the results are in.

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use pim_harness::{FsyncPolicy, HarnessPolicy};
use pim_trace::JsonValue;

struct Cli {
    list: bool,
    json: bool,
    explain: bool,
    profile: bool,
    perf_gate: bool,
    selftest: bool,
    fleet: bool,
    devices: u64,
    seed: u64,
    shard_size: u64,
    mem_budget: u64,
    fleet_checkpoint: Option<String>,
    fleet_offset: u64,
    fleet_fail_every: Option<u64>,
    fleet_shard_delay_ms: u64,
    experiment: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    jobs: usize,
    journal: Option<String>,
    resume: Option<String>,
    serve: Option<String>,
    connect: Option<String>,
    drain: bool,
    quota: usize,
    queue_depth: usize,
    fsync: FsyncPolicy,
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        list: false,
        json: false,
        explain: false,
        profile: false,
        perf_gate: false,
        selftest: false,
        fleet: false,
        devices: 100_000,
        seed: 7,
        shard_size: 1_000,
        mem_budget: 64 << 20,
        fleet_checkpoint: None,
        fleet_offset: 0,
        fleet_fail_every: None,
        fleet_shard_delay_ms: 0,
        experiment: None,
        trace: None,
        metrics: None,
        jobs: 1,
        journal: None,
        resume: None,
        serve: None,
        connect: None,
        drain: false,
        quota: 64,
        queue_depth: 1024,
        fsync: FsyncPolicy::default(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => cli.list = true,
            "--json" => cli.json = true,
            "--explain" => cli.explain = true,
            "--profile" => cli.profile = true,
            "--perf-gate" => cli.perf_gate = true,
            "--selftest-harness" => cli.selftest = true,
            "--fleet" => cli.fleet = true,
            "--devices" => {
                let n = it.next().ok_or("--devices needs a count")?;
                cli.devices = n
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--devices needs a positive integer, got {n}"))?;
            }
            "--seed" => {
                let n = it.next().ok_or("--seed needs a value")?;
                cli.seed =
                    n.parse::<u64>().map_err(|_| format!("--seed needs an integer, got {n}"))?;
            }
            "--shard-size" => {
                let n = it.next().ok_or("--shard-size needs a count")?;
                cli.shard_size = n
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--shard-size needs a positive integer, got {n}"))?;
            }
            "--mem-budget" => {
                let n = it.next().ok_or("--mem-budget needs bytes")?;
                cli.mem_budget = n
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--mem-budget needs a byte count, got {n}"))?;
            }
            "--fleet-checkpoint" => {
                cli.fleet_checkpoint =
                    Some(it.next().ok_or("--fleet-checkpoint needs a path")?.clone());
            }
            "--fleet-offset" => {
                let n = it.next().ok_or("--fleet-offset needs a device index")?;
                cli.fleet_offset = n
                    .parse::<u64>()
                    .map_err(|_| format!("--fleet-offset needs an integer, got {n}"))?;
            }
            "--fleet-fail-every" => {
                let n = it.next().ok_or("--fleet-fail-every needs a shard count")?;
                cli.fleet_fail_every = Some(
                    n.parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("--fleet-fail-every needs a positive integer, got {n}"))?,
                );
            }
            "--fleet-shard-delay-ms" => {
                let n = it.next().ok_or("--fleet-shard-delay-ms needs milliseconds")?;
                cli.fleet_shard_delay_ms = n
                    .parse::<u64>()
                    .map_err(|_| format!("--fleet-shard-delay-ms needs an integer, got {n}"))?;
            }
            "--experiment" => {
                cli.experiment =
                    Some(it.next().ok_or("--experiment needs an id")?.clone());
            }
            "--trace" => cli.trace = Some(it.next().ok_or("--trace needs a path")?.clone()),
            "--metrics" => {
                cli.metrics = Some(it.next().ok_or("--metrics needs a path")?.clone());
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a worker count")?;
                cli.jobs = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--jobs needs a positive integer, got {n}"))?;
            }
            "--journal" => {
                cli.journal = Some(it.next().ok_or("--journal needs a path")?.clone());
            }
            "--resume" => {
                cli.resume = Some(it.next().ok_or("--resume needs a journal path")?.clone());
            }
            "--serve" => {
                cli.serve = Some(it.next().ok_or("--serve needs a listen address")?.clone());
            }
            "--connect" => {
                cli.connect =
                    Some(it.next().ok_or("--connect needs a server address")?.clone());
            }
            "--drain" => cli.drain = true,
            "--quota" => {
                let n = it.next().ok_or("--quota needs a job count")?;
                cli.quota = n
                    .parse::<usize>()
                    .map_err(|_| format!("--quota needs a non-negative integer, got {n}"))?;
            }
            "--queue-depth" => {
                let n = it.next().ok_or("--queue-depth needs a job count")?;
                cli.queue_depth = n
                    .parse::<usize>()
                    .map_err(|_| format!("--queue-depth needs a non-negative integer, got {n}"))?;
            }
            "--fsync" => {
                let v = it.next().ok_or("--fsync needs off|data|full")?;
                cli.fsync = FsyncPolicy::parse(v)
                    .ok_or(format!("--fsync needs off|data|full, got {v}"))?;
            }
            other => {
                if let Some(v) = other.strip_prefix("--fsync=") {
                    cli.fsync = FsyncPolicy::parse(v)
                        .ok_or(format!("--fsync needs off|data|full, got {v}"))?;
                } else {
                    return Err(format!("unknown argument {other}"));
                }
            }
        }
    }
    if cli.journal.is_some() && cli.resume.is_some() {
        return Err("--journal and --resume are mutually exclusive (resume \
                    appends to the journal it reads)"
            .to_string());
    }
    if cli.serve.is_some() && cli.connect.is_some() {
        return Err("--serve and --connect are mutually exclusive".to_string());
    }
    if cli.drain && cli.connect.is_none() {
        return Err("--drain only makes sense with --connect".to_string());
    }
    Ok(cli)
}

impl Cli {
    fn policy(&self) -> HarnessPolicy {
        HarnessPolicy { workers: self.jobs, fsync: self.fsync, ..HarnessPolicy::default() }
    }

    /// The journal path (if any) and whether to resume from it.
    fn journal(&self) -> (Option<&Path>, bool) {
        match (&self.resume, &self.journal) {
            (Some(p), _) => (Some(Path::new(p)), true),
            (None, Some(p)) => (Some(Path::new(p)), false),
            (None, None) => (None, false),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: repro [--list | --experiment <id> | --json | --explain | --perf-gate | \
                 --selftest-harness | --trace <path>] [--metrics <path>] [--profile] [--jobs <n>] \
                 [--journal <path> | --resume <path>] [--fsync off|data|full]\n\
                 \x20      repro --serve <addr> [--jobs <n>] [--journal <path>] \
                 [--quota <n>] [--queue-depth <n>] [--fsync off|data|full]\n\
                 \x20      repro --connect <addr> [--drain]\n\
                 \x20      repro --fleet [--devices <n>] [--seed <n>] [--shard-size <n>] \
                 [--jobs <n>] [--mem-budget <bytes>] [--fleet-checkpoint <path>] \
                 [--fleet-offset <n>]"
            );
            return ExitCode::FAILURE;
        }
    };

    if cli.list {
        for id in pim_bench::EXPERIMENTS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    // The self-profiler: disabled it never reads the clock (see the
    // profiler_overhead bench); --profile turns it on and prints the
    // phase table to stderr after the command finishes.
    let profiler =
        if cli.profile { pim_obs::Profiler::new() } else { pim_obs::Profiler::disabled() };
    let code = dispatch(&cli, &profiler);
    if cli.profile {
        eprint!("{}", profiler.render_table());
    }
    code
}

fn dispatch(cli: &Cli, profiler: &pim_obs::Profiler) -> ExitCode {
    if cli.perf_gate {
        return perf_gate();
    }

    if cli.fleet {
        return fleet(cli, profiler);
    }

    if cli.explain {
        return explain(cli, profiler);
    }

    if let Some(addr) = &cli.serve {
        let (journal, _) = cli.journal();
        let opts = pim_bench::serve_cli::ServeOptions {
            addr: addr.clone(),
            workers: cli.jobs,
            journal: journal.map(Path::to_path_buf),
            quota: cli.quota,
            queue_depth: cli.queue_depth,
            fsync: cli.fsync,
        };
        return match pim_bench::serve_cli::run_server(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("pim-serve: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(addr) = &cli.connect {
        return match pim_bench::serve_cli::run_client(addr, cli.drain) {
            Ok(results) => {
                if pim_harness::FailureSummary::from_results(&results).all_ok() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("pim-serve client: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if cli.selftest {
        return selftest(cli);
    }

    if cli.json {
        return json_scorecard(cli, profiler);
    }

    if cli.trace.is_some() || cli.metrics.is_some() {
        let a = pim_bench::obs::traced_sweep(false);
        if let Some(path) = &cli.trace {
            if let Err(e) = std::fs::write(path, &a.chrome_trace) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}: {} events across {} tracks", a.event_count, a.tracks.len());
        }
        if let Some(path) = &cli.metrics {
            if let Err(e) = std::fs::write(path, &a.metrics) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        return ExitCode::SUCCESS;
    }

    if let Some(id) = &cli.experiment {
        banner(id);
        return match pim_bench::run_experiment(id) {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("experiment {id} failed: {e}; try --list");
                ExitCode::FAILURE
            }
        };
    }

    all_experiments(cli, profiler)
}

/// `--fleet`: the crash-safe population sweep (see `DESIGN.md` §4i).
/// Writes the deterministic `BENCH_fleet.json` report and appends a
/// `fleet-sweep` timing line for the perf gate.
fn fleet(cli: &Cli, profiler: &pim_obs::Profiler) -> ExitCode {
    let opts = pim_bench::fleet_cli::FleetOptions {
        devices: cli.devices,
        seed: cli.seed,
        offset: cli.fleet_offset,
        shard_size: cli.shard_size,
        workers: cli.jobs,
        mem_budget_bytes: cli.mem_budget,
        checkpoint: cli.fleet_checkpoint.as_ref().map(std::path::PathBuf::from),
        fail_every: cli.fleet_fail_every,
        shard_delay_ms: cli.fleet_shard_delay_ms,
        ..pim_bench::fleet_cli::FleetOptions::default()
    };
    let outcome = {
        let _scope = profiler.scope("repro/fleet/sweep");
        match pim_bench::fleet_cli::run_fleet_cli(&opts) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("fleet sweep: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if !outcome.state.quarantined.is_empty() {
        eprintln!(
            "fleet: {} shard(s) quarantined (replay seeds in BENCH_fleet.json)",
            outcome.state.quarantined.len()
        );
    }
    ExitCode::SUCCESS
}

/// `--perf-gate`: compare the recent `BENCH_history.jsonl` window
/// against the committed `BENCH_baseline.json` budgets.
fn perf_gate() -> ExitCode {
    let config = pim_bench::perf_gate::GateConfig::default();
    match pim_bench::perf_gate::run_gate(
        Path::new("BENCH_history.jsonl"),
        Path::new("BENCH_baseline.json"),
        &config,
    ) {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("perf gate: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--explain`: the cross-layer attribution sweep. Prints the human
/// table + headline-gap prose and archives `BENCH_explain.json`.
fn explain(cli: &Cli, profiler: &pim_obs::Profiler) -> ExitCode {
    let (records, report) = {
        let _scope = profiler.scope("repro/explain/sweep");
        match pim_bench::explain::explain_sweep(false, cli.policy(), profiler) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("harness error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    print!("{}", pim_bench::explain::explain_text(&records));
    let doc = {
        let _scope = profiler.scope("repro/explain/render");
        pim_bench::explain::explain_json(&records, &report)
    };
    if let Err(e) = std::fs::write("BENCH_explain.json", doc) {
        eprintln!("failed to write BENCH_explain.json: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote BENCH_explain.json ({} records)", records.len());
    let summary = report.summary();
    eprintln!("harness: {}", summary.one_line());
    if summary.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The default run: every experiment as a supervised harness job. One
/// panicking or hung experiment no longer kills the whole regeneration —
/// its siblings complete and the failure report says what broke.
fn all_experiments(cli: &Cli, profiler: &pim_obs::Profiler) -> ExitCode {
    let mut harness = pim_harness::Harness::new(cli.policy());
    let (journal, resume) = cli.journal();
    if let Some(path) = journal {
        harness = if resume { harness.resume_from(path) } else { harness.with_journal(path) };
    }
    let report = {
        let _scope = profiler.scope("repro/all/sweep");
        match harness.run(pim_bench::jobs::experiment_jobs()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("harness error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    for r in &report.results {
        banner(&r.id);
        match &r.output {
            Some(text) => println!("{text}"),
            None => eprintln!(
                "experiment {} {}: {}",
                r.id,
                r.status.label(),
                r.error.as_deref().unwrap_or("unknown error")
            ),
        }
    }
    let summary = report.summary();
    eprintln!("harness: {}", summary.one_line());
    if summary.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `--json`: the harness-driven scorecard sweep, with CI gating.
fn json_scorecard(cli: &Cli, profiler: &pim_obs::Profiler) -> ExitCode {
    let t0 = Instant::now();
    let (journal, resume) = cli.journal();
    let (entries, report, timings) = {
        let _scope = profiler.scope("repro/json/sweep");
        match pim_bench::jobs::scorecard_sweep(false, cli.policy(), journal, resume) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("harness error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let _render_scope = profiler.scope("repro/json/render-and-write");
    let doc = pim_bench::scorecard::to_json_with_harness(&entries, Some(&report));
    println!("{doc}");
    let wall_ms = t0.elapsed().as_millis() as u64;
    let mut arr = JsonValue::array();
    for e in &entries {
        arr = arr.push(
            JsonValue::object()
                .set("id", e.id)
                .set("quantity", e.quantity)
                .set("paper", e.paper)
                .set("measured", e.measured)
                .set("verdict", e.verdict),
        );
    }
    // Per-experiment wall times, collected outside the journal so resumed
    // sweeps keep bit-identical results (resumed jobs have no entry here).
    // Aggregated across attempts: a retried job reports total ms + count.
    let aggregated = pim_bench::jobs::aggregate_timings(&timings);
    let mut exps = JsonValue::array();
    for (id, ms, attempts) in &aggregated {
        exps = exps.push(
            JsonValue::object()
                .set("id", id.as_str())
                .set("wall_ms", *ms)
                .set("attempts", *attempts),
        );
    }
    let bench = JsonValue::object()
        .set("source", "dmpim repro --json")
        .set("wall_ms", wall_ms)
        .set("experiments", exps)
        .set("scorecard", arr)
        .set("harness", report.to_json_value())
        .render_pretty();
    if let Err(e) = std::fs::write("BENCH_repro.json", bench) {
        eprintln!("failed to write BENCH_repro.json: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote BENCH_repro.json ({wall_ms} ms)");
    // Feed the perf-regression gate: one compact line per run.
    let line = pim_bench::perf_gate::history_line(wall_ms, &aggregated);
    if let Err(e) = append_line("BENCH_history.jsonl", &line) {
        eprintln!("failed to append BENCH_history.jsonl: {e}");
        return ExitCode::FAILURE;
    }

    let summary = report.summary();
    let failures = pim_bench::scorecard::gate_failures(&entries, Some(&summary));
    if failures.is_empty() {
        eprintln!("gate: ok ({})", summary.one_line());
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("gate: {f}");
        }
        ExitCode::FAILURE
    }
}

/// `--selftest-harness`: prove the supervision machinery end-to-end.
fn selftest(cli: &Cli) -> ExitCode {
    let workers = cli.jobs.max(2);
    let (report, mismatches) = match pim_bench::jobs::selftest(workers) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("harness error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", report.to_json_value().render_pretty());
    let summary = report.summary();
    eprintln!("harness selftest ({workers} workers): {}", summary.one_line());
    if mismatches.is_empty() {
        eprintln!("harness selftest: ok (panic isolated, runaway quarantined)");
        ExitCode::SUCCESS
    } else {
        for m in &mismatches {
            eprintln!("harness selftest: {m}");
        }
        ExitCode::FAILURE
    }
}

fn append_line(path: &str, line: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(f, "{line}")
}

fn banner(id: &str) {
    println!("{}", "=".repeat(72));
    println!("== {id}");
    println!("{}", "=".repeat(72));
}
