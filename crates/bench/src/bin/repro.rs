//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p pim-bench --release --bin repro                 # everything
//! cargo run -p pim-bench --release --bin repro -- --experiment fig18
//! cargo run -p pim-bench --release --bin repro -- --list
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => {
            for id in pim_bench::EXPERIMENTS {
                banner(id);
                match pim_bench::run_experiment(id) {
                    Ok(report) => println!("{report}"),
                    Err(e) => {
                        eprintln!("experiment {id} failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        [flag] if flag == "--list" => {
            for id in pim_bench::EXPERIMENTS {
                println!("{id}");
            }
            ExitCode::SUCCESS
        }
        [flag, id] if flag == "--experiment" => {
            banner(id);
            match pim_bench::run_experiment(id) {
                Ok(report) => {
                    println!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("experiment {id} failed: {e}; try --list");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: repro [--list | --experiment <id>]");
            ExitCode::FAILURE
        }
    }
}

fn banner(id: &str) {
    println!("{}", "=".repeat(72));
    println!("== {id}");
    println!("{}", "=".repeat(72));
}
