//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p pim-bench --release --bin repro                 # everything
//! cargo run -p pim-bench --release --bin repro -- --experiment fig18
//! cargo run -p pim-bench --release --bin repro -- --list
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => {
            for id in pim_bench::EXPERIMENTS {
                banner(id);
                println!("{}", pim_bench::run_experiment(id));
            }
            ExitCode::SUCCESS
        }
        [flag] if flag == "--list" => {
            for id in pim_bench::EXPERIMENTS {
                println!("{id}");
            }
            ExitCode::SUCCESS
        }
        [flag, id] if flag == "--experiment" => {
            if !pim_bench::EXPERIMENTS.contains(&id.as_str()) {
                eprintln!("unknown experiment {id:?}; try --list");
                return ExitCode::FAILURE;
            }
            banner(id);
            println!("{}", pim_bench::run_experiment(id));
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: repro [--list | --experiment <id>]");
            ExitCode::FAILURE
        }
    }
}

fn banner(id: &str) {
    println!("{}", "=".repeat(72));
    println!("== {id}");
    println!("{}", "=".repeat(72));
}
