//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p pim-bench --release --bin repro                 # everything
//! cargo run -p pim-bench --release --bin repro -- --experiment fig18
//! cargo run -p pim-bench --release --bin repro -- --list
//! cargo run -p pim-bench --release --bin repro -- --json       # scorecard JSON + BENCH_repro.json
//! cargo run -p pim-bench --release --bin repro -- --trace trace.json --metrics metrics.json
//! ```
//!
//! `--trace` writes a Chrome trace-event file (open in Perfetto or
//! `chrome://tracing`); `--metrics` writes the flat metrics dump from the
//! same traced sweep. `--json` prints the paper-vs-measured scorecard as
//! JSON and archives it (with wall-clock timing) to `BENCH_repro.json`.

use std::process::ExitCode;
use std::time::Instant;

use pim_trace::JsonValue;

struct Cli {
    list: bool,
    json: bool,
    experiment: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli =
        Cli { list: false, json: false, experiment: None, trace: None, metrics: None };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => cli.list = true,
            "--json" => cli.json = true,
            "--experiment" => {
                cli.experiment =
                    Some(it.next().ok_or("--experiment needs an id")?.clone());
            }
            "--trace" => cli.trace = Some(it.next().ok_or("--trace needs a path")?.clone()),
            "--metrics" => {
                cli.metrics = Some(it.next().ok_or("--metrics needs a path")?.clone());
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: repro [--list | --experiment <id> | --json | --trace <path>] [--metrics <path>]"
            );
            return ExitCode::FAILURE;
        }
    };

    if cli.list {
        for id in pim_bench::EXPERIMENTS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    if cli.json {
        let t0 = Instant::now();
        let entries = pim_bench::scorecard::scorecard(false);
        let doc = pim_bench::scorecard::to_json(&entries);
        println!("{doc}");
        let wall_ms = t0.elapsed().as_millis() as u64;
        let mut arr = JsonValue::array();
        for e in &entries {
            arr = arr.push(
                JsonValue::object()
                    .set("id", e.id)
                    .set("quantity", e.quantity)
                    .set("paper", e.paper)
                    .set("measured", e.measured)
                    .set("verdict", e.verdict),
            );
        }
        let bench = JsonValue::object()
            .set("source", "dmpim repro --json")
            .set("wall_ms", wall_ms)
            .set("scorecard", arr)
            .render_pretty();
        if let Err(e) = std::fs::write("BENCH_repro.json", bench) {
            eprintln!("failed to write BENCH_repro.json: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote BENCH_repro.json ({wall_ms} ms)");
        return ExitCode::SUCCESS;
    }

    if cli.trace.is_some() || cli.metrics.is_some() {
        let a = pim_bench::obs::traced_sweep(false);
        if let Some(path) = &cli.trace {
            if let Err(e) = std::fs::write(path, &a.chrome_trace) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}: {} events across {} tracks", a.event_count, a.tracks.len());
        }
        if let Some(path) = &cli.metrics {
            if let Err(e) = std::fs::write(path, &a.metrics) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        return ExitCode::SUCCESS;
    }

    if let Some(id) = &cli.experiment {
        banner(id);
        return match pim_bench::run_experiment(id) {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("experiment {id} failed: {e}; try --list");
                ExitCode::FAILURE
            }
        };
    }

    for id in pim_bench::EXPERIMENTS {
        banner(id);
        match pim_bench::run_experiment(id) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn banner(id: &str) {
    println!("{}", "=".repeat(72));
    println!("== {id}");
    println!("{}", "=".repeat(72));
}
