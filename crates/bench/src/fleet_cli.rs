//! `repro --fleet`: the crash-safe population-sweep front end.
//!
//! Runs [`pim_fleet::run_fleet`] over a deterministically sampled device
//! population, prints the human summary (energy-reduction distribution,
//! the paper's ≥40% headline share, regression attribution, quarantined
//! shards with replay commands), writes the deterministic report to
//! `BENCH_fleet.json`, and appends a `fleet-sweep` line to
//! `BENCH_history.jsonl` so `repro --perf-gate` budgets fleet wall time
//! alongside the kernel experiments.
//!
//! The report document is a pure function of the sweep key: wall times
//! and runtime counters (resumed shards, checkpoint writes) go to stderr
//! only, so a killed-and-resumed sweep writes a byte-identical
//! `BENCH_fleet.json` to an uninterrupted one.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use pim_fleet::{fleet_report, run_fleet, FleetConfig, FleetError, FleetOutcome};
use pim_trace::{JsonValue, Tracer};

/// CLI-shaped knobs for a fleet sweep.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Devices to sweep (`--devices`).
    pub devices: u64,
    /// Population seed (`--seed`).
    pub seed: u64,
    /// First absolute device index (`--fleet-offset`, for shard replay).
    pub offset: u64,
    /// Devices per shard (`--shard-size`).
    pub shard_size: u64,
    /// Harness workers (`--jobs`).
    pub workers: usize,
    /// Soft sketch memory budget in bytes (`--mem-budget`).
    pub mem_budget_bytes: u64,
    /// Checkpoint path (`--fleet-checkpoint`); also read on resume.
    pub checkpoint: Option<PathBuf>,
    /// Fault-injection knob: every n-th shard times out (`--fleet-fail-every`).
    pub fail_every: Option<u64>,
    /// Per-shard delay so kill tests can land mid-run
    /// (`--fleet-shard-delay-ms`).
    pub shard_delay_ms: u64,
    /// Deterministic report output path.
    pub report_path: PathBuf,
    /// History file for the perf gate; `None` skips the append.
    pub history_path: Option<PathBuf>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            devices: 100_000,
            seed: 7,
            offset: 0,
            shard_size: 1_000,
            workers: 1,
            mem_budget_bytes: 64 << 20,
            checkpoint: None,
            fail_every: None,
            shard_delay_ms: 0,
            report_path: PathBuf::from("BENCH_fleet.json"),
            history_path: Some(PathBuf::from("BENCH_history.jsonl")),
        }
    }
}

/// Human rendering of the deterministic report (stdout).
pub fn fleet_text(report: &JsonValue) -> String {
    let mut out = String::new();
    let get = |o: &JsonValue, k: &str| o.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    let geti = |o: &JsonValue, k: &str| {
        o.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0)
    };
    let pop = report.get("population").cloned().unwrap_or_else(JsonValue::object);
    let _ = writeln!(
        out,
        "fleet sweep: {} devices (seed {}, offset {}, {} shards of {})",
        get(&pop, "devices"),
        get(&pop, "seed"),
        get(&pop, "offset"),
        get(&pop, "shards"),
        get(&pop, "shard_size"),
    );
    let done = get(report, "devices_done");
    let _ = writeln!(
        out,
        "  aggregated {} devices across {} completed shards ({} quarantined)",
        done,
        get(&pop, "completed_shards"),
        get(&pop, "quarantined_shards"),
    );
    if let Some(bp) = report.get("energy_reduction_bp") {
        let pct = |k: &str| geti(bp, k) / 100.0;
        let _ = writeln!(
            out,
            "  energy reduction: mean {:.1}%, p10 {:.1}%, p50 {:.1}%, p90 {:.1}%, p99 {:.1}%",
            pct("mean"),
            pct("p10"),
            pct("p50"),
            pct("p90"),
            pct("p99"),
        );
    }
    let ge40 = get(report, "devices_ge_40pct_reduction");
    let regressed = get(report, "devices_regressed");
    if done > 0 {
        let _ = writeln!(
            out,
            "  >=40% reduction: {} devices ({:.1}%); regressed under PIM: {} ({:.2}%)",
            ge40,
            ge40 as f64 * 100.0 / done as f64,
            regressed,
            regressed as f64 * 100.0 / done as f64,
        );
    }
    if let Some(attr) = report.get("regression_attribution").and_then(JsonValue::as_array) {
        if !attr.is_empty() {
            let _ = writeln!(out, "  regression attribution (count-min, over-counts only):");
            for t in attr.iter().take(6) {
                let _ = writeln!(
                    out,
                    "    {:<16} ~{} regressed devices",
                    t.get("token").and_then(JsonValue::as_str).unwrap_or("?"),
                    get(t, "regressions_est"),
                );
            }
        }
    }
    if let Some(q) = report.get("quarantined").and_then(JsonValue::as_array) {
        for rec in q {
            let _ = writeln!(
                out,
                "  quarantined shard {} (devices {}..+{}, seed {}, {}): replay with `{}`",
                get(rec, "shard"),
                get(rec, "start"),
                get(rec, "devices"),
                get(rec, "seed"),
                rec.get("error_label").and_then(JsonValue::as_str).unwrap_or("?"),
                rec.get("replay").and_then(JsonValue::as_str).unwrap_or("?"),
            );
        }
    }
    out
}

/// Run the sweep, write artifacts, and return the outcome for exit-code
/// logic. Errors are strings ready for `eprintln!`.
pub fn run_fleet_cli(opts: &FleetOptions) -> Result<FleetOutcome, String> {
    let t0 = Instant::now();
    let cfg = FleetConfig {
        seed: opts.seed,
        devices: opts.devices,
        offset: opts.offset,
        shard_size: opts.shard_size.max(1),
        workers: opts.workers.max(1),
        mem_budget_bytes: opts.mem_budget_bytes,
        checkpoint: opts.checkpoint.clone(),
        checkpoint_chaos: None,
        stop_after_shards: None,
        fail_shard_every: opts.fail_every,
        shard_delay_ms: opts.shard_delay_ms,
    };
    let tracer = Tracer::disabled();
    let outcome = run_fleet(&cfg, &tracer).map_err(|e| match e {
        FleetError::Mismatch(what) => format!(
            "{what}\n(the checkpoint belongs to a different sweep; \
             delete it or match its parameters)"
        ),
        other => other.to_string(),
    })?;
    let wall_ms = t0.elapsed().as_millis() as u64;

    let report = fleet_report(&outcome.state);
    print!("{}", fleet_text(&report));
    let mut doc = report.render_pretty();
    doc.push('\n');
    std::fs::write(&opts.report_path, doc)
        .map_err(|e| format!("failed to write {}: {e}", opts.report_path.display()))?;

    // Runtime counters are stderr-only: the report file stays a pure
    // function of the sweep key so kill+resume is byte-identical.
    eprintln!(
        "wrote {} ({wall_ms} ms; {} shards this run, {} resumed, {} checkpoints written, {} dropped{})",
        opts.report_path.display(),
        outcome.processed_shards,
        outcome.resumed_shards,
        outcome.checkpoint_writes,
        outcome.checkpoint_dropped,
        if outcome.recovered_from_corrupt_checkpoint { ", recovered from corrupt checkpoint" } else { "" },
    );

    if let Some(history) = &opts.history_path {
        let line = crate::perf_gate::history_line(
            wall_ms,
            &[("fleet-sweep".to_string(), wall_ms, 1)],
        );
        use std::io::Write as _;
        let append = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(history)
            .and_then(|mut f| writeln!(f, "{line}"));
        if let Err(e) = append {
            eprintln!("failed to append {}: {e}", history.display());
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pim-fleet-cli-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn cli_run_writes_deterministic_report_and_history_line() {
        let report_a = temp("rep-a.json");
        let report_b = temp("rep-b.json");
        let hist = temp("hist.jsonl");
        let _ = std::fs::remove_file(&hist);
        let opts = FleetOptions {
            devices: 1_000,
            shard_size: 100,
            workers: 2,
            report_path: report_a.clone(),
            history_path: Some(hist.clone()),
            ..FleetOptions::default()
        };
        run_fleet_cli(&opts).unwrap();
        run_fleet_cli(&FleetOptions { report_path: report_b.clone(), ..opts }).unwrap();
        assert_eq!(
            std::fs::read(&report_a).unwrap(),
            std::fs::read(&report_b).unwrap(),
            "same sweep key must write byte-identical reports"
        );
        let hist_text = std::fs::read_to_string(&hist).unwrap();
        assert_eq!(hist_text.lines().count(), 2);
        for line in hist_text.lines() {
            let parsed = crate::perf_gate::RunTiming::parse(line).unwrap();
            assert_eq!(parsed.experiments.len(), 1);
            assert_eq!(parsed.experiments[0].0, "fleet-sweep");
        }
        for p in [&report_a, &report_b, &hist] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn fleet_text_mentions_quarantine_replay() {
        let report_path = temp("quarantine.json");
        let opts = FleetOptions {
            devices: 1_000,
            shard_size: 100,
            workers: 2,
            fail_every: Some(5),
            report_path: report_path.clone(),
            history_path: None,
            ..FleetOptions::default()
        };
        let outcome = run_fleet_cli(&opts).unwrap();
        assert_eq!(outcome.state.quarantined.len(), 2);
        let text = fleet_text(&fleet_report(&outcome.state));
        assert!(text.contains("quarantined shard"), "{text}");
        assert!(text.contains("--fleet-offset"), "{text}");
        let _ = std::fs::remove_file(&report_path);
    }
}
