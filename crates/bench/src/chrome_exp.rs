//! Chrome experiments: Figures 1, 2, 4 and 18.

use pim_chrome::lzo::{CompressionKernel, DecompressionKernel};
use pim_chrome::page::PageModel;
use pim_chrome::scroll::run_scroll;
use pim_chrome::tabs::{run_tab_switching, TabSwitchConfig};
use pim_chrome::tiling::TextureTilingKernel;
use pim_chrome::ColorBlittingKernel;
use pim_core::report::{energy_table, fraction_table, mode_sweep_table};
use pim_core::{DmpimError, Kernel, OffloadEngine, Platform, SimContext};

/// Figure 1: energy breakdown of page scrolling across six pages.
pub fn fig1() -> String {
    let mut rows = Vec::new();
    let mut avg_kernels = 0.0;
    let pages = PageModel::all();
    for page in &pages {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let b = run_scroll(page, &mut ctx);
        avg_kernels += b.fractions[0].1 + b.fractions[1].1;
        rows.push((page.name.to_string(), b.fractions));
    }
    format!(
        "Figure 1 — energy breakdown for page scrolling (CPU-only)\n{}\
         AVG texture tiling + color blitting: {:.1}% of scrolling energy (paper: 41.9%)\n",
        fraction_table(&rows),
        100.0 * avg_kernels / pages.len() as f64
    )
}

/// Figure 2: component breakdown + DM-vs-compute while scrolling Docs.
pub fn fig2() -> String {
    let mut ctx = SimContext::cpu_only(Platform::baseline());
    let b = run_scroll(&PageModel::google_docs(), &mut ctx);
    let mut out = String::from("Figure 2 — scrolling a Google Docs page (CPU-only)\n");
    out.push_str(&energy_table(&[("GoogleDocs".to_string(), b.energy)]));
    out.push_str(&format!(
        "total data movement: {:.1}% of system energy (paper: 77%)\nMPKI: {:.1} (paper: 21.4)\n",
        100.0 * b.data_movement_fraction,
        b.mpki
    ));
    out.push_str("data-movement share within each kernel (paper: tiling 81.5%, blitting 63.9%):\n");
    for (tag, f) in &b.kernel_dm_fraction {
        out.push_str(&format!("  {tag}: {:.1}%\n", 100.0 * f));
    }
    out
}

/// Figure 4: ZRAM swap traffic while switching 50 tabs.
pub fn fig4() -> Result<String, DmpimError> {
    let r = run_tab_switching(&TabSwitchConfig::default())?;
    let mut out = String::from("Figure 4 — ZRAM swap traffic, 50-tab switching\n");
    out.push_str("sec   out MB/s   in MB/s\n");
    for (i, (o, inn)) in r.out_mb_per_s.iter().zip(&r.in_mb_per_s).enumerate() {
        if *o > 0.5 || *inn > 0.5 {
            out.push_str(&format!("{i:>4} {o:>9.0} {inn:>9.0}\n"));
        }
    }
    out.push_str(&format!(
        "total swapped out: {:.1} GB (paper: 11.7)   in: {:.1} GB (paper: 7.8)\n\
         peak out rate: {:.0} MB/s (paper: 201)   compression ratio: {:.2}\n\
         compression = {:.1}% of energy (paper: 18.1%), {:.1}% of time (paper: 14.2%)\n",
        r.total_out_gb,
        r.total_in_gb,
        r.out_mb_per_s.iter().cloned().fold(0.0, f64::max),
        r.compression_ratio,
        100.0 * r.compression_energy_fraction,
        100.0 * r.compression_time_fraction,
    ));
    Ok(out)
}

/// Figure 18: the four browser kernels under CPU-Only / PIM-Core / PIM-Acc.
pub fn fig18() -> String {
    let engine = OffloadEngine::new();
    let mut out = String::from("Figure 18 — browser kernels: energy & runtime by mode\n");
    let mut kernels: Vec<(&str, Box<dyn Kernel>)> = vec![
        ("texture tiling", Box::new(TextureTilingKernel::paper_input())),
        ("color blitting", Box::new(ColorBlittingKernel::paper_input())),
        ("compression", Box::new(CompressionKernel::paper_input())),
        ("decompression", Box::new(DecompressionKernel::paper_input())),
    ];
    let mut core_ratios = Vec::new();
    let mut acc_ratios = Vec::new();
    for (name, kernel) in kernels.iter_mut() {
        let reports = engine.run_all(kernel.as_mut());
        out.push_str(&format!("\n[{name}]\n"));
        out.push_str(&energy_table(
            &reports
                .iter()
                .map(|r| (r.mode.label().to_string(), r.energy))
                .collect::<Vec<_>>(),
        ));
        out.push_str(&mode_sweep_table(&reports));
        core_ratios.push(reports[1].energy_vs(&reports[0]));
        acc_ratios.push(reports[2].energy_vs(&reports[0]));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    out.push_str(&format!(
        "\nAVG energy reduction: PIM-Core {:.1}% (paper: 51.3%), PIM-Acc {:.1}% (paper: 61.0%)\n",
        100.0 * (1.0 - avg(&core_ratios)),
        100.0 * (1.0 - avg(&acc_ratios)),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_report_has_series_and_totals() {
        // Use a smaller run to keep the test fast.
        let r = run_tab_switching(&TabSwitchConfig { tabs: 8, budget_mb: 400, ..TabSwitchConfig::default() })
            .unwrap();
        assert!(r.total_out_gb > 0.5);
    }

    #[test]
    fn fig2_mentions_paper_anchors() {
        let s = fig2();
        assert!(s.contains("MPKI"));
        assert!(s.contains("paper: 77%"));
    }
}
