//! Video experiments: Figures 10, 11, 12, 15, 16, 20 and 21.

use pim_core::report::{energy_table, fraction_table, mode_sweep_table};
use pim_core::{DmpimError, EnergyParams, Kernel, OffloadEngine, Platform, SimContext};
use pim_vp9::driver::{
    run_sw_decode, run_sw_encode, DeblockingFilterKernel, MotionEstimationKernel,
    SubPixelInterpolationKernel, SwBreakdown,
};
use pim_vp9::encoder::EncoderConfig;
use pim_vp9::frame::SyntheticVideo;
use pim_vp9::hw::{
    decoder_traffic, encoder_traffic, hw_energy, total_bytes, HwPimMode, Resolution,
};

/// The decoder characterization runs on 4K frames, as in §9. Three frames
/// (one keyframe warm-up + two replayed inter frames) keep the harness
/// under a minute while preserving per-pixel shares.
fn decode_breakdown() -> Result<SwBreakdown, DmpimError> {
    let v = SyntheticVideo::new(3840, 2160, 1, 0x4b);
    let mut ctx = SimContext::cpu_only(Platform::baseline());
    run_sw_decode(&v, 3, EncoderConfig { q: 20, range: 8 }, &mut ctx)
}

fn encode_breakdown() -> Result<SwBreakdown, DmpimError> {
    let v = SyntheticVideo::new(1280, 720, 1, 0xeb);
    let mut ctx = SimContext::cpu_only(Platform::baseline());
    run_sw_encode(&v, 3, EncoderConfig { q: 20, range: 12 }, &mut ctx)
}

/// Figure 10: software-decoder energy by function.
pub fn fig10() -> Result<String, DmpimError> {
    let b = decode_breakdown()?;
    Ok(format!(
        "Figure 10 — VP9 software decoder energy (4K)\n{}\
         (paper: sub-pel interpolation 37.5%, deblocking 29.7%, MC total 53.4%)\n",
        fraction_table(&[("4K".to_string(), b.energy_fractions)])
    ))
}

/// Figure 11: decoder component breakdown + DM share.
pub fn fig11() -> Result<String, DmpimError> {
    let b = decode_breakdown()?;
    Ok(format!(
        "Figure 11 — VP9 software decoder by component\n{}\
         data movement: {:.1}% of decoder energy (paper: 63.5%)\n",
        energy_table(&[("4K decode".to_string(), b.energy)]),
        100.0 * b.dm_fraction
    ))
}

fn traffic_table(title: &str, rows: Vec<(String, Vec<(&'static str, f64)>)>) -> String {
    let mut out = String::from(title);
    for (label, parts) in rows {
        let total = total_bytes(&parts);
        out.push_str(&format!("{label:<24} total {:>7.1} MB\n", total / (1 << 20) as f64));
        for (name, bytes) in &parts {
            out.push_str(&format!(
                "    {name:<26} {:>7.2} MB  ({:>4.1}%)\n",
                bytes / (1 << 20) as f64,
                100.0 * bytes / total
            ));
        }
    }
    out
}

/// Figure 12: hardware-decoder off-chip traffic.
pub fn fig12() -> String {
    let mut rows = Vec::new();
    for res in [Resolution::Hd, Resolution::Uhd4k] {
        for comp in [false, true] {
            let label = format!("{} {}", res.label(), if comp { "with compression" } else { "no compression" });
            rows.push((label, decoder_traffic(res, comp)));
        }
    }
    let mut s = traffic_table("Figure 12 — HW decoder off-chip traffic per frame\n", rows);
    s.push_str("(paper: reference frame 75.5% HD / 59.6% 4K of traffic; 4K ~4.6x HD)\n");
    s
}

/// Figure 15: software-encoder energy by function.
pub fn fig15() -> Result<String, DmpimError> {
    let b = encode_breakdown()?;
    Ok(format!(
        "Figure 15 — VP9 software encoder energy (HD)\n{}\
         data movement: {:.1}% of encoder energy (paper: 59.1%)\n\
         (paper: motion estimation 39.6% of energy, 43.1% of cycles)\n",
        fraction_table(&[("HD".to_string(), b.energy_fractions)]),
        100.0 * b.dm_fraction
    ))
}

/// Figure 16: hardware-encoder off-chip traffic.
pub fn fig16() -> String {
    let mut rows = Vec::new();
    for res in [Resolution::Hd, Resolution::Uhd4k] {
        for comp in [false, true] {
            let label = format!("{} {}", res.label(), if comp { "with compression" } else { "no compression" });
            rows.push((label, encoder_traffic(res, comp)));
        }
    }
    let mut s = traffic_table("Figure 16 — HW encoder off-chip traffic per frame\n", rows);
    s.push_str("(paper: reference frames 65.1% of HD traffic; current frame 14.2% -> 31.9% with compression)\n");
    s
}

/// Figure 20: the three video kernels under the three modes.
pub fn fig20() -> String {
    let engine = OffloadEngine::new();
    let mut out = String::from("Figure 20 — video kernels: energy & runtime by mode\n");
    let mut kernels: Vec<(&str, Box<dyn Kernel>)> = vec![
        ("sub-pixel interpolation (4K)", Box::new(SubPixelInterpolationKernel::paper_input())),
        ("deblocking filter (4K)", Box::new(DeblockingFilterKernel::paper_input())),
        ("motion estimation (HD)", Box::new(MotionEstimationKernel::paper_input())),
    ];
    let mut core_ratios = Vec::new();
    let mut acc_ratios = Vec::new();
    for (name, kernel) in kernels.iter_mut() {
        let reports = engine.run_all(kernel.as_mut());
        out.push_str(&format!("\n[{name}]\n"));
        out.push_str(&mode_sweep_table(&reports));
        core_ratios.push(reports[1].energy_vs(&reports[0]));
        acc_ratios.push(reports[2].energy_vs(&reports[0]));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    out.push_str(&format!(
        "\nAVG energy reduction: PIM-Core {:.1}% (paper: 46.8%), PIM-Acc {:.1}% (paper: 66.6%)\n\
         (paper runtimes: PIM-Core +23.6%, PIM-Acc +70.2%; ME: 1.13x core, 2.1x acc)\n",
        100.0 * (1.0 - avg(&core_ratios)),
        100.0 * (1.0 - avg(&acc_ratios)),
    ));
    out
}

/// Figure 21: hardware codec energy with PIM.
pub fn fig21() -> String {
    let params = EnergyParams::default();
    let mut out = String::from("Figure 21 — HW codec total energy per 4K frame (mJ)\n");
    for encode in [false, true] {
        out.push_str(if encode { "\n[encoder]\n" } else { "[decoder]\n" });
        for comp in [false, true] {
            out.push_str(if comp { "  with compression:\n" } else { "  no compression:\n" });
            let base = hw_energy(Resolution::Uhd4k, comp, HwPimMode::Baseline, encode, &params);
            for mode in HwPimMode::ALL {
                let e = hw_energy(Resolution::Uhd4k, comp, mode, encode, &params);
                out.push_str(&format!(
                    "    {:<10} {:>7.2} mJ  ({:+.1}% vs VP9)\n",
                    mode.label(),
                    e.total_pj() / 1e9,
                    100.0 * (e.total_pj() / base.total_pj() - 1.0)
                ));
            }
        }
    }
    out.push_str(
        "(paper: PIM-Acc -75.1% decode / -69.8% encode; PIM-Core with compression +63.4%;\n\
         PIM-Acc without compression still beats VP9 with compression)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_and_16_tables_cover_four_configs() {
        let s = fig12();
        assert!(s.contains("HD no compression") && s.contains("4K with compression"));
        let s = fig16();
        assert!(s.contains("Current Frame"));
    }

    #[test]
    fn fig21_reports_all_modes() {
        let s = fig21();
        assert!(s.contains("VP9") && s.contains("PIM-Core") && s.contains("PIM-Acc"));
        assert!(s.contains("[encoder]"));
    }
}
