//! Ablation studies for the design choices DESIGN.md calls out:
//! per-vault PIM-core parallelism, SIMD width (§3.3's "empirically set to
//! 4"), the FR-FCFS scheduler (Table 1), internal stack bandwidth, and the
//! §8.2 coherence costs.

use pim_chrome::tiling::TextureTilingKernel;
use pim_core::{
    EnergyParams, EngineTiming, ExecutionMode, Kernel, OffloadEngine, Platform, Port, SimContext,
};
use pim_memsim::{CoherenceConfig, DramKind, SchedulerPolicy};
use pim_vp9::driver::SubPixelInterpolationKernel;
use pim_vp9::frame::SyntheticVideo;

fn tiling() -> TextureTilingKernel {
    TextureTilingKernel::new(512, 512, 0x7e97)
}

fn subpel() -> SubPixelInterpolationKernel {
    SubPixelInterpolationKernel::new(SyntheticVideo::new(1280, 720, 2, 0xd0), 1)
}

/// Per-vault PIM-core parallelism: the paper places one PIM core in each of
/// the 16 vaults; our default PIM-Core mode conservatively uses one.
pub fn pim_cluster() -> String {
    let mut out = String::from(
        "Ablation — PIM-Core cluster size (one core per vault, Table 1)\n\n\
         cores   tiling speedup   sub-pel speedup   energy vs 1 core\n",
    );
    let base_engine = OffloadEngine::new();
    let t_cpu = base_engine.run(&mut tiling(), ExecutionMode::CpuOnly);
    let s_cpu = base_engine.run(&mut subpel(), ExecutionMode::CpuOnly);
    let e1 = base_engine.run(&mut tiling(), ExecutionMode::PimCore).energy.total_pj();
    for n in [1usize, 2, 4, 8, 16] {
        let engine = OffloadEngine::new().with_pim_cluster(n);
        let t = engine.run(&mut tiling(), ExecutionMode::PimCore);
        let s = engine.run(&mut subpel(), ExecutionMode::PimCore);
        out.push_str(&format!(
            "{n:>5}        {:>6.2}x           {:>6.2}x            {:>6.3}\n",
            t.speedup_vs(&t_cpu),
            s.speedup_vs(&s_cpu),
            t.energy.total_pj() / e1,
        ));
    }
    out.push_str(
        "\nEnergy is cluster-size invariant (same ops, same traffic); the\n\
         paper's PIM-Core speedups (avg 1.45x) sit between our 1-core and\n\
         4-core points — see EXPERIMENTS.md gap #1.\n",
    );
    out
}

/// SIMD width of the PIM core: the paper empirically settles on 4 (§3.3).
pub fn simd_width() -> String {
    let mut out = String::from(
        "Ablation — PIM-core SIMD width (§3.3 picks 4)\n\n\
         width   runtime vs w=4   energy vs w=4\n",
    );
    // Kernels count SIMD ops at 4 lanes; width w retires them at w/4 the
    // rate and costs ~linear datapath energy.
    let runs: Vec<(usize, f64, f64)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| {
            let mut timing = EngineTiming::pim_core();
            timing.simd_ipc *= w as f64 / 4.0;
            let mut platform = Platform::pim();
            platform.energy.pim_simd_pj =
                EnergyParams::default().pim_simd_pj * (0.4 + 0.6 * w as f64 / 4.0);
            let mut ctx = SimContext::new(platform, timing, Port::PimCore);
            let mut k = subpel();
            k.run(&mut ctx);
            (w, ctx.now_ps() as f64, ctx.total_energy().total_pj())
        })
        .collect();
    let (_, t4, e4) = runs.iter().find(|(w, _, _)| *w == 4).copied().expect("w=4 in sweep");
    for (w, t, e) in &runs {
        out.push_str(&format!("{w:>5}        {:>6.3}          {:>6.3}\n", t / t4, e / e4));
    }
    out.push_str(
        "\nWidth 4 is the knee for the sub-pel interpolation target: width 8\n\
         buys little runtime (memory takes over) at higher datapath energy,\n\
         matching the paper's empirical choice.\n",
    );
    out
}

/// Memory-controller scheduling: FR-FCFS (Table 1) vs strict FCFS.
pub fn scheduler() -> String {
    let mut out = String::from("Ablation — FR-FCFS vs FCFS memory scheduling\n\n");
    for policy in [SchedulerPolicy::FrFcfs { window: 4 }, SchedulerPolicy::Fcfs] {
        let mut platform = Platform::baseline();
        if let DramKind::Lpddr3 { ref mut timing, .. } = platform.mem.dram {
            timing.policy = policy;
        }
        let engine = OffloadEngine::new().with_baseline(platform);
        let r = engine.run(&mut tiling(), ExecutionMode::CpuOnly);
        let hits = r.activity.row_hits;
        let total = r.activity.row_hits + r.activity.row_misses;
        out.push_str(&format!(
            "{:<22} row-hit {:>5.1}%   runtime {:>7.3} ms   energy {:>7.3} mJ\n",
            format!("{policy:?}"),
            100.0 * hits as f64 / total.max(1) as f64,
            r.runtime_ms(),
            r.energy_mj(),
        ));
    }
    out.push_str("\nThe reorder window rescues row locality that strict FCFS destroys\non the tiler's strided write stream.\n");
    out
}

/// Internal (TSV) bandwidth of the stack: PIM sensitivity.
pub fn bandwidth() -> String {
    let mut out = String::from(
        "Ablation — 3D-stack internal bandwidth (Table 1: 256 GB/s)\n\n\
         GB/s    PIM-Acc speedup vs CPU-Only (texture tiling)\n",
    );
    let cpu = OffloadEngine::new().run(&mut tiling(), ExecutionMode::CpuOnly);
    for gbps in [64.0, 128.0, 256.0, 512.0] {
        let mut platform = Platform::pim();
        if let DramKind::Stacked(ref mut s) = platform.mem.dram {
            s.internal_gbps = gbps;
        }
        let engine = OffloadEngine::new().with_pim_platform(platform);
        let r = engine.run(&mut tiling(), ExecutionMode::PimAcc);
        out.push_str(&format!("{gbps:>5.0}        {:>6.2}x\n", r.speedup_vs(&cpu)));
    }
    out.push_str("\nThe accelerator is bandwidth-fed: halving the TSV budget costs\nthroughput directly, as expected for a streaming reorganization kernel.\n");
    out
}

/// §8.2 coherence costs: sweep the dirty fraction and message latency.
pub fn coherence() -> String {
    let mut out = String::from(
        "Ablation — CPU<->PIM coherence cost (§8.2)\n\n\
         dirty%   msg us   offload overhead (% of kernel runtime)\n",
    );
    for (dirty, msg_us) in [(0.01, 0.04), (0.05, 0.04), (0.20, 0.04), (0.05, 0.4), (0.20, 0.4)] {
        let mut platform = Platform::pim();
        platform.coherence = CoherenceConfig {
            dirty_fraction: dirty,
            msg_latency_ps: (msg_us * 1e6) as u64,
            ..CoherenceConfig::default()
        };
        let engine = OffloadEngine::new().with_pim_platform(platform);
        let r = engine.run(&mut tiling(), ExecutionMode::PimAcc);
        // Re-measure the transition cost on a fresh context.
        let mut ctx = engine.context_for(ExecutionMode::PimAcc);
        let t0 = ctx.now_ps();
        ctx.offload_transition(tiling().working_set_bytes(), true);
        ctx.offload_transition(tiling().working_set_bytes(), false);
        let overhead = (ctx.now_ps() - t0) as f64 / r.runtime_ps as f64;
        out.push_str(&format!(
            "{:>5.0}%   {msg_us:>6.2}   {:>6.2}%\n",
            100.0 * dirty,
            100.0 * overhead
        ));
    }
    out.push_str(
        "\nEven a pessimistic 20% dirty working set and 10x message latency\n\
         keeps the hand-off in the low percent range: the fine-grained\n\
         coherence of §8.2 is not the bottleneck.\n",
    );
    out
}

/// §4.3.2's extension: user-transparent file-system compression becomes
/// affordable once (de)compression lives in memory.
pub fn fs_compression() -> String {
    use pim_chrome::lzo::CompressionKernel;
    let mut out = String::from(
        "Extension — user-transparent file-system compression (§4.3.2)\n\n",
    );
    // File blocks: larger units than swap pages, similar content mix.
    let blocks = pim_chrome::lzo::synthetic_tab_dump(1024, 0xf5);
    let engine = OffloadEngine::new();
    let mut k = CompressionKernel::new(blocks);
    let cpu = engine.run(&mut k, ExecutionMode::CpuOnly);
    let acc = engine.run(&mut k, ExecutionMode::PimAcc);
    out.push_str(&format!(
        "compressing 4 MB of file blocks:\n  CPU path: {:.3} mJ, {:.3} ms\n  PIM-Acc:  {:.3} mJ, {:.3} ms\n",
        cpu.energy_mj(),
        cpu.runtime_ms(),
        acc.energy_mj(),
        acc.runtime_ms()
    ));
    out.push_str(&format!(
        "\nIn-memory compression cuts {:.0}% of the energy and {:.0}% of the\n\
         latency that keep OS-level compressed file systems (BTRFS/ZFS-style)\n\
         out of mobile devices, as §4.3.2 argues.\n",
        100.0 * (1.0 - acc.energy_vs(&cpu)),
        100.0 * (1.0 - acc.runtime_ps as f64 / cpu.runtime_ps as f64)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_ablation_shows_frfcfs_advantage() {
        let s = scheduler();
        assert!(s.contains("FrFcfs"));
        assert!(s.contains("Fcfs"));
    }

    #[test]
    fn coherence_overheads_stay_small() {
        let s = coherence();
        // Every reported overhead line should be single-digit percent.
        for line in s.lines().filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit())) {
            if let Some(pct) = line.split_whitespace().last() {
                if let Ok(v) = pct.trim_end_matches('%').parse::<f64>() {
                    assert!(v < 10.0, "overhead too large: {line}");
                }
            }
        }
    }
}
