//! The figure-regeneration harness.
//!
//! One function per table/figure of the paper's evaluation; the `repro`
//! binary prints them (`cargo run -p pim-bench --release --bin repro`).
//! Experiment identifiers match the index in `DESIGN.md`; measured-vs-paper
//! values are recorded in `EXPERIMENTS.md`.

use pim_core::DmpimError;

pub mod ablate_exp;
pub mod chrome_exp;
pub mod explain;
pub mod fleet_cli;
pub mod jobs;
pub mod obs;
pub mod perf_gate;
pub mod scorecard;
pub mod serve_cli;
pub mod summary_exp;
pub mod tf_exp;
pub mod video_exp;

/// All experiment identifiers, in paper order.
pub const EXPERIMENTS: [&str; 23] = [
    "table1", "fig1", "fig2", "fig4", "fig6", "fig7", "fig10", "fig11", "fig12", "fig15",
    "fig16", "fig18", "fig19", "fig20", "fig21", "headline", "area", "ablate-pimcluster",
    "ablate-simd", "ablate-scheduler", "ablate-bandwidth", "ablate-coherence",
    "ext-fscompress",
];

/// Run one experiment by id, returning its printed report.
///
/// # Errors
///
/// Returns [`DmpimError::UnknownExperiment`] for an id not listed in
/// [`EXPERIMENTS`], and propagates any simulation error from the
/// experiment itself.
pub fn run_experiment(id: &str) -> Result<String, DmpimError> {
    Ok(match id {
        "table1" => summary_exp::table1(),
        "fig1" => chrome_exp::fig1(),
        "fig2" => chrome_exp::fig2(),
        "fig4" => chrome_exp::fig4()?,
        "fig6" => tf_exp::fig6(),
        "fig7" => tf_exp::fig7(),
        "fig10" => video_exp::fig10()?,
        "fig11" => video_exp::fig11()?,
        "fig12" => video_exp::fig12(),
        "fig15" => video_exp::fig15()?,
        "fig16" => video_exp::fig16(),
        "fig18" => chrome_exp::fig18(),
        "fig19" => tf_exp::fig19(),
        "fig20" => video_exp::fig20(),
        "fig21" => video_exp::fig21(),
        "headline" => summary_exp::headline(),
        "area" => summary_exp::area(),
        "ablate-pimcluster" => ablate_exp::pim_cluster(),
        "ablate-simd" => ablate_exp::simd_width(),
        "ablate-scheduler" => ablate_exp::scheduler(),
        "ablate-bandwidth" => ablate_exp::bandwidth(),
        "ablate-coherence" => ablate_exp::coherence(),
        "ext-fscompress" => ablate_exp::fs_compression(),
        other => return Err(DmpimError::UnknownExperiment { id: other.to_string() }),
    })
}
