//! Compute-engine timing models for the consumer-device PIM study.
//!
//! Four engines execute work in the reproduction, mirroring §3.3 and §9 of
//! the paper:
//!
//! * the **SoC CPU** — a 4-wide-retire out-of-order mobile core at 2 GHz
//!   that overlaps a large fraction of memory latency,
//! * the **PIM core** — a 1-wide in-order 64-bit core with a 4-wide SIMD
//!   unit (ARM Cortex-R8-class) in the DRAM logic layer,
//! * the **PIM accelerator** — fixed-function in-memory logic units (four
//!   per accelerator, §4.2.2) with high op throughput,
//! * **codec hardware** — the on-SoC VP9 RTL used as the §6.3/§7.3 baseline.
//!
//! An engine converts an operation mix ([`OpMix`]) into execution time and
//! decides how much of a memory access's latency is exposed as stall time
//! ([`EngineTiming::exposed_stall_ps`]). Energy per op lives in
//! [`pim_energy::EnergyParams`]; this crate is about *time*.
//!
//! # Example
//!
//! ```
//! use pim_cpusim::{EngineTiming, OpMix};
//!
//! let cpu = EngineTiming::soc_cpu();
//! let pim = EngineTiming::pim_core();
//! let mix = OpMix::scalar(1_000_000);
//! // The OoO CPU retires scalar work faster than the 1-wide PIM core...
//! assert!(cpu.execute_ps(&mix) < pim.execute_ps(&mix));
//! // ...but the PIM core exposes more of each miss's latency.
//! assert!(pim.exposed_stall_ps(100_000) > cpu.exposed_stall_ps(100_000));
//! ```

use pim_energy::Engine;
use pim_memsim::Ps;

/// A bag of retired operations, by class.
///
/// Kernels report the work they perform through an `OpMix`; the engine
/// model turns it into cycles. Classes follow [`pim_energy::OpClass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpMix {
    /// Scalar ALU/logic/address operations.
    pub scalar: u64,
    /// SIMD operations (each processes up to 4 lanes, §3.3).
    pub simd: u64,
    /// Integer multiplies / MACs.
    pub mul: u64,
    /// Branches.
    pub branch: u64,
}

impl OpMix {
    /// A mix of only scalar ops.
    pub fn scalar(n: u64) -> Self {
        Self { scalar: n, ..Self::default() }
    }

    /// A mix of only SIMD ops.
    pub fn simd(n: u64) -> Self {
        Self { simd: n, ..Self::default() }
    }

    /// A mix of only multiplies.
    pub fn mul(n: u64) -> Self {
        Self { mul: n, ..Self::default() }
    }

    /// A mix of only branches.
    pub fn branch(n: u64) -> Self {
        Self { branch: n, ..Self::default() }
    }

    /// Total retired operations.
    pub fn total(&self) -> u64 {
        self.scalar + self.simd + self.mul + self.branch
    }

    /// Merge another mix into this one.
    pub fn merge(&mut self, other: &OpMix) {
        self.scalar += other.scalar;
        self.simd += other.simd;
        self.mul += other.mul;
        self.branch += other.branch;
    }
}

impl core::ops::AddAssign for OpMix {
    fn add_assign(&mut self, rhs: Self) {
        self.merge(&rhs);
    }
}

/// Timing personality of a compute engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineTiming {
    /// Which engine this models (drives energy pricing downstream).
    pub engine: Engine,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Sustained scalar ops per cycle.
    pub scalar_ipc: f64,
    /// Sustained SIMD ops per cycle.
    pub simd_ipc: f64,
    /// Cycles per integer multiply (pipelined engines still sustain < 1,
    /// expressed as ops/cycle here).
    pub mul_ipc: f64,
    /// Fraction of memory latency hidden by out-of-order execution,
    /// prefetching, or decoupled streaming, in `[0, 1)`.
    pub mem_overlap: f64,
}

impl EngineTiming {
    /// The SoC's out-of-order core (Table 1: 4 cores, 8-wide issue, 2 GHz).
    ///
    /// Sustained IPC on the paper's memory-intensive kernels is far below
    /// peak issue width; 2.0 scalar IPC is representative for a mobile OoO.
    pub fn soc_cpu() -> Self {
        Self {
            engine: Engine::SocCpu,
            freq_ghz: 2.0,
            scalar_ipc: 2.0,
            simd_ipc: 1.0,
            mul_ipc: 1.0,
            mem_overlap: 0.60,
        }
    }

    /// The PIM core: 1-wide in-order with a 4-wide SIMD unit (§3.3), at the
    /// Cortex-R8's 1.5 GHz. No aggressive ILP, so less latency hiding — but
    /// the latency it must hide (vault-local) is small.
    pub fn pim_core() -> Self {
        Self {
            engine: Engine::PimCore,
            freq_ghz: 1.5,
            scalar_ipc: 1.0,
            simd_ipc: 1.0,
            mul_ipc: 1.0, // single-cycle MAC, as on the Cortex-R8
            mem_overlap: 0.30,
        }
    }

    /// A cluster of `n` PIM cores working data-parallel, one per vault
    /// (Table 1 places a PIM core in *each* vault; the paper's PIM-Core
    /// results implicitly benefit from this parallelism). Throughput
    /// scales with the cluster size; per-op energy does not change, so
    /// energy results are identical to the single-core model.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn pim_core_cluster(n: usize) -> Self {
        assert!(n > 0, "cluster must have at least one core");
        let base = Self::pim_core();
        Self {
            scalar_ipc: base.scalar_ipc * n as f64,
            simd_ipc: base.simd_ipc * n as f64,
            mul_ipc: base.mul_ipc * n as f64,
            // More outstanding misses across cores hide more latency.
            mem_overlap: (base.mem_overlap + 0.05 * (n as f64).log2()).min(0.85),
            ..base
        }
    }

    /// A fixed-function PIM accelerator: four in-memory logic units
    /// (§4.2.2), each retiring one fused op per cycle, with decoupled
    /// streaming access that hides most memory latency.
    pub fn pim_accel() -> Self {
        Self {
            engine: Engine::PimAccel,
            freq_ghz: 1.0,
            scalar_ipc: 4.0,
            simd_ipc: 4.0,
            mul_ipc: 4.0,
            mem_overlap: 0.85,
        }
    }

    /// On-SoC codec hardware (the §6.3/§7.3 baseline): deeply pipelined
    /// fixed-function datapaths with large SRAM line buffers.
    pub fn codec_hw() -> Self {
        Self {
            engine: Engine::CodecHw,
            freq_ghz: 0.8,
            scalar_ipc: 8.0,
            simd_ipc: 8.0,
            mul_ipc: 8.0,
            mem_overlap: 0.90,
        }
    }

    /// Look up the default timing for an engine kind.
    pub fn for_engine(engine: Engine) -> Self {
        match engine {
            Engine::SocCpu => Self::soc_cpu(),
            Engine::PimCore => Self::pim_core(),
            Engine::PimAccel => Self::pim_accel(),
            Engine::CodecHw => Self::codec_hw(),
        }
    }

    /// Short human-readable label for the modeled engine (used as a trace
    /// track name).
    pub fn label(&self) -> &'static str {
        match self.engine {
            Engine::SocCpu => "cpu",
            Engine::PimCore => "pim-core",
            Engine::PimAccel => "pim-accel",
            Engine::CodecHw => "codec-hw",
        }
    }

    /// Clock period in ps.
    pub fn period_ps(&self) -> Ps {
        pim_memsim::period_ps(self.freq_ghz)
    }

    /// Cycles to execute an op mix (compute only; no memory stalls).
    pub fn execute_cycles(&self, mix: &OpMix) -> u64 {
        let c = mix.scalar as f64 / self.scalar_ipc
            + mix.simd as f64 / self.simd_ipc
            + mix.mul as f64 / self.mul_ipc
            + mix.branch as f64 / self.scalar_ipc;
        c.ceil() as u64
    }

    /// Time to execute an op mix, in ps.
    pub fn execute_ps(&self, mix: &OpMix) -> Ps {
        self.execute_cycles(mix) * self.period_ps()
    }

    /// Portion of a memory access's latency that stalls this engine, in ps.
    pub fn exposed_stall_ps(&self, raw_latency_ps: Ps) -> Ps {
        ((raw_latency_ps as f64) * (1.0 - self.mem_overlap)).round() as Ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opmix_builders_and_total() {
        let mut m = OpMix::scalar(10);
        m += OpMix::simd(5);
        m += OpMix::mul(2);
        m += OpMix::branch(3);
        assert_eq!(m.total(), 20);
        assert_eq!(m.scalar, 10);
    }

    #[test]
    fn cpu_faster_than_pim_core_on_scalar_work() {
        let mix = OpMix::scalar(1_000_000);
        let cpu = EngineTiming::soc_cpu().execute_ps(&mix);
        let pim = EngineTiming::pim_core().execute_ps(&mix);
        assert!(cpu < pim, "cpu {cpu} vs pim {pim}");
    }

    #[test]
    fn simd_closes_the_gap_for_data_parallel_work() {
        // 4-wide SIMD on the PIM core: 1M lanes = 250k SIMD ops.
        let lanes = 1_000_000u64;
        let pim = EngineTiming::pim_core().execute_ps(&OpMix::simd(lanes / 4));
        let cpu_scalar = EngineTiming::soc_cpu().execute_ps(&OpMix::scalar(lanes));
        assert!(pim < cpu_scalar);
    }

    #[test]
    fn accel_has_highest_throughput() {
        let mix = OpMix::scalar(1_000_000);
        let acc = EngineTiming::pim_accel().execute_ps(&mix);
        let pim = EngineTiming::pim_core().execute_ps(&mix);
        let cpu = EngineTiming::soc_cpu().execute_ps(&mix);
        assert!(acc < pim);
        assert!(acc <= cpu);
    }

    #[test]
    fn ooo_cpu_hides_more_latency_than_inorder_pim() {
        let cpu = EngineTiming::soc_cpu().exposed_stall_ps(100_000);
        let pim = EngineTiming::pim_core().exposed_stall_ps(100_000);
        assert!(cpu < pim);
    }

    #[test]
    fn for_engine_roundtrip() {
        for e in [Engine::SocCpu, Engine::PimCore, Engine::PimAccel, Engine::CodecHw] {
            assert_eq!(EngineTiming::for_engine(e).engine, e);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = [Engine::SocCpu, Engine::PimCore, Engine::PimAccel, Engine::CodecHw]
            .map(|e| EngineTiming::for_engine(e).label())
            .to_vec();
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn empty_mix_is_free() {
        assert_eq!(EngineTiming::soc_cpu().execute_cycles(&OpMix::default()), 0);
    }

    #[test]
    fn period_matches_frequency() {
        assert_eq!(EngineTiming::soc_cpu().period_ps(), 500);
    }
}
