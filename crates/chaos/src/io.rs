//! `Read`/`Write` wrappers that apply a [`ChaosPlan`] to an inner stream.
//!
//! The wrappers are transparent when the plan's config is
//! [`ChaosConfig::none()`]. Fault semantics:
//!
//! - **Short reads/writes** are legal `Read`/`Write` behaviour; correct
//!   callers loop and lose nothing.
//! - **Torn writes** land a strict prefix of the buffer on the inner stream
//!   and then fail the call — the caller cannot tell how much (if anything)
//!   was written, exactly like a process death or connection loss mid-write.
//! - **Disk-full / connection-reset** onsets are permanent for the life of
//!   the plan; recovery requires a new file/connection (and thus a new plan).

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::plan::{ChaosConfig, ChaosPlan, ReadEvent, WriteEvent};

fn nap(plan: &ChaosPlan) {
    if let Some(d) = plan.op_delay() {
        std::thread::sleep(d);
    }
}

/// A fault-injecting reader.
#[derive(Debug)]
pub struct ChaosReader<R> {
    inner: R,
    plan: ChaosPlan,
}

impl<R: Read> ChaosReader<R> {
    pub fn new(inner: R, plan: ChaosPlan) -> Self {
        Self { inner, plan }
    }

    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        nap(&self.plan);
        match self.plan.read_event(buf.len()) {
            ReadEvent::Pass => self.inner.read(buf),
            ReadEvent::Short { max } => self.inner.read(&mut buf[..max]),
            ReadEvent::Fault(e) => Err(e),
        }
    }
}

/// A fault-injecting writer.
#[derive(Debug)]
pub struct ChaosWriter<W> {
    inner: W,
    plan: ChaosPlan,
}

impl<W: Write> ChaosWriter<W> {
    pub fn new(inner: W, plan: ChaosPlan) -> Self {
        Self { inner, plan }
    }

    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }

    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        nap(&self.plan);
        match self.plan.write_event(buf.len()) {
            WriteEvent::Pass { keep } => {
                let n = self.inner.write(&buf[..keep])?;
                self.plan.account_written(n);
                Ok(n)
            }
            WriteEvent::Zero => Ok(0),
            WriteEvent::Torn { keep } => {
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                    self.plan.account_written(keep);
                    let _ = self.inner.flush();
                }
                Err(crate::plan::torn_error())
            }
            WriteEvent::Fault(e) => Err(e),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A fault-injecting bidirectional stream (e.g. an in-memory duplex used in
/// tests, or any `Read + Write` transport). Read and write directions
/// consume independent forked plans so one direction's draw count never
/// perturbs the other's schedule.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    read_plan: ChaosPlan,
    write_plan: ChaosPlan,
}

impl<S> ChaosStream<S> {
    /// Wrap `inner`, deriving per-direction plans from `(cfg, seed)`.
    pub fn new(inner: S, cfg: ChaosConfig, seed: u64) -> Self {
        Self {
            inner,
            read_plan: ChaosPlan::fork(cfg, seed, 1),
            write_plan: ChaosPlan::fork(cfg, seed, 2),
        }
    }

    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        nap(&self.read_plan);
        match self.read_plan.read_event(buf.len()) {
            ReadEvent::Pass => self.inner.read(buf),
            ReadEvent::Short { max } => self.inner.read(&mut buf[..max]),
            ReadEvent::Fault(e) => Err(e),
        }
    }
}

impl<S: Read + Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        nap(&self.write_plan);
        match self.write_plan.write_event(buf.len()) {
            WriteEvent::Pass { keep } => {
                let n = self.inner.write(&buf[..keep])?;
                self.write_plan.account_written(n);
                Ok(n)
            }
            WriteEvent::Zero => Ok(0),
            WriteEvent::Torn { keep } => {
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                    self.write_plan.account_written(keep);
                    let _ = self.inner.flush();
                }
                Err(crate::plan::torn_error())
            }
            WriteEvent::Fault(e) => Err(e),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A fault-injecting append-only file, for journal-style sinks. Exposes the
/// `sync_data`/`sync_all` surface of [`File`] so durability policies work
/// through the wrapper (syncs are forwarded un-faulted: the chaos layer
/// models lost *writes*, and a sync that "succeeds" after a torn write is
/// precisely the dangerous schedule worth testing).
#[derive(Debug)]
pub struct ChaosFile {
    inner: ChaosWriter<File>,
}

impl ChaosFile {
    /// Create (truncate) `path` and wrap it in `plan`.
    pub fn create(path: &Path, plan: ChaosPlan) -> io::Result<Self> {
        Ok(Self {
            inner: ChaosWriter::new(File::create(path)?, plan),
        })
    }

    /// Open `path` for appending and wrap it in `plan`.
    pub fn append(path: &Path, plan: ChaosPlan) -> io::Result<Self> {
        let file = File::options().append(true).open(path)?;
        Ok(Self {
            inner: ChaosWriter::new(file, plan),
        })
    }

    /// Wrap an already-open file.
    pub fn from_file(file: File, plan: ChaosPlan) -> Self {
        Self {
            inner: ChaosWriter::new(file, plan),
        }
    }

    pub fn sync_data(&mut self) -> io::Result<()> {
        self.inner.get_mut().sync_data()
    }

    pub fn sync_all(&mut self) -> io::Result<()> {
        self.inner.get_mut().sync_all()
    }
}

impl Write for ChaosFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::is_disk_full;

    /// Write `lines` through a chaos writer with a caller that retries
    /// transient faults a bounded number of times per line, then read the
    /// buffer back. Returns (surviving bytes, lines fully acknowledged).
    fn push_lines(cfg: ChaosConfig, seed: u64, lines: usize) -> (Vec<u8>, usize) {
        let mut w = ChaosWriter::new(Vec::new(), ChaosPlan::new(cfg, seed));
        let mut acked = 0;
        // After a torn line, isolate the stranded fragment behind a guard
        // newline before the next record (the hardened journal writer does
        // the same).
        let mut dirty = false;
        'line: for i in 0..lines {
            let mut line = String::new();
            if dirty {
                line.push('\n');
            }
            line.push_str(&format!("record-{i:04}\n"));
            let buf = line.as_bytes();
            let mut off = 0;
            let mut retries = 0;
            while off < buf.len() {
                match w.write(&buf[off..]) {
                    Ok(0) => retries += 1,
                    Ok(n) => {
                        off += n;
                        retries = 0;
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
                        ) =>
                    {
                        retries += 1;
                    }
                    Err(_) => {
                        dirty = true; // torn: give up on this line
                        continue 'line;
                    }
                }
                if retries > 16 {
                    dirty = true;
                    continue 'line;
                }
            }
            dirty = false;
            acked += 1;
        }
        (w.into_inner(), acked)
    }

    #[test]
    fn clean_config_round_trips_bytes() {
        let (bytes, acked) = push_lines(ChaosConfig::none(), 1, 50);
        assert_eq!(acked, 50);
        assert_eq!(bytes.len(), 50 * "record-0000\n".len());
    }

    #[test]
    fn retryable_noise_loses_nothing() {
        let (bytes, acked) = push_lines(ChaosConfig::interrupts(), 3, 50);
        assert_eq!(acked, 50, "retry loop should complete every line");
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 50);
    }

    #[test]
    fn torn_writes_leave_partial_lines_but_acked_lines_are_intact() {
        let mut torn_seen = false;
        for seed in 0..32 {
            let (bytes, acked) = push_lines(ChaosConfig::torn_writes(), seed, 40);
            let text = String::from_utf8_lossy(&bytes);
            // Every fully-acked line must be present and intact.
            let complete: Vec<&str> = text.split('\n').collect();
            let intact = complete
                .iter()
                .filter(|l| l.len() == "record-0000".len() && l.starts_with("record-"))
                .count();
            assert!(
                intact >= acked,
                "seed {seed}: {intact} intact lines < {acked} acked"
            );
            if acked < 40 {
                torn_seen = true;
            }
        }
        assert!(torn_seen, "torn-write family never tore a line in 32 seeds");
    }

    #[test]
    fn short_reads_deliver_all_bytes_to_looping_readers() {
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        for seed in 0..16 {
            let mut r = ChaosReader::new(
                payload.as_slice(),
                ChaosPlan::new(ChaosConfig::short_reads(), seed),
            );
            let mut out = Vec::new();
            let mut buf = [0u8; 256];
            loop {
                match r.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => out.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            assert_eq!(out, payload, "seed {seed}");
        }
    }

    #[test]
    fn disk_full_file_rejects_writes_after_onset() {
        let dir = std::env::temp_dir().join(format!("pim-chaos-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("full.jsonl");
        let mut f =
            ChaosFile::create(&path, ChaosPlan::new(ChaosConfig::disk_full(32), 9)).unwrap();
        let mut wrote = 0usize;
        let mut full = false;
        for _ in 0..20 {
            match f.write(b"0123456789abcdef") {
                Ok(n) => wrote += n,
                Err(e) => {
                    assert!(is_disk_full(&e));
                    full = true;
                    break;
                }
            }
        }
        assert!(full, "disk never filled");
        assert!(wrote >= 32, "onset before budget consumed");
        f.sync_all().unwrap(); // syncs still work on a full disk
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_reset_kills_both_directions() {
        struct Duplex(Vec<u8>);
        impl Read for Duplex {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let n = buf.len().min(self.0.len());
                buf[..n].copy_from_slice(&self.0[..n]);
                self.0.drain(..n);
                Ok(n)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut s = ChaosStream::new(Duplex(Vec::new()), ChaosConfig::reset_between(4, 8), 21);
        let mut reset = false;
        for _ in 0..32 {
            if s.write(b"ping\n").is_err() {
                reset = true;
                break;
            }
        }
        assert!(reset, "write direction never reset");
        // Read direction's independent plan also trips (its own drawn onset).
        let mut buf = [0u8; 8];
        let mut read_reset = false;
        for _ in 0..32 {
            if s.read(&mut buf).is_err() {
                read_reset = true;
                break;
            }
        }
        assert!(read_reset, "read direction never reset");
    }
}
