//! Seeded, deterministic fault schedules for the chaos I/O wrappers.
//!
//! A [`ChaosConfig`] describes *rates and onsets* (probability of a torn
//! write, byte budget before the disk "fills", ...); a [`ChaosPlan`] binds a
//! config to a SplitMix64 seed and deals out one [`ReadEvent`]/[`WriteEvent`]
//! per I/O call, in call order. Two plans built from the same `(config,
//! seed)` deal identical event sequences, which is what makes a chaos run
//! replayable: the fault schedule is part of the experiment input, exactly
//! like `pim_faults::FaultPlan` is for simulated hardware faults.

use std::io;
use std::time::Duration;

use pim_faults::SplitMix64;

/// Rates and onsets for injected I/O faults. All fields are plain data so
/// configs can be built inline in tests; `ChaosConfig::none()` disables
/// everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability an op fails with `ErrorKind::Interrupted` (retryable).
    pub interrupt: f64,
    /// Probability an op fails with `ErrorKind::WouldBlock` (retryable).
    pub would_block: f64,
    /// Probability a write returns `Ok(0)` (maps to `WriteZero` in
    /// `write_all`-style loops; retryable here because the injected
    /// condition is transient).
    pub write_zero: f64,
    /// Probability a write is *torn*: a strict prefix of the buffer reaches
    /// the inner writer and the call still fails with `BrokenPipe`. Models a
    /// process or connection dying mid-write.
    pub torn_write: f64,
    /// Probability a write is short: only a prefix is accepted and reported.
    /// Legal `Write` behaviour that callers must loop over.
    pub short_write: f64,
    /// Probability a read is truncated to a random prefix of the requested
    /// buffer. Legal `Read` behaviour that callers must loop over.
    pub short_read: f64,
    /// Once this many bytes have been written through the wrapper, every
    /// subsequent write fails with `ErrorKind::StorageFull` (ENOSPC-style).
    /// Permanent for the life of the plan.
    pub disk_full_after: Option<u64>,
    /// Reset the "connection" after N total ops, where N is drawn uniformly
    /// from `[lo, hi)` at plan construction. Every op after the onset fails
    /// with `ErrorKind::ConnectionReset`. Permanent for the life of the
    /// plan — a reconnecting client gets a fresh plan and a fresh draw.
    pub reset_ops: Option<(u64, u64)>,
    /// Optional per-op latency injected by the wrappers (slow-peer model).
    pub op_delay: Option<Duration>,
    /// Progress guarantee: after this many *consecutive* retryable faults
    /// (interrupt / would-block / write-zero / torn write) the next op is
    /// forced through clean. Keeps bounded-retry callers live under high
    /// fault rates. Zero means "no cap" (only sensible in targeted tests).
    pub max_consecutive: u32,
}

impl ChaosConfig {
    /// No faults at all; wrappers become transparent.
    pub fn none() -> Self {
        Self {
            interrupt: 0.0,
            would_block: 0.0,
            write_zero: 0.0,
            torn_write: 0.0,
            short_write: 0.0,
            short_read: 0.0,
            disk_full_after: None,
            reset_ops: None,
            op_delay: None,
            max_consecutive: 4,
        }
    }

    /// Torn-write family: prefixes of records reach the device and the call
    /// fails; plus background short/interrupted writes.
    pub fn torn_writes() -> Self {
        Self {
            torn_write: 0.12,
            short_write: 0.20,
            interrupt: 0.10,
            ..Self::none()
        }
    }

    /// Short-read family: reads come back truncated, with occasional
    /// `Interrupted` noise. Nothing is lost; callers must loop.
    pub fn short_reads() -> Self {
        Self {
            short_read: 0.45,
            interrupt: 0.10,
            ..Self::none()
        }
    }

    /// Retryable-noise family: `Interrupted`/`WouldBlock`/`Ok(0)` storms
    /// with no data loss for callers that retry.
    pub fn interrupts() -> Self {
        Self {
            interrupt: 0.30,
            would_block: 0.15,
            write_zero: 0.10,
            ..Self::none()
        }
    }

    /// Disk-full family: writes succeed until `bytes` have passed through,
    /// then fail permanently with `StorageFull`.
    pub fn disk_full(bytes: u64) -> Self {
        Self {
            disk_full_after: Some(bytes),
            ..Self::none()
        }
    }

    /// Reset family: the stream dies after a seed-drawn number of ops in
    /// `[lo, hi)` and stays dead.
    pub fn reset_between(lo: u64, hi: u64) -> Self {
        Self {
            reset_ops: Some((lo, hi)),
            ..Self::none()
        }
    }
}

/// What the plan decided for one read call.
#[derive(Debug)]
pub enum ReadEvent {
    /// Forward the read untouched.
    Pass,
    /// Truncate the destination buffer to `max` bytes before forwarding.
    Short { max: usize },
    /// Fail the call without touching the inner reader.
    Fault(io::Error),
}

/// What the plan decided for one write call.
#[derive(Debug)]
pub enum WriteEvent {
    /// Forward `keep` bytes (`keep == len` is a full write; less is a legal
    /// short write the caller must loop over).
    Pass { keep: usize },
    /// Return `Ok(0)` without touching the inner writer.
    Zero,
    /// Write `keep` bytes (a strict prefix) to the inner writer, then fail
    /// the call with `BrokenPipe`. The caller believes nothing landed.
    Torn { keep: usize },
    /// Fail the call without touching the inner writer.
    Fault(io::Error),
}

/// A seeded stream of I/O fault decisions. See the module docs.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    cfg: ChaosConfig,
    rng: SplitMix64,
    ops: u64,
    written: u64,
    consecutive: u32,
    reset_at: Option<u64>,
}

/// The error injected for a torn write.
pub fn torn_error() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "chaos: torn write")
}

/// The error injected once the disk-full onset has passed.
pub fn disk_full_error() -> io::Error {
    io::Error::new(io::ErrorKind::StorageFull, "chaos: disk full (ENOSPC)")
}

/// The error injected once the connection-reset onset has passed.
pub fn reset_error() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "chaos: connection reset")
}

/// True if `e` is the ENOSPC-style condition the chaos layer injects (or a
/// real one from the OS).
pub fn is_disk_full(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::StorageFull || e.raw_os_error() == Some(28)
}

impl ChaosPlan {
    /// Bind a config to a seed.
    pub fn new(cfg: ChaosConfig, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let reset_at = cfg.reset_ops.map(|(lo, hi)| {
            if hi > lo {
                rng.next_range(lo, hi)
            } else {
                lo
            }
        });
        Self {
            cfg,
            rng,
            ops: 0,
            written: 0,
            consecutive: 0,
            reset_at,
        }
    }

    /// Derive an independent sub-plan (e.g. separate read/write directions
    /// of one stream) so the two directions consume disjoint draw streams.
    pub fn fork(cfg: ChaosConfig, seed: u64, salt: u64) -> Self {
        Self::new(cfg, seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Total ops (reads + writes) this plan has adjudicated.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Bytes acknowledged as written through the paired writer; drives the
    /// disk-full onset. Called by `ChaosWriter` after a successful write.
    pub fn account_written(&mut self, n: usize) {
        self.written = self.written.saturating_add(n as u64);
    }

    /// Per-op latency from the config (applied by the wrappers).
    pub fn op_delay(&self) -> Option<Duration> {
        self.cfg.op_delay
    }

    fn reset_tripped(&self) -> bool {
        matches!(self.reset_at, Some(at) if self.ops >= at)
    }

    fn disk_full_tripped(&self) -> bool {
        matches!(self.cfg.disk_full_after, Some(at) if self.written >= at)
    }

    /// True once the cap on consecutive retryable faults forces the next op
    /// through clean.
    fn force_clean(&mut self) -> bool {
        if self.cfg.max_consecutive > 0 && self.consecutive >= self.cfg.max_consecutive {
            self.consecutive = 0;
            return true;
        }
        false
    }

    /// Decide one read of up to `len` bytes.
    pub fn read_event(&mut self, len: usize) -> ReadEvent {
        if self.reset_tripped() {
            return ReadEvent::Fault(reset_error());
        }
        self.ops += 1;
        if self.force_clean() {
            return ReadEvent::Pass;
        }
        if self.rng.chance(self.cfg.interrupt) {
            self.consecutive += 1;
            return ReadEvent::Fault(io::Error::new(
                io::ErrorKind::Interrupted,
                "chaos: interrupted read",
            ));
        }
        if self.rng.chance(self.cfg.would_block) {
            self.consecutive += 1;
            return ReadEvent::Fault(io::Error::new(
                io::ErrorKind::WouldBlock,
                "chaos: read would block",
            ));
        }
        if len > 1 && self.rng.chance(self.cfg.short_read) {
            self.consecutive = 0;
            let max = self.rng.next_range(1, len as u64) as usize;
            return ReadEvent::Short { max };
        }
        self.consecutive = 0;
        ReadEvent::Pass
    }

    /// Decide one write of `len` bytes (`len > 0`).
    pub fn write_event(&mut self, len: usize) -> WriteEvent {
        if self.disk_full_tripped() {
            return WriteEvent::Fault(disk_full_error());
        }
        if self.reset_tripped() {
            return WriteEvent::Fault(reset_error());
        }
        self.ops += 1;
        if self.force_clean() {
            return WriteEvent::Pass { keep: len };
        }
        if self.rng.chance(self.cfg.interrupt) {
            self.consecutive += 1;
            return WriteEvent::Fault(io::Error::new(
                io::ErrorKind::Interrupted,
                "chaos: interrupted write",
            ));
        }
        if self.rng.chance(self.cfg.would_block) {
            self.consecutive += 1;
            return WriteEvent::Fault(io::Error::new(
                io::ErrorKind::WouldBlock,
                "chaos: write would block",
            ));
        }
        if self.rng.chance(self.cfg.write_zero) {
            self.consecutive += 1;
            return WriteEvent::Zero;
        }
        if self.rng.chance(self.cfg.torn_write) {
            self.consecutive += 1;
            let keep = if len > 1 {
                self.rng.next_below(len as u64) as usize
            } else {
                0
            };
            return WriteEvent::Torn { keep };
        }
        if len > 1 && self.rng.chance(self.cfg.short_write) {
            self.consecutive = 0;
            let keep = self.rng.next_range(1, len as u64) as usize;
            return WriteEvent::Pass { keep };
        }
        self.consecutive = 0;
        WriteEvent::Pass { keep: len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event_tag(e: &WriteEvent) -> String {
        match e {
            WriteEvent::Pass { keep } => format!("pass:{keep}"),
            WriteEvent::Zero => "zero".into(),
            WriteEvent::Torn { keep } => format!("torn:{keep}"),
            WriteEvent::Fault(err) => format!("fault:{:?}", err.kind()),
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ChaosConfig {
            interrupt: 0.2,
            torn_write: 0.2,
            short_write: 0.2,
            write_zero: 0.1,
            ..ChaosConfig::none()
        };
        let mut a = ChaosPlan::new(cfg, 99);
        let mut b = ChaosPlan::new(cfg, 99);
        for _ in 0..500 {
            assert_eq!(event_tag(&a.write_event(64)), event_tag(&b.write_event(64)));
        }
    }

    #[test]
    fn forked_plans_diverge() {
        let cfg = ChaosConfig {
            interrupt: 0.5,
            ..ChaosConfig::none()
        };
        let mut r = ChaosPlan::fork(cfg, 7, 1);
        let mut w = ChaosPlan::fork(cfg, 7, 2);
        let seq_r: Vec<_> = (0..64).map(|_| event_tag(&r.write_event(8))).collect();
        let seq_w: Vec<_> = (0..64).map(|_| event_tag(&w.write_event(8))).collect();
        assert_ne!(seq_r, seq_w);
    }

    #[test]
    fn consecutive_fault_cap_guarantees_progress() {
        let cfg = ChaosConfig {
            interrupt: 1.0, // every draw wants to fault
            max_consecutive: 3,
            ..ChaosConfig::none()
        };
        let mut p = ChaosPlan::new(cfg, 5);
        let mut clean = 0;
        for _ in 0..100 {
            if matches!(p.write_event(16), WriteEvent::Pass { keep: 16 }) {
                clean += 1;
            }
        }
        // One forced-clean op per (cap + 1) ops.
        assert_eq!(clean, 25);
    }

    #[test]
    fn disk_full_onset_is_permanent() {
        let mut p = ChaosPlan::new(ChaosConfig::disk_full(10), 1);
        assert!(matches!(p.write_event(8), WriteEvent::Pass { keep: 8 }));
        p.account_written(8);
        assert!(matches!(p.write_event(8), WriteEvent::Pass { keep: 8 }));
        p.account_written(8); // 16 >= 10: full from here on
        for _ in 0..10 {
            match p.write_event(8) {
                WriteEvent::Fault(e) => assert!(is_disk_full(&e)),
                other => panic!("expected disk-full fault, got {other:?}"),
            }
        }
    }

    #[test]
    fn reset_onset_is_drawn_from_range_and_permanent() {
        let cfg = ChaosConfig::reset_between(3, 6);
        let mut p = ChaosPlan::new(cfg, 11);
        let mut ok_ops = 0u64;
        loop {
            match p.read_event(32) {
                ReadEvent::Fault(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
                    break;
                }
                _ => ok_ops += 1,
            }
            assert!(ok_ops < 10, "reset never tripped");
        }
        assert!((3..6).contains(&ok_ops), "onset {ok_ops} outside [3,6)");
        for _ in 0..5 {
            assert!(matches!(p.read_event(32), ReadEvent::Fault(_)));
            assert!(matches!(p.write_event(32), WriteEvent::Fault(_)));
        }
    }

    #[test]
    fn none_config_is_transparent() {
        let mut p = ChaosPlan::new(ChaosConfig::none(), 123);
        for _ in 0..100 {
            assert!(matches!(p.read_event(64), ReadEvent::Pass));
            assert!(matches!(p.write_event(64), WriteEvent::Pass { keep: 64 }));
        }
    }

    #[test]
    fn short_events_stay_in_bounds() {
        let cfg = ChaosConfig {
            short_read: 1.0,
            short_write: 1.0,
            max_consecutive: 0,
            ..ChaosConfig::none()
        };
        let mut p = ChaosPlan::new(cfg, 77);
        for _ in 0..200 {
            match p.read_event(64) {
                ReadEvent::Short { max } => assert!((1..64).contains(&max)),
                ReadEvent::Pass => {}
                e => panic!("unexpected {e:?}"),
            }
            match p.write_event(64) {
                WriteEvent::Pass { keep } => assert!((1..=64).contains(&keep)),
                e => panic!("unexpected {e:?}"),
            }
        }
    }
}
