//! # pim-chaos — deterministic chaos I/O layer
//!
//! `pim-faults` injects *simulated hardware* faults (bit flips, vault
//! failures); this crate injects *real I/O* faults at the `Read`/`Write`
//! boundary: torn and short writes, short reads, `Interrupted`/`WouldBlock`
//! noise, `Ok(0)` writes, ENOSPC-style disk-full onsets, per-op latency and
//! mid-stream connection resets. Every fault is dealt by a seeded
//! [`ChaosPlan`], so a failing schedule is a reproducible test input: rerun
//! the same seed, get the same faults.
//!
//! The wrappers are used by `pim-harness` (journal durability testing) and
//! `pim-serve` (protocol/client/server hardening); the chaos matrices in
//! those crates run ≥64 seeds × 4 fault families and assert bit-identical
//! recovery on every survivable schedule.
//!
//! ```
//! use std::io::Write;
//! use pim_chaos::{ChaosConfig, ChaosPlan, ChaosWriter};
//!
//! let plan = ChaosPlan::new(ChaosConfig::torn_writes(), 42);
//! let mut w = ChaosWriter::new(Vec::new(), plan);
//! // Writes may now tear, shorten, or fail with retryable errors —
//! // deterministically for seed 42.
//! let _ = w.write(b"record\n");
//! ```

pub mod io;
pub mod plan;

pub use crate::io::{ChaosFile, ChaosReader, ChaosStream, ChaosWriter};
pub use crate::plan::{
    disk_full_error, is_disk_full, reset_error, torn_error, ChaosConfig, ChaosPlan, ReadEvent,
    WriteEvent,
};
