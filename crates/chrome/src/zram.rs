//! ZRAM: the DRAM-backed compressed swap pool (paper §4.3).

use std::collections::HashMap;

use crate::lzo::{compress, decompress};

/// A page identifier: (tab, page index within the tab).
pub type PageId = (u32, u32);

/// A compressed in-memory swap pool.
///
/// Chrome (via the OS) compresses inactive-tab pages into ZRAM when free
/// memory falls below a threshold and decompresses them on access,
/// avoiding disk I/O. The pool tracks cumulative swap traffic, which is
/// what Figure 4 plots.
#[derive(Debug, Default)]
pub struct ZramPool {
    pages: HashMap<PageId, Vec<u8>>,
    stored_bytes: u64,
    total_swapped_out: u64,
    total_swapped_in: u64,
}

impl ZramPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compress and store a page. Returns the compressed size.
    pub fn swap_out(&mut self, id: PageId, data: &[u8]) -> usize {
        let c = compress(data);
        let n = c.len();
        if let Some(old) = self.pages.insert(id, c) {
            self.stored_bytes -= old.len() as u64;
        }
        self.stored_bytes += n as u64;
        self.total_swapped_out += data.len() as u64;
        n
    }

    /// Remove and decompress a page. Returns `None` if absent.
    pub fn swap_in(&mut self, id: PageId) -> Option<Vec<u8>> {
        let c = self.pages.remove(&id)?;
        self.stored_bytes -= c.len() as u64;
        let data = decompress(&c).expect("pool stores only streams it created");
        self.total_swapped_in += data.len() as u64;
        Some(data)
    }

    /// Whether a page is resident in the pool.
    pub fn contains(&self, id: PageId) -> bool {
        self.pages.contains_key(&id)
    }

    /// Number of resident compressed pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Bytes of compressed data currently held.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Cumulative uncompressed bytes swapped out (Figure 4, left).
    pub fn total_swapped_out(&self) -> u64 {
        self.total_swapped_out
    }

    /// Cumulative uncompressed bytes swapped in (Figure 4, right).
    pub fn total_swapped_in(&self) -> u64 {
        self.total_swapped_in
    }

    /// Effective compression ratio of resident data (1.0 when empty).
    pub fn ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            return 1.0;
        }
        let raw = self.resident_pages() as u64 * 4096;
        raw as f64 / self.stored_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lzo::synthetic_tab_dump;

    #[test]
    fn swap_roundtrip_preserves_data() {
        let mut pool = ZramPool::new();
        let pages = synthetic_tab_dump(8, 3);
        for (i, p) in pages.iter().enumerate() {
            pool.swap_out((0, i as u32), p);
        }
        assert_eq!(pool.resident_pages(), 8);
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(pool.swap_in((0, i as u32)).unwrap(), *p);
        }
        assert_eq!(pool.resident_pages(), 0);
        assert_eq!(pool.stored_bytes(), 0);
    }

    #[test]
    fn traffic_counters_accumulate() {
        let mut pool = ZramPool::new();
        let page = vec![7u8; 4096];
        pool.swap_out((1, 1), &page);
        pool.swap_out((1, 2), &page);
        pool.swap_in((1, 1));
        assert_eq!(pool.total_swapped_out(), 8192);
        assert_eq!(pool.total_swapped_in(), 4096);
    }

    #[test]
    fn missing_page_returns_none() {
        assert!(ZramPool::new().swap_in((9, 9)).is_none());
    }

    #[test]
    fn reinsert_replaces_without_leaking() {
        let mut pool = ZramPool::new();
        let page = vec![1u8; 4096];
        pool.swap_out((0, 0), &page);
        let first = pool.stored_bytes();
        pool.swap_out((0, 0), &page);
        assert_eq!(pool.stored_bytes(), first);
        assert_eq!(pool.resident_pages(), 1);
    }

    #[test]
    fn compressible_pool_ratio_above_one() {
        let mut pool = ZramPool::new();
        for (i, p) in synthetic_tab_dump(64, 9).iter().enumerate() {
            pool.swap_out((0, i as u32), p);
        }
        assert!(pool.ratio() > 1.5, "ratio {}", pool.ratio());
    }
}
