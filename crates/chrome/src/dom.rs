//! A miniature DOM + layout engine (paper §4.1).
//!
//! Chrome parses HTML into a DOM tree, computes a layout (position and
//! size for every render object), and paints the result through Skia's
//! blitters. The §4.2 scrolling study stresses exactly this pipeline, so
//! the reproduction provides a real — if small — version of it: a typed
//! node tree, a block/inline flow layout with text wrapping, and a paint
//! pass that emits the draw commands the [`crate::blit`] blitter consumes.
//!
//! [`crate::scroll`] uses a calibrated traffic model for the Figure 1/2
//! numbers; this module backs the `scroll_dom` example-path where every
//! layout coordinate is actually computed.

use pim_core::rng::SplitMix64;

/// How a node participates in layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Display {
    /// Stacks vertically, fills the container width.
    Block,
    /// A run of text; wraps into lines.
    Text,
    /// A fixed-size replaced element (image).
    Image,
}

/// Style subset that affects layout and painting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Style {
    /// Layout mode.
    pub display: Display,
    /// Vertical padding+margin, px.
    pub spacing: u32,
    /// Font size (line height = 1.25x), px; ignored for non-text.
    pub font_px: u32,
    /// Fixed size for images, px.
    pub image: (u32, u32),
    /// Paint color (RGBA).
    pub color: u32,
}

impl Default for Style {
    fn default() -> Self {
        Self {
            display: Display::Block,
            spacing: 8,
            font_px: 14,
            image: (0, 0),
            color: 0xFF33_3333,
        }
    }
}

/// One DOM node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Element name (diagnostics only).
    pub tag: &'static str,
    /// Resolved style.
    pub style: Style,
    /// Text length in characters (for `Display::Text`).
    pub text_len: u32,
    /// Children, in document order.
    pub children: Vec<Node>,
}

impl Node {
    /// A block container.
    pub fn block(tag: &'static str, children: Vec<Node>) -> Self {
        Self { tag, style: Style::default(), text_len: 0, children }
    }

    /// A text run of `chars` characters.
    pub fn text(chars: u32, font_px: u32) -> Self {
        Self {
            tag: "#text",
            style: Style { display: Display::Text, font_px, ..Style::default() },
            text_len: chars,
            children: Vec::new(),
        }
    }

    /// An image of the given size.
    pub fn image(w: u32, h: u32) -> Self {
        Self {
            tag: "img",
            style: Style { display: Display::Image, image: (w, h), ..Style::default() },
            text_len: 0,
            children: Vec::new(),
        }
    }

    /// Total node count of the subtree.
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(Node::count).sum::<usize>()
    }
}

/// A laid-out box in page coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutBox {
    /// Page-space position and size, px.
    pub x: u32,
    /// Top edge.
    pub y: u32,
    /// Width.
    pub w: u32,
    /// Height.
    pub h: u32,
    /// What the box paints as.
    pub display: Display,
    /// Characters (text boxes) painted in this box.
    pub text_chars: u32,
    /// Paint color.
    pub color: u32,
}

/// Flow-layout a tree into boxes for a viewport `viewport_w` px wide.
///
/// Block boxes stack vertically and fill their container; text wraps at
/// ~0.55 * font_px per character; images keep their intrinsic size.
/// Returns the boxes in paint order plus the total page height.
pub fn layout(root: &Node, viewport_w: u32) -> (Vec<LayoutBox>, u32) {
    let mut boxes = Vec::with_capacity(root.count());
    let h = layout_into(root, 0, 0, viewport_w.max(1), &mut boxes);
    (boxes, h)
}

fn layout_into(node: &Node, x: u32, y: u32, w: u32, out: &mut Vec<LayoutBox>) -> u32 {
    match node.style.display {
        Display::Text => {
            let glyph_w = (node.style.font_px * 55 / 100).max(1);
            let per_line = (w / glyph_w).max(1);
            let lines = node.text_len.div_ceil(per_line).max(1);
            let line_h = node.style.font_px * 5 / 4;
            let h = lines * line_h;
            out.push(LayoutBox {
                x,
                y,
                w,
                h,
                display: Display::Text,
                text_chars: node.text_len,
                color: node.style.color,
            });
            h
        }
        Display::Image => {
            let (iw, ih) = node.style.image;
            let iw = iw.min(w);
            out.push(LayoutBox {
                x,
                y,
                w: iw,
                h: ih,
                display: Display::Image,
                text_chars: 0,
                color: node.style.color,
            });
            ih
        }
        Display::Block => {
            let pad = node.style.spacing;
            let inner_w = w.saturating_sub(2 * pad).max(1);
            let me = out.len();
            out.push(LayoutBox {
                x,
                y,
                w,
                h: 0,
                display: Display::Block,
                text_chars: 0,
                color: node.style.color,
            });
            let mut cy = y + pad;
            for child in &node.children {
                let ch = layout_into(child, x + pad, cy, inner_w, out);
                cy += ch + child.style.spacing;
            }
            let h = (cy + pad).saturating_sub(y);
            out[me].h = h;
            h
        }
    }
}

/// Generate a synthetic article-like DOM: header, paragraphs, images and
/// sidebar blocks, deterministic in `seed`.
pub fn synthetic_page(paragraphs: usize, seed: u64) -> Node {
    let mut rng = SplitMix64::new(seed);
    let mut body = Vec::new();
    body.push(Node::block("header", vec![Node::text(60, 28)]));
    for i in 0..paragraphs {
        let mut section = vec![Node::text(rng.next_range(200, 900) as u32, 14)];
        if rng.chance(0.3) {
            section.push(Node::image(
                rng.next_range(120, 480) as u32,
                rng.next_range(80, 280) as u32,
            ));
        }
        if i % 7 == 3 {
            section.push(Node::block(
                "aside",
                vec![Node::text(rng.next_range(80, 200) as u32, 12)],
            ));
        }
        body.push(Node::block("p", section));
    }
    Node::block("body", body)
}

/// The boxes intersecting the viewport `[scroll_y, scroll_y + viewport_h)`,
/// i.e. what a scroll step must repaint.
pub fn visible(boxes: &[LayoutBox], scroll_y: u32, viewport_h: u32) -> Vec<&LayoutBox> {
    boxes
        .iter()
        .filter(|b| b.y < scroll_y + viewport_h && b.y + b.h > scroll_y)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_stack_without_overlap() {
        let tree = Node::block(
            "body",
            vec![Node::text(100, 14), Node::text(100, 14), Node::image(50, 40)],
        );
        let (boxes, height) = layout(&tree, 400);
        // boxes[0] is the body; children follow in order.
        assert_eq!(boxes.len(), 4);
        for pair in boxes[1..].windows(2) {
            assert!(pair[0].y + pair[0].h <= pair[1].y, "{pair:?}");
        }
        assert!(height >= boxes.last().map(|b| b.y + b.h).unwrap_or(0) - boxes[0].y);
    }

    #[test]
    fn children_stay_inside_the_parent() {
        let tree = synthetic_page(12, 5);
        let (boxes, _) = layout(&tree, 800);
        let body = boxes[0];
        for b in &boxes[1..] {
            assert!(b.x >= body.x && b.x + b.w <= body.x + body.w, "{b:?}");
        }
    }

    #[test]
    fn narrower_viewport_makes_text_taller() {
        let tree = Node::block("body", vec![Node::text(2000, 14)]);
        let (_, wide) = layout(&tree, 1200);
        let (_, narrow) = layout(&tree, 300);
        assert!(narrow > 2 * wide, "narrow {narrow} vs wide {wide}");
    }

    #[test]
    fn images_keep_intrinsic_size_unless_clamped() {
        let tree = Node::block("body", vec![Node::image(5000, 100), Node::image(120, 90)]);
        let (boxes, _) = layout(&tree, 600);
        assert!(boxes[1].w <= 600);
        assert_eq!((boxes[2].w, boxes[2].h), (120, 90));
    }

    #[test]
    fn layout_is_deterministic() {
        let a = layout(&synthetic_page(20, 9), 800);
        let b = layout(&synthetic_page(20, 9), 800);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn visible_filters_by_scroll_window() {
        let tree = synthetic_page(40, 3);
        let (boxes, height) = layout(&tree, 800);
        assert!(height > 2000, "page should scroll: {height}");
        let top = visible(&boxes, 0, 600);
        let bottom = visible(&boxes, height - 600, 600);
        assert!(!top.is_empty() && !bottom.is_empty());
        // Scrolling far enough changes the visible set.
        let top_ids: Vec<u32> = top.iter().map(|b| b.y).collect();
        let bot_ids: Vec<u32> = bottom.iter().map(|b| b.y).collect();
        assert_ne!(top_ids, bot_ids);
    }

    #[test]
    fn node_count_counts_subtree() {
        let tree = Node::block("a", vec![Node::block("b", vec![Node::text(1, 10)])]);
        assert_eq!(tree.count(), 3);
    }
}
