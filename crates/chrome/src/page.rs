//! Synthetic web-page models for the §4.2 scrolling study.
//!
//! The paper drives real Chrome with Telemetry over six pages (Google Docs,
//! Gmail, Google Calendar, WordPress, Twitter, and an animation-heavy
//! page). We cannot run Blink/Skia, so each page is reduced to the
//! quantities that determine its scrolling energy profile: how many pixels
//! are rasterized and tiled per scroll frame, how text-heavy the raster
//! work is (alpha blending vs. copies), and how much layout/JavaScript/
//! miscellaneous-library work rides along ("Other" in Figure 1). The
//! parameters are calibrated so the CPU-only breakdown lands near the
//! paper's Figure 1/2 fractions; see `EXPERIMENTS.md`.

/// Per-frame workload parameters of one page during scrolling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageModel {
    /// Page name as in Figure 1.
    pub name: &'static str,
    /// Bytes of rasterized texture re-tiled per scroll frame.
    pub texture_bytes: u64,
    /// Bytes of raster output blitted per scroll frame.
    pub raster_bytes: u64,
    /// Fraction of raster pixels drawn with alpha blending (text-heavy
    /// pages blend more; image-heavy pages copy more).
    pub blend_fraction: f64,
    /// Streaming traffic of all other functions per frame (style, layout,
    /// paint bookkeeping, IPC, V8 heap walks...).
    pub other_bytes: u64,
    /// Compute of all other functions per frame (layout + JS dominate).
    pub other_ops: u64,
    /// Scroll frames to simulate (the paper scrolls for a few seconds at
    /// 60 FPS; a smaller steady-state sample has the same fractions).
    pub frames: usize,
    /// Resident memory footprint once loaded, for the tab-switching study.
    pub footprint_mb: u64,
}

impl PageModel {
    /// Google Docs: dense text, heavy repaint on scroll (§4.2.1's running
    /// example: texture tiling 25.7% and color blitting 19.1% of energy).
    pub fn google_docs() -> Self {
        Self {
            name: "GoogleDocs",
            texture_bytes: 1_500 << 10,
            raster_bytes: 620 << 10,
            blend_fraction: 0.65,
            other_bytes: 5_500 << 10,
            other_ops: 3_200_000,
            frames: 16,
            footprint_mb: 290,
        }
    }

    /// Gmail: mixed text/layout, more scripting.
    pub fn gmail() -> Self {
        Self {
            name: "Gmail",
            texture_bytes: 1_100 << 10,
            raster_bytes: 500 << 10,
            blend_fraction: 0.55,
            other_bytes: 5_200 << 10,
            other_ops: 4_200_000,
            frames: 16,
            footprint_mb: 310,
        }
    }

    /// Google Calendar: grid layout, moderate repaint.
    pub fn google_calendar() -> Self {
        Self {
            name: "GoogleCalendar",
            texture_bytes: 1_200 << 10,
            raster_bytes: 520 << 10,
            blend_fraction: 0.50,
            other_bytes: 5_000 << 10,
            other_ops: 3_600_000,
            frames: 16,
            footprint_mb: 260,
        }
    }

    /// WordPress: article page, image-heavy rasterization.
    pub fn wordpress() -> Self {
        Self {
            name: "WordPress",
            texture_bytes: 1_400 << 10,
            raster_bytes: 700 << 10,
            blend_fraction: 0.30,
            other_bytes: 5_600 << 10,
            other_ops: 3_000_000,
            frames: 16,
            footprint_mb: 230,
        }
    }

    /// Twitter: infinite feed, frequent new content while scrolling.
    pub fn twitter() -> Self {
        Self {
            name: "Twitter",
            texture_bytes: 1_350 << 10,
            raster_bytes: 600 << 10,
            blend_fraction: 0.55,
            other_bytes: 5_300 << 10,
            other_ops: 3_800_000,
            frames: 16,
            footprint_mb: 330,
        }
    }

    /// The animation-heavy Telemetry page: repaints nearly everything.
    pub fn animation() -> Self {
        Self {
            name: "Animation",
            texture_bytes: 2_000 << 10,
            raster_bytes: 900 << 10,
            blend_fraction: 0.40,
            other_bytes: 4_200 << 10,
            other_ops: 2_600_000,
            frames: 16,
            footprint_mb: 190,
        }
    }

    /// The six pages of Figure 1, in the paper's order.
    pub fn all() -> Vec<PageModel> {
        vec![
            Self::google_docs(),
            Self::gmail(),
            Self::google_calendar(),
            Self::wordpress(),
            Self::twitter(),
            Self::animation(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_pages_with_unique_names() {
        let pages = PageModel::all();
        assert_eq!(pages.len(), 6);
        let mut names: Vec<_> = pages.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn parameters_are_positive_and_sane() {
        for p in PageModel::all() {
            assert!(p.texture_bytes > 0 && p.raster_bytes > 0);
            assert!((0.0..=1.0).contains(&p.blend_fraction));
            assert!(p.frames > 0);
            assert!(p.footprint_mb >= 100, "{} footprint too small", p.name);
        }
    }

    #[test]
    fn animation_repaints_most_texture() {
        let max = PageModel::all().iter().map(|p| p.texture_bytes).max().unwrap();
        assert_eq!(PageModel::animation().texture_bytes, max);
    }
}
