//! DOM-backed page scrolling: layout → paint → tile, all computed for real.
//!
//! Where [`crate::scroll`] uses calibrated traffic volumes for the Figure
//! 1/2 characterization, this driver runs the §4.1 pipeline end to end on
//! the miniature engine in [`crate::dom`]: every frame scrolls the
//! viewport, repaints the visible boxes through the real [`crate::blit`]
//! blitter, and re-tiles the rasterized surface with the real 4 kB tiler —
//! the same code paths the Figure 18 kernels measure, composed.

use pim_core::{AccessKind, OpMix, SimContext, Tracked};

use crate::blit::{blit, BlitOp};
use crate::dom::{layout, synthetic_page, visible, Display, Node};
use crate::tiling::TILE_PX;

/// Result of a DOM-backed scroll run.
#[derive(Debug, Clone)]
pub struct DomScrollReport {
    /// Nodes in the document.
    pub nodes: usize,
    /// Total page height after layout, px.
    pub page_height: u32,
    /// Boxes repainted across all frames.
    pub boxes_painted: u64,
    /// Energy fractions per stage: layout / raster / tiling.
    pub fractions: Vec<(String, f64)>,
    /// Whole-run data-movement fraction.
    pub dm_fraction: f64,
}

/// Scroll a synthetic page of `paragraphs` paragraphs through a
/// `viewport_w` x `viewport_h` viewport for `frames` frames.
///
/// # Panics
///
/// Panics if the viewport is not tile-aligned (multiples of 32).
pub fn scroll_page_dom(
    ctx: &mut SimContext,
    paragraphs: usize,
    frames: usize,
    viewport_w: usize,
    viewport_h: usize,
    seed: u64,
) -> DomScrollReport {
    assert!(
        viewport_w.is_multiple_of(TILE_PX) && viewport_h.is_multiple_of(TILE_PX),
        "viewport must be tile-aligned"
    );
    let tree: Node = synthetic_page(paragraphs, seed);
    let nodes = tree.count();

    // Layout once (Blink re-lays-out only when geometry changes; scrolling
    // a static page invalidates paint, not layout).
    let (boxes, page_height) = ctx.scoped("layout", |ctx| {
        let r = layout(&tree, viewport_w as u32);
        // Tree walk + per-box arithmetic.
        ctx.ops(OpMix {
            scalar: (nodes * 40) as u64,
            mul: (nodes * 6) as u64,
            branch: (nodes * 12) as u64,
            ..OpMix::default()
        });
        r
    });

    let mut surface: Tracked<u32> = Tracked::zeroed(ctx, viewport_w * viewport_h);
    let mut tiled: Tracked<u32> = Tracked::zeroed(ctx, viewport_w * viewport_h);
    // A glyph atlas the text blitter sources from (stays cache-resident).
    let glyphs: Tracked<u32> = Tracked::zeroed(ctx, 64 * 64);

    let step = (page_height.saturating_sub(viewport_h as u32)) / frames.max(1) as u32;
    let mut boxes_painted = 0u64;

    for f in 0..frames {
        let scroll_y = f as u32 * step;
        // --- Rasterize the visible boxes (color blitting). ---
        ctx.scoped("color_blitting", |ctx| {
            for b in visible(&boxes, scroll_y, viewport_h as u32) {
                boxes_painted += 1;
                let y0 = b.y.saturating_sub(scroll_y) as usize;
                let h = (b.h as usize).min(viewport_h - y0.min(viewport_h));
                let w = (b.w as usize).min(viewport_w);
                if w == 0 || h == 0 {
                    continue;
                }
                match b.display {
                    Display::Block => {
                        // Background fill (geometry comes from layout).
                        let src: Tracked<u32> = Tracked::zeroed(ctx, w.max(1));
                        let _ = &src; // geometry-only source for fills
                        fill_rect(ctx, &mut surface, viewport_w, b.x as usize, y0, w, h, b.color);
                    }
                    Display::Text => {
                        // Blend glyph rows from the atlas over the surface.
                        let rows = h.min(viewport_h - y0);
                        for gy in 0..rows {
                            glyphs.touch_range(ctx, (gy % 64) * 64, w.min(64), AccessKind::Read);
                        }
                        blend_rows(ctx, &mut surface, viewport_w, b.x as usize, y0, w, rows, b.color);
                    }
                    Display::Image => {
                        let img: Tracked<u32> =
                            Tracked::from_vec(ctx, vec![b.color; w * h]);
                        blit(ctx, BlitOp::Copy, &img, w, &mut surface, viewport_w, b.x as usize, y0);
                    }
                }
            }
        });

        // --- Re-tile the damaged surface for the GPU (texture tiling). ---
        ctx.scoped("texture_tiling", |ctx| {
            let tiles_x = viewport_w / TILE_PX;
            for ty in 0..viewport_h / TILE_PX {
                for tx in 0..tiles_x {
                    let tile_base = (ty * tiles_x + tx) * TILE_PX * TILE_PX;
                    for y in 0..TILE_PX {
                        let s = (ty * TILE_PX + y) * viewport_w + tx * TILE_PX;
                        let row = surface.read_range(ctx, s, TILE_PX).to_vec();
                        tiled.write_range(ctx, tile_base + y * TILE_PX, TILE_PX).copy_from_slice(&row);
                        ctx.ops(OpMix { scalar: 4, simd: (TILE_PX * 4 / 16) as u64, ..OpMix::default() });
                    }
                }
            }
        });
    }

    let total = ctx.total_energy();
    let fractions = ["layout", "color_blitting", "texture_tiling"]
        .iter()
        .map(|&t| {
            let e = ctx.tag(t).map(|s| s.energy.total_pj()).unwrap_or(0.0);
            (t.to_string(), e / total.total_pj())
        })
        .collect();
    DomScrollReport {
        nodes,
        page_height,
        boxes_painted,
        fractions,
        dm_fraction: total.data_movement_fraction(),
    }
}

#[allow(clippy::too_many_arguments)]
fn fill_rect(
    ctx: &mut SimContext,
    surface: &mut Tracked<u32>,
    stride: usize,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    color: u32,
) {
    for row in y..(y + h).min(surface.len() / stride) {
        let x = x.min(stride - 1);
        let w = w.min(stride - x);
        surface.write_range(ctx, row * stride + x, w).fill(color);
        ctx.ops(OpMix { scalar: 2, simd: (w * 4 / 16).max(1) as u64, ..OpMix::default() });
    }
}

#[allow(clippy::too_many_arguments)]
fn blend_rows(
    ctx: &mut SimContext,
    surface: &mut Tracked<u32>,
    stride: usize,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    color: u32,
) {
    let src = (color & 0x00FF_FFFF) | 0x8000_0000; // half-alpha glyph color
    for row in y..(y + h).min(surface.len() / stride) {
        let x = x.min(stride - 1);
        let w = w.min(stride - x);
        surface.touch_range(ctx, row * stride + x, w, AccessKind::Read);
        let out = surface.write_range(ctx, row * stride + x, w);
        for px in out.iter_mut() {
            *px = crate::bitmap::blend_pixel(src, *px);
        }
        ctx.ops(OpMix {
            scalar: (w / 8).max(1) as u64,
            simd: (3 * w / 4).max(1) as u64,
            ..OpMix::default()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::Platform;

    fn run(paragraphs: usize, frames: usize) -> (DomScrollReport, SimContext) {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let r = scroll_page_dom(&mut ctx, paragraphs, frames, 512, 384, 11);
        (r, ctx)
    }

    #[test]
    fn scrolling_paints_and_tiles_real_boxes() {
        let (r, ctx) = run(24, 4);
        assert!(r.nodes > 30, "nodes {}", r.nodes);
        assert!(r.page_height > 384, "page must scroll");
        assert!(r.boxes_painted > 20, "painted {}", r.boxes_painted);
        // All three stages consumed energy.
        for (tag, f) in &r.fractions {
            assert!(*f > 0.0, "{tag} consumed nothing");
        }
        let sum: f64 = r.fractions.iter().map(|(_, f)| f).sum();
        assert!((0.99..=1.001).contains(&sum), "sum {sum}");
        assert!(ctx.mpki() > 1.0);
    }

    #[test]
    fn tiling_dominates_layout_for_static_pages() {
        // One layout amortized over frames: raster + tiling must dwarf it,
        // which is the paper's premise for offloading them.
        let (r, _) = run(24, 6);
        let get = |t: &str| r.fractions.iter().find(|(n, _)| n == t).unwrap().1;
        assert!(get("texture_tiling") > get("layout"));
        assert!(get("color_blitting") > get("layout"));
    }

    #[test]
    fn dm_fraction_is_high_like_fig2() {
        let (r, _) = run(30, 6);
        assert!(r.dm_fraction > 0.5, "DM {}", r.dm_fraction);
    }

    #[test]
    #[should_panic(expected = "tile-aligned")]
    fn unaligned_viewport_panics() {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        scroll_page_dom(&mut ctx, 4, 1, 500, 384, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = run(16, 3);
        let (b, _) = run(16, 3);
        assert_eq!(a.boxes_painted, b.boxes_painted);
        assert_eq!(a.page_height, b.page_height);
    }
}
