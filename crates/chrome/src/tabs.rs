//! Tab switching under memory pressure (paper §4.3, Figure 4).
//!
//! The experiment: open 50 tabs (top sites), scroll each for a few
//! seconds, then switch through them, on a 2 GB device. When free memory
//! falls below a threshold, Chrome + the OS compress inactive-tab pages
//! into ZRAM; revisiting a tab decompresses its working set.
//!
//! The schedule is simulated at one-second granularity with MB-level
//! accounting; the *costs* (compression ratio, throughput, energy per
//! byte) are measured by running the real [`crate::lzo`] kernels on
//! synthetic tab memory through the simulation context, then scaled to the
//! schedule's traffic. The pool is not capped: as in the measured system,
//! swap traffic — not residency — is the quantity of interest.

use pim_core::{DmpimError, Platform, SimContext};

use crate::lzo::{compress_tracked, decompress_tracked, synthetic_tab_dump};

/// Parameters of the tab-switching experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TabSwitchConfig {
    /// Number of tabs (the paper uses 50).
    pub tabs: u32,
    /// Memory available to tab content, MB (2 GB device minus OS/GPU).
    pub budget_mb: u64,
    /// Seconds to open + scroll each tab.
    pub open_seconds: f64,
    /// Seconds spent on each tab when switching back through them.
    pub revisit_seconds: f64,
    /// Fraction of a compressed tab that is decompressed on revisit (the
    /// tab renderer touches only part of its heap to redraw, §4.3.1).
    pub working_fraction: f64,
    /// RNG seed for footprints.
    pub seed: u64,
}

impl Default for TabSwitchConfig {
    fn default() -> Self {
        Self {
            tabs: 50,
            budget_mb: 1_400,
            open_seconds: 2.5,
            revisit_seconds: 2.0,
            working_fraction: 0.9,
            seed: 0x7ab5,
        }
    }
}

/// Output of the tab-switching run: the Figure 4 series plus §4.3.1's
/// aggregate shares.
#[derive(Debug, Clone)]
pub struct TabSwitchResult {
    /// MB/s swapped out to ZRAM, per second of the schedule (Fig. 4 left).
    pub out_mb_per_s: Vec<f64>,
    /// MB/s swapped in from ZRAM, per second (Fig. 4 right).
    pub in_mb_per_s: Vec<f64>,
    /// Total uncompressed GB swapped out (paper: 11.7 GB).
    pub total_out_gb: f64,
    /// Total uncompressed GB swapped in (paper: 7.8 GB).
    pub total_in_gb: f64,
    /// Compression + decompression share of total energy (paper: 18.1%).
    pub compression_energy_fraction: f64,
    /// Compression + decompression share of execution time (paper: 14.2%).
    pub compression_time_fraction: f64,
    /// Measured LZO compression ratio on tab memory.
    pub compression_ratio: f64,
    /// Measured compression throughput, MB/s.
    pub compress_mb_per_s: f64,
}

/// Per-byte compression/decompression costs measured through the simulator.
#[derive(Debug, Clone, Copy)]
struct MeasuredCosts {
    ratio: f64,
    compress_pj_per_byte: f64,
    decompress_pj_per_byte: f64,
    compress_mb_per_s: f64,
    decompress_mb_per_s: f64,
}

fn measure_costs(seed: u64) -> Result<MeasuredCosts, DmpimError> {
    let mut ctx = SimContext::cpu_only(Platform::baseline());
    let pages = synthetic_tab_dump(192, seed);
    let raw: u64 = pages.iter().map(|p| p.len() as u64).sum();
    let t0 = ctx.now_ps();
    let mut packed = 0u64;
    let mut streams = Vec::new();
    ctx.scoped("compression", |ctx| {
        for p in &pages {
            let c = compress_tracked(ctx, p);
            packed += c.len() as u64;
            streams.push(c);
        }
    });
    let t1 = ctx.now_ps();
    ctx.scoped("decompression", |ctx| -> Result<(), DmpimError> {
        for c in &streams {
            decompress_tracked(ctx, c)?;
        }
        Ok(())
    })?;
    let t2 = ctx.now_ps();
    // Both tags exist: the loops above charged work under them.
    let comp_e = ctx.tag("compression").map(|t| t.energy.total_pj()).unwrap_or(0.0);
    let deco_e = ctx.tag("decompression").map(|t| t.energy.total_pj()).unwrap_or(0.0);
    if raw == 0 || packed == 0 || t1 == t0 || t2 == t1 {
        return Err(DmpimError::invalid_config("tab dump produced no measurable traffic"));
    }
    let mb = raw as f64 / (1 << 20) as f64;
    Ok(MeasuredCosts {
        ratio: raw as f64 / packed as f64,
        compress_pj_per_byte: comp_e / raw as f64,
        decompress_pj_per_byte: deco_e / raw as f64,
        compress_mb_per_s: mb / ((t1 - t0) as f64 / 1e12),
        decompress_mb_per_s: mb / ((t2 - t1) as f64 / 1e12),
    })
}

/// Energy of everything that is *not* (de)compression during one active
/// second of browsing (rendering, scrolling, scripting), in pJ. Derived
/// from the scroll model's average page at 60 FPS.
fn browsing_pj_per_second() -> f64 {
    let mut ctx = SimContext::cpu_only(Platform::baseline());
    let mut page = crate::page::PageModel::gmail();
    page.frames = 4;
    let b = crate::scroll::run_scroll(&page, &mut ctx);
    b.total_pj / page.frames as f64 * 60.0
}

/// Run the §4.3.1 experiment.
///
/// # Errors
///
/// Returns [`DmpimError`] when the cost-measurement phase fails (corrupt
/// self-produced stream — should not happen — or degenerate configuration).
pub fn run_tab_switching(cfg: &TabSwitchConfig) -> Result<TabSwitchResult, DmpimError> {
    let costs = measure_costs(cfg.seed)?;
    let mut rng = pim_core::rng::SplitMix64::new(cfg.seed);

    // Sample tab footprints (modern pages: images + JS heap, §4.3).
    let footprints: Vec<f64> = (0..cfg.tabs)
        .map(|_| rng.next_range(90, 190) as f64)
        .collect();

    let total_seconds = (cfg.tabs as f64 * (cfg.open_seconds + cfg.revisit_seconds)).ceil() as usize + 2;
    let mut out_series = vec![0.0f64; total_seconds];
    let mut in_series = vec![0.0f64; total_seconds];

    // Per-tab state: resident MB and compressed (pool-held) MB.
    let mut resident = vec![0.0f64; cfg.tabs as usize];
    let mut pooled = vec![0.0f64; cfg.tabs as usize];
    // LRU order: front = least recently used.
    let mut lru: Vec<usize> = Vec::new();

    let mut compress_backlog = 0.0f64; // MB queued for compression
    let mut clock = 0.0f64;

    let mut schedule: Vec<(usize, f64, bool)> = Vec::new(); // (tab, dwell, revisit?)
    for t in 0..cfg.tabs as usize {
        schedule.push((t, cfg.open_seconds, false));
    }
    for t in 0..cfg.tabs as usize {
        schedule.push((t, cfg.revisit_seconds, true));
    }

    for (tab, dwell, revisit) in schedule {
        lru.retain(|&t| t != tab);
        lru.push(tab);
        if revisit {
            // Decompress the working set of this tab.
            let want = pooled[tab] * cfg.working_fraction;
            pooled[tab] -= want;
            resident[tab] += want;
            let mut left = want;
            let mut s = clock;
            while left > 0.0 {
                let sec = s as usize;
                let room = costs.decompress_mb_per_s.min(250.0);
                let now = left.min(room * (1.0 - s.fract()));
                if sec < in_series.len() {
                    in_series[sec] += now;
                }
                left -= now;
                s += now / room + 1e-9;
            }
        } else {
            resident[tab] = footprints[tab];
        }

        // Advance the dwell second by second, compressing under pressure.
        let end = clock + dwell;
        while clock < end {
            let step = (end - clock).min(1.0);
            let used: f64 = resident.iter().sum();
            if used > cfg.budget_mb as f64 {
                compress_backlog += used - cfg.budget_mb as f64 * 0.95;
                // Victims: least-recently-used tabs first, never the active.
                let mut need = used - cfg.budget_mb as f64 * 0.95;
                for &victim in lru.iter() {
                    if victim == tab || need <= 0.0 {
                        continue;
                    }
                    let take = resident[victim].min(need);
                    resident[victim] -= take;
                    pooled[victim] += take;
                    need -= take;
                }
            }
            // Drain the compression backlog at the measured throughput.
            let rate = costs.compress_mb_per_s.min(220.0);
            let drained = compress_backlog.min(rate * step);
            compress_backlog -= drained;
            let sec = clock as usize;
            if sec < out_series.len() {
                out_series[sec] += drained;
            }
            clock += step;
        }
    }

    let total_out_mb: f64 = out_series.iter().sum();
    let total_in_mb: f64 = in_series.iter().sum();

    // Aggregate energy/time shares.
    let comp_pj = total_out_mb * (1 << 20) as f64 * costs.compress_pj_per_byte
        + total_in_mb * (1 << 20) as f64 * costs.decompress_pj_per_byte;
    let browse_pj = browsing_pj_per_second() * clock;
    let comp_s = total_out_mb / costs.compress_mb_per_s + total_in_mb / costs.decompress_mb_per_s;

    Ok(TabSwitchResult {
        out_mb_per_s: out_series,
        in_mb_per_s: in_series,
        total_out_gb: total_out_mb / 1024.0,
        total_in_gb: total_in_mb / 1024.0,
        compression_energy_fraction: comp_pj / (comp_pj + browse_pj),
        compression_time_fraction: comp_s / clock,
        compression_ratio: costs.ratio,
        compress_mb_per_s: costs.compress_mb_per_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TabSwitchConfig {
        TabSwitchConfig { tabs: 12, budget_mb: 600, ..TabSwitchConfig::default() }
    }

    #[test]
    fn pressure_forces_swapping() {
        let r = run_tab_switching(&small()).unwrap();
        assert!(r.total_out_gb > 1.0, "out {}", r.total_out_gb);
        assert!(r.total_in_gb > 0.4, "in {}", r.total_in_gb);
        assert!(r.total_in_gb < r.total_out_gb);
    }

    #[test]
    fn series_has_active_seconds_and_plausible_peak() {
        let r = run_tab_switching(&small()).unwrap();
        let peak = r.out_mb_per_s.iter().cloned().fold(0.0, f64::max);
        assert!(peak > 50.0, "peak {peak}");
        assert!(peak <= 260.0, "peak {peak}");
        let active = r.out_mb_per_s.iter().filter(|&&v| v > 0.0).count();
        assert!(active > 5);
    }

    #[test]
    fn paper_scale_run_matches_totals_band() {
        // The 50-tab experiment: paper reports 11.7 GB out, 7.8 GB in.
        let r = run_tab_switching(&TabSwitchConfig::default()).unwrap();
        assert!((8.0..16.0).contains(&r.total_out_gb), "out {}", r.total_out_gb);
        assert!((4.0..12.0).contains(&r.total_in_gb), "in {}", r.total_in_gb);
        // §4.3.1: compression ≈ 18.1% of energy, 14.2% of time.
        assert!(
            (0.08..0.35).contains(&r.compression_energy_fraction),
            "energy frac {}",
            r.compression_energy_fraction
        );
        assert!(
            (0.03..0.30).contains(&r.compression_time_fraction),
            "time frac {}",
            r.compression_time_fraction
        );
    }

    #[test]
    fn ratio_is_lzo_class() {
        let r = run_tab_switching(&small()).unwrap();
        assert!((1.8..5.0).contains(&r.compression_ratio), "ratio {}", r.compression_ratio);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_tab_switching(&small()).unwrap();
        let b = run_tab_switching(&small()).unwrap();
        assert_eq!(a.out_mb_per_s, b.out_mb_per_s);
        assert_eq!(a.total_in_gb, b.total_in_gb);
    }
}
