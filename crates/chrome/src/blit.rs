//! Color blitting: the Skia rasterization back-end (paper §4.2.2).
//!
//! A blitter converts high-level draw primitives into bitmap writes. Its
//! primary operation is copying/combining blocks of pixels: solid fills
//! (`memset`), copies (`memcopy`), and alpha blending (shift/add/mul) —
//! exactly the op set the paper lists. It streams whole rows, so its data
//! movement is large and its locality poor once bitmaps exceed the LLC.

use pim_core::rng::SplitMix64;
use pim_core::{Kernel, OpMix, SimContext, Tracked};

use crate::bitmap::{blend_pixel, Bitmap};

/// A blit primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlitOp {
    /// Fill the destination rect with a solid color (`memset`).
    Fill(u32),
    /// Copy the source bitmap into the destination (`memcopy`).
    Copy,
    /// Alpha-blend the source bitmap over the destination.
    Blend,
}

/// Blit `src` (or a fill color) onto `dst` at `(x0, y0)`, reporting traffic.
///
/// `src` and `dst` are tracked pixel buffers with their logical widths.
/// Returns nothing; `dst` is updated in place.
///
/// # Panics
///
/// Panics if the blit rectangle falls outside `dst`.
#[allow(clippy::too_many_arguments)]
pub fn blit(
    ctx: &mut SimContext,
    op: BlitOp,
    src: &Tracked<u32>,
    src_w: usize,
    dst: &mut Tracked<u32>,
    dst_w: usize,
    x0: usize,
    y0: usize,
) {
    let src_h = src.len().checked_div(src_w).unwrap_or(0);
    let dst_h = dst.len().checked_div(dst_w).unwrap_or(0);
    // The blit rectangle always matches the source geometry (fills use the
    // source buffer for geometry only and never read it).
    let (w, h) = (src_w, src_h);
    assert!(x0 + w <= dst_w && y0 + h <= dst_h, "blit rect out of bounds");
    for y in 0..h {
        let drow = (y0 + y) * dst_w + x0;
        match op {
            BlitOp::Fill(color) => {
                dst.fill_range(ctx, drow, w, color);
                // memset: one wide store per 16 B.
                ctx.ops(OpMix { scalar: 2, simd: (w * 4 / 16).max(1) as u64, ..OpMix::default() });
            }
            BlitOp::Copy => {
                dst.copy_range_from(ctx, drow, src, y * src_w, w);
                ctx.ops(OpMix { scalar: 2, simd: (w * 4 / 16).max(1) as u64, ..OpMix::default() });
            }
            BlitOp::Blend => {
                let srow = src.read_range(ctx, y * src_w, w);
                // Blending reads the destination row before overwriting it
                // (map_range reports the read + write; no row copy).
                dst.map_range(ctx, drow, w, |out| {
                    for (d, s) in out.iter_mut().zip(srow.iter()) {
                        *d = blend_pixel(*s, *d);
                    }
                });
                // Skia's SIMD blitter: unpack/MAC/repack, ~4 px per op.
                ctx.ops(OpMix {
                    scalar: (w / 8).max(1) as u64,
                    simd: (3 * w / 4).max(1) as u64,
                    ..OpMix::default()
                });
            }
        }
    }
}

/// The §9 color-blitting microbenchmark: a stream of fills, copies and
/// blends of randomly sized bitmaps (32×32 … 1024×1024) onto a target
/// surface, following Skia's blitter structure.
#[derive(Debug)]
pub struct ColorBlittingKernel {
    sizes: Vec<usize>,
    surface_px: usize,
    seed: u64,
    /// Checksum of the final surface (for determinism checks).
    pub checksum: u64,
}

impl ColorBlittingKernel {
    /// Blit bitmaps of each `size` (square, pixels) onto a surface of
    /// `surface_px` × `surface_px`.
    pub fn new(sizes: Vec<usize>, surface_px: usize, seed: u64) -> Self {
        Self { sizes, surface_px, seed, checksum: 0 }
    }

    /// The paper's input mix: 32×32 up to 1024×1024 bitmaps (§9).
    ///
    /// The surface is 1024×1024 (a 4 MB target, large enough to defeat the
    /// 2 MB LLC, as in §4.2.2's discussion of bitmap sizes).
    pub fn paper_input() -> Self {
        Self::new(vec![32, 64, 128, 256, 512, 1024, 512, 128], 1024, 0xb117)
    }

    /// Run the blit stream.
    pub fn execute(&mut self, ctx: &mut SimContext) {
        let surface_w = self.surface_px;
        let mut rng = SplitMix64::new(self.seed);
        let mut dst: Tracked<u32> = Tracked::zeroed(ctx, surface_w * surface_w);
        ctx.scoped("color_blitting", |ctx| {
            for (i, &size) in self.sizes.iter().enumerate() {
                let bm = Bitmap::synthetic(size, size, self.seed ^ i as u64);
                let src: Tracked<u32> = Tracked::from_vec(ctx, bm.pixels().to_vec());
                let room = surface_w - size;
                let x0 = if room == 0 { 0 } else { rng.next_below(room as u64) as usize };
                let y0 = if room == 0 { 0 } else { rng.next_below(room as u64) as usize };
                let op = match i % 3 {
                    0 => BlitOp::Fill(0xFF00_0000 | rng.next_u64() as u32 & 0xFFFFFF),
                    1 => BlitOp::Copy,
                    _ => BlitOp::Blend,
                };
                if ctx.tracer().enabled() {
                    let kind = match op {
                        BlitOp::Fill(_) => "fill",
                        BlitOp::Copy => "copy",
                        BlitOp::Blend => "blend",
                    };
                    ctx.mark(format!("blit {kind} {size}x{size}"));
                }
                blit(ctx, op, &src, size, &mut dst, surface_w, x0, y0);
            }
        });
        self.checksum = dst
            .as_slice()
            .iter()
            .fold(0u64, |acc, &p| acc.rotate_left(5) ^ p as u64);
    }
}

impl Kernel for ColorBlittingKernel {
    fn name(&self) -> &'static str {
        "color_blitting"
    }

    fn working_set_bytes(&self) -> u64 {
        (self.surface_px * self.surface_px * 4) as u64
    }

    fn run(&mut self, ctx: &mut SimContext) {
        self.execute(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::{ExecutionMode, OffloadEngine, Platform};

    fn ctx() -> SimContext {
        SimContext::cpu_only(Platform::baseline())
    }

    #[test]
    fn fill_writes_solid_color() {
        let mut c = ctx();
        let src: Tracked<u32> = Tracked::zeroed(&mut c, 4 * 4);
        let mut dst: Tracked<u32> = Tracked::zeroed(&mut c, 8 * 8);
        blit(&mut c, BlitOp::Fill(0xFFAA_BBCC), &src, 4, &mut dst, 8, 2, 2);
        assert_eq!(dst.as_slice()[2 * 8 + 2], 0xFFAA_BBCC);
        assert_eq!(dst.as_slice()[0], 0);
        assert_eq!(dst.as_slice()[5 * 8 + 5], 0xFFAA_BBCC);
        assert_eq!(dst.as_slice()[6 * 8 + 6], 0);
    }

    #[test]
    fn copy_transfers_source() {
        let mut c = ctx();
        let src: Tracked<u32> = Tracked::from_vec(&mut c, vec![7u32; 16]);
        let mut dst: Tracked<u32> = Tracked::zeroed(&mut c, 64);
        blit(&mut c, BlitOp::Copy, &src, 4, &mut dst, 8, 0, 0);
        assert_eq!(dst.as_slice()[0..4], [7, 7, 7, 7]);
        assert_eq!(dst.as_slice()[8..12], [7, 7, 7, 7]);
        assert_eq!(dst.as_slice()[4], 0);
    }

    #[test]
    fn blend_mixes_channels() {
        let mut c = ctx();
        // 50% white over opaque black.
        let src: Tracked<u32> = Tracked::from_vec(&mut c, vec![0x80FF_FFFF; 4]);
        let mut dst: Tracked<u32> = Tracked::from_vec(&mut c, vec![0xFF00_0000; 4]);
        blit(&mut c, BlitOp::Blend, &src, 2, &mut dst, 2, 0, 0);
        let r = dst.as_slice()[0] & 0xFF;
        assert!((125..=131).contains(&r));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_blit_panics() {
        let mut c = ctx();
        let src: Tracked<u32> = Tracked::zeroed(&mut c, 16);
        let mut dst: Tracked<u32> = Tracked::zeroed(&mut c, 16);
        blit(&mut c, BlitOp::Copy, &src, 4, &mut dst, 4, 2, 2);
    }

    #[test]
    fn kernel_is_deterministic() {
        let mut a = ColorBlittingKernel::new(vec![32, 64], 128, 9);
        let mut b = ColorBlittingKernel::new(vec![32, 64], 128, 9);
        a.execute(&mut ctx());
        b.execute(&mut ctx());
        assert_eq!(a.checksum, b.checksum);
        assert_ne!(a.checksum, 0);
    }

    #[test]
    fn paper_evaluation_shape_holds() {
        let eng = OffloadEngine::new();
        let mut k = ColorBlittingKernel::paper_input();
        let cpu = eng.run(&mut k, ExecutionMode::CpuOnly);
        let pim = eng.run(&mut k, ExecutionMode::PimCore);
        assert!(cpu.mpki > 10.0, "blitting must be memory-intensive: {}", cpu.mpki);
        assert!(pim.energy_vs(&cpu) < 0.75, "PIM-Core ratio {}", pim.energy_vs(&cpu));
        assert!(pim.speedup_vs(&cpu) > 1.0);
        // Blitting computes more than tiling: its DM fraction is lower.
        assert!(cpu.energy.data_movement_fraction() > 0.5);
    }
}
