//! Chrome browser workload models (paper §4).
//!
//! Reproduces the two user interactions the paper studies and the four PIM
//! targets they expose:
//!
//! * **Page scrolling** (§4.2) — [`scroll`] drives layout, rasterization
//!   (via the [`blit`] color blitter), [`tiling`] of rasterized bitmaps
//!   into 4 kB GPU tiles, and compositing over the synthetic [`page`]
//!   models (Google Docs, Gmail, Calendar, WordPress, Twitter, animation).
//! * **Tab switching** (§4.3) — [`tabs`] models 50 tabs under a 2 GB
//!   memory budget, compressing inactive tabs into a [`zram`] pool with the
//!   from-scratch [`lzo`] compressor and decompressing on revisit.
//!
//! The PIM-target kernels ([`tiling::TextureTilingKernel`],
//! [`blit::ColorBlittingKernel`], [`lzo::CompressionKernel`],
//! [`lzo::DecompressionKernel`]) compute real outputs and implement
//! [`pim_core::Kernel`], so the Figure 18 evaluation runs them unmodified
//! under CPU-Only, PIM-Core and PIM-Acc.

pub mod bitmap;
pub mod blit;
pub mod dom;
pub mod lzo;
pub mod page;
pub mod scroll;
pub mod scroll_dom;
pub mod tabs;
pub mod tiling;
pub mod zram;

pub use bitmap::Bitmap;
pub use blit::{BlitOp, ColorBlittingKernel};
pub use lzo::{compress, decompress, CompressionKernel, DecompressionKernel};
pub use page::PageModel;
pub use scroll::{run_scroll, ScrollBreakdown};
pub use scroll_dom::{scroll_page_dom, DomScrollReport};
pub use tabs::{TabSwitchConfig, TabSwitchResult};
pub use tiling::{tile_bitmap, untile_bitmap, TextureTilingKernel, TILE_PX};
pub use zram::ZramPool;
