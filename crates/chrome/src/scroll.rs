//! The page-scrolling driver (paper §4.2, Figures 1 and 2).
//!
//! Each scroll frame performs layout, rasterization (color blitting),
//! texture tiling, and compositing. The driver streams the page model's
//! per-frame byte/op quantities through the simulation context with the
//! same per-byte op densities as the real kernels in [`crate::blit`] and
//! [`crate::tiling`], attributing work to the paper's three categories:
//! `texture_tiling`, `color_blitting`, and `other`.

use pim_core::{OpMix, SimContext};

use crate::page::PageModel;

/// Result of scrolling one page: the Figure 1 / Figure 2 quantities.
#[derive(Debug, Clone)]
pub struct ScrollBreakdown {
    /// Page name.
    pub page: &'static str,
    /// Energy fractions per category: (tag, fraction of total).
    pub fractions: Vec<(String, f64)>,
    /// Total energy (pJ).
    pub total_pj: f64,
    /// Whole-run data-movement fraction (Figure 2 left: 77% for Docs).
    pub data_movement_fraction: f64,
    /// Data-movement fraction *within* each kernel (Figure 2 right).
    pub kernel_dm_fraction: Vec<(String, f64)>,
    /// LLC misses per kilo-instruction during the scroll.
    pub mpki: f64,
    /// Per-component totals (pJ) for the Figure 2 left panel.
    pub energy: pim_core::EnergyBreakdown,
}

/// Stream `bytes` through memory as `chunks` ranged accesses alternating
/// read/write, advancing through a large cold arena.
fn stream(ctx: &mut SimContext, arena: pim_core::Buffer, cursor: &mut u64, bytes: u64, write_every: u64) {
    const CHUNK: u64 = 4096;
    let mut left = bytes;
    let mut i = 0;
    while left > 0 {
        let n = left.min(CHUNK);
        let at = *cursor % (arena.len() - CHUNK);
        if write_every != 0 && i % write_every == write_every - 1 {
            ctx.write(arena.addr(at), n);
        } else {
            ctx.read(arena.addr(at), n);
        }
        *cursor += n;
        left -= n;
        i += 1;
    }
}

/// Scroll a page for `page.frames` frames, returning its energy breakdown.
///
/// Run this on a CPU-only context for the Figure 1/2 characterization; the
/// PIM comparisons for the extracted kernels live in Figure 18.
pub fn run_scroll(page: &PageModel, ctx: &mut SimContext) -> ScrollBreakdown {
    // A 64 MB cold arena: scrolling constantly touches fresh page content,
    // so the kernels see streaming misses, as in the paper (MPKI ~21).
    let arena = ctx.alloc(64 << 20);
    let mut cur_tile = 0u64;
    let mut cur_raster = 0u64;
    let mut cur_other = 0u64;

    for _ in 0..page.frames {
        // --- Layout + JS + everything else ("Other" in Figure 1). ---
        ctx.scoped("other", |ctx| {
            ctx.ops(OpMix {
                scalar: page.other_ops * 7 / 10,
                branch: page.other_ops * 2 / 10,
                mul: page.other_ops / 10,
                ..OpMix::default()
            });
            stream(ctx, arena, &mut cur_other, page.other_bytes, 4);
        });

        // --- Rasterization: the color blitter (§4.2.2). ---
        ctx.scoped("color_blitting", |ctx| {
            let blended = (page.raster_bytes as f64 * page.blend_fraction) as u64;
            let copied = page.raster_bytes - blended;
            // Copy path: read src, write dst; ~1 op/4 B (wide copies).
            stream(ctx, arena, &mut cur_raster, copied * 2, 2);
            ctx.ops(OpMix { scalar: copied / 8, simd: copied / 16, ..OpMix::default() });
            // Blend path: read src + dst, write dst; Skia's per-pixel
            // unpack/mul/add/repack chain (~3 ops per byte).
            stream(ctx, arena, &mut cur_raster, blended * 3, 3);
            ctx.ops(OpMix {
                scalar: blended * 2,
                mul: blended / 2,
                simd: blended / 8,
                ..OpMix::default()
            });
        });

        // --- Texture tiling (§4.2.2): read linear bitmap, write tiles. ---
        ctx.scoped("texture_tiling", |ctx| {
            stream(ctx, arena, &mut cur_tile, page.texture_bytes * 2, 2);
            // Address swizzling + wide copies per 128 B tile row.
            let rows = page.texture_bytes / 128;
            ctx.ops(OpMix { scalar: rows * 8, simd: rows * 8, ..OpMix::default() });
        });

        // --- Compositing upload handshake (GPU-side work not modeled). ---
        ctx.scoped("other", |ctx| {
            stream(ctx, arena, &mut cur_other, page.texture_bytes / 8, 0);
            ctx.ops(OpMix::scalar(20_000));
        });
    }

    let total = ctx.total_energy();
    let tags = ["texture_tiling", "color_blitting", "other"];
    let fractions = tags
        .iter()
        .map(|&t| {
            let e = ctx.tag(t).map(|s| s.energy.total_pj()).unwrap_or(0.0);
            (t.to_string(), e / total.total_pj())
        })
        .collect();
    let kernel_dm_fraction = tags
        .iter()
        .map(|&t| {
            let f = ctx.tag(t).map(|s| s.data_movement_fraction()).unwrap_or(0.0);
            (t.to_string(), f)
        })
        .collect();
    ScrollBreakdown {
        page: page.name,
        fractions,
        total_pj: total.total_pj(),
        data_movement_fraction: total.data_movement_fraction(),
        kernel_dm_fraction,
        mpki: ctx.mpki(),
        energy: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::{Platform, SimContext};

    fn scroll(page: &PageModel) -> ScrollBreakdown {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        run_scroll(page, &mut ctx)
    }

    #[test]
    fn docs_breakdown_matches_paper_shape() {
        let b = scroll(&PageModel::google_docs());
        let get = |t: &str| b.fractions.iter().find(|(n, _)| n == t).unwrap().1;
        // §4.2.1: tiling 25.7%, blitting 19.1%, total DM 77%.
        assert!((0.18..0.34).contains(&get("texture_tiling")), "tiling {}", get("texture_tiling"));
        assert!((0.12..0.27).contains(&get("color_blitting")), "blit {}", get("color_blitting"));
        assert!(
            (0.65..0.88).contains(&b.data_movement_fraction),
            "DM {}",
            b.data_movement_fraction
        );
        assert!(b.mpki > 10.0, "MPKI {}", b.mpki);
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = scroll(&PageModel::gmail());
        let sum: f64 = b.fractions.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn average_tiling_plus_blitting_is_significant() {
        // Figure 1: 41.9% of scrolling energy across pages.
        let mut total = 0.0;
        let pages = PageModel::all();
        for p in &pages {
            let b = scroll(p);
            total += b.fractions[0].1 + b.fractions[1].1;
        }
        let avg = total / pages.len() as f64;
        assert!((0.30..0.55).contains(&avg), "avg tiling+blit = {avg}");
    }

    #[test]
    fn tiling_is_more_dm_dominated_than_blitting() {
        // §4.2.2: tiling is 81.5% DM; blitting 63.9% (it computes more).
        let b = scroll(&PageModel::google_docs());
        let get = |t: &str| b.kernel_dm_fraction.iter().find(|(n, _)| n == t).unwrap().1;
        assert!(get("texture_tiling") > get("color_blitting"));
        assert!(get("texture_tiling") > 0.7);
        assert!(get("color_blitting") > 0.5);
    }
}
