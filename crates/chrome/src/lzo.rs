//! An LZO1X-class byte-oriented LZ compressor (paper §4.3.2).
//!
//! Chrome's ZRAM swaps inactive-tab pages through LZO, which favors speed
//! over ratio: a greedy hash-table match finder, 4-byte minimum matches, a
//! 64 kB window and byte-aligned output. This module implements that
//! algorithm family from scratch in safe Rust.
//!
//! ## Wire format
//!
//! A stream of tokens:
//!
//! * `0x00..=0x7F` — literal run: `token + 1` raw bytes follow (1–128).
//! * `0x80..=0xFF` — match: base length `token & 0x7F`; if the base is
//!   `0x7F`, two little-endian extension bytes follow and are added.
//!   Final length = `4 + base (+ extension)`. Two little-endian distance
//!   bytes follow (1–65535, counted back from the current output end).
//!
//! The format is this crate's own (LZO's exact bitstream is unpublished in
//! spec form), but its token structure, costs and ratios are LZO-class,
//! which is what the ZRAM swap model needs.

use pim_core::{DmpimError, Kernel, OpMix, SimContext, Tracked};

const HASH_BITS: u32 = 13;
const MIN_MATCH: usize = 4;
const MAX_DISTANCE: usize = 65_535;
const MAX_BASE: usize = 0x7F;

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

/// Compress `input`, returning the token stream.
///
/// Never fails; incompressible input degrades to literal runs with ~0.8%
/// overhead.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut lit_start = 0usize;

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let cand = table[h];
        table[h] = pos;
        let ok = cand != usize::MAX
            && pos - cand <= MAX_DISTANCE
            && input[cand..cand + MIN_MATCH] == input[pos..pos + MIN_MATCH];
        if !ok {
            pos += 1;
            continue;
        }
        // Extend the match, up to the longest encodable length (longer
        // repeats simply continue as a fresh match next iteration).
        const MAX_LEN: usize = MIN_MATCH + MAX_BASE + u16::MAX as usize;
        let mut len = MIN_MATCH;
        while len < MAX_LEN && pos + len < input.len() && input[cand + len] == input[pos + len] {
            len += 1;
        }
        emit_literals(&mut out, &input[lit_start..pos]);
        emit_match(&mut out, pos - cand, len);
        // Index a few positions inside the match to keep future matches.
        let end = pos + len;
        let mut p = pos + 1;
        while p + MIN_MATCH <= end.min(input.len()) && p < pos + 8 {
            table[hash4(&input[p..])] = p;
            p += 1;
        }
        pos = end;
        lit_start = end;
    }
    emit_literals(&mut out, &input[lit_start..]);
    out
}

fn emit_literals(out: &mut Vec<u8>, mut lits: &[u8]) {
    while !lits.is_empty() {
        let n = lits.len().min(128);
        out.push((n - 1) as u8);
        out.extend_from_slice(&lits[..n]);
        lits = &lits[n..];
    }
}

fn emit_match(out: &mut Vec<u8>, distance: usize, len: usize) {
    debug_assert!((1..=MAX_DISTANCE).contains(&distance));
    debug_assert!(len >= MIN_MATCH);
    let base = len - MIN_MATCH;
    if base < MAX_BASE {
        out.push(0x80 | base as u8);
    } else {
        out.push(0x80 | MAX_BASE as u8);
        let ext = (base - MAX_BASE).min(u16::MAX as usize) as u16;
        out.extend_from_slice(&ext.to_le_bytes());
    }
    out.extend_from_slice(&(distance as u16).to_le_bytes());
}

/// Decompress a token stream produced by [`compress`].
///
/// # Errors
///
/// Returns [`DmpimError::Corrupt`] on truncated streams or out-of-range
/// match distances; arbitrary input bytes never panic (enforced by the
/// property tests in `tests/fault_injection.rs`).
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, DmpimError> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut pos = 0usize;
    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        if token < 0x80 {
            let n = token as usize + 1;
            let lits = input
                .get(pos..pos + n)
                .ok_or(DmpimError::corrupt(pos, "truncated literal run"))?;
            out.extend_from_slice(lits);
            pos += n;
        } else {
            let mut len = MIN_MATCH + (token & 0x7F) as usize;
            if token & 0x7F == MAX_BASE as u8 {
                let ext = input
                    .get(pos..pos + 2)
                    .ok_or(DmpimError::corrupt(pos, "truncated length extension"))?;
                len += u16::from_le_bytes([ext[0], ext[1]]) as usize;
                pos += 2;
            }
            let d = input
                .get(pos..pos + 2)
                .ok_or(DmpimError::corrupt(pos, "truncated distance"))?;
            let distance = u16::from_le_bytes([d[0], d[1]]) as usize;
            pos += 2;
            if distance == 0 || distance > out.len() {
                return Err(DmpimError::corrupt(pos, "distance out of range"));
            }
            let start = out.len() - distance;
            // Overlapping copies are the RLE trick; copy byte-wise.
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }
    Ok(out)
}

/// Report the compression loop's traffic/ops against a context.
///
/// Streams the input page, streams the output, and charges the match-finder
/// work (~4 ops/byte scanned plus 1 op per emitted byte). The 8 kB hash
/// table lives in L1 and is modeled as part of the op cost.
pub fn compress_tracked(ctx: &mut SimContext, input: &[u8]) -> Vec<u8> {
    let src: Tracked<u8> = Tracked::from_vec(ctx, input.to_vec());
    src.touch_range(ctx, 0, input.len(), pim_core::AccessKind::Read);
    let out = compress(input);
    let dst: Tracked<u8> = Tracked::from_vec(ctx, out.clone());
    dst.touch_range(ctx, 0, out.len(), pim_core::AccessKind::Write);
    // Literal-heavy positions pay the hash/probe path (~4 ops each, about
    // as many positions as output bytes); matched bytes are covered by
    // wide compares (16 B per op), which is what makes LZO fast on
    // compressible swap pages.
    let matched = input.len().saturating_sub(out.len()) as u64;
    ctx.ops(OpMix {
        scalar: 4 * out.len() as u64,
        simd: matched / 16,
        mul: out.len() as u64 / 4,
        branch: out.len() as u64 / 2,
    });
    out
}

/// Report the decompression loop's traffic/ops against a context.
///
/// # Errors
///
/// Returns [`DmpimError::Corrupt`] (without charging the output traffic)
/// when `input` is not a valid stream.
pub fn decompress_tracked(ctx: &mut SimContext, input: &[u8]) -> Result<Vec<u8>, DmpimError> {
    let src: Tracked<u8> = Tracked::from_vec(ctx, input.to_vec());
    src.touch_range(ctx, 0, input.len(), pim_core::AccessKind::Read);
    let out = decompress(input)?;
    let dst: Tracked<u8> = Tracked::from_vec(ctx, out.clone());
    dst.touch_range(ctx, 0, out.len(), pim_core::AccessKind::Write);
    // Decompression is bulk copying: one token dispatch per ~3 stream
    // bytes, wide copies for the payload.
    ctx.ops(OpMix {
        scalar: input.len() as u64,
        simd: out.len() as u64 / 16,
        branch: input.len() as u64 / 3,
        ..OpMix::default()
    });
    Ok(out)
}

/// Synthetic Chromebook memory dump: the §9 compression input ("open 50
/// tabs, navigate, dump memory"). A mix of zero pages, text/HTML-like
/// pages, JS-like pages and incompressible binary, yielding LZO-class
/// ratios (~2–3x).
pub fn synthetic_tab_dump(pages: usize, seed: u64) -> Vec<Vec<u8>> {
    use pim_core::rng::SplitMix64;
    let mut rng = SplitMix64::new(seed);
    let words: &[&str] = &[
        "<div class=\"row\">", "</div>", "function(", "return ", "the ", "content",
        "style=\"margin:0\"", "&nbsp;", "document.", "getElementById", "padding",
        " data-id=\"", "</span>", "<span>", "true", "false", "null", "px;",
    ];
    (0..pages)
        .map(|_| {
            let kind = rng.next_below(100);
            let mut page = Vec::with_capacity(4096);
            if kind < 35 {
                page.resize(4096, 0); // zero/untouched heap page
            } else if kind < 88 {
                // Text/markup-like: repeated dictionary words + filler.
                while page.len() < 4096 {
                    let w = words[rng.next_below(words.len() as u64) as usize];
                    page.extend_from_slice(w.as_bytes());
                    if rng.chance(0.3) {
                        page.push(b' ');
                        page.push(b'a' + rng.next_u8() % 26);
                    }
                }
                page.truncate(4096);
            } else {
                // Binary/image-like: incompressible.
                for _ in 0..4096 {
                    page.push(rng.next_u8());
                }
            }
            page
        })
        .collect()
}

/// The §9 compression microbenchmark: LZO over a tab-dump-like page set.
#[derive(Debug)]
pub struct CompressionKernel {
    pages: Vec<Vec<u8>>,
    /// Compressed pages from the last run.
    pub compressed: Vec<Vec<u8>>,
}

impl CompressionKernel {
    /// Compress the given 4 kB pages.
    pub fn new(pages: Vec<Vec<u8>>) -> Self {
        Self { pages, compressed: Vec::new() }
    }

    /// The paper's input: a synthetic 50-tab memory dump (2 MB sample).
    pub fn paper_input() -> Self {
        Self::new(synthetic_tab_dump(512, 0x2a11))
    }

    /// Input pages.
    pub fn pages(&self) -> &[Vec<u8>] {
        &self.pages
    }
}

impl Kernel for CompressionKernel {
    fn name(&self) -> &'static str {
        "compression"
    }

    fn working_set_bytes(&self) -> u64 {
        self.pages.iter().map(|p| p.len() as u64).sum()
    }

    fn run(&mut self, ctx: &mut SimContext) {
        self.compressed.clear();
        let pages = std::mem::take(&mut self.pages);
        ctx.scoped("compression", |ctx| {
            for page in &pages {
                self.compressed.push(compress_tracked(ctx, page));
            }
        });
        self.pages = pages;
    }
}

/// The §9 decompression microbenchmark (swap-in path).
#[derive(Debug)]
pub struct DecompressionKernel {
    compressed: Vec<Vec<u8>>,
    /// Decompressed pages from the last run.
    pub pages: Vec<Vec<u8>>,
}

impl DecompressionKernel {
    /// Decompress the given streams.
    pub fn new(compressed: Vec<Vec<u8>>) -> Self {
        Self { compressed, pages: Vec::new() }
    }

    /// Compressed form of [`CompressionKernel::paper_input`].
    pub fn paper_input() -> Self {
        let pages = synthetic_tab_dump(512, 0x2a11);
        Self::new(pages.iter().map(|p| compress(p)).collect())
    }
}

impl Kernel for DecompressionKernel {
    fn name(&self) -> &'static str {
        "decompression"
    }

    fn working_set_bytes(&self) -> u64 {
        self.compressed.iter().map(|p| p.len() as u64).sum()
    }

    fn run(&mut self, ctx: &mut SimContext) {
        self.pages.clear();
        let compressed = std::mem::take(&mut self.compressed);
        ctx.scoped("decompression", |ctx| {
            for c in &compressed {
                match decompress_tracked(ctx, c) {
                    Ok(page) => self.pages.push(page),
                    Err(e) => {
                        // Corrupt stream: poison the run instead of
                        // panicking; the driver sees the error.
                        ctx.fail(e);
                        break;
                    }
                }
            }
        });
        self.compressed = compressed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::{ExecutionMode, OffloadEngine};

    #[test]
    fn roundtrip_simple_strings() {
        for s in [
            &b""[..],
            b"a",
            b"abcabcabcabcabcabc",
            b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
            b"the quick brown fox jumps over the lazy dog",
        ] {
            let c = compress(s);
            assert_eq!(decompress(&c).unwrap(), s, "input {s:?}");
        }
    }

    #[test]
    fn zero_page_compresses_hard() {
        let page = vec![0u8; 4096];
        let c = compress(&page);
        assert!(c.len() < 100, "zero page -> {} bytes", c.len());
        assert_eq!(decompress(&c).unwrap(), page);
    }

    #[test]
    fn random_data_degrades_gracefully() {
        let mut rng = pim_core::rng::SplitMix64::new(1);
        let page: Vec<u8> = (0..4096).map(|_| rng.next_u8()).collect();
        let c = compress(&page);
        assert!(c.len() <= page.len() + page.len() / 64 + 8);
        assert_eq!(decompress(&c).unwrap(), page);
    }

    #[test]
    fn long_match_uses_extension_encoding() {
        let mut data = b"0123456789abcdef".to_vec();
        let unit = data.clone();
        for _ in 0..40 {
            data.extend_from_slice(&unit); // one long repeated region > 131 B
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 4);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn tab_dump_reaches_lzo_class_ratio() {
        let pages = synthetic_tab_dump(256, 3);
        let raw: usize = pages.iter().map(Vec::len).sum();
        let packed: usize = pages.iter().map(|p| compress(p).len()).sum();
        let ratio = raw as f64 / packed as f64;
        assert!((1.8..5.0).contains(&ratio), "ratio = {ratio:.2}");
        for p in &pages {
            assert_eq!(decompress(&compress(p)).unwrap(), *p);
        }
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        assert!(decompress(&[0x05]).is_err()); // truncated literals
        assert!(decompress(&[0x80, 0x01, 0x00]).is_err()); // distance > out
        assert!(decompress(&[0xFF, 0x01]).is_err()); // truncated extension
        assert!(decompress(&[0x81]).is_err()); // truncated distance
    }

    #[test]
    fn kernels_roundtrip_through_the_simulator() {
        let eng = OffloadEngine::new();
        let mut ck = CompressionKernel::new(synthetic_tab_dump(32, 7));
        let original = ck.pages().to_vec();
        eng.run(&mut ck, ExecutionMode::CpuOnly);
        let mut dk = DecompressionKernel::new(ck.compressed.clone());
        eng.run(&mut dk, ExecutionMode::CpuOnly);
        assert_eq!(dk.pages, original);
    }

    #[test]
    fn compression_benefits_from_pim_acc_over_pim_core() {
        // §10.1: compression/decompression are more compute-intensive than
        // tiling, so PIM-Acc's throughput shows up in performance.
        let eng = OffloadEngine::new();
        let mut k = CompressionKernel::new(synthetic_tab_dump(128, 7));
        let cpu = eng.run(&mut k, ExecutionMode::CpuOnly);
        let pim = eng.run(&mut k, ExecutionMode::PimCore);
        let acc = eng.run(&mut k, ExecutionMode::PimAcc);
        assert!(acc.runtime_ps < pim.runtime_ps);
        assert!(acc.energy_vs(&cpu) < 1.0);
        assert!(pim.energy_vs(&cpu) < 1.0);
    }
}
