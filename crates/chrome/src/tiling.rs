//! Texture tiling: linear bitmap → 4 kB GPU tiles (paper §4.2.2).
//!
//! After rasterization, the graphics driver reorganizes the linear bitmap
//! into tiles so the GPU composites with good locality; the Intel i965
//! driver the paper emulates uses 4 kB tiles. At RGBA8888 that is a 32×32-
//! pixel tile. The kernel reads the linear bitmap with a strided pattern
//! and writes each tile contiguously — a pure data-reorganization function
//! built from memcopy, address arithmetic and bitwise ops.

use pim_core::{Kernel, OpMix, SimContext, Tracked};

use crate::bitmap::Bitmap;

/// Tile edge in pixels; 32×32 RGBA = 4 kB, matching the i965 driver.
pub const TILE_PX: usize = 32;

/// Reorganize a linear bitmap into tile order.
///
/// Returns the tiled pixel buffer: tiles in row-major tile order, each tile
/// stored contiguously row-major.
///
/// # Panics
///
/// Panics if the bitmap's dimensions are not multiples of [`TILE_PX`].
pub fn tile_bitmap(bm: &Bitmap) -> Vec<u32> {
    assert!(
        bm.width().is_multiple_of(TILE_PX) && bm.height().is_multiple_of(TILE_PX),
        "bitmap must be tile-aligned"
    );
    let (w, h) = (bm.width(), bm.height());
    let mut out = vec![0u32; w * h];
    let tiles_x = w / TILE_PX;
    for ty in 0..h / TILE_PX {
        for tx in 0..tiles_x {
            let tile_base = (ty * tiles_x + tx) * TILE_PX * TILE_PX;
            for y in 0..TILE_PX {
                let src = (ty * TILE_PX + y) * w + tx * TILE_PX;
                let dst = tile_base + y * TILE_PX;
                out[dst..dst + TILE_PX].copy_from_slice(&bm.pixels()[src..src + TILE_PX]);
            }
        }
    }
    out
}

/// Inverse of [`tile_bitmap`]: tile order back to a linear bitmap.
///
/// # Panics
///
/// Panics if `tiled.len() != width * height` or dimensions are not
/// tile-aligned.
pub fn untile_bitmap(tiled: &[u32], width: usize, height: usize) -> Bitmap {
    assert!(width.is_multiple_of(TILE_PX) && height.is_multiple_of(TILE_PX), "dimensions must be tile-aligned");
    assert_eq!(tiled.len(), width * height, "pixel count mismatch");
    let mut bm = Bitmap::new(width, height);
    let tiles_x = width / TILE_PX;
    for ty in 0..height / TILE_PX {
        for tx in 0..tiles_x {
            let tile_base = (ty * tiles_x + tx) * TILE_PX * TILE_PX;
            for y in 0..TILE_PX {
                let dst = (ty * TILE_PX + y) * width + tx * TILE_PX;
                let src = tile_base + y * TILE_PX;
                bm.pixels_mut()[dst..dst + TILE_PX].copy_from_slice(&tiled[src..src + TILE_PX]);
            }
        }
    }
    bm
}

/// The §9 texture-tiling microbenchmark: `glTexImage2D`-style tiling of an
/// RGBA bitmap (512×512 by default, as in the paper's evaluation).
#[derive(Debug)]
pub struct TextureTilingKernel {
    bitmap: Bitmap,
    /// The tiled output of the last run (for verification).
    pub tiled: Vec<u32>,
}

impl TextureTilingKernel {
    /// Tile a synthetic bitmap of the given size.
    pub fn new(width: usize, height: usize, seed: u64) -> Self {
        Self { bitmap: Bitmap::synthetic(width, height, seed), tiled: Vec::new() }
    }

    /// The paper's input: 512×512 RGBA tiles (§9).
    pub fn paper_input() -> Self {
        Self::new(512, 512, 0x7e97)
    }

    /// Tile an existing bitmap.
    pub fn from_bitmap(bitmap: Bitmap) -> Self {
        Self { bitmap, tiled: Vec::new() }
    }

    /// The input bitmap.
    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// Run the tiling loop against a context, reporting traffic: strided
    /// row-segment reads from the linear bitmap, contiguous tile writes.
    pub fn execute(&mut self, ctx: &mut SimContext) {
        let (w, h) = (self.bitmap.width(), self.bitmap.height());
        let src: Tracked<u32> = Tracked::from_vec(ctx, self.bitmap.pixels().to_vec());
        let mut dst: Tracked<u32> = Tracked::zeroed(ctx, w * h);
        let tiles_x = w / TILE_PX;
        ctx.scoped("texture_tiling", |ctx| {
            for ty in 0..h / TILE_PX {
                if ctx.tracer().enabled() {
                    ctx.mark(format!("tile-row {ty}"));
                }
                for tx in 0..tiles_x {
                    let tile_base = (ty * tiles_x + tx) * TILE_PX * TILE_PX;
                    for y in 0..TILE_PX {
                        let s = (ty * TILE_PX + y) * w + tx * TILE_PX;
                        let d = tile_base + y * TILE_PX;
                        dst.copy_range_from(ctx, d, &src, s, TILE_PX);
                        // Address math + 16-byte-wide copies.
                        ctx.ops(OpMix { scalar: 4, simd: (TILE_PX * 4 / 16) as u64, ..OpMix::default() });
                    }
                }
            }
        });
        self.tiled = dst.into_vec();
    }
}

impl Kernel for TextureTilingKernel {
    fn name(&self) -> &'static str {
        "texture_tiling"
    }

    fn working_set_bytes(&self) -> u64 {
        2 * self.bitmap.bytes()
    }

    fn run(&mut self, ctx: &mut SimContext) {
        self.execute(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::{ExecutionMode, OffloadEngine, Platform};

    #[test]
    fn tile_untile_roundtrip() {
        let bm = Bitmap::synthetic(128, 96, 11);
        let tiled = tile_bitmap(&bm);
        let back = untile_bitmap(&tiled, 128, 96);
        assert_eq!(back, bm);
    }

    #[test]
    fn tiles_are_contiguous() {
        // A bitmap whose first tile is a known constant: the first 1024
        // tiled pixels must equal that constant.
        let mut bm = Bitmap::new(64, 64);
        for y in 0..TILE_PX {
            for x in 0..TILE_PX {
                bm.pixels_mut()[y * 64 + x] = 0xABCD;
            }
        }
        let tiled = tile_bitmap(&bm);
        assert!(tiled[..TILE_PX * TILE_PX].iter().all(|&p| p == 0xABCD));
        assert!(tiled[TILE_PX * TILE_PX..].iter().all(|&p| p == 0));
    }

    #[test]
    #[should_panic(expected = "tile-aligned")]
    fn unaligned_bitmap_panics() {
        tile_bitmap(&Bitmap::new(100, 64));
    }

    #[test]
    fn kernel_matches_reference_function() {
        let mut k = TextureTilingKernel::new(64, 64, 3);
        let expected = tile_bitmap(k.bitmap());
        let mut ctx = pim_core::SimContext::cpu_only(Platform::baseline());
        k.execute(&mut ctx);
        assert_eq!(k.tiled, expected);
    }

    #[test]
    fn kernel_moves_the_whole_bitmap_twice() {
        let mut k = TextureTilingKernel::new(64, 64, 3);
        let mut ctx = pim_core::SimContext::cpu_only(Platform::baseline());
        k.execute(&mut ctx);
        let act = ctx.total_activity();
        // 64*64*4 = 16 kB read + 16 kB written; all lines touched.
        assert!(act.l1_accesses >= 2 * 16 * 1024 / 64);
    }

    #[test]
    fn paper_evaluation_shape_holds() {
        // Figure 18: PIM beats CPU on energy; tiling is memory-intensive.
        let eng = OffloadEngine::new();
        let mut k = TextureTilingKernel::paper_input();
        let cpu = eng.run(&mut k, ExecutionMode::CpuOnly);
        let pim = eng.run(&mut k, ExecutionMode::PimCore);
        let acc = eng.run(&mut k, ExecutionMode::PimAcc);
        assert!(cpu.mpki > 10.0, "tiling must be memory-intensive: {}", cpu.mpki);
        assert!(pim.energy_vs(&cpu) < 0.7, "PIM-Core ratio {}", pim.energy_vs(&cpu));
        assert!(acc.energy_vs(&cpu) <= pim.energy_vs(&cpu) + 0.02);
        assert!(pim.speedup_vs(&cpu) > 1.0);
    }
}
