//! RGBA bitmaps and synthetic page content.

use pim_core::rng::SplitMix64;

/// An RGBA8888 bitmap (one `u32` per pixel), row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    width: usize,
    height: usize,
    pixels: Vec<u32>,
}

impl Bitmap {
    /// A bitmap filled with `color`.
    pub fn filled(width: usize, height: usize, color: u32) -> Self {
        Self { width, height, pixels: vec![color; width * height] }
    }

    /// A zeroed (transparent black) bitmap.
    pub fn new(width: usize, height: usize) -> Self {
        Self::filled(width, height, 0)
    }

    /// Deterministic synthetic content: rectangles of solid color over a
    /// gradient, resembling rasterized page output (text/blocks/images).
    pub fn synthetic(width: usize, height: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut bm = Self::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let g = ((x * 255 / width.max(1)) as u32) << 16
                    | ((y * 255 / height.max(1)) as u32) << 8;
                bm.pixels[y * width + x] = 0xFF00_0000 | g;
            }
        }
        // Scatter opaque rectangles ("render objects").
        for _ in 0..(width * height / 8192).max(4) {
            let w = rng.next_range(4, (width as u64 / 2).max(5)) as usize;
            let h = rng.next_range(4, (height as u64 / 2).max(5)) as usize;
            let x0 = rng.next_below((width - w).max(1) as u64) as usize;
            let y0 = rng.next_below((height - h).max(1) as u64) as usize;
            let color = 0xFF00_0000 | (rng.next_u64() as u32 & 0x00FF_FFFF);
            for y in y0..y0 + h {
                for x in x0..x0 + w {
                    bm.pixels[y * width + x] = color;
                }
            }
        }
        bm
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel data, row-major.
    pub fn pixels(&self) -> &[u32] {
        &self.pixels
    }

    /// Mutable pixel data, row-major.
    pub fn pixels_mut(&mut self) -> &mut [u32] {
        &mut self.pixels
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.pixels.len() * 4) as u64
    }

    /// One pixel.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> u32 {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.pixels[y * self.width + x]
    }
}

/// Alpha-blend `src` over `dst` (per-channel, 8-bit, premultiplied-free).
///
/// The core arithmetic of the Skia color blitter the paper profiles:
/// `out = src*a + dst*(1-a)` per channel.
pub fn blend_pixel(src: u32, dst: u32) -> u32 {
    let a = src >> 24;
    let inv = 255 - a;
    let mut out = 0u32;
    for shift in [0u32, 8, 16] {
        let s = (src >> shift) & 0xFF;
        let d = (dst >> shift) & 0xFF;
        let c = (s * a + d * inv + 127) / 255;
        out |= (c & 0xFF) << shift;
    }
    let da = (dst >> 24) & 0xFF;
    let oa = a + (da * inv + 127) / 255;
    out | (oa.min(255) << 24)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        assert_eq!(Bitmap::synthetic(64, 64, 5), Bitmap::synthetic(64, 64, 5));
        assert_ne!(
            Bitmap::synthetic(64, 64, 5).pixels(),
            Bitmap::synthetic(64, 64, 6).pixels()
        );
    }

    #[test]
    fn blend_opaque_src_wins() {
        let src = 0xFF12_3456;
        assert_eq!(blend_pixel(src, 0xFF65_4321) & 0x00FF_FFFF, src & 0x00FF_FFFF);
    }

    #[test]
    fn blend_transparent_src_keeps_dst() {
        let dst = 0xFFAB_CDEF;
        assert_eq!(blend_pixel(0x0000_0000, dst), dst);
    }

    #[test]
    fn blend_half_alpha_is_midpoint() {
        // src = 50% white over black ≈ mid gray.
        let out = blend_pixel(0x80FF_FFFF, 0xFF00_0000);
        let r = out & 0xFF;
        assert!((125..=131).contains(&r), "r = {r}");
    }

    #[test]
    fn bitmap_geometry() {
        let bm = Bitmap::new(10, 20);
        assert_eq!(bm.width(), 10);
        assert_eq!(bm.height(), 20);
        assert_eq!(bm.bytes(), 800);
        assert_eq!(bm.pixel(9, 19), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pixel_oob_panics() {
        Bitmap::new(4, 4).pixel(4, 0);
    }
}
