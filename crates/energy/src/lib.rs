//! Energy model for the consumer-device PIM study.
//!
//! Prices the [`pim_memsim::Activity`] records produced by the memory
//! simulator, plus per-instruction compute energy, into the six-component
//! breakdown the paper reports in Figures 2, 11, 18, 19 and 20: **CPU, L1,
//! LLC, interconnect, memory controller, DRAM**. "Data movement energy" is
//! everything except the CPU/compute component, exactly as defined in
//! §4.2.1 of the paper.
//!
//! Absolute joules are built from public literature values (see
//! [`EnergyParams`]) and a mini-CACTI analytic cache model ([`cacti`]) at
//! 22 nm; the reproduction targets relative shape, not the authors'
//! unpublished absolute measurements.
//!
//! # Example
//!
//! ```
//! use pim_energy::{EnergyParams, Component};
//! use pim_memsim::Activity;
//!
//! let params = EnergyParams::default();
//! let mut act = Activity::new();
//! act.l1_accesses = 1000;
//! act.dram_read_bytes = 64 * 1000;
//! act.offchip_bytes = 64 * 1000;
//! let e = params.price_activity(&act);
//! assert!(e.get(Component::Dram) > 0.0);
//! assert!(e.data_movement_pj() > 0.0);
//! assert_eq!(e.get(Component::Cpu), 0.0); // no compute in this activity
//! ```

pub mod breakdown;
pub mod cacti;
pub mod params;

pub use breakdown::{Component, EnergyBreakdown, COMPONENTS};
pub use cacti::cache_access_energy_pj;
pub use params::{Engine, EnergyParams, OpClass};
