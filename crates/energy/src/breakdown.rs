//! The six-component energy breakdown used throughout the paper.

use std::fmt;
use std::ops::{Add, AddAssign};

/// A system component that consumes energy (the x-axis of Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// Compute energy of whichever engine executed (CPU, PIM core, or
    /// PIM accelerator). This is the paper's "compute" share.
    Cpu,
    /// Private first-level caches (CPU L1, PIM L1, accelerator scratch).
    L1,
    /// The shared last-level cache.
    Llc,
    /// Off-chip interconnect (SoC <-> memory channel).
    Interconnect,
    /// Memory controller.
    MemCtrl,
    /// DRAM arrays plus in-stack (TSV) transport.
    Dram,
}

/// All components in presentation order.
pub const COMPONENTS: [Component; 6] = [
    Component::Cpu,
    Component::L1,
    Component::Llc,
    Component::Interconnect,
    Component::MemCtrl,
    Component::Dram,
];

impl Component {
    /// Short label used in printed tables.
    pub fn label(self) -> &'static str {
        match self {
            Component::Cpu => "CPU",
            Component::L1 => "L1",
            Component::Llc => "LLC",
            Component::Interconnect => "Interconnect",
            Component::MemCtrl => "MemCtrl",
            Component::Dram => "DRAM",
        }
    }

    /// Whether this component counts as data movement (everything but CPU),
    /// per the paper's definition in §4.2.1.
    pub fn is_data_movement(self) -> bool {
        !matches!(self, Component::Cpu)
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Energy per component, in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    values: [f64; 6],
}

impl EnergyBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(c: Component) -> usize {
        // Must match the order of `COMPONENTS` (asserted in tests); a
        // match compiles to a constant, unlike a linear search, and this
        // sits on the per-access energy-pricing hot path.
        match c {
            Component::Cpu => 0,
            Component::L1 => 1,
            Component::Llc => 2,
            Component::Interconnect => 3,
            Component::MemCtrl => 4,
            Component::Dram => 5,
        }
    }

    /// Energy of one component, in pJ.
    pub fn get(&self, c: Component) -> f64 {
        self.values[Self::idx(c)]
    }

    /// Add `pj` picojoules to one component.
    pub fn add_pj(&mut self, c: Component, pj: f64) {
        debug_assert!(pj >= 0.0, "energy must be non-negative");
        self.values[Self::idx(c)] += pj;
    }

    /// Mutable access to one component's accumulator, in pJ.
    ///
    /// Used by the ranged-access engine to replay a streak of identical
    /// per-row adds against a single lane; ordinary callers should prefer
    /// [`Self::add_pj`].
    pub fn get_mut(&mut self, c: Component) -> &mut f64 {
        &mut self.values[Self::idx(c)]
    }

    /// Total energy across all components, in pJ.
    pub fn total_pj(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Energy spent moving data (all components except CPU), in pJ.
    pub fn data_movement_pj(&self) -> f64 {
        self.total_pj() - self.get(Component::Cpu)
    }

    /// Compute energy (the CPU component), in pJ.
    pub fn compute_pj(&self) -> f64 {
        self.get(Component::Cpu)
    }

    /// Fraction of total energy spent on data movement, in `[0, 1]`.
    ///
    /// Returns 0 for an empty breakdown.
    pub fn data_movement_fraction(&self) -> f64 {
        let t = self.total_pj();
        if t == 0.0 {
            0.0
        } else {
            self.data_movement_pj() / t
        }
    }

    /// Iterate `(component, pJ)` pairs in presentation order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, f64)> + '_ {
        COMPONENTS.iter().map(move |&c| (c, self.get(c)))
    }

    /// Scale every component by a factor (used for amortizing per-frame
    /// measurements up to full-clip numbers).
    pub fn scaled(&self, factor: f64) -> Self {
        let mut out = *self;
        for v in &mut out.values {
            *v *= factor;
        }
        out
    }
}

impl Add for EnergyBreakdown {
    type Output = Self;
    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        for (a, b) in self.values.iter_mut().zip(rhs.values.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_pj().max(f64::MIN_POSITIVE);
        for (i, (c, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{}: {:.1}%", c, 100.0 * v / total)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_matches_presentation_order() {
        for (i, &c) in COMPONENTS.iter().enumerate() {
            assert_eq!(EnergyBreakdown::idx(c), i, "{c}");
        }
    }

    #[test]
    fn add_and_total() {
        let mut e = EnergyBreakdown::new();
        e.add_pj(Component::Cpu, 10.0);
        e.add_pj(Component::Dram, 30.0);
        assert_eq!(e.total_pj(), 40.0);
        assert_eq!(e.compute_pj(), 10.0);
        assert_eq!(e.data_movement_pj(), 30.0);
        assert!((e.data_movement_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fraction_is_zero() {
        assert_eq!(EnergyBreakdown::new().data_movement_fraction(), 0.0);
    }

    #[test]
    fn sum_of_breakdowns() {
        let mut a = EnergyBreakdown::new();
        a.add_pj(Component::L1, 1.0);
        let mut b = EnergyBreakdown::new();
        b.add_pj(Component::L1, 2.0);
        b.add_pj(Component::Llc, 5.0);
        let c = a + b;
        assert_eq!(c.get(Component::L1), 3.0);
        assert_eq!(c.get(Component::Llc), 5.0);
    }

    #[test]
    fn scaling() {
        let mut a = EnergyBreakdown::new();
        a.add_pj(Component::MemCtrl, 4.0);
        assert_eq!(a.scaled(2.5).get(Component::MemCtrl), 10.0);
    }

    #[test]
    fn component_classification() {
        assert!(!Component::Cpu.is_data_movement());
        for c in COMPONENTS.iter().skip(1) {
            assert!(c.is_data_movement(), "{c} should be data movement");
        }
    }

    #[test]
    fn display_is_nonempty() {
        let mut e = EnergyBreakdown::new();
        e.add_pj(Component::Dram, 1.0);
        assert!(format!("{e}").contains("DRAM"));
    }
}
