//! Mini-CACTI: an analytic SRAM access-energy model at 22 nm.
//!
//! The paper uses CACTI-P 6.5 with a 22 nm process to estimate L1 and L2
//! cache energy (§3.1). CACTI itself is a large C++ tool; what the study
//! needs from it is a monotone map from cache geometry to per-access energy.
//! We fit a two-term analytic model to published CACTI numbers for mobile
//! caches at 22 nm:
//!
//! * dynamic read energy grows roughly with the square root of capacity
//!   (wordline/bitline length grows with array edge), and
//! * each additional way adds tag-compare and way-mux energy.
//!
//! The constants below land the paper's geometries at ~12 pJ for a 64 kB
//! 4-way L1 and ~57 pJ for a 2 MB 8-way LLC — in the range CACTI reports
//! for low-power 22 nm SRAM.

/// Per-access dynamic energy of a set-associative SRAM cache, in pJ.
///
/// `capacity_bytes` is total data capacity; `associativity` the number of
/// ways. The line size is assumed 64 B (the model folds it into the
/// constants).
///
/// # Panics
///
/// Panics if `capacity_bytes` or `associativity` is zero.
///
/// ```
/// use pim_energy::cache_access_energy_pj;
/// let l1 = cache_access_energy_pj(64 * 1024, 4);
/// let llc = cache_access_energy_pj(2 * 1024 * 1024, 8);
/// assert!(l1 < llc);
/// ```
pub fn cache_access_energy_pj(capacity_bytes: u64, associativity: usize) -> f64 {
    assert!(capacity_bytes > 0, "capacity must be nonzero");
    assert!(associativity > 0, "associativity must be nonzero");
    let kb = capacity_bytes as f64 / 1024.0;
    // Fitted to CACTI-P 22 nm LSTP numbers.
    1.2 * kb.sqrt() + 0.5 * associativity as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries_in_expected_range() {
        let l1 = cache_access_energy_pj(64 * 1024, 4);
        assert!((8.0..16.0).contains(&l1), "L1 = {l1} pJ");
        let llc = cache_access_energy_pj(2 * 1024 * 1024, 8);
        assert!((40.0..80.0).contains(&llc), "LLC = {llc} pJ");
        let pim_l1 = cache_access_energy_pj(32 * 1024, 4);
        assert!(pim_l1 < l1);
    }

    #[test]
    fn monotone_in_capacity_and_ways() {
        assert!(cache_access_energy_pj(1024, 1) < cache_access_energy_pj(2048, 1));
        assert!(cache_access_energy_pj(1024, 2) < cache_access_energy_pj(1024, 4));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        cache_access_energy_pj(0, 4);
    }
}
