//! Energy parameters and pricing of simulator activity.

use crate::breakdown::{Component, EnergyBreakdown};
use crate::cacti::cache_access_energy_pj;
use pim_memsim::Activity;

/// The engine executing instructions (determines per-op energy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// An out-of-order SoC CPU core (fetch/decode/rename overheads included).
    SocCpu,
    /// The 1-wide in-order PIM core (ARM Cortex-R8-class, §3.3).
    PimCore,
    /// A fixed-function PIM accelerator (20x the CPU's efficiency, §3.1).
    PimAccel,
    /// Dedicated on-SoC codec hardware (VP9 decoder/encoder RTL, §6.3/§7.3);
    /// an order of magnitude more efficient than PIM-core software (§10.3.2).
    CodecHw,
}

/// Instruction classes with distinct energy/throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Scalar integer ALU / logic / address math.
    Scalar,
    /// A 4-wide SIMD operation (counts as one op).
    Simd,
    /// Integer multiply (or multiply-accumulate lane).
    Mul,
    /// Branch (resolved; misprediction costs are folded into IPC).
    Branch,
}

/// All energy constants of the model, in picojoules (per op / per bit).
///
/// Defaults are drawn from the public literature the paper cites:
/// Keckler et al. (IEEE Micro'11) for pJ/bit ratios of on-/off-chip
/// transport, the HMC/HBM specs for in-stack transport, Vasilakis (TR-450)
/// for ARM per-instruction energy, and CACTI-style SRAM scaling (see
/// [`crate::cacti`]). The PIM accelerator is priced at CPU efficiency / 20,
/// following §3.1's conservative assumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy per scalar instruction on the SoC CPU.
    pub cpu_op_pj: f64,
    /// Energy per SIMD instruction on the SoC CPU (NEON-class, 128-bit).
    pub cpu_simd_pj: f64,
    /// Energy per scalar instruction on the PIM core.
    pub pim_op_pj: f64,
    /// Energy per SIMD instruction on the PIM core (4-wide, §3.3).
    pub pim_simd_pj: f64,
    /// Energy per operation on a fixed-function PIM accelerator.
    pub accel_op_pj: f64,
    /// Energy per operation on dedicated SoC codec hardware.
    pub codec_hw_op_pj: f64,
    /// L1 access energy (computed from geometry by [`EnergyParams::default`]).
    pub l1_access_pj: f64,
    /// LLC access energy.
    pub llc_access_pj: f64,
    /// Accelerator scratch-buffer access energy.
    pub scratch_access_pj: f64,
    /// Memory-controller energy per bit of DRAM traffic.
    pub memctrl_pj_per_bit: f64,
    /// LPDDR3 DRAM array energy per bit.
    pub lpddr3_array_pj_per_bit: f64,
    /// Off-chip interconnect (channel/PHY/SerDes) energy per bit.
    pub offchip_pj_per_bit: f64,
    /// 3D-stacked DRAM array + TSV transport energy per bit.
    pub stacked_internal_pj_per_bit: f64,
    /// Row activation energy (per activation), shared by both DRAM kinds.
    pub row_activate_pj: f64,
    /// Energy per CPU<->PIM coherence message.
    pub coherence_msg_pj: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            cpu_op_pj: 75.0,
            cpu_simd_pj: 150.0,
            pim_op_pj: 12.0,
            pim_simd_pj: 25.0,
            accel_op_pj: 75.0 / 20.0,
            codec_hw_op_pj: 1.5,
            l1_access_pj: cache_access_energy_pj(64 * 1024, 4),
            llc_access_pj: cache_access_energy_pj(2 * 1024 * 1024, 8),
            scratch_access_pj: cache_access_energy_pj(32 * 1024, 4),
            memctrl_pj_per_bit: 1.0,
            lpddr3_array_pj_per_bit: 4.0,
            offchip_pj_per_bit: 12.0,
            stacked_internal_pj_per_bit: 4.0,
            row_activate_pj: 900.0,
            coherence_msg_pj: 200.0,
        }
    }
}

impl EnergyParams {
    /// Energy of one instruction of `class` on `engine`, in pJ.
    pub fn op_energy_pj(&self, engine: Engine, class: OpClass) -> f64 {
        match engine {
            Engine::SocCpu => match class {
                OpClass::Simd => self.cpu_simd_pj,
                OpClass::Mul => self.cpu_op_pj * 1.3,
                _ => self.cpu_op_pj,
            },
            Engine::PimCore => match class {
                OpClass::Simd => self.pim_simd_pj,
                OpClass::Mul => self.pim_op_pj * 1.3,
                _ => self.pim_op_pj,
            },
            Engine::PimAccel => self.accel_op_pj,
            Engine::CodecHw => self.codec_hw_op_pj,
        }
    }

    /// Price a memory-activity record into the component breakdown.
    ///
    /// DRAM bytes moved over the off-chip path use the LPDDR3/off-chip
    /// constants; bytes that stayed in-stack use the cheaper internal
    /// constant. Row activations are charged per miss.
    pub fn price_activity(&self, act: &Activity) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::new();
        e.add_pj(Component::L1, act.l1_accesses as f64 * self.l1_access_pj);
        e.add_pj(Component::L1, act.scratch_accesses as f64 * self.scratch_access_pj);
        e.add_pj(Component::Llc, act.llc_accesses as f64 * self.llc_access_pj);

        let dram_bits = (act.dram_read_bytes + act.dram_write_bytes) as f64 * 8.0;
        e.add_pj(Component::MemCtrl, act.memctrl_requests as f64 * 64.0 * 8.0 * self.memctrl_pj_per_bit);
        e.add_pj(Component::Interconnect, act.offchip_bytes as f64 * 8.0 * self.offchip_pj_per_bit);

        // In-stack traffic (TSVs) is charged to DRAM at the internal rate;
        // traffic with no internal component (LPDDR3) uses the array rate.
        if act.internal_bytes > 0 {
            e.add_pj(Component::Dram, act.internal_bytes as f64 * 8.0 * self.stacked_internal_pj_per_bit);
        } else {
            e.add_pj(Component::Dram, dram_bits * self.lpddr3_array_pj_per_bit);
        }
        e.add_pj(Component::Dram, act.row_misses as f64 * self.row_activate_pj);
        e
    }

    /// Price raw byte movement over a path, without a simulator activity.
    ///
    /// Used by the analytic hardware-codec model (§6.3/§7.3), which reports
    /// per-frame traffic rather than per-access traces. `offchip` selects the
    /// SoC<->DRAM path; otherwise the in-stack PIM path is priced.
    pub fn price_bulk_transfer(&self, bytes: u64, offchip: bool) -> EnergyBreakdown {
        let bits = bytes as f64 * 8.0;
        let mut e = EnergyBreakdown::new();
        if offchip {
            e.add_pj(Component::Interconnect, bits * self.offchip_pj_per_bit);
            e.add_pj(Component::MemCtrl, bits * self.memctrl_pj_per_bit);
            e.add_pj(Component::Dram, bits * self.stacked_internal_pj_per_bit);
        } else {
            e.add_pj(Component::Dram, bits * self.stacked_internal_pj_per_bit);
            e.add_pj(Component::MemCtrl, bits * self.memctrl_pj_per_bit * 0.5);
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accel_is_20x_more_efficient_than_cpu() {
        let p = EnergyParams::default();
        let ratio = p.op_energy_pj(Engine::SocCpu, OpClass::Scalar)
            / p.op_energy_pj(Engine::PimAccel, OpClass::Scalar);
        assert!((ratio - 20.0).abs() < 1e-9);
    }

    #[test]
    fn pim_core_cheaper_than_cpu() {
        let p = EnergyParams::default();
        for class in [OpClass::Scalar, OpClass::Simd, OpClass::Mul, OpClass::Branch] {
            assert!(
                p.op_energy_pj(Engine::PimCore, class) < p.op_energy_pj(Engine::SocCpu, class),
                "{class:?}"
            );
        }
    }

    #[test]
    fn offchip_transfer_costs_more_than_internal() {
        let p = EnergyParams::default();
        let off = p.price_bulk_transfer(1 << 20, true).total_pj();
        let int = p.price_bulk_transfer(1 << 20, false).total_pj();
        assert!(off > 3.0 * int, "off {off} vs internal {int}");
    }

    #[test]
    fn pricing_internal_traffic_is_cheaper_than_lpddr3_path() {
        let p = EnergyParams::default();
        // Same DRAM bytes: once over the off-chip LPDDR3 path, once in-stack.
        let mut cpu = Activity::new();
        cpu.dram_read_bytes = 4096;
        cpu.offchip_bytes = 4096;
        cpu.memctrl_requests = 64;
        let mut pim = Activity::new();
        pim.dram_read_bytes = 4096;
        pim.internal_bytes = 4096;
        pim.memctrl_requests = 64;
        let e_cpu = p.price_activity(&cpu).total_pj();
        let e_pim = p.price_activity(&pim).total_pj();
        assert!(e_cpu > 2.0 * e_pim, "cpu path {e_cpu} vs pim path {e_pim}");
    }

    #[test]
    fn row_misses_add_activation_energy() {
        let p = EnergyParams::default();
        let mut hit = Activity::new();
        hit.dram_read_bytes = 64;
        hit.row_hits = 1;
        let mut miss = hit;
        miss.row_hits = 0;
        miss.row_misses = 1;
        assert!(p.price_activity(&miss).total_pj() > p.price_activity(&hit).total_pj());
    }

    #[test]
    fn codec_hw_is_cheapest_engine() {
        let p = EnergyParams::default();
        assert!(p.op_energy_pj(Engine::CodecHw, OpClass::Scalar) < p.accel_op_pj);
    }
}
