//! Admission control: per-client quotas and a global queue bound.
//!
//! Every admission decision is made *before* anything is journaled or
//! enqueued, and every refusal is a typed
//! [`Reject`](crate::protocol::Reject) — an overloaded server answers
//! `overloaded` immediately instead of stalling the client or growing an
//! unbounded queue. Two limits apply, checked in order:
//!
//! 1. **per-client in-flight** ([`QuotaPolicy::max_in_flight_per_client`]):
//!    jobs a single client has admitted but not yet terminal; one greedy
//!    client cannot monopolize the worker pool.
//! 2. **global queue depth** ([`QuotaPolicy::max_queue_depth`]): total
//!    admitted-but-not-terminal jobs across all clients; bounds server
//!    memory and scheduling latency.
//!
//! The [`ClientLedger`] lives inside the scheduler's state lock, so
//! check-then-admit is atomic with the enqueue.

use std::collections::BTreeMap;

use crate::protocol::Reject;

/// Admission limits. `0` means "unlimited" for either knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaPolicy {
    /// Max jobs one client may have in flight (admitted, not terminal).
    pub max_in_flight_per_client: usize,
    /// Max jobs in flight across all clients.
    pub max_queue_depth: usize,
}

impl Default for QuotaPolicy {
    fn default() -> Self {
        Self { max_in_flight_per_client: 64, max_queue_depth: 1024 }
    }
}

/// Per-client accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounts {
    /// Jobs admitted but not yet terminal.
    pub in_flight: usize,
    /// Jobs ever admitted for this client.
    pub admitted: u64,
    /// Typed rejections returned to this client.
    pub rejected: u64,
}

/// Quota state across all clients (guarded by the scheduler's state lock).
#[derive(Debug, Default)]
pub struct ClientLedger {
    clients: BTreeMap<String, ClientCounts>,
    /// Total admitted-but-not-terminal jobs.
    pub total_in_flight: usize,
}

impl ClientLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to admit one job for `client`. On success the in-flight counts
    /// are already bumped; on refusal nothing changed except the client's
    /// rejection count, and the typed reason is returned.
    pub fn admit(&mut self, client: &str, policy: &QuotaPolicy) -> Result<(), Reject> {
        let counts = self.clients.entry(client.to_string()).or_default();
        let client_cap = policy.max_in_flight_per_client;
        if client_cap > 0 && counts.in_flight >= client_cap {
            counts.rejected += 1;
            return Err(Reject::overloaded("client", counts.in_flight, client_cap));
        }
        let queue_cap = policy.max_queue_depth;
        if queue_cap > 0 && self.total_in_flight >= queue_cap {
            counts.rejected += 1;
            return Err(Reject::overloaded("queue", self.total_in_flight, queue_cap));
        }
        counts.in_flight += 1;
        counts.admitted += 1;
        self.total_in_flight += 1;
        Ok(())
    }

    /// Admit bypassing both limits. Used when replaying journaled
    /// submissions at recovery: they were admitted before the crash, and
    /// quota must not re-litigate (or worse, reject) them.
    pub fn admit_unchecked(&mut self, client: &str) {
        let counts = self.clients.entry(client.to_string()).or_default();
        counts.in_flight += 1;
        counts.admitted += 1;
        self.total_in_flight += 1;
    }

    /// A job reached a terminal state: release its in-flight slot.
    pub fn release(&mut self, client: &str) {
        if let Some(counts) = self.clients.get_mut(client) {
            counts.in_flight = counts.in_flight.saturating_sub(1);
        }
        self.total_in_flight = self.total_in_flight.saturating_sub(1);
    }

    /// Counts for one client, if it has ever been seen.
    pub fn client(&self, client: &str) -> Option<ClientCounts> {
        self.clients.get(client).copied()
    }

    /// Number of distinct clients ever seen.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Total typed rejections across all clients.
    pub fn total_rejected(&self) -> u64 {
        self.clients.values().map(|c| c.rejected).sum()
    }

    /// Iterate `(client, counts)` in name order, for `/metrics`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ClientCounts)> {
        self.clients.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use crate::protocol::RejectKind;

    use super::*;

    #[test]
    fn per_client_cap_trips_with_typed_rejection() {
        let policy = QuotaPolicy { max_in_flight_per_client: 2, max_queue_depth: 100 };
        let mut ledger = ClientLedger::new();
        ledger.admit("a", &policy).unwrap();
        ledger.admit("a", &policy).unwrap();
        let rej = ledger.admit("a", &policy).unwrap_err();
        assert_eq!(rej.kind, RejectKind::Overloaded);
        assert_eq!(rej.scope, Some("client"));
        assert_eq!((rej.current, rej.limit), (Some(2), Some(2)));
        // A different client is unaffected by a's quota.
        ledger.admit("b", &policy).unwrap();
        // Releasing frees the slot.
        ledger.release("a");
        ledger.admit("a", &policy).unwrap();
        assert_eq!(ledger.client("a").unwrap().rejected, 1);
        assert_eq!(ledger.total_rejected(), 1);
    }

    #[test]
    fn global_queue_depth_bounds_all_clients_together() {
        let policy = QuotaPolicy { max_in_flight_per_client: 10, max_queue_depth: 3 };
        let mut ledger = ClientLedger::new();
        for (i, client) in ["a", "b", "c"].iter().enumerate() {
            ledger.admit(client, &policy).unwrap();
            assert_eq!(ledger.total_in_flight, i + 1);
        }
        let rej = ledger.admit("d", &policy).unwrap_err();
        assert_eq!(rej.scope, Some("queue"));
        ledger.release("b");
        ledger.admit("d", &policy).unwrap();
    }

    #[test]
    fn zero_means_unlimited() {
        let policy = QuotaPolicy { max_in_flight_per_client: 0, max_queue_depth: 0 };
        let mut ledger = ClientLedger::new();
        for _ in 0..10_000 {
            ledger.admit("greedy", &policy).unwrap();
        }
        assert_eq!(ledger.total_in_flight, 10_000);
    }
}
