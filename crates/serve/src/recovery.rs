//! The server journal and crash recovery.
//!
//! `pim-serve` writes a single append-only JSONL journal with two record
//! kinds interleaved in arrival order:
//!
//! ```text
//! {"journal":"pim-serve","version":1}
//! {"kind":"sub","id":"fig18","client":"repro","spec":"experiment:fig18"}
//! {"job":"fig18","status":"ok","attempts":1,"output":"..."}
//! ```
//!
//! * a **submission** line is written (and flushed) *before* the job is
//!   enqueued — write-ahead, so an admitted job can never be lost;
//! * a **result** line is written when the job reaches a terminal state,
//!   in exactly the harness journal format
//!   ([`pim_harness::journal::record_line`]), so both journals share one
//!   parser.
//!
//! On restart the server replays the journal: jobs with an intact result
//! are restored verbatim (bit-identical payloads — results carry their
//! output as strings), jobs with only a submission are re-enqueued, and
//! corrupt lines of any kind are skipped and counted, inheriting the
//! harness reader's tolerance for truncated tails, interleaved partial
//! writes, duplicates, and invalid UTF-8. Recovery is why a `SIGKILL`ed
//! server resumes instead of re-running the world.

use std::collections::BTreeMap;
use std::fs::File;
use std::path::{Path, PathBuf};

use pim_harness::journal::{parse_flat_object, parse_result_line, record_line, Field};
use pim_harness::{FsyncPolicy, JobResult, JournalSink, RecordWriter};
use pim_trace::json::write_escaped;

use crate::deque::Priority;
use crate::ServeError;

/// Magic name in the header line.
const MAGIC: &str = "pim-serve";
/// Journal format version.
const VERSION: u64 = 1;

/// One replayed submission, in journal (arrival) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// Job id.
    pub id: String,
    /// Owning client name.
    pub client: String,
    /// Job spec, e.g. `experiment:fig18`.
    pub spec: String,
    /// Queueing class; recovered jobs re-enqueue in their original lane.
    pub priority: Priority,
}

/// Everything replayed from a server journal.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Submissions in arrival order, deduplicated by id (first wins).
    pub submissions: Vec<Submission>,
    /// Terminal results keyed by job id (later record wins, as in the
    /// harness journal).
    pub results: BTreeMap<String, JobResult>,
    /// Corrupt or unrecognized body lines skipped during replay.
    pub skipped: usize,
    /// Duplicate submission or result records tolerated during replay.
    pub duplicates: usize,
}

impl RecoveredState {
    /// Jobs that were admitted but have no terminal result — the re-run
    /// backlog after a crash.
    pub fn unfinished(&self) -> impl Iterator<Item = &Submission> {
        self.submissions.iter().filter(|s| !self.results.contains_key(&s.id))
    }
}

/// The header line every pim-serve journal starts with.
fn header_line() -> String {
    format!("{{\"journal\":\"{MAGIC}\",\"version\":{VERSION}}}")
}

/// One write-ahead submission record. `priority` is written only when
/// non-default, keeping pre-priority journals byte-identical and
/// readable by both directions.
fn submission_line(sub: &Submission) -> String {
    let mut s = String::from("{\"kind\":\"sub\",\"id\":");
    write_escaped(&mut s, &sub.id);
    s.push_str(",\"client\":");
    write_escaped(&mut s, &sub.client);
    s.push_str(",\"spec\":");
    write_escaped(&mut s, &sub.spec);
    if sub.priority != Priority::Normal {
        s.push_str(",\"priority\":");
        write_escaped(&mut s, sub.priority.label());
    }
    s.push('}');
    s
}

/// Append-only server journal writer on the harness's hardened
/// [`RecordWriter`]: transient write faults (`Interrupted`,
/// `WouldBlock`, zero-length writes) are retried to completion, a failed
/// record leaves the writer *dirty* so the next line is guarded by a
/// newline (torn fragments isolate on their own unparseable line), and
/// the [`FsyncPolicy`] decides how much durability each record buys.
pub struct ServeJournal {
    out: RecordWriter,
}

impl ServeJournal {
    /// Start a fresh journal (truncates) and write the header.
    pub fn create(path: &Path) -> Result<Self, ServeError> {
        Self::create_opts(path, FsyncPolicy::default())
    }

    /// [`ServeJournal::create`] with an explicit durability policy.
    pub fn create_opts(path: &Path, fsync: FsyncPolicy) -> Result<Self, ServeError> {
        let out = RecordWriter::create(path, fsync).map_err(|e| ServeError::io(path, &e))?;
        let mut w = Self { out };
        w.line(&header_line())?;
        Ok(w)
    }

    /// Build a journal over an arbitrary sink (tests inject
    /// chaos-wrapped files here). The header is written through the
    /// sink, so a faulting sink can fail journal creation the same way a
    /// faulting disk would.
    pub fn from_sink(
        path: &Path,
        sink: Box<dyn JournalSink>,
        fsync: FsyncPolicy,
    ) -> Result<Self, ServeError> {
        let mut w = Self { out: RecordWriter::from_sink(path, sink, fsync) };
        w.line(&header_line())?;
        Ok(w)
    }

    /// Open an existing journal and replay it, then keep appending. A
    /// missing file degrades to [`ServeJournal::create`] with an empty
    /// state, so first start and restart share a command line.
    pub fn recover(path: &Path) -> Result<(Self, RecoveredState), ServeError> {
        Self::recover_opts(path, FsyncPolicy::default())
    }

    /// [`ServeJournal::recover`] with an explicit durability policy. If
    /// the replay found damage (skipped lines or duplicates), the journal
    /// is first compacted — rewritten atomically (tmp + rename) from the
    /// recovered state — so debris does not accumulate across restarts.
    /// Compaction failure is non-fatal: the damaged journal is still
    /// readable, so the server keeps appending to it.
    pub fn recover_opts(
        path: &Path,
        fsync: FsyncPolicy,
    ) -> Result<(Self, RecoveredState), ServeError> {
        if !path.exists() {
            return Ok((Self::create_opts(path, fsync)?, RecoveredState::default()));
        }
        let state = read_serve_journal(path)?;
        if state.skipped > 0 || state.duplicates > 0 {
            if let Err(e) = compact_serve_journal(path, &state) {
                eprintln!("pim-serve: journal compaction skipped: {e}");
            }
        }
        let out = RecordWriter::append(path, fsync).map_err(|e| ServeError::io(path, &e))?;
        Ok((Self { out }, state))
    }

    /// Write-ahead record of an admitted submission.
    pub fn record_submission(&mut self, sub: &Submission) -> Result<(), ServeError> {
        self.line(&submission_line(sub))
    }

    /// Record a terminal result (harness journal format).
    pub fn record_result(&mut self, r: &JobResult) -> Result<(), ServeError> {
        self.line(&record_line(r))
    }

    fn line(&mut self, s: &str) -> Result<(), ServeError> {
        let path = self.out.path().to_path_buf();
        self.out.write_line(s).map_err(|e| ServeError::io(&path, &e))
    }
}

/// Rewrite a damaged journal from its recovered state: header, then each
/// surviving submission (synthesized orphans excepted — their marker is
/// the *absence* of a submission line) followed by its result. The new
/// file is synced and renamed over the old one, so a crash mid-compaction
/// leaves either the old journal or the new one, never a mix.
fn compact_serve_journal(path: &Path, state: &RecoveredState) -> std::io::Result<()> {
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    let mut text = header_line();
    text.push('\n');
    for sub in &state.submissions {
        let synthesized = sub.client.is_empty() && sub.spec.is_empty();
        if !synthesized {
            text.push_str(&submission_line(sub));
            text.push('\n');
        }
        if let Some(r) = state.results.get(&sub.id) {
            text.push_str(&record_line(r));
            text.push('\n');
        }
    }
    std::fs::write(&tmp, text.as_bytes())?;
    File::open(&tmp)?.sync_all()?;
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Replay a server journal.
///
/// # Errors
///
/// Only unreadable files and a missing/foreign header line are errors.
/// Body damage never is: corrupt lines are skipped and counted,
/// duplicates are tolerated, and a result whose submission line was
/// destroyed is still restored (the orphaned result is re-attached to a
/// synthesized submission so clients can still `wait` for it).
pub fn read_serve_journal(path: &Path) -> Result<RecoveredState, ServeError> {
    let bytes = std::fs::read(path).map_err(|e| ServeError::io(path, &e))?;
    // Lossy decode: invalid UTF-8 garbles only its own line.
    let text = String::from_utf8_lossy(&bytes);
    let mut lines = text.lines();
    let header = lines.next().and_then(parse_flat_object).ok_or_else(|| {
        ServeError::journal(path, "missing or unreadable header line")
    })?;
    match (header.get("journal"), header.get("version")) {
        (Some(Field::Str(m)), Some(Field::Num(v))) if m == MAGIC && *v == VERSION => {}
        _ => return Err(ServeError::journal(path, "header is not a pim-serve v1 journal")),
    }

    let mut state = RecoveredState::default();
    let mut seen_subs: BTreeMap<String, usize> = BTreeMap::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(sub) = parse_submission_line(line) {
            if seen_subs.contains_key(&sub.id) {
                state.duplicates += 1;
            } else {
                seen_subs.insert(sub.id.clone(), state.submissions.len());
                state.submissions.push(sub);
            }
            continue;
        }
        if let Some(result) = parse_result_line(line) {
            if state.results.insert(result.id.clone(), result).is_some() {
                state.duplicates += 1;
            }
            continue;
        }
        state.skipped += 1;
    }

    // Orphaned results (their submission line was destroyed): synthesize
    // a submission so the job still exists, terminal, waitable.
    let orphans: Vec<String> = state
        .results
        .keys()
        .filter(|id| !seen_subs.contains_key(*id))
        .cloned()
        .collect();
    for id in orphans {
        state.submissions.push(Submission {
            id,
            client: String::new(),
            spec: String::new(),
            priority: Priority::Normal,
        });
    }
    Ok(state)
}

fn parse_submission_line(line: &str) -> Option<Submission> {
    let fields = parse_flat_object(line)?;
    let get = |key: &str| match fields.get(key) {
        Some(Field::Str(s)) => Some(s.clone()),
        _ => None,
    };
    if get("kind")? != "sub" {
        return None;
    }
    Some(Submission {
        id: get("id")?,
        client: get("client")?,
        spec: get("spec")?,
        // Absent = pre-priority record = Normal; an unparseable label
        // makes the whole line corrupt (skipped and counted) rather
        // than silently demoting the job.
        priority: match get("priority") {
            None => Priority::Normal,
            Some(p) => Priority::from_label(&p)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use std::fs::OpenOptions;
    use std::io::Write;

    use pim_harness::JobStatus;

    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pim-serve-test-{}-{name}", std::process::id()));
        p
    }

    fn sub(id: &str) -> Submission {
        Submission {
            id: id.into(),
            client: "c1".into(),
            spec: format!("kernel:{id}"),
            priority: Priority::Normal,
        }
    }

    #[test]
    fn priority_survives_the_journal_and_defaults_to_normal() {
        let path = tmp("priority.jsonl");
        {
            let mut j = ServeJournal::create(&path).unwrap();
            j.record_submission(&Submission { priority: Priority::High, ..sub("hot") }).unwrap();
            j.record_submission(&sub("cold")).unwrap();
        }
        // A pre-priority record (no field at all) reads back as Normal.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"kind\":\"sub\",\"id\":\"old\",\"client\":\"c1\",\"spec\":\"kernel:old\"}\n")
            .unwrap();
        // A garbled label is corrupt, not silently demoted.
        f.write_all(b"{\"kind\":\"sub\",\"id\":\"bad\",\"client\":\"c1\",\"spec\":\"s\",\"priority\":\"urgent\"}\n")
            .unwrap();
        drop(f);

        let state = read_serve_journal(&path).unwrap();
        let by_id = |id: &str| state.submissions.iter().find(|s| s.id == id).unwrap();
        assert_eq!(by_id("hot").priority, Priority::High);
        assert_eq!(by_id("cold").priority, Priority::Normal);
        assert_eq!(by_id("old").priority, Priority::Normal);
        assert!(state.submissions.iter().all(|s| s.id != "bad"));
        assert_eq!(state.skipped, 1, "the garbled-priority line is counted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_ahead_then_results_replay_in_order() {
        let path = tmp("replay.jsonl");
        {
            let mut j = ServeJournal::create(&path).unwrap();
            j.record_submission(&sub("a")).unwrap();
            j.record_submission(&sub("b")).unwrap();
            j.record_result(&JobResult::ok("a", 1, "out-a".into())).unwrap();
            j.record_submission(&sub("c")).unwrap();
        }
        let (_, state) = ServeJournal::recover(&path).unwrap();
        let ids: Vec<&str> = state.submissions.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids, ["a", "b", "c"], "submission order is arrival order");
        assert_eq!(state.results.len(), 1);
        assert_eq!(state.results["a"].output.as_deref(), Some("out-a"));
        let unfinished: Vec<&str> = state.unfinished().map(|s| s.id.as_str()).collect();
        assert_eq!(unfinished, ["b", "c"], "only jobs without a result re-run");
        assert_eq!((state.skipped, state.duplicates), (0, 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_degrades_to_fresh_journal() {
        let path = tmp("fresh.jsonl");
        std::fs::remove_file(&path).ok();
        let (mut j, state) = ServeJournal::recover(&path).unwrap();
        assert!(state.submissions.is_empty());
        j.record_submission(&sub("x")).unwrap();
        drop(j);
        let (_, state) = ServeJournal::recover(&path).unwrap();
        assert_eq!(state.submissions.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_matrix_is_skipped_and_counted() {
        let path = tmp("corrupt.jsonl");
        {
            let mut j = ServeJournal::create(&path).unwrap();
            j.record_submission(&sub("a")).unwrap();
            j.record_result(&JobResult::ok("a", 1, "out-a".into())).unwrap();
            j.record_submission(&sub("b")).unwrap();
        }
        // Torn-write debris: a truncated result line, raw NULs, invalid
        // UTF-8, a duplicated submission, and a duplicated result.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"job\":\"half\",\"sta").unwrap();
        f.write_all(b"\n\x00\x00\x00\n").unwrap();
        f.write_all(b"{\"kind\":\"sub\",\"id\":\"\xff\xfe\n").unwrap();
        f.write_all(b"{\"kind\":\"sub\",\"id\":\"a\",\"client\":\"c1\",\"spec\":\"kernel:a\"}\n")
            .unwrap();
        f.write_all(b"{\"job\":\"a\",\"status\":\"ok\",\"attempts\":2,\"output\":\"later\"}\n")
            .unwrap();
        drop(f);

        let state = read_serve_journal(&path).unwrap();
        assert_eq!(state.skipped, 3, "torn line + NUL line + invalid-UTF-8 line");
        assert_eq!(state.duplicates, 2, "one dup submission, one dup result");
        assert_eq!(state.submissions.len(), 2);
        assert_eq!(state.results["a"].output.as_deref(), Some("later"), "later record wins");
        assert_eq!(state.unfinished().count(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn orphaned_result_synthesizes_its_submission() {
        let path = tmp("orphan.jsonl");
        {
            let mut j = ServeJournal::create(&path).unwrap();
            j.record_result(&JobResult::failed(
                "ghost",
                JobStatus::Failed,
                1,
                &pim_harness::JobFailure::Panicked { message: "boom".into() },
            ))
            .unwrap();
        }
        let state = read_serve_journal(&path).unwrap();
        assert_eq!(state.submissions.len(), 1, "synthesized so the result stays waitable");
        assert_eq!(state.submissions[0].id, "ghost");
        assert!(state.submissions[0].spec.is_empty());
        assert_eq!(state.unfinished().count(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_compacts_a_damaged_journal_atomically() {
        let path = tmp("compact.jsonl");
        {
            let mut j = ServeJournal::create(&path).unwrap();
            j.record_submission(&sub("a")).unwrap();
            j.record_result(&JobResult::ok("a", 1, "out-a".into())).unwrap();
            j.record_submission(&sub("b")).unwrap();
        }
        // Damage: torn debris, a duplicate submission, and an orphaned
        // result whose submission line never made it.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"job\":\"half\",\"sta").unwrap();
        f.write_all(b"\n{\"kind\":\"sub\",\"id\":\"a\",\"client\":\"c1\",\"spec\":\"kernel:a\"}\n")
            .unwrap();
        f.write_all(b"{\"job\":\"ghost\",\"status\":\"ok\",\"attempts\":1,\"output\":\"boo\"}\n")
            .unwrap();
        drop(f);

        let (_, state) = ServeJournal::recover(&path).unwrap();
        assert_eq!(state.skipped, 1, "recover still reports what it healed");
        assert_eq!(state.duplicates, 1);

        // The journal on disk was compacted: a second recover is clean,
        // with identical surviving state and no leftover tmp file.
        let (_, clean) = ServeJournal::recover(&path).unwrap();
        assert_eq!((clean.skipped, clean.duplicates), (0, 0));
        let ids: Vec<&str> = clean.submissions.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids, ["a", "b", "ghost"]);
        assert_eq!(clean.results["a"].output.as_deref(), Some("out-a"));
        assert_eq!(clean.results["ghost"].output.as_deref(), Some("boo"));
        assert!(
            clean.submissions[2].spec.is_empty(),
            "orphan stays synthesized across compaction"
        );
        assert!(!PathBuf::from(format!("{}.tmp", path.display())).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_over_a_failing_sink_reports_create_failure() {
        struct Dead;
        impl std::io::Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::StorageFull))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        impl pim_harness::JournalSink for Dead {}
        let err = ServeJournal::from_sink(Path::new("/dev/null"), Box::new(Dead), FsyncPolicy::Off);
        assert!(err.is_err(), "header write through a dead sink must fail creation");
    }

    #[test]
    fn foreign_journal_is_rejected() {
        let path = tmp("foreign.jsonl");
        std::fs::write(&path, "{\"journal\":\"pim-harness\",\"version\":1,\"jobs\":3}\n").unwrap();
        assert!(ServeJournal::recover(&path).is_err());
        std::fs::write(&path, "garbage\n").unwrap();
        assert!(ServeJournal::recover(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
