//! Hand-rolled work-stealing deques: a bounded Chase–Lev-style deque per
//! worker plus a global FIFO injector.
//!
//! Tasks are packed `u64`s (job index × attempt — see [`Task`]), which is
//! what makes a fully *safe* lock-free deque possible: the ring buffer is
//! a fixed array of `AtomicU64` slots, so there is no uninitialized
//! memory, no resizing, and no `unsafe`. The algorithm is the classic
//! Chase–Lev shape (Chase & Lev, SPAA'05; memory orderings per Lê et al.,
//! PPoPP'13):
//!
//! * the **owner** pushes and pops at the *bottom* (LIFO, cache-warm);
//! * **thieves** steal from the *top* (FIFO, oldest first) with a CAS on
//!   `top`;
//! * the one contended case — owner and thief racing for the last
//!   element — is resolved by the same CAS.
//!
//! Slot reuse is safe because [`WsDeque::push`] refuses to overwrite a
//! slot that an in-flight steal may still read: an un-stolen task at
//! index `t` keeps `bottom - top < capacity`, and a full deque returns
//! the task to the caller (who falls back to the [`Injector`]).

use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicI64, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Per-job scheduling class. Priority acts at the [`Injector`]: `High`
/// submissions drain ahead of `Normal` ones, with a fairness escape
/// valve (see [`Injector`]) so a sustained high-priority stream can
/// never starve the normal queue. Tasks already batched into a worker's
/// deque are past the queueing decision and run regardless of class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Priority {
    /// Jump the global backlog (interactive probes, deadline jobs).
    High,
    /// The default class for bulk sweep work.
    #[default]
    Normal,
}

impl Priority {
    /// Wire/journal label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
        }
    }

    /// Inverse of [`Priority::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            _ => None,
        }
    }
}

/// A scheduler task: one attempt of one job, packed into a `u64` so it
/// fits an atomic deque slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// Index into the scheduler's append-only job table.
    pub job: u32,
    /// 1-based attempt number.
    pub attempt: u32,
}

impl Task {
    /// Pack into the `u64` slot representation.
    pub fn pack(self) -> u64 {
        (u64::from(self.job) << 32) | u64::from(self.attempt)
    }

    /// Unpack from the `u64` slot representation.
    pub fn unpack(raw: u64) -> Self {
        Self { job: (raw >> 32) as u32, attempt: raw as u32 }
    }
}

/// Bounded, safe, Chase–Lev-style single-owner / multi-thief deque.
#[derive(Debug)]
pub struct WsDeque {
    /// Owner end. Only the owner mutates it.
    bottom: AtomicI64,
    /// Thief end. Advanced by CAS from any thread.
    top: AtomicI64,
    slots: Box<[AtomicU64]>,
    mask: i64,
}

impl WsDeque {
    /// A deque holding at most `capacity` tasks (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<AtomicU64> = (0..cap).map(|_| AtomicU64::new(0)).collect();
        Self {
            bottom: AtomicI64::new(0),
            top: AtomicI64::new(0),
            slots: slots.into_boxed_slice(),
            mask: cap as i64 - 1,
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate number of queued tasks (exact from the owner thread).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// Whether the deque looks empty (racy for non-owners, which is fine:
    /// thieves confirm through [`WsDeque::steal`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: push a task at the bottom. Returns `Err(task)` when
    /// the deque is full — the caller overflows to the injector rather
    /// than blocking or clobbering a stealable slot.
    pub fn push(&self, task: Task) -> Result<(), Task> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) > self.mask {
            return Err(task); // full (a stale `t` only over-reports fullness)
        }
        self.slots[(b & self.mask) as usize].store(task.pack(), Ordering::Relaxed);
        self.bottom.store(b.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Owner-only: pop the most recently pushed task (LIFO).
    pub fn pop(&self) -> Option<Task> {
        let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty; restore bottom.
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return None;
        }
        let raw = self.slots[(b & self.mask) as usize].load(Ordering::Relaxed);
        if t == b {
            // Last element: race thieves for it with the same CAS they use.
            let won = self
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return won.then(|| Task::unpack(raw));
        }
        Some(Task::unpack(raw))
    }

    /// Thief: steal the oldest task (FIFO). `None` means empty *or* lost
    /// a race; callers treat both as "try elsewhere".
    pub fn steal(&self) -> Option<Task> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        let raw = self.slots[(t & self.mask) as usize].load(Ordering::Relaxed);
        self.top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .ok()
            .map(|_| Task::unpack(raw))
    }
}

/// The two priority FIFOs behind the injector's mutex, plus the
/// fairness state that keeps the normal lane live under high pressure.
#[derive(Debug, Default)]
struct Lanes {
    high: VecDeque<Task>,
    normal: VecDeque<Task>,
    /// Dequeues served since startup; every [`FAIRNESS_STRIDE`]-th one
    /// offers the normal lane first.
    served: u64,
}

/// One in every this-many injector dequeues serves the normal lane
/// ahead of the high lane, bounding normal-lane wait to a constant
/// factor of service rate no matter how deep the high lane runs.
const FAIRNESS_STRIDE: u64 = 4;

impl Lanes {
    fn next(&mut self) -> Option<Task> {
        if self.high.is_empty() && self.normal.is_empty() {
            return None;
        }
        self.served = self.served.wrapping_add(1);
        let normal_first = self.served.is_multiple_of(FAIRNESS_STRIDE);
        let (first, second) = if normal_first {
            (&mut self.normal, &mut self.high)
        } else {
            (&mut self.high, &mut self.normal)
        };
        first.pop_front().or_else(|| second.pop_front())
    }

    fn lane(&mut self, priority: Priority) -> &mut VecDeque<Task> {
        match priority {
            Priority::High => &mut self.high,
            Priority::Normal => &mut self.normal,
        }
    }

    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }
}

/// The global injector: submissions and retries enter here; idle
/// workers refill their deques from it in batches. A plain mutex-guarded
/// pair of rings is the right tool — the injector is the *cold* path
/// (one lock per batch), while the per-worker deques keep the hot path
/// lock-free.
///
/// Two lanes, one per [`Priority`]. Dequeues prefer the high lane, but
/// every [`FAIRNESS_STRIDE`]-th dequeue serves the normal lane first, so
/// bulk work keeps flowing (starvation-free) under any volume of
/// high-priority traffic.
#[derive(Debug, Default)]
pub struct Injector {
    queue: Mutex<Lanes>,
    /// Signalled on pushes and on shutdown; workers park here when idle.
    pub cv: Condvar,
}

impl Injector {
    /// An empty injector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue one task in its priority lane and wake one parked worker.
    pub fn push(&self, task: Task, priority: Priority) {
        if let Ok(mut q) = self.queue.lock() {
            q.lane(priority).push_back(task);
        }
        self.cv.notify_one();
    }

    /// Enqueue many `(task, priority)` pairs and wake all parked workers.
    pub fn push_all(&self, tasks: impl IntoIterator<Item = (Task, Priority)>) {
        if let Ok(mut q) = self.queue.lock() {
            for (task, priority) in tasks {
                q.lane(priority).push_back(task);
            }
        }
        self.cv.notify_all();
    }

    /// Pop one task (priority order, fairness-interleaved; FIFO within a
    /// lane).
    pub fn pop(&self) -> Option<Task> {
        self.queue.lock().ok().and_then(|mut q| q.next())
    }

    /// Pop up to `max` tasks: the first is returned for immediate
    /// execution, the rest are pushed into the caller's own deque (until
    /// it fills). One injector lock amortizes a whole batch of work.
    pub fn pop_batch(&self, own: &WsDeque, max: usize) -> Option<Task> {
        let mut q = self.queue.lock().ok()?;
        let first = q.next()?;
        for _ in 1..max {
            let Some(t) = q.next() else { break };
            if let Err(t) = own.push(t) {
                // No room: put it back at the head of its class-agnostic
                // position — the high lane, so it is not demoted behind
                // later normal work it had already beaten.
                q.high.push_front(t);
                break;
            }
        }
        Some(first)
    }

    /// Park until the injector has work, a notification arrives, or
    /// `timeout` elapses. Idle workers call this between scan rounds so a
    /// quiet server burns no CPU, while the bounded timeout keeps them
    /// periodically re-scanning sibling deques for stealable work.
    pub fn wait(&self, timeout: std::time::Duration) {
        if let Ok(q) = self.queue.lock() {
            if q.len() == 0 {
                let _ = self.cv.wait_timeout(q, timeout);
            }
        }
    }

    /// Number of queued tasks across both lanes.
    pub fn len(&self) -> usize {
        self.queue.lock().map(|q| q.len()).unwrap_or(0)
    }

    /// Whether the injector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    use super::*;

    #[test]
    fn task_packing_round_trips() {
        for (job, attempt) in [(0, 1), (7, 3), (u32::MAX, u32::MAX), (1 << 31, 2)] {
            let t = Task { job, attempt };
            assert_eq!(Task::unpack(t.pack()), t);
        }
    }

    #[test]
    fn owner_lifo_thief_fifo() {
        let d = WsDeque::new(8);
        for i in 0..4 {
            d.push(Task { job: i, attempt: 1 }).unwrap();
        }
        assert_eq!(d.steal().unwrap().job, 0, "thieves take the oldest");
        assert_eq!(d.pop().unwrap().job, 3, "the owner takes the newest");
        assert_eq!(d.steal().unwrap().job, 1);
        assert_eq!(d.pop().unwrap().job, 2);
        assert!(d.pop().is_none());
        assert!(d.steal().is_none());
    }

    #[test]
    fn full_deque_rejects_instead_of_clobbering() {
        let d = WsDeque::new(2);
        d.push(Task { job: 0, attempt: 1 }).unwrap();
        d.push(Task { job: 1, attempt: 1 }).unwrap();
        assert_eq!(d.push(Task { job: 2, attempt: 1 }), Err(Task { job: 2, attempt: 1 }));
        assert_eq!(d.steal().unwrap().job, 0);
        d.push(Task { job: 2, attempt: 1 }).unwrap();
        assert_eq!(d.len(), 2);
    }

    /// The load-bearing property: under concurrent owner pops and
    /// multi-thief steals, every task is claimed exactly once.
    #[test]
    fn concurrent_steal_stress_claims_each_task_exactly_once() {
        const TASKS: u32 = 20_000;
        const THIEVES: usize = 3;
        let deque = Arc::new(WsDeque::new(256));
        let claimed: Arc<Vec<AtomicBool>> =
            Arc::new((0..TASKS).map(|_| AtomicBool::new(false)).collect());
        let done = Arc::new(AtomicBool::new(false));

        let mut handles = Vec::new();
        for _ in 0..THIEVES {
            let deque = Arc::clone(&deque);
            let claimed = Arc::clone(&claimed);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                let mut got = 0u32;
                loop {
                    if let Some(t) = deque.steal() {
                        assert!(
                            !claimed[t.job as usize].swap(true, Ordering::SeqCst),
                            "task {} stolen twice",
                            t.job
                        );
                        got += 1;
                    } else if done.load(Ordering::SeqCst) && deque.is_empty() {
                        break;
                    } else {
                        std::hint::spin_loop();
                    }
                }
                got
            }));
        }

        // Owner: push everything, popping now and then like a real worker.
        let mut owner_got = 0u32;
        for i in 0..TASKS {
            let mut task = Task { job: i, attempt: 1 };
            loop {
                match deque.push(task) {
                    Ok(()) => break,
                    Err(t) => {
                        task = t;
                        // Full: drain one locally to make room.
                        if let Some(p) = deque.pop() {
                            assert!(!claimed[p.job as usize].swap(true, Ordering::SeqCst));
                            owner_got += 1;
                        }
                    }
                }
            }
            if i % 7 == 0 {
                if let Some(p) = deque.pop() {
                    assert!(!claimed[p.job as usize].swap(true, Ordering::SeqCst));
                    owner_got += 1;
                }
            }
        }
        while let Some(p) = deque.pop() {
            assert!(!claimed[p.job as usize].swap(true, Ordering::SeqCst));
            owner_got += 1;
        }
        done.store(true, Ordering::SeqCst);

        let stolen: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(owner_got + stolen, TASKS, "no task lost, none doubled");
        assert!(claimed.iter().all(|c| c.load(Ordering::SeqCst)));
    }

    #[test]
    fn injector_batch_refill_fills_own_deque() {
        let inj = Injector::new();
        let own = WsDeque::new(4);
        inj.push_all((0..10).map(|i| (Task { job: i, attempt: 1 }, Priority::Normal)));
        let first = inj.pop_batch(&own, 4).unwrap();
        assert_eq!(first.job, 0, "injector is FIFO within a lane");
        assert_eq!(own.len(), 3, "batch minus the returned head");
        assert_eq!(inj.len(), 6);
        // Own deque serves the batch before the next refill.
        assert_eq!(own.steal().unwrap().job, 1);
    }

    #[test]
    fn priority_labels_round_trip() {
        for p in [Priority::High, Priority::Normal] {
            assert_eq!(Priority::from_label(p.label()), Some(p));
        }
        assert_eq!(Priority::from_label("urgent"), None);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn high_lane_drains_first_but_normal_is_never_starved() {
        let inj = Injector::new();
        // 8 normal submissions already queued when a burst of 8 highs
        // lands on top.
        inj.push_all((0..8).map(|i| (Task { job: i, attempt: 1 }, Priority::Normal)));
        inj.push_all((100..108).map(|i| (Task { job: i, attempt: 1 }, Priority::High)));
        let order: Vec<u32> = std::iter::from_fn(|| inj.pop()).map(|t| t.job).collect();
        assert_eq!(order.len(), 16, "nothing lost");
        // Highs dominate the front of the schedule...
        let first_half_highs = order[..8].iter().filter(|&&j| j >= 100).count();
        assert!(first_half_highs >= 6, "high lane jumps the backlog: {order:?}");
        // ...but the fairness stride admits a normal task at least once
        // per stride while highs are still pending (starvation-free).
        let first_normal = order.iter().position(|&j| j < 100).unwrap();
        assert!(
            first_normal < FAIRNESS_STRIDE as usize,
            "a normal task must be served within one stride: {order:?}"
        );
        // Within each lane, FIFO order is preserved.
        let highs: Vec<u32> = order.iter().copied().filter(|&j| j >= 100).collect();
        let normals: Vec<u32> = order.iter().copied().filter(|&j| j < 100).collect();
        assert_eq!(highs, (100..108).collect::<Vec<_>>());
        assert_eq!(normals, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_lanes_do_not_burn_fairness_credit() {
        let inj = Injector::new();
        // Draining an all-normal queue must yield everything even though
        // the high lane stays empty (the stride offer falls through).
        inj.push_all((0..10).map(|i| (Task { job: i, attempt: 1 }, Priority::Normal)));
        let got: Vec<u32> = std::iter::from_fn(|| inj.pop()).map(|t| t.job).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        // And an all-high queue likewise.
        inj.push_all((0..10).map(|i| (Task { job: i, attempt: 1 }, Priority::High)));
        let got: Vec<u32> = std::iter::from_fn(|| inj.pop()).map(|t| t.job).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
