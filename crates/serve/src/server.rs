//! The TCP listener and per-connection protocol loop.
//!
//! One thread per connection, JSONL request/response (see
//! [`crate::protocol`]). The same port also answers plain HTTP `GET`
//! (`/metrics`, `/healthz`) so scrape tooling needs no special client —
//! the first bytes of a connection decide which dialect it speaks.
//!
//! The accept loop polls the [`crate::signal`] latch: SIGTERM or ctrl-c
//! starts a graceful drain (stop admitting, finish in-flight, journal
//! everything), after which [`Server::run`] returns. Connection threads
//! are hardened against hostile or broken peers:
//!
//! * **bounded reads** — a 500 ms read timeout lets the thread notice a
//!   server stop under an idle peer instead of blocking forever;
//! * **bounded lines** — request lines are read through a capped
//!   accumulator ([`MAX_REQUEST_LINE`] / [`MAX_HTTP_LINE`]), so a peer
//!   streaming an endless newline-free line gets a typed `bad-request`
//!   and a closed connection, not unbounded server memory;
//! * **bounded writes** — a write deadline on every accepted stream
//!   means a peer that stops reading (slowloris) cannot pin the thread;
//!   HTTP response write failures are counted
//!   (`serve.http_write_errors`) and logged once per connection.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use pim_trace::Tracer;

use crate::protocol::{Reject, RejectKind, Request, Response, ShutdownMode, PROTOCOL_VERSION, SERVER_NAME};
use crate::scheduler::{Scheduler, SubmitOutcome, WaitOutcome};
use crate::{signal, ServeError};

/// Longest accepted JSONL request line (bytes, excluding the newline).
/// Generous for real requests — a submit line is tens of bytes — while
/// bounding what a hostile peer can make the server buffer.
pub const MAX_REQUEST_LINE: usize = 64 * 1024;
/// Longest accepted HTTP request or header line.
pub const MAX_HTTP_LINE: usize = 8 * 1024;
/// Most header lines drained before the server answers anyway.
const MAX_HTTP_HEADER_LINES: usize = 100;

/// The listening service. Owns nothing but the socket — the scheduler is
/// shared so embedders (and tests) can drive it directly.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    tracer: Tracer,
    local_addr: SocketAddr,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:7009`, or port `0` for an
    /// ephemeral port — see [`Server::local_addr`]).
    pub fn bind(addr: &str, scheduler: Arc<Scheduler>, tracer: Tracer) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::net(&e))?;
        let local_addr = listener.local_addr().map_err(|e| ServeError::net(&e))?;
        listener.set_nonblocking(true).map_err(|e| ServeError::net(&e))?;
        Ok(Self { listener, scheduler, tracer, local_addr })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Accept and serve until the scheduler stops (drain completed or
    /// hard stop). Returns once the scheduler has fully wound down.
    pub fn run(&self) -> Result<(), ServeError> {
        loop {
            if signal::requested() && !self.scheduler.is_draining() {
                eprintln!("pim-serve: shutdown signal received, draining");
                self.scheduler.drain();
            }
            if self.scheduler.is_stopped() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let scheduler = Arc::clone(&self.scheduler);
                    let tracer = self.tracer.clone();
                    let _ = std::thread::Builder::new()
                        .name(format!("pim-serve-conn-{peer}"))
                        .spawn(move || serve_connection(stream, peer, &scheduler, &tracer));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(ServeError::net(&e)),
            }
        }
        self.scheduler.join();
        Ok(())
    }
}

/// Outcome of one capped line read.
enum CappedLine {
    /// A complete line, newline stripped (lossy-decoded if not UTF-8).
    Line(String),
    /// Clean EOF at a line boundary.
    Eof,
    /// EOF mid-line; what arrived before it.
    EofPartial(String),
    /// The line exceeded the cap; the connection should be closed.
    TooLong,
    /// The stall callback asked to give up (server stopping, or an HTTP
    /// header block that went quiet).
    Stalled,
    /// Hard read error.
    Failed,
}

/// Read one newline-terminated line without ever buffering more than
/// `cap` bytes, regardless of how the peer frames its writes. `on_stall`
/// is consulted on every read timeout (`WouldBlock`/`TimedOut`): return
/// `true` to abort the read, `false` to keep waiting.
fn read_line_capped<R: BufRead>(
    reader: &mut R,
    cap: usize,
    on_stall: &dyn Fn() -> bool,
) -> CappedLine {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (consumed, done) = match reader.fill_buf() {
            Ok([]) => {
                return if buf.is_empty() {
                    CappedLine::Eof
                } else {
                    CappedLine::EofPartial(String::from_utf8_lossy(&buf).into_owned())
                };
            }
            Ok(chunk) => match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    buf.extend_from_slice(&chunk[..pos]);
                    (pos + 1, true)
                }
                None => {
                    buf.extend_from_slice(chunk);
                    (chunk.len(), false)
                }
            },
            Err(e) if e.kind() == ErrorKind::WouldBlock
                || e.kind() == ErrorKind::TimedOut
                || e.kind() == ErrorKind::Interrupted =>
            {
                if on_stall() {
                    return CappedLine::Stalled;
                }
                continue;
            }
            Err(_) => return CappedLine::Failed,
        };
        reader.consume(consumed);
        if buf.len() > cap {
            return CappedLine::TooLong;
        }
        if done {
            return CappedLine::Line(String::from_utf8_lossy(&buf).into_owned());
        }
    }
}

fn serve_connection(stream: TcpStream, peer: SocketAddr, scheduler: &Arc<Scheduler>, tracer: &Tracer) {
    // Bounded reads so this thread notices a server stop under an idle
    // connection; bounded writes so a peer that stops reading cannot pin
    // it (slowloris).
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    // One-line request/response traffic is latency-bound: without
    // nodelay, Nagle + delayed ACK adds ~40 ms to every exchange.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else { return };
    let reader = BufReader::new(read_half);
    serve_lines(reader, stream, &peer.to_string(), scheduler, tracer);
}

/// The dialect-sniffing request loop, generic over the transport so unit
/// tests can drive it with in-memory readers and writers.
fn serve_lines<R: BufRead, W: Write>(
    mut reader: R,
    mut writer: W,
    peer: &str,
    scheduler: &Arc<Scheduler>,
    tracer: &Tracer,
) {
    // Until a hello names the client, quotas key on the peer address.
    let mut client = peer.to_string();
    loop {
        let (line, eof) = match read_line_capped(&mut reader, MAX_REQUEST_LINE, &|| {
            scheduler.is_stopped()
        }) {
            CappedLine::Line(l) => (l, false),
            // EOF mid-line: process what arrived, then close.
            CappedLine::EofPartial(l) => (l, true),
            CappedLine::TooLong => {
                let rej = Response::Rejected(Reject::new(
                    RejectKind::BadRequest,
                    format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                ));
                let _ = write_line(&mut writer, &rej.render());
                return;
            }
            CappedLine::Eof | CappedLine::Stalled | CappedLine::Failed => return,
        };
        let line = line.trim();
        if line.is_empty() {
            if eof {
                return;
            }
            continue;
        }
        if line.starts_with("GET ") || line.starts_with("HEAD ") {
            serve_http(&mut reader, &mut writer, line, peer, scheduler, tracer);
            return; // HTTP/1.0 style: one response, close
        }
        let response = match Request::parse(line) {
            Err(reason) => Response::Rejected(Reject::new(RejectKind::BadRequest, reason)),
            Ok(Request::Hello { client: name }) => {
                client = name;
                Response::Hello { server: SERVER_NAME.into(), version: PROTOCOL_VERSION }
            }
            Ok(Request::Submit { id, spec, priority }) => {
                match scheduler.submit_priority(&client, &id, &spec, priority) {
                    SubmitOutcome::Accepted { state } => {
                        Response::Accepted { id, state: state.to_string() }
                    }
                    SubmitOutcome::Rejected(rej) => Response::Rejected(rej),
                }
            }
            Ok(Request::Wait { id, timeout_ms }) => {
                match scheduler.wait(&id, timeout_ms.map(Duration::from_millis)) {
                    WaitOutcome::Done(r) => Response::Result(r),
                    WaitOutcome::Timeout => Response::Rejected(Reject::new(
                        RejectKind::Timeout,
                        format!("job {id:?} not finished within the wait bound"),
                    )),
                    WaitOutcome::Unknown => Response::Rejected(Reject::new(
                        RejectKind::UnknownJob,
                        format!("no job {id:?} was ever admitted"),
                    )),
                    WaitOutcome::Stopped => Response::Rejected(Reject::new(
                        RejectKind::Internal,
                        "server stopped before the job finished; its submission is journaled",
                    )),
                }
            }
            Ok(Request::Stats) => Response::Stats(scheduler.stats()),
            Ok(Request::Metrics) => {
                let json = tracer.metrics().to_json();
                if write_line(&mut writer, &json).is_err() || eof {
                    return;
                }
                continue;
            }
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Shutdown { mode }) => {
                let resp = Response::ShuttingDown {
                    mode: match mode {
                        ShutdownMode::Drain => "drain".into(),
                        ShutdownMode::Now => "now".into(),
                    },
                };
                // Acknowledge first: a drain can outlive the connection.
                let _ = write_line(&mut writer, &resp.render());
                match mode {
                    ShutdownMode::Drain => scheduler.drain(),
                    ShutdownMode::Now => scheduler.stop_now(),
                }
                if eof {
                    return;
                }
                continue;
            }
        };
        if write_line(&mut writer, &response.render()).is_err() || eof {
            return;
        }
    }
}

fn write_line<W: Write>(w: &mut W, line: &str) -> std::io::Result<()> {
    // One framed write: a separate newline write would let Nagle hold it
    // back a full delayed-ACK interval.
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    w.write_all(framed.as_bytes())?;
    w.flush()
}

/// Answer one HTTP request on a connection that opened with `GET`/`HEAD`.
fn serve_http<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    request_line: &str,
    peer: &str,
    scheduler: &Arc<Scheduler>,
    tracer: &Tracer,
) {
    // Drain the header block, bounded in line length, line count, and
    // patience: a header line over the cap, too many header lines, or a
    // peer that goes quiet all end the drain (the response still goes
    // out — scrape tooling should not be failed by a sloppy client).
    for _ in 0..MAX_HTTP_HEADER_LINES {
        match read_line_capped(reader, MAX_HTTP_LINE, &|| true) {
            CappedLine::Line(l) if l.trim().is_empty() => break,
            CappedLine::Line(_) => continue,
            _ => break,
        }
    }
    let target = request_line.split_whitespace().nth(1).unwrap_or("/");
    // `/metrics?format=prometheus` must route like `/metrics`: the query
    // string selects the representation, the path selects the resource.
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    let prometheus = query.split('&').any(|kv| kv == "format=prometheus");
    const JSON: &str = "application/json";
    let (status, content_type, body) = match path {
        "/metrics" if prometheus => (
            "200 OK",
            pim_obs::PROMETHEUS_CONTENT_TYPE,
            pim_obs::render_prometheus(&tracer.metrics()),
        ),
        "/metrics" => ("200 OK", JSON, format!("{}\n", tracer.metrics().to_json())),
        "/healthz" => {
            let stats = scheduler.stats();
            let state = if scheduler.is_stopped() {
                "stopped"
            } else if stats.draining == 1 {
                "draining"
            } else {
                "ok"
            };
            let (degraded, dropped) = scheduler.journal_health();
            let body = pim_trace::JsonValue::object()
                .set("state", state)
                .set(
                    "journal",
                    pim_trace::JsonValue::object()
                        .set("degraded", degraded)
                        .set("dropped", dropped),
                )
                .render();
            ("200 OK", JSON, format!("{body}\n"))
        }
        _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
    };
    let head_only = request_line.starts_with("HEAD ");
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        if head_only { "" } else { body.as_str() }
    );
    if let Err(e) = writer.write_all(response.as_bytes()).and_then(|()| writer.flush()) {
        // One HTTP response per connection, so this logs at most once per
        // connection; the counter is what dashboards watch.
        tracer.count("serve.http_write_errors", 1);
        eprintln!("pim-serve: http response write to {peer} failed: {e}");
    }
}

#[cfg(test)]
mod tests {
    use std::io::Cursor;

    use pim_harness::JobCtx;
    use pim_trace::Tracer;

    use super::*;
    use crate::scheduler::{Resolver, ServePolicy};

    fn test_scheduler() -> Arc<Scheduler> {
        let resolver: Resolver = Arc::new(|spec: &str, _ctx: &JobCtx| Ok(format!("ran:{spec}")));
        Arc::new(
            Scheduler::start(ServePolicy::default(), resolver, Tracer::disabled(), None).unwrap(),
        )
    }

    fn drive(input: &[u8]) -> String {
        let scheduler = test_scheduler();
        let tracer = Tracer::disabled();
        let mut out = Vec::new();
        serve_lines(Cursor::new(input.to_vec()), &mut out, "test-peer", &scheduler, &tracer);
        scheduler.drain();
        scheduler.join();
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn oversized_request_line_gets_typed_rejection_and_close() {
        // A newline-free flood larger than the cap, followed by a valid
        // request that must never be processed (connection closes first).
        let mut input = vec![b'x'; MAX_REQUEST_LINE + 1024];
        input.extend_from_slice(b"\n{\"op\":\"ping\"}\n");
        let out = drive(&input);
        assert!(out.contains("\"error\":\"bad-request\""), "{out}");
        assert!(out.contains("exceeds"), "{out}");
        assert!(!out.contains("pong"), "connection must close after the rejection: {out}");
    }

    #[test]
    fn capped_reader_handles_fragmented_lines() {
        // A line delivered one byte at a time through a tiny BufReader
        // still assembles correctly under the cap.
        let input = b"{\"op\":\"ping\"}\n";
        let mut reader = BufReader::with_capacity(1, Cursor::new(input.to_vec()));
        match read_line_capped(&mut reader, MAX_REQUEST_LINE, &|| false) {
            CappedLine::Line(l) => assert_eq!(l, "{\"op\":\"ping\"}"),
            _ => panic!("expected a complete line"),
        }
    }

    #[test]
    fn oversized_http_header_lines_do_not_block_the_response() {
        let mut input = Vec::new();
        input.extend_from_slice(b"GET /healthz HTTP/1.1\r\n");
        input.extend_from_slice(b"X-Flood: ");
        input.extend(std::iter::repeat_n(b'y', MAX_HTTP_LINE + 100));
        input.extend_from_slice(b"\r\n\r\n");
        let out = drive(&input);
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(out.contains("\"state\":\"ok\""), "{out}");
    }

    #[test]
    fn http_endpoints_send_per_representation_content_types() {
        let health = drive(b"GET /healthz HTTP/1.1\r\n\r\n");
        assert!(health.contains("Content-Type: application/json\r\n"), "{health}");
        assert!(health.contains("\"journal\":{\"degraded\":false"), "{health}");

        let json_metrics = drive(b"GET /metrics HTTP/1.1\r\n\r\n");
        assert!(json_metrics.contains("Content-Type: application/json\r\n"), "{json_metrics}");
        assert!(json_metrics.contains("\"counters\""), "{json_metrics}");

        let missing = drive(b"GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.contains("Content-Type: text/plain; charset=utf-8\r\n"), "{missing}");
    }

    #[test]
    fn prometheus_format_query_switches_representation() {
        // Drive with an enabled tracer so the exposition has content.
        let scheduler = test_scheduler();
        let tracer = Tracer::new();
        tracer.count("serve.completed", 3);
        tracer.observe("job.wall_ms", 42);
        let mut out = Vec::new();
        serve_lines(
            Cursor::new(b"GET /metrics?format=prometheus HTTP/1.1\r\n\r\n".to_vec()),
            &mut out,
            "test-peer",
            &scheduler,
            &tracer,
        );
        scheduler.drain();
        scheduler.join();
        let out = String::from_utf8_lossy(&out).into_owned();
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(
            out.contains(&format!("Content-Type: {}\r\n", pim_obs::PROMETHEUS_CONTENT_TYPE)),
            "{out}"
        );
        let body = out.split("\r\n\r\n").nth(1).unwrap_or("");
        assert!(body.contains("# TYPE dmpim_serve_completed counter"), "{out}");
        assert!(body.contains("dmpim_job_wall_ms_bucket{le=\"+Inf\"} 1"), "{out}");
        pim_obs::validate_prometheus(body).expect("exposition parses");
    }

    #[test]
    fn eof_mid_line_still_processes_the_partial_request() {
        let out = drive(b"{\"op\":\"ping\"}"); // no trailing newline
        assert!(out.contains("pong"), "{out}");
    }
}
