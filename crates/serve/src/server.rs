//! The TCP listener and per-connection protocol loop.
//!
//! One thread per connection, JSONL request/response (see
//! [`crate::protocol`]). The same port also answers plain HTTP `GET`
//! (`/metrics`, `/healthz`) so scrape tooling needs no special client —
//! the first bytes of a connection decide which dialect it speaks.
//!
//! The accept loop polls the [`crate::signal`] latch: SIGTERM or ctrl-c
//! starts a graceful drain (stop admitting, finish in-flight, journal
//! everything), after which [`Server::run`] returns. Connection threads
//! use a bounded read timeout so they notice the stop and exit instead
//! of blocking forever on idle peers.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use pim_trace::Tracer;

use crate::protocol::{Reject, RejectKind, Request, Response, ShutdownMode, PROTOCOL_VERSION, SERVER_NAME};
use crate::scheduler::{Scheduler, SubmitOutcome, WaitOutcome};
use crate::{signal, ServeError};

/// The listening service. Owns nothing but the socket — the scheduler is
/// shared so embedders (and tests) can drive it directly.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    tracer: Tracer,
    local_addr: SocketAddr,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:7009`, or port `0` for an
    /// ephemeral port — see [`Server::local_addr`]).
    pub fn bind(addr: &str, scheduler: Arc<Scheduler>, tracer: Tracer) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::net(&e))?;
        let local_addr = listener.local_addr().map_err(|e| ServeError::net(&e))?;
        listener.set_nonblocking(true).map_err(|e| ServeError::net(&e))?;
        Ok(Self { listener, scheduler, tracer, local_addr })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Accept and serve until the scheduler stops (drain completed or
    /// hard stop). Returns once the scheduler has fully wound down.
    pub fn run(&self) -> Result<(), ServeError> {
        loop {
            if signal::requested() && !self.scheduler.is_draining() {
                eprintln!("pim-serve: shutdown signal received, draining");
                self.scheduler.drain();
            }
            if self.scheduler.is_stopped() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let scheduler = Arc::clone(&self.scheduler);
                    let tracer = self.tracer.clone();
                    let _ = std::thread::Builder::new()
                        .name(format!("pim-serve-conn-{peer}"))
                        .spawn(move || serve_connection(stream, peer, &scheduler, &tracer));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(ServeError::net(&e)),
            }
        }
        self.scheduler.join();
        Ok(())
    }
}

fn serve_connection(stream: TcpStream, peer: SocketAddr, scheduler: &Arc<Scheduler>, tracer: &Tracer) {
    // Bounded reads so this thread notices a server stop under an idle
    // connection instead of blocking forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    // Until a hello names the client, quotas key on the peer address.
    let mut client = peer.to_string();

    let mut buf = String::new();
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => {
                if buf.trim().is_empty() {
                    return; // clean EOF
                }
                // EOF mid-line: process what arrived, then close.
            }
            Ok(_) if !buf.ends_with('\n') => continue, // partial read, keep accumulating
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // read_line may have consumed a partial line into `buf`;
                // keep it and retry unless the server is going away.
                if scheduler.is_stopped() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let line = std::mem::take(&mut buf);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("GET ") || line.starts_with("HEAD ") {
            serve_http(&mut reader, &mut writer, line, scheduler, tracer);
            return; // HTTP/1.0 style: one response, close
        }
        let response = match Request::parse(line) {
            Err(reason) => Response::Rejected(Reject::new(RejectKind::BadRequest, reason)),
            Ok(Request::Hello { client: name }) => {
                client = name;
                Response::Hello { server: SERVER_NAME.into(), version: PROTOCOL_VERSION }
            }
            Ok(Request::Submit { id, spec }) => match scheduler.submit(&client, &id, &spec) {
                SubmitOutcome::Accepted { state } => {
                    Response::Accepted { id, state: state.to_string() }
                }
                SubmitOutcome::Rejected(rej) => Response::Rejected(rej),
            },
            Ok(Request::Wait { id, timeout_ms }) => {
                match scheduler.wait(&id, timeout_ms.map(Duration::from_millis)) {
                    WaitOutcome::Done(r) => Response::Result(r),
                    WaitOutcome::Timeout => Response::Rejected(Reject::new(
                        RejectKind::Timeout,
                        format!("job {id:?} not finished within the wait bound"),
                    )),
                    WaitOutcome::Unknown => Response::Rejected(Reject::new(
                        RejectKind::UnknownJob,
                        format!("no job {id:?} was ever admitted"),
                    )),
                    WaitOutcome::Stopped => Response::Rejected(Reject::new(
                        RejectKind::Internal,
                        "server stopped before the job finished; its submission is journaled",
                    )),
                }
            }
            Ok(Request::Stats) => Response::Stats(scheduler.stats()),
            Ok(Request::Metrics) => {
                let json = tracer.metrics().to_json();
                if write_line(&mut writer, &json).is_err() {
                    return;
                }
                buf.clear();
                continue;
            }
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Shutdown { mode }) => {
                let resp = Response::ShuttingDown {
                    mode: match mode {
                        ShutdownMode::Drain => "drain".into(),
                        ShutdownMode::Now => "now".into(),
                    },
                };
                // Acknowledge first: a drain can outlive the connection.
                let _ = write_line(&mut writer, &resp.render());
                match mode {
                    ShutdownMode::Drain => scheduler.drain(),
                    ShutdownMode::Now => scheduler.stop_now(),
                }
                buf.clear();
                continue;
            }
        };
        if write_line(&mut writer, &response.render()).is_err() {
            return;
        }
        buf.clear();
    }
}

fn write_line(w: &mut TcpStream, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Answer one HTTP request on a connection that opened with `GET`/`HEAD`.
fn serve_http(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request_line: &str,
    scheduler: &Arc<Scheduler>,
    tracer: &Tracer,
) {
    // Drain the header block (best-effort; the read timeout bounds it).
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim().is_empty() => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = match path {
        "/metrics" => ("200 OK", format!("{}\n", tracer.metrics().to_json())),
        "/healthz" => {
            let stats = scheduler.stats();
            let state = if scheduler.is_stopped() {
                "stopped"
            } else if stats.draining == 1 {
                "draining"
            } else {
                "ok"
            };
            ("200 OK", format!("{state}\n"))
        }
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    let head_only = request_line.starts_with("HEAD ");
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        if head_only { "" } else { body.as_str() }
    );
    let _ = writer.write_all(response.as_bytes());
    let _ = writer.flush();
}
