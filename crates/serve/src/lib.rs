//! `pim-serve`: a fault-tolerant sweep service.
//!
//! The repo's sweeps historically ran as one-shot CLI invocations
//! (`pim-harness` inside `repro`). This crate turns the same supervised,
//! resumable execution model into a long-lived **service**: a std-only
//! TCP server speaking the repo's JSONL dialect, accepting simulation
//! jobs from many concurrent clients and scheduling them over a shared
//! worker pool. The robustness story, end to end:
//!
//! * **Work stealing** ([`deque`], [`scheduler`]) — each worker owns a
//!   bounded Chase–Lev-style deque; a global injector feeds bursts in
//!   amortized batches and idle workers steal from loaded siblings, so
//!   one slow client cannot leave cores idle.
//! * **Priority classes** ([`deque`]) — each submission carries a typed
//!   `priority` (`high` | `normal`); the injector keeps one lane per
//!   class, draining `high` first with a fairness stride that serves the
//!   normal lane every few dequeues, so interactive probes overtake bulk
//!   sweeps without ever starving them. Retries and journal recovery
//!   preserve a job's class.
//! * **Admission control** ([`quota`]) — per-client in-flight quotas and
//!   a global queue bound; an overloaded server answers a typed
//!   `overloaded` rejection immediately instead of hanging or growing
//!   without bound.
//! * **Supervision** ([`scheduler`]) — per-job wall-clock deadlines
//!   abandon stuck workers (replacements keep the pool at strength) and
//!   the simulated-time watchdog bounds runaway simulations; the failure
//!   taxonomy (retry with capped backoff, quarantine after timeout
//!   strikes, fail fast on panics) is `pim-harness`'s.
//! * **Crash recovery** ([`recovery`]) — submissions are journaled
//!   write-ahead and results in the harness's exact record format; a
//!   `SIGKILL`ed server restarts, replays its journal tolerating every
//!   corruption class the harness reader tolerates, restores finished
//!   jobs bit-identically, and re-runs only the unfinished ones.
//! * **Graceful drain** ([`server`], [`signal`]) — SIGTERM/ctrl-c (or
//!   the protocol `shutdown` op) stops admission, finishes everything in
//!   flight, and exits with zero journal loss.
//! * **Observability** ([`server`]) — an HTTP `GET /metrics` on the same
//!   port serves the live `pim-trace` metrics registry: queue depths,
//!   steal counts, quota state, quarantine counts.
//!
//! The scheduler resolves job specs through a caller-provided
//! [`Resolver`], so this crate knows nothing about the bench catalog —
//! the `repro` binary wires `experiment:<id>` / `kernel:<name>` specs to
//! real simulations.

pub mod client;
pub mod deque;
pub mod protocol;
pub mod quota;
pub mod recovery;
pub mod scheduler;
pub mod server;
pub mod signal;

pub use client::{Client, ClientConfig};
pub use deque::Priority;
pub use protocol::{Reject, RejectKind, Request, Response, ShutdownMode, Stats};
pub use quota::QuotaPolicy;
pub use scheduler::{Resolver, Scheduler, ServePolicy, SubmitOutcome, WaitOutcome};
pub use server::Server;

use std::path::Path;

/// Errors from the service machinery itself (never from jobs — those are
/// typed [`pim_harness::JobResult`]s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Journal or socket file I/O failed.
    Io {
        /// Offending path.
        path: String,
        /// OS error rendered as text.
        what: String,
    },
    /// A journal file exists but is not a pim-serve journal.
    Journal {
        /// Journal path.
        path: String,
        /// What disagreed.
        what: String,
    },
    /// Network failure (bind, connect, read, write).
    Net {
        /// What failed.
        what: String,
    },
    /// The peer sent something unintelligible.
    Protocol {
        /// What failed to parse.
        what: String,
    },
    /// The server refused a request with a typed rejection.
    Rejected(Reject),
    /// A client-side deadline elapsed waiting for the server. Unlike
    /// [`ServeError::Net`], a timeout is terminal — the client does not
    /// auto-reconnect on it, because the server may still be working.
    Timeout {
        /// What timed out.
        what: String,
    },
    /// Internal invariant failure (thread spawn, poisoned lock).
    Internal {
        /// Description.
        what: String,
    },
}

impl ServeError {
    pub(crate) fn io(path: &Path, e: &std::io::Error) -> Self {
        Self::Io { path: path.display().to_string(), what: e.to_string() }
    }

    pub(crate) fn journal(path: &Path, what: &str) -> Self {
        Self::Journal { path: path.display().to_string(), what: what.to_string() }
    }

    pub(crate) fn net(e: &std::io::Error) -> Self {
        Self::Net { what: e.to_string() }
    }

    pub(crate) fn protocol(what: impl Into<String>) -> Self {
        Self::Protocol { what: what.into() }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { path, what } => write!(f, "{path}: {what}"),
            ServeError::Journal { path, what } => {
                write!(f, "journal {path} is not usable: {what}")
            }
            ServeError::Net { what } => write!(f, "network error: {what}"),
            ServeError::Protocol { what } => write!(f, "protocol error: {what}"),
            ServeError::Rejected(r) => {
                write!(f, "rejected ({}): {}", r.kind.label(), r.reason)
            }
            ServeError::Timeout { what } => write!(f, "timed out: {what}"),
            ServeError::Internal { what } => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}
