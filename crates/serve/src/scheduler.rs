//! The work-stealing scheduler and its supervisor.
//!
//! Jobs enter through [`Scheduler::submit`] (admission-controlled,
//! write-ahead journaled) and land in the global [`Injector`]. Each
//! worker owns a bounded Chase–Lev [`WsDeque`] and scans in cost order:
//!
//! 1. **own deque** (LIFO pop — lock-free, cache-warm),
//! 2. **injector** (one lock amortized over a whole refill batch),
//! 3. **steal** from a sibling's deque (FIFO CAS).
//!
//! Supervision mirrors `pim_harness`: workers report `Started`/`Done` to
//! a supervisor thread that multiplexes completions against wall-clock
//! deadlines and delayed retries. A wall overrun *abandons* the stuck
//! worker — its retirement flag is set, its handle detached, a
//! replacement spawned with a **fresh** deque. The zombie keeps exclusive
//! ownership of its old deque (no two-owner race); any tasks still in it
//! remain stealable by the others, and the zombie retires at its next
//! loop check. Failure taxonomy is the harness's: timeout strikes
//! quarantine, transient faults retry with capped exponential backoff,
//! panics and persistent errors fail fast.
//!
//! Unlike the harness — which runs one fixed sweep to completion — the
//! scheduler is a *service*: jobs arrive forever until a drain
//! ([`Scheduler::drain`]) stops admission and the supervisor exits once
//! the last in-flight job lands, or a hard stop ([`Scheduler::stop_now`])
//! abandons the queue to the journal for the next incarnation to recover.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pim_faults::{DmpimError, Watchdog};
use pim_harness::{FsyncPolicy, JobCtx, JobFailure, JobResult, JobStatus};
use pim_trace::Tracer;

use crate::deque::{Injector, Priority, Task, WsDeque};
use crate::protocol::{Reject, RejectKind, Stats};
use crate::quota::{ClientLedger, QuotaPolicy};
use crate::recovery::{RecoveredState, ServeJournal, Submission};
use crate::ServeError;

/// Resolves a job spec (e.g. `experiment:fig18`) to its payload. The
/// scheduler is generic over this, so `pim-serve` has no dependency on
/// the bench crate — the binary registers the catalog at startup.
pub type Resolver = Arc<dyn Fn(&str, &JobCtx) -> Result<String, DmpimError> + Send + Sync>;

/// Scheduling, retry, and admission policy for the service.
#[derive(Debug, Clone)]
pub struct ServePolicy {
    /// Worker threads.
    pub workers: usize,
    /// Max ordinary retries for transient simulation faults.
    pub max_retries: u32,
    /// Timeout strikes (wall or simulated watchdog) before quarantine.
    pub quarantine_strikes: u32,
    /// Base backoff between retries of the same job.
    pub retry_backoff: Duration,
    /// Cap on the exponentially growing backoff.
    pub backoff_cap: Duration,
    /// Per-attempt wall-clock deadline; `None` disables wall supervision.
    pub wall_deadline: Option<Duration>,
    /// Simulated-time watchdog handed to every job.
    pub watchdog: Watchdog,
    /// Admission limits.
    pub quota: QuotaPolicy,
    /// Per-worker deque capacity (overflow spills back to the injector).
    pub deque_capacity: usize,
    /// Tasks pulled from the injector per refill.
    pub refill_batch: usize,
    /// Journal durability: how much each record is synced before the
    /// corresponding state change becomes visible. Defaults to `Data`
    /// (fdatasync per record) because the journal is a write-ahead log —
    /// an un-synced submission can be admitted, acknowledged, and lost.
    pub fsync: FsyncPolicy,
}

impl Default for ServePolicy {
    fn default() -> Self {
        Self {
            workers: 2,
            max_retries: 2,
            quarantine_strikes: 2,
            retry_backoff: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(80),
            wall_deadline: None,
            watchdog: Watchdog::unlimited(),
            quota: QuotaPolicy::default(),
            deque_capacity: 64,
            refill_batch: 8,
            fsync: FsyncPolicy::Data,
        }
    }
}

impl ServePolicy {
    /// Backoff before retry `retry` (1-based): doubling from
    /// [`ServePolicy::retry_backoff`], clamped to
    /// [`ServePolicy::backoff_cap`], fully saturating (same contract as
    /// `pim_harness::HarnessPolicy::backoff_for`).
    pub fn backoff_for(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1);
        let factor = match 1u32.checked_shl(exp) {
            Some(f) if exp < 31 => f,
            _ => u32::MAX,
        };
        self.retry_backoff.saturating_mul(factor).min(self.backoff_cap)
    }
}

/// What [`Scheduler::submit`] decided.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// Admitted (or attached to an existing identical submission).
    /// `state` is `queued`, `done`, or `attached`.
    Accepted {
        /// Current job state.
        state: &'static str,
    },
    /// Refused with a typed reason; nothing was enqueued.
    Rejected(Reject),
}

/// What [`Scheduler::wait`] returned.
#[derive(Debug, Clone, PartialEq)]
pub enum WaitOutcome {
    /// Terminal result.
    Done(JobResult),
    /// The bounded wait elapsed first.
    Timeout,
    /// No job with that id was ever admitted.
    Unknown,
    /// The scheduler stopped (hard stop) before the job finished; the
    /// journal carries its submission for the next incarnation.
    Stopped,
}

/// One admitted job's full lifecycle record.
#[derive(Debug)]
struct Entry {
    id: String,
    client: String,
    spec: String,
    /// Queueing class; retries re-enter the injector in the same lane.
    priority: Priority,
    /// Current valid attempt (1-based). Bumped on every retry dispatch
    /// and on every write-off, so stale `Done`s from abandoned workers
    /// are detected by comparison.
    attempt: u32,
    strikes: u32,
    transient_retries: u32,
    result: Option<JobResult>,
}

/// State behind the scheduler's single mutex.
struct State {
    entries: Vec<Entry>,
    index: HashMap<String, usize>,
    ledger: ClientLedger,
    journal: Option<ServeJournal>,
    draining: bool,
    /// Supervisor exited (drain complete or hard stop).
    stopped: bool,
}

/// Monotonic service counters (lock-free reads for stats/metrics).
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    succeeded: AtomicU64,
    failed: AtomicU64,
    quarantined: AtomicU64,
    retries: AtomicU64,
    steals: AtomicU64,
    recovered: AtomicU64,
    live_workers: AtomicU64,
    /// Journal records (submissions or results) that failed to persist.
    journal_dropped: AtomicU64,
    /// Sticky: set on the first journal write failure, never cleared.
    journal_degraded: AtomicBool,
    /// The degradation warning is logged once, not per record.
    journal_warned: AtomicBool,
}

struct Core {
    policy: ServePolicy,
    resolver: Resolver,
    tracer: Tracer,
    state: Mutex<State>,
    /// Signalled on every terminal result (waiters) and on stop.
    done_cv: Condvar,
    injector: Injector,
    /// Every deque ever issued — live workers' and zombies' alike — so
    /// leftover tasks in an abandoned deque stay stealable.
    deques: Mutex<Vec<Arc<WsDeque>>>,
    /// Poke channel into the supervisor (drain/stop notifications).
    sup_tx: Mutex<Option<Sender<Msg>>>,
    stop_now: AtomicBool,
    counters: Counters,
}

enum Msg {
    Started { worker: u64, task: Task },
    Done { task: Task, outcome: Result<String, JobFailure> },
    Poke,
}

struct WorkerSeat {
    retired: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

/// The running service. Cheap to share (`Arc` internally is not needed —
/// the server wraps the whole scheduler in an `Arc`).
pub struct Scheduler {
    core: Arc<Core>,
    supervisor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Start the worker pool and supervisor. With a journal path, any
    /// existing journal is replayed first: finished jobs are restored
    /// verbatim, unfinished submissions re-enqueued, and the journal kept
    /// open for appending.
    pub fn start(
        policy: ServePolicy,
        resolver: Resolver,
        tracer: Tracer,
        journal_path: Option<&Path>,
    ) -> Result<Self, ServeError> {
        let (journal, recovered) = match journal_path {
            Some(path) => {
                let (j, state) = ServeJournal::recover_opts(path, policy.fsync)?;
                (Some(j), state)
            }
            None => (None, RecoveredState::default()),
        };
        Self::start_with_journal(policy, resolver, tracer, journal, recovered)
    }

    /// [`Scheduler::start`] over an already-open journal (tests inject
    /// chaos-wrapped sinks through [`ServeJournal::from_sink`] here).
    pub fn start_with_journal(
        policy: ServePolicy,
        resolver: Resolver,
        tracer: Tracer,
        journal: Option<ServeJournal>,
        recovered: RecoveredState,
    ) -> Result<Self, ServeError> {
        // Shape-stable gauges so the first /metrics scrape already shows
        // every key.
        for g in ["serve.in_flight", "serve.workers", "serve.clients", "serve.queue_depth"] {
            tracer.register_gauge(g, 0.0);
        }
        // Per-attempt wall-time histogram in ms (1 ms .. ~4 s, then
        // overflow): registered up front so a Prometheus scrape sees the
        // family before the first job completes.
        tracer.register_histogram("serve.job_wall_ms", &[1, 4, 16, 64, 256, 1_024, 4_096]);

        let core = Arc::new(Core {
            policy: policy.clone(),
            resolver,
            tracer,
            state: Mutex::new(State {
                entries: Vec::new(),
                index: HashMap::new(),
                ledger: ClientLedger::new(),
                journal,
                draining: false,
                stopped: false,
            }),
            done_cv: Condvar::new(),
            injector: Injector::new(),
            deques: Mutex::new(Vec::new()),
            sup_tx: Mutex::new(None),
            stop_now: AtomicBool::new(false),
            counters: Counters::default(),
        });

        Self::replay(&core, recovered);

        let (tx, rx) = std::sync::mpsc::channel::<Msg>();
        if let Ok(mut slot) = core.sup_tx.lock() {
            *slot = Some(tx.clone());
        }
        let mut seats = HashMap::new();
        for id in 0..policy.workers.max(1) as u64 {
            seats.insert(id, spawn_worker(&core, &tx, id));
        }
        let sup_core = Arc::clone(&core);
        let supervisor = std::thread::Builder::new()
            .name("pim-serve-supervisor".into())
            .spawn(move || supervise(&sup_core, &rx, &tx, seats))
            .map_err(|e| ServeError::Internal { what: format!("spawn supervisor: {e}") })?;

        Ok(Self { core, supervisor: Mutex::new(Some(supervisor)) })
    }

    /// Install the replayed journal state: restored results count as
    /// completed; unfinished submissions re-enter the queue.
    fn replay(core: &Arc<Core>, recovered: RecoveredState) {
        let mut tasks = Vec::new();
        {
            let Ok(mut st) = core.state.lock() else { return };
            for sub in recovered.submissions {
                let idx = st.entries.len();
                let result = recovered.results.get(&sub.id).cloned();
                st.index.insert(sub.id.clone(), idx);
                // Recovered jobs were admitted before the crash; quota
                // must not re-litigate them.
                st.ledger.admit_unchecked(&sub.client);
                core.counters.submitted.fetch_add(1, Ordering::Relaxed);
                core.counters.recovered.fetch_add(1, Ordering::Relaxed);
                if let Some(r) = &result {
                    st.ledger.release(&sub.client);
                    core.count_terminal(r.status);
                } else {
                    tasks.push((Task { job: idx as u32, attempt: 1 }, sub.priority));
                    core.tracer.gauge_add("serve.in_flight", 1.0);
                    core.tracer.gauge_add("serve.queue_depth", 1.0);
                }
                st.entries.push(Entry {
                    id: sub.id,
                    client: sub.client,
                    spec: sub.spec,
                    priority: sub.priority,
                    attempt: 1,
                    strikes: 0,
                    transient_retries: 0,
                    result,
                });
            }
            core.tracer.gauge("serve.clients", st.ledger.client_count() as f64);
        }
        core.injector.push_all(tasks);
    }

    /// Submit one job in the default (`Normal`) priority lane.
    pub fn submit(&self, client: &str, id: &str, spec: &str) -> SubmitOutcome {
        self.submit_priority(client, id, spec, Priority::Normal)
    }

    /// Submit one job. Admission control, the write-ahead journal line,
    /// and the enqueue happen atomically under the state lock, so a
    /// crash can never admit a job without journaling it. `priority`
    /// picks the injector lane; an idempotent re-submission attaches to
    /// the existing job and does not re-litigate its class.
    pub fn submit_priority(
        &self,
        client: &str,
        id: &str,
        spec: &str,
        priority: Priority,
    ) -> SubmitOutcome {
        let core = &self.core;
        let Ok(mut st) = core.state.lock() else {
            return SubmitOutcome::Rejected(Reject::new(RejectKind::Internal, "state poisoned"));
        };
        if let Some(&idx) = st.index.get(id) {
            let e = &mut st.entries[idx];
            // Idempotent attach: identical re-submission (e.g. a client
            // retrying after a server crash) joins the existing job. A
            // recovered orphan (empty spec) adopts the client's spec.
            if e.spec.is_empty() && e.result.is_some() {
                e.spec = spec.to_string();
            } else if e.spec != spec {
                return SubmitOutcome::Rejected(Reject::new(
                    RejectKind::SpecConflict,
                    format!("job {id:?} already exists with spec {:?}", e.spec),
                ));
            }
            let state = if e.result.is_some() { "done" } else { "attached" };
            return SubmitOutcome::Accepted { state };
        }
        if st.draining || st.stopped || core.stop_now.load(Ordering::SeqCst) {
            return SubmitOutcome::Rejected(Reject::new(
                RejectKind::Draining,
                "server is draining and admits no new jobs",
            ));
        }
        if let Err(rej) = st.ledger.admit(client, &core.policy.quota) {
            self.core.tracer.count("serve.overloaded", 1);
            return SubmitOutcome::Rejected(rej);
        }
        let sub = Submission {
            id: id.to_string(),
            client: client.to_string(),
            spec: spec.to_string(),
            priority,
        };
        if let Some(j) = st.journal.as_mut() {
            if let Err(e) = j.record_submission(&sub) {
                // Write-ahead failed (torn write, disk full, …): admit
                // anyway and degrade. Refusing work because the *journal*
                // is sick would turn a durability problem into an
                // availability outage; the cost is that this job will not
                // recover if the server crashes before finishing it.
                core.note_journal_drop("submission", &sub.id, &e);
            }
        }
        let idx = st.entries.len();
        st.index.insert(sub.id.clone(), idx);
        st.entries.push(Entry {
            id: sub.id,
            client: sub.client,
            spec: sub.spec,
            priority: sub.priority,
            attempt: 1,
            strikes: 0,
            transient_retries: 0,
            result: None,
        });
        core.counters.submitted.fetch_add(1, Ordering::Relaxed);
        core.tracer.count("serve.submitted", 1);
        core.tracer.gauge_add("serve.in_flight", 1.0);
        core.tracer.gauge_add("serve.queue_depth", 1.0);
        core.tracer.gauge("serve.clients", st.ledger.client_count() as f64);
        drop(st);
        core.injector.push(Task { job: idx as u32, attempt: 1 }, priority);
        SubmitOutcome::Accepted { state: "queued" }
    }

    /// Non-blocking result lookup.
    pub fn result(&self, id: &str) -> Option<JobResult> {
        let st = self.core.state.lock().ok()?;
        let idx = *st.index.get(id)?;
        st.entries[idx].result.clone()
    }

    /// Block until the job is terminal, the optional timeout elapses, or
    /// the scheduler hard-stops.
    pub fn wait(&self, id: &str, timeout: Option<Duration>) -> WaitOutcome {
        let deadline = timeout.map(|t| Instant::now() + t);
        let Ok(mut st) = self.core.state.lock() else { return WaitOutcome::Stopped };
        loop {
            let Some(&idx) = st.index.get(id) else { return WaitOutcome::Unknown };
            if let Some(r) = &st.entries[idx].result {
                return WaitOutcome::Done(r.clone());
            }
            if st.stopped || self.core.stop_now.load(Ordering::SeqCst) {
                return WaitOutcome::Stopped;
            }
            let wait = match deadline {
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return WaitOutcome::Timeout;
                    }
                    left.min(Duration::from_millis(100))
                }
                None => Duration::from_millis(100),
            };
            st = match self.core.done_cv.wait_timeout(st, wait) {
                Ok((guard, _)) => guard,
                Err(_) => return WaitOutcome::Stopped,
            };
        }
    }

    /// Job ids submitted by `client`, in submission order — the order a
    /// thin client replays results in.
    pub fn job_ids_for(&self, client: &str) -> Vec<String> {
        self.core
            .state
            .lock()
            .map(|st| {
                st.entries
                    .iter()
                    .filter(|e| e.client == client)
                    .map(|e| e.id.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> Stats {
        let c = &self.core.counters;
        let (in_flight, clients, draining, overloaded) = self
            .core
            .state
            .lock()
            .map(|st| {
                (
                    st.ledger.total_in_flight as u64,
                    st.ledger.client_count() as u64,
                    u64::from(st.draining),
                    st.ledger.total_rejected(),
                )
            })
            .unwrap_or((0, 0, 0, 0));
        Stats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            succeeded: c.succeeded.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            quarantined: c.quarantined.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            overloaded,
            steals: c.steals.load(Ordering::Relaxed),
            in_flight,
            workers: c.live_workers.load(Ordering::Relaxed),
            clients,
            recovered: c.recovered.load(Ordering::Relaxed),
            draining,
            journal_dropped: c.journal_dropped.load(Ordering::Relaxed),
            journal_degraded: u64::from(c.journal_degraded.load(Ordering::Relaxed)),
        }
    }

    /// `(degraded, dropped)`: has any journal write failed, and how many
    /// records were lost. Feeds `/healthz`.
    pub fn journal_health(&self) -> (bool, u64) {
        let c = &self.core.counters;
        (
            c.journal_degraded.load(Ordering::Relaxed),
            c.journal_dropped.load(Ordering::Relaxed),
        )
    }

    /// Graceful shutdown: stop admitting, finish everything in flight
    /// (including pending retries), then stop the pool. Use
    /// [`Scheduler::join`] to wait for completion. Zero journal loss:
    /// every admitted job reaches a journaled terminal state.
    pub fn drain(&self) {
        if let Ok(mut st) = self.core.state.lock() {
            st.draining = true;
        }
        self.poke();
    }

    /// Hard stop: workers exit at their next loop check; queued and
    /// running jobs stay journaled as submissions for the next
    /// incarnation to recover. In-progress attempts finish (std threads
    /// cannot be killed) but their results are not awaited.
    pub fn stop_now(&self) {
        self.core.stop_now.store(true, Ordering::SeqCst);
        self.core.injector.cv.notify_all();
        self.core.done_cv.notify_all();
        self.poke();
    }

    /// True once the supervisor has exited.
    pub fn is_stopped(&self) -> bool {
        self.core.state.lock().map(|st| st.stopped).unwrap_or(true)
    }

    /// True once a drain has been requested (or the scheduler stopped).
    pub fn is_draining(&self) -> bool {
        self.core
            .state
            .lock()
            .map(|st| st.draining || st.stopped)
            .unwrap_or(true)
    }

    /// Wait for the supervisor (and with it the drain) to finish.
    pub fn join(&self) {
        let handle = self.supervisor.lock().ok().and_then(|mut s| s.take());
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    fn poke(&self) {
        let tx = self.core.sup_tx.lock().ok().and_then(|s| s.clone());
        if let Some(tx) = tx {
            let _ = tx.send(Msg::Poke);
        }
    }
}

impl Core {
    /// Fold one failed journal write into the degradation state: count
    /// it, latch the sticky degraded flag, and log the first occurrence
    /// (later drops only move the counters — a sick disk would otherwise
    /// flood the log at job rate).
    fn note_journal_drop(&self, what: &str, id: &str, err: &ServeError) {
        self.counters.journal_dropped.fetch_add(1, Ordering::Relaxed);
        self.counters.journal_degraded.store(true, Ordering::Relaxed);
        self.tracer.count("serve.journal_dropped", 1);
        if !self.counters.journal_warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "pim-serve: journal degraded ({what} record for {id:?} dropped, \
                 service continues): {err}"
            );
        }
    }

    fn count_terminal(&self, status: JobStatus) {
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        match status {
            JobStatus::Succeeded => &self.counters.succeeded,
            JobStatus::Failed => &self.counters.failed,
            JobStatus::Quarantined => &self.counters.quarantined,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Is `task` still the live attempt of a live job? Stale tasks —
    /// written off by the supervisor, or already terminal — are dropped
    /// by workers without execution.
    fn attempt_current(&self, task: Task) -> bool {
        self.state
            .lock()
            .map(|st| {
                st.entries
                    .get(task.job as usize)
                    .is_some_and(|e| e.attempt == task.attempt && e.result.is_none())
            })
            .unwrap_or(false)
    }

    /// Clone the (id, spec) a worker needs to run `task`.
    fn job_spec(&self, task: Task) -> Option<(String, String)> {
        let st = self.state.lock().ok()?;
        let e = st.entries.get(task.job as usize)?;
        Some((e.id.clone(), e.spec.clone()))
    }
}

fn spawn_worker(core: &Arc<Core>, tx: &Sender<Msg>, id: u64) -> WorkerSeat {
    let deque = Arc::new(WsDeque::new(core.policy.deque_capacity));
    if let Ok(mut reg) = core.deques.lock() {
        reg.push(Arc::clone(&deque));
    }
    let retired = Arc::new(AtomicBool::new(false));
    let wc = Arc::clone(core);
    let wtx = tx.clone();
    let wretired = Arc::clone(&retired);
    let handle = std::thread::Builder::new()
        .name(format!("pim-serve-worker-{id}"))
        .spawn(move || worker_loop(&wc, &wtx, id, &deque, &wretired))
        .unwrap_or_else(|e| panic!("spawn pim-serve worker {id}: {e}"));
    core.counters.live_workers.fetch_add(1, Ordering::SeqCst);
    core.tracer.gauge_add("serve.workers", 1.0);
    WorkerSeat { retired, handle }
}

fn worker_loop(
    core: &Arc<Core>,
    tx: &Sender<Msg>,
    id: u64,
    own: &Arc<WsDeque>,
    retired: &Arc<AtomicBool>,
) {
    loop {
        if core.stop_now.load(Ordering::SeqCst) || retired.load(Ordering::SeqCst) {
            break;
        }
        let task = own
            .pop()
            .or_else(|| core.injector.pop_batch(own, core.policy.refill_batch.max(1)))
            .or_else(|| steal_from_siblings(core, own));
        let Some(task) = task else {
            core.injector.wait(Duration::from_millis(20));
            continue;
        };
        if !core.attempt_current(task) {
            continue; // written off or finished while queued
        }
        let Some((job_id, spec)) = core.job_spec(task) else { continue };
        if tx.send(Msg::Started { worker: id, task }).is_err() {
            break; // supervisor gone
        }
        let track = core.tracer.track(&format!("job:{job_id}"));
        let ctx = JobCtx {
            job_id,
            attempt: task.attempt,
            tracer: core.tracer.clone(),
            track,
            watchdog: core.policy.watchdog,
        };
        let resolver = Arc::clone(&core.resolver);
        let t0 = Instant::now();
        let outcome = match catch_unwind(AssertUnwindSafe(|| resolver(&spec, &ctx))) {
            Ok(Ok(payload)) => Ok(payload),
            Ok(Err(e)) => Err(JobFailure::Sim(e)),
            Err(panic) => Err(JobFailure::Panicked { message: panic_message(&*panic) }),
        };
        // Per-attempt progress metrics (host wall time; the trace instant
        // stitches the attempt outcome into the job's Perfetto track).
        let wall_ms = t0.elapsed().as_millis() as u64;
        core.tracer.count("serve.attempts", 1);
        core.tracer.observe("serve.job_wall_ms", wall_ms);
        if core.tracer.enabled() {
            core.tracer.instant_args(
                track,
                "attempt-finished",
                0,
                vec![
                    ("attempt", pim_trace::ArgValue::U64(task.attempt as u64)),
                    ("wall_ms", pim_trace::ArgValue::U64(wall_ms)),
                    ("ok", pim_trace::ArgValue::U64(u64::from(outcome.is_ok()))),
                ],
            );
        }
        if tx.send(Msg::Done { task, outcome }).is_err() {
            break;
        }
        // If the supervisor wrote this attempt off and retired us while
        // we were stuck in it, the top-of-loop check exits this worker; a
        // replacement with a fresh deque already took our seat, and our
        // deque's leftovers remain stealable by the survivors.
    }
    core.counters.live_workers.fetch_sub(1, Ordering::SeqCst);
    core.tracer.gauge_add("serve.workers", -1.0);
}

fn steal_from_siblings(core: &Arc<Core>, own: &Arc<WsDeque>) -> Option<Task> {
    let registry: Vec<Arc<WsDeque>> = core.deques.lock().ok()?.clone();
    for victim in &registry {
        if Arc::ptr_eq(victim, own) {
            continue;
        }
        if let Some(task) = victim.steal() {
            core.counters.steals.fetch_add(1, Ordering::Relaxed);
            core.tracer.count("serve.steals", 1);
            return Some(task);
        }
    }
    None
}

/// Tracked execution of one started attempt.
struct Outstanding {
    worker: u64,
    deadline: Option<Instant>,
}

fn supervise(
    core: &Arc<Core>,
    rx: &Receiver<Msg>,
    tx: &Sender<Msg>,
    mut seats: HashMap<u64, WorkerSeat>,
) {
    let mut next_worker_id = seats.keys().max().map_or(0, |m| m + 1);
    // Keyed by (job, attempt) — a written-off attempt's key simply goes
    // stale and is dropped when its Done (if any) arrives.
    let mut outstanding: HashMap<(u32, u32), Outstanding> = HashMap::new();
    let mut delayed: Vec<(Instant, Task, Priority)> = Vec::new();

    loop {
        // Promote due retries into the injector, preserving each job's
        // priority lane.
        let now = Instant::now();
        let mut promoted = Vec::new();
        delayed.retain(|(due, task, priority)| {
            if *due <= now {
                promoted.push((*task, *priority));
                false
            } else {
                true
            }
        });
        if !promoted.is_empty() {
            core.injector.push_all(promoted);
        }

        // Exit conditions: hard stop, or drain complete (nothing in
        // flight anywhere — ledger counts queued, running, and
        // retry-delayed jobs alike until they reach a terminal state).
        let hard_stop = core.stop_now.load(Ordering::SeqCst);
        let drained = core
            .state
            .lock()
            .map(|st| st.draining && st.ledger.total_in_flight == 0)
            .unwrap_or(true);
        if hard_stop || (drained && delayed.is_empty()) {
            break;
        }

        let next_at = outstanding
            .values()
            .filter_map(|o| o.deadline)
            .chain(delayed.iter().map(|(due, _, _)| *due))
            .min();
        let wait = next_at.map_or(Duration::from_millis(100), |at| {
            at.saturating_duration_since(Instant::now()).max(Duration::from_millis(1))
        });
        match rx.recv_timeout(wait) {
            Ok(Msg::Started { worker, task }) => {
                outstanding.insert(
                    (task.job, task.attempt),
                    Outstanding {
                        worker,
                        deadline: core.policy.wall_deadline.map(|d| Instant::now() + d),
                    },
                );
            }
            Ok(Msg::Done { task, outcome }) => {
                outstanding.remove(&(task.job, task.attempt));
                handle_done(core, task, outcome, &mut delayed);
            }
            Ok(Msg::Poke) => {}
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }

        // Expired wall deadlines: write the attempt off, abandon the
        // stuck worker, keep the pool at strength.
        let now = Instant::now();
        let expired: Vec<(u32, u32)> = outstanding
            .iter()
            .filter(|(_, o)| o.deadline.is_some_and(|d| d <= now))
            .map(|(&k, _)| k)
            .collect();
        for key in expired {
            let Some(o) = outstanding.remove(&key) else { continue };
            if let Some(seat) = seats.remove(&o.worker) {
                // Zombie: flagged to retire, handle detached (it may be
                // hung forever; std threads cannot be killed).
                seat.retired.store(true, Ordering::SeqCst);
                seats.insert(next_worker_id, spawn_worker(core, tx, next_worker_id));
                next_worker_id += 1;
            }
            let limit_ms = core.policy.wall_deadline.map_or(0, |d| d.as_millis() as u64);
            let task = Task { job: key.0, attempt: key.1 };
            handle_done(core, task, Err(JobFailure::WallTimeout { limit_ms }), &mut delayed);
        }
    }

    // Stop the pool: flag everyone, wake the parked, join the live. A
    // hard stop skips the joins — in-progress attempts may be long, and
    // the journal already guarantees recovery.
    for seat in seats.values() {
        seat.retired.store(true, Ordering::SeqCst);
    }
    core.injector.cv.notify_all();
    if !core.stop_now.load(Ordering::SeqCst) {
        for (_, seat) in seats.drain() {
            let _ = seat.handle.join();
        }
    }
    if let Ok(mut st) = core.state.lock() {
        st.stopped = true;
    }
    core.done_cv.notify_all();
}

/// Fold one attempt outcome into the job's lifecycle: finalize, retry
/// with backoff, or quarantine — the harness's taxonomy, journaled.
fn handle_done(
    core: &Arc<Core>,
    task: Task,
    outcome: Result<String, JobFailure>,
    delayed: &mut Vec<(Instant, Task, Priority)>,
) {
    let Ok(mut st) = core.state.lock() else { return };
    let Some(e) = st.entries.get_mut(task.job as usize) else { return };
    if e.attempt != task.attempt || e.result.is_some() {
        return; // stale completion from an abandoned worker
    }
    let result = match outcome {
        Ok(payload) => JobResult::ok(e.id.clone(), task.attempt, payload),
        Err(failure) => {
            let disposition = if failure.is_timeout() {
                e.strikes += 1;
                if e.strikes >= core.policy.quarantine_strikes {
                    Some(JobStatus::Quarantined)
                } else {
                    None
                }
            } else if failure.is_transient() {
                e.transient_retries += 1;
                if e.transient_retries > core.policy.max_retries {
                    Some(JobStatus::Failed)
                } else {
                    None
                }
            } else {
                // Panics and persistent errors are deterministic.
                Some(JobStatus::Failed)
            };
            match disposition {
                Some(status) => JobResult::failed(e.id.clone(), status, task.attempt, &failure),
                None => {
                    // Retry with capped exponential backoff; bumping the
                    // attempt invalidates any still-queued stale task.
                    e.attempt += 1;
                    let retry_no = e.strikes.max(e.transient_retries);
                    let delay = core.policy.backoff_for(retry_no);
                    let next = Task { job: task.job, attempt: e.attempt };
                    core.counters.retries.fetch_add(1, Ordering::Relaxed);
                    core.tracer.count("serve.retries", 1);
                    delayed.push((Instant::now() + delay, next, e.priority));
                    return;
                }
            }
        }
    };
    e.result = Some(result.clone());
    let client = e.client.clone();
    if let Some(j) = st.journal.as_mut() {
        if let Err(err) = j.record_result(&result) {
            // The result is still served from memory; only the recovery
            // record for a *future* crash is degraded.
            core.note_journal_drop("result", &result.id, &err);
        }
    }
    st.ledger.release(&client);
    drop(st);
    core.count_terminal(result.status);
    core.tracer.count("serve.completed", 1);
    core.tracer.gauge_add("serve.in_flight", -1.0);
    core.tracer.gauge_add("serve.queue_depth", -1.0);
    core.done_cv.notify_all();
}

/// Render a caught panic payload as text.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicUsize;

    use super::*;

    fn echo_resolver() -> Resolver {
        Arc::new(|spec: &str, _ctx: &JobCtx| Ok(format!("ran:{spec}")))
    }

    fn quick_policy() -> ServePolicy {
        ServePolicy {
            workers: 2,
            retry_backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..ServePolicy::default()
        }
    }

    fn start(policy: ServePolicy, resolver: Resolver) -> Scheduler {
        Scheduler::start(policy, resolver, Tracer::disabled(), None).unwrap()
    }

    #[test]
    fn submit_wait_roundtrip_over_many_jobs() {
        let s = start(ServePolicy { workers: 4, ..quick_policy() }, echo_resolver());
        for i in 0..50 {
            let out = s.submit("c1", &format!("j{i}"), &format!("spec-{i}"));
            assert_eq!(out, SubmitOutcome::Accepted { state: "queued" });
        }
        for i in 0..50 {
            match s.wait(&format!("j{i}"), Some(Duration::from_secs(10))) {
                WaitOutcome::Done(r) => {
                    assert_eq!(r.output.as_deref(), Some(format!("ran:spec-{i}").as_str()));
                    assert_eq!(r.attempts, 1);
                }
                other => panic!("j{i}: {other:?}"),
            }
        }
        let stats = s.stats();
        assert_eq!(stats.submitted, 50);
        assert_eq!(stats.succeeded, 50);
        assert_eq!(stats.in_flight, 0);
        s.drain();
        s.join();
        assert!(s.is_stopped());
    }

    #[test]
    fn duplicate_submission_attaches_and_conflicting_spec_rejects() {
        let s = start(quick_policy(), echo_resolver());
        assert_eq!(s.submit("c1", "job", "spec-a"), SubmitOutcome::Accepted { state: "queued" });
        // Identical resubmission: attach (either still running or done).
        match s.submit("c1", "job", "spec-a") {
            SubmitOutcome::Accepted { state } => assert!(state == "attached" || state == "done"),
            other => panic!("{other:?}"),
        }
        match s.submit("c2", "job", "spec-b") {
            SubmitOutcome::Rejected(rej) => assert_eq!(rej.kind, RejectKind::SpecConflict),
            other => panic!("{other:?}"),
        }
        assert!(matches!(s.wait("job", Some(Duration::from_secs(5))), WaitOutcome::Done(_)));
        assert_eq!(s.stats().submitted, 1, "attach admits nothing new");
        s.drain();
        s.join();
    }

    #[test]
    fn quota_rejections_are_typed_and_release_on_completion() {
        // One slow worker + tiny quota: the 3rd concurrent submit from
        // one client must get a typed overloaded, not a hang.
        let resolver: Resolver = Arc::new(|spec: &str, _ctx| {
            std::thread::sleep(Duration::from_millis(100));
            Ok(spec.to_string())
        });
        let policy = ServePolicy {
            workers: 1,
            quota: QuotaPolicy { max_in_flight_per_client: 2, max_queue_depth: 100 },
            ..quick_policy()
        };
        let s = start(policy, resolver);
        assert!(matches!(s.submit("c1", "a", "s"), SubmitOutcome::Accepted { .. }));
        assert!(matches!(s.submit("c1", "b", "s"), SubmitOutcome::Accepted { .. }));
        match s.submit("c1", "c", "s") {
            SubmitOutcome::Rejected(rej) => {
                assert_eq!(rej.kind, RejectKind::Overloaded);
                assert_eq!(rej.scope, Some("client"));
            }
            other => panic!("{other:?}"),
        }
        // Another client is unaffected.
        assert!(matches!(s.submit("c2", "d", "s"), SubmitOutcome::Accepted { .. }));
        // Once a slot frees, the same client is admitted again.
        assert!(matches!(s.wait("a", Some(Duration::from_secs(5))), WaitOutcome::Done(_)));
        assert!(matches!(s.submit("c1", "c", "s"), SubmitOutcome::Accepted { .. }));
        assert_eq!(s.stats().overloaded, 1);
        s.drain();
        s.join();
    }

    #[test]
    fn panics_are_isolated_and_transients_retry() {
        let attempts = Arc::new(AtomicUsize::new(0));
        let a = Arc::clone(&attempts);
        let resolver: Resolver = Arc::new(move |spec: &str, ctx| match spec {
            "panic" => panic!("injected panic"),
            "flaky" => {
                a.fetch_add(1, Ordering::SeqCst);
                if ctx.attempt < 3 {
                    Err(DmpimError::FaultTransient {
                        kind: pim_faults::FaultKind::BitFlip,
                        at_ps: 7,
                    })
                } else {
                    Ok("recovered".into())
                }
            }
            other => Ok(other.to_string()),
        });
        let s = start(quick_policy(), resolver);
        s.submit("c1", "p", "panic");
        s.submit("c1", "f", "flaky");
        s.submit("c1", "ok", "fine");
        let p = match s.wait("p", Some(Duration::from_secs(5))) {
            WaitOutcome::Done(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(p.status, JobStatus::Failed);
        assert_eq!(p.error_label.as_deref(), Some("panic"));
        let f = match s.wait("f", Some(Duration::from_secs(5))) {
            WaitOutcome::Done(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(f.status, JobStatus::Succeeded);
        assert_eq!(f.attempts, 3);
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        assert!(matches!(s.wait("ok", Some(Duration::from_secs(5))), WaitOutcome::Done(_)));
        assert!(s.stats().retries >= 2);
        s.drain();
        s.join();
    }

    #[test]
    fn wall_deadline_quarantines_hung_jobs_and_pool_survives() {
        let resolver: Resolver = Arc::new(|spec: &str, _ctx| {
            if spec == "hang" {
                std::thread::sleep(Duration::from_millis(500));
            }
            Ok(spec.to_string())
        });
        let policy = ServePolicy {
            workers: 2,
            wall_deadline: Some(Duration::from_millis(40)),
            quarantine_strikes: 2,
            ..quick_policy()
        };
        let s = start(policy, resolver);
        s.submit("c1", "h", "hang");
        for i in 0..6 {
            s.submit("c1", &format!("ok{i}"), &format!("fine-{i}"));
        }
        let h = match s.wait("h", Some(Duration::from_secs(10))) {
            WaitOutcome::Done(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(h.status, JobStatus::Quarantined);
        assert_eq!(h.error_label.as_deref(), Some("wall-timeout"));
        for i in 0..6 {
            match s.wait(&format!("ok{i}"), Some(Duration::from_secs(10))) {
                WaitOutcome::Done(r) => assert_eq!(r.status, JobStatus::Succeeded),
                other => panic!("ok{i}: {other:?}"),
            }
        }
        assert_eq!(s.stats().quarantined, 1);
        s.drain();
        s.join();
    }

    #[test]
    fn drain_refuses_new_work_and_finishes_in_flight() {
        let resolver: Resolver = Arc::new(|spec: &str, _ctx| {
            std::thread::sleep(Duration::from_millis(30));
            Ok(spec.to_string())
        });
        let s = start(quick_policy(), resolver);
        for i in 0..8 {
            assert!(matches!(
                s.submit("c1", &format!("j{i}"), &format!("s{i}")),
                SubmitOutcome::Accepted { .. }
            ));
        }
        s.drain();
        match s.submit("c1", "late", "s") {
            SubmitOutcome::Rejected(rej) => assert_eq!(rej.kind, RejectKind::Draining),
            other => panic!("{other:?}"),
        }
        s.join();
        assert!(s.is_stopped());
        // Every admitted job reached a terminal state before the stop.
        let stats = s.stats();
        assert_eq!(stats.completed, 8, "drain loses nothing");
        assert_eq!(stats.in_flight, 0);
        for i in 0..8 {
            assert!(s.result(&format!("j{i}")).is_some());
        }
    }

    #[test]
    fn journal_recovery_resumes_unfinished_and_restores_finished() {
        let mut path = std::env::temp_dir();
        path.push(format!("pim-serve-sched-recover-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();

        // First incarnation: finish one job, then hard-stop with two
        // admitted-but-unfinished (the resolver blocks them).
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let resolver: Resolver = Arc::new(move |spec: &str, _ctx| {
            if spec.starts_with("slow") {
                while !g.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            Ok(format!("ran:{spec}"))
        });
        let s = Scheduler::start(
            ServePolicy { workers: 1, ..quick_policy() },
            resolver,
            Tracer::disabled(),
            Some(&path),
        )
        .unwrap();
        s.submit("c1", "fast", "quick");
        assert!(matches!(s.wait("fast", Some(Duration::from_secs(5))), WaitOutcome::Done(_)));
        s.submit("c1", "s1", "slow-1");
        s.submit("c1", "s2", "slow-2");
        s.stop_now();
        s.join();
        gate.store(true, Ordering::SeqCst); // unblock the zombie worker

        // Second incarnation: replays the journal.
        let s2 = Scheduler::start(
            ServePolicy { workers: 2, ..quick_policy() },
            echo_resolver(),
            Tracer::disabled(),
            Some(&path),
        )
        .unwrap();
        let stats = s2.stats();
        assert_eq!(stats.recovered, 3, "all three submissions replayed");
        // The finished job is restored bit-identically, without re-running.
        match s2.wait("fast", Some(Duration::from_secs(5))) {
            WaitOutcome::Done(r) => assert_eq!(r.output.as_deref(), Some("ran:quick")),
            other => panic!("{other:?}"),
        }
        // The unfinished ones re-ran under the new resolver.
        for id in ["s1", "s2"] {
            match s2.wait(id, Some(Duration::from_secs(5))) {
                WaitOutcome::Done(r) => {
                    assert!(r.output.as_deref().unwrap().starts_with("ran:slow-"));
                }
                other => panic!("{id}: {other:?}"),
            }
        }
        s2.drain();
        s2.join();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_degradation_keeps_serving_and_is_reported() {
        use pim_chaos::{ChaosConfig, ChaosFile, ChaosPlan};

        let mut path = std::env::temp_dir();
        path.push(format!("pim-serve-sched-degraded-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();

        // Disk-full onset right after the header: every record write
        // fails, but the service must keep computing and serving results
        // from memory, reporting the degradation in stats.
        let file = ChaosFile::create(&path, ChaosPlan::new(ChaosConfig::disk_full(40), 7)).unwrap();
        let journal =
            ServeJournal::from_sink(&path, Box::new(file), FsyncPolicy::Off).unwrap();
        let s = Scheduler::start_with_journal(
            quick_policy(),
            echo_resolver(),
            Tracer::disabled(),
            Some(journal),
            RecoveredState::default(),
        )
        .unwrap();
        for i in 0..10 {
            assert!(
                matches!(s.submit("c1", &format!("j{i}"), &format!("s{i}")), SubmitOutcome::Accepted { .. }),
                "a sick journal must not refuse admission"
            );
        }
        for i in 0..10 {
            match s.wait(&format!("j{i}"), Some(Duration::from_secs(10))) {
                WaitOutcome::Done(r) => assert_eq!(r.output.as_deref(), Some(format!("ran:s{i}").as_str())),
                other => panic!("j{i}: {other:?}"),
            }
        }
        let stats = s.stats();
        assert_eq!(stats.succeeded, 10);
        assert_eq!(stats.journal_degraded, 1, "degradation is sticky and visible");
        assert!(stats.journal_dropped >= 10, "every failed record is counted: {}", stats.journal_dropped);
        let (degraded, dropped) = s.journal_health();
        assert!(degraded);
        assert_eq!(dropped, stats.journal_dropped);
        s.drain();
        s.join();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn work_stealing_spreads_a_burst_across_workers() {
        // A burst far larger than one deque; with 4 workers the steal
        // counter should move (the injector refills one worker's deque in
        // batches, siblings steal from it).
        let resolver: Resolver = Arc::new(|spec: &str, _ctx| {
            std::thread::sleep(Duration::from_micros(200));
            Ok(spec.to_string())
        });
        let policy = ServePolicy {
            workers: 4,
            deque_capacity: 8,
            refill_batch: 8,
            quota: QuotaPolicy { max_in_flight_per_client: 0, max_queue_depth: 0 },
            ..quick_policy()
        };
        let s = start(policy, resolver);
        for i in 0..200 {
            s.submit("c1", &format!("j{i}"), &format!("s{i}"));
        }
        for i in 0..200 {
            assert!(matches!(
                s.wait(&format!("j{i}"), Some(Duration::from_secs(30))),
                WaitOutcome::Done(_)
            ));
        }
        let stats = s.stats();
        assert_eq!(stats.succeeded, 200);
        s.drain();
        s.join();
    }
}
