//! Minimal SIGTERM/SIGINT latch, no external crates.
//!
//! The handler only stores to a static `AtomicBool` (async-signal-safe);
//! the server's accept loop polls [`requested`] and starts a graceful
//! drain. On non-Unix targets the latch exists but never trips — the
//! protocol-level `shutdown` op covers portable and test use.

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // From the C runtime std already links against. `signal(2)` is
        // the one portable-enough registration call that needs no libc
        // struct definitions.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Install the latch for SIGINT and SIGTERM.
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: registering an async-signal-safe handler (a single
        // atomic store) via the C `signal` entry point.
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// Has a shutdown signal arrived?
    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }

    /// Test hook: trip the latch without raising a signal.
    #[cfg(test)]
    pub fn trip_for_test() {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op off Unix; use the protocol `shutdown` op instead.
    pub fn install() {}

    /// Never trips off Unix.
    pub fn requested() -> bool {
        false
    }
}

pub use imp::{install, requested};

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn latch_installs_and_reads() {
        install();
        // Can't portably raise a signal at ourselves without libc's
        // raise(); assert the latch wiring instead.
        imp::trip_for_test();
        assert!(requested());
    }
}
