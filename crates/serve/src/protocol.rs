//! The JSONL wire protocol.
//!
//! One flat JSON object per line in each direction, reusing the
//! harness's journal grammar ([`pim_harness::journal::parse_flat_object`]
//! for parsing, [`pim_trace::json::write_escaped`] for rendering) so the
//! server, the journal, and the wire all speak one dialect. Requests:
//!
//! ```text
//! {"op":"hello","client":"repro"}
//! {"op":"submit","id":"fig18","spec":"experiment:fig18"}
//! {"op":"submit","id":"probe","spec":"kernel:compression","priority":"high"}
//! {"op":"wait","id":"fig18","timeout_ms":5000}
//! {"op":"stats"}            {"op":"metrics"}
//! {"op":"ping"}             {"op":"shutdown","mode":"drain"}
//! ```
//!
//! Responses are `{"type":...}` objects; a job result reuses the exact
//! journal record shape (plus the `type` tag), so a result that crossed
//! the wire, a result restored from the server journal, and a result
//! computed in-process render identically:
//!
//! ```text
//! {"type":"result","job":"fig18","status":"ok","attempts":1,"output":"..."}
//! {"type":"rejected","error":"overloaded","scope":"client","current":8,"limit":8}
//! ```
//!
//! The one exception is the `metrics` reply, which is the raw
//! [`pim_trace::MetricsReport`] JSON (a nested object) — clients treat it
//! as an opaque line. An HTTP `GET /metrics` on the same port returns the
//! same document for scrape tooling.

use pim_harness::journal::{parse_flat_object, parse_result_line, record_line, Field};
use pim_harness::JobResult;
use pim_trace::json::write_escaped;

use crate::deque::Priority;

/// Wire protocol version, negotiated in the `hello` exchange.
pub const PROTOCOL_VERSION: u64 = 1;
/// Server identifier in the `hello` reply.
pub const SERVER_NAME: &str = "pim-serve";

/// How a shutdown request winds the server down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop admitting new jobs, finish everything in flight, then stop.
    Drain,
    /// Stop as soon as workers notice; unfinished jobs stay journaled as
    /// submissions and recover on restart.
    Now,
}

impl ShutdownMode {
    fn label(self) -> &'static str {
        match self {
            ShutdownMode::Drain => "drain",
            ShutdownMode::Now => "now",
        }
    }
}

/// A client request (one line).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Identify the client; quotas are keyed by this name.
    Hello {
        /// Client name.
        client: String,
    },
    /// Submit a job. Idempotent by id: re-submitting an identical
    /// `(id, spec)` attaches to the existing job.
    Submit {
        /// Unique job id (journal key).
        id: String,
        /// What to run, e.g. `experiment:fig18`.
        spec: String,
        /// Queueing class. Omitted on the wire for `Normal` (the
        /// default), so pre-priority clients and servers interoperate
        /// byte-identically.
        priority: Priority,
    },
    /// Block until the job is terminal (or the optional timeout).
    Wait {
        /// Job id to wait for.
        id: String,
        /// Optional wait bound in milliseconds.
        timeout_ms: Option<u64>,
    },
    /// One-line scheduler statistics.
    Stats,
    /// One-line raw metrics-registry JSON.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Ask the server to stop.
    Shutdown {
        /// Drain or stop now.
        mode: ShutdownMode,
    },
}

impl Request {
    /// Render as one wire line (no trailing newline).
    pub fn render(&self) -> String {
        let mut s = String::from("{\"op\":");
        match self {
            Request::Hello { client } => {
                s.push_str("\"hello\",\"client\":");
                write_escaped(&mut s, client);
            }
            Request::Submit { id, spec, priority } => {
                s.push_str("\"submit\",\"id\":");
                write_escaped(&mut s, id);
                s.push_str(",\"spec\":");
                write_escaped(&mut s, spec);
                if *priority != Priority::Normal {
                    s.push_str(",\"priority\":");
                    write_escaped(&mut s, priority.label());
                }
            }
            Request::Wait { id, timeout_ms } => {
                s.push_str("\"wait\",\"id\":");
                write_escaped(&mut s, id);
                if let Some(ms) = timeout_ms {
                    s.push_str(&format!(",\"timeout_ms\":{ms}"));
                }
            }
            Request::Stats => s.push_str("\"stats\""),
            Request::Metrics => s.push_str("\"metrics\""),
            Request::Ping => s.push_str("\"ping\""),
            Request::Shutdown { mode } => {
                s.push_str("\"shutdown\",\"mode\":");
                write_escaped(&mut s, mode.label());
            }
        }
        s.push('}');
        s
    }

    /// Parse one request line. `Err` carries a human-readable reason that
    /// the server echoes back in a `bad-request` rejection.
    pub fn parse(line: &str) -> Result<Self, String> {
        let fields =
            parse_flat_object(line).ok_or_else(|| "not a flat JSON object".to_string())?;
        let get = |key: &str| match fields.get(key) {
            Some(Field::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let op = get("op").ok_or_else(|| "missing \"op\"".to_string())?;
        match op.as_str() {
            "hello" => Ok(Request::Hello {
                client: get("client").ok_or_else(|| "hello needs \"client\"".to_string())?,
            }),
            "submit" => Ok(Request::Submit {
                id: get("id").ok_or_else(|| "submit needs \"id\"".to_string())?,
                spec: get("spec").ok_or_else(|| "submit needs \"spec\"".to_string())?,
                priority: match get("priority") {
                    None => Priority::Normal,
                    Some(p) => Priority::from_label(&p)
                        .ok_or_else(|| format!("unknown priority {p:?}"))?,
                },
            }),
            "wait" => Ok(Request::Wait {
                id: get("id").ok_or_else(|| "wait needs \"id\"".to_string())?,
                timeout_ms: match fields.get("timeout_ms") {
                    Some(Field::Num(n)) => Some(*n),
                    None => None,
                    _ => return Err("\"timeout_ms\" must be a number".to_string()),
                },
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping),
            "shutdown" => match get("mode").as_deref() {
                Some("drain") | None => Ok(Request::Shutdown { mode: ShutdownMode::Drain }),
                Some("now") => Ok(Request::Shutdown { mode: ShutdownMode::Now }),
                Some(other) => Err(format!("unknown shutdown mode {other:?}")),
            },
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// Why a request was refused — every refusal is typed, never a hang or a
/// dropped connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// Admission control: the client or the server queue is at capacity.
    /// Resubmit later; nothing was enqueued.
    Overloaded,
    /// The server is draining for shutdown and admits no new work.
    Draining,
    /// Malformed request line.
    BadRequest,
    /// `wait` for an id the server has never seen.
    UnknownJob,
    /// Re-submission of an existing id with a different spec.
    SpecConflict,
    /// A bounded `wait` elapsed before the job finished.
    Timeout,
    /// Server-side failure (journal I/O, shutdown mid-request). Nothing
    /// was enqueued; safe to resubmit.
    Internal,
}

impl RejectKind {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            RejectKind::Overloaded => "overloaded",
            RejectKind::Draining => "draining",
            RejectKind::BadRequest => "bad-request",
            RejectKind::UnknownJob => "unknown-job",
            RejectKind::SpecConflict => "spec-conflict",
            RejectKind::Timeout => "timeout",
            RejectKind::Internal => "internal",
        }
    }

    /// Inverse of [`RejectKind::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "overloaded" => RejectKind::Overloaded,
            "draining" => RejectKind::Draining,
            "bad-request" => RejectKind::BadRequest,
            "unknown-job" => RejectKind::UnknownJob,
            "spec-conflict" => RejectKind::SpecConflict,
            "timeout" => RejectKind::Timeout,
            "internal" => RejectKind::Internal,
            _ => return None,
        })
    }
}

/// A typed rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// What went wrong.
    pub kind: RejectKind,
    /// Human-readable detail.
    pub reason: String,
    /// For `overloaded`: which limit tripped (`client` or `queue`).
    pub scope: Option<&'static str>,
    /// For `overloaded`: the current occupancy.
    pub current: Option<u64>,
    /// For `overloaded`: the configured limit.
    pub limit: Option<u64>,
}

impl Reject {
    /// A plain rejection with no quota detail.
    pub fn new(kind: RejectKind, reason: impl Into<String>) -> Self {
        Self { kind, reason: reason.into(), scope: None, current: None, limit: None }
    }

    /// An `overloaded` rejection carrying the tripped limit.
    pub fn overloaded(scope: &'static str, current: usize, limit: usize) -> Self {
        Self {
            kind: RejectKind::Overloaded,
            reason: format!("{scope} at capacity: {current}/{limit} in flight"),
            scope: Some(scope),
            current: Some(current as u64),
            limit: Some(limit as u64),
        }
    }
}

/// Scheduler statistics, as sent on the wire and scraped by tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Jobs ever admitted (including recovered submissions).
    pub submitted: u64,
    /// Jobs with a terminal result.
    pub completed: u64,
    /// ... of which succeeded.
    pub succeeded: u64,
    /// ... of which failed.
    pub failed: u64,
    /// ... of which were quarantined.
    pub quarantined: u64,
    /// Retry attempts dispatched.
    pub retries: u64,
    /// Typed `overloaded` rejections returned.
    pub overloaded: u64,
    /// Tasks taken from a sibling worker's deque.
    pub steals: u64,
    /// Jobs admitted but not yet terminal.
    pub in_flight: u64,
    /// Worker threads currently live.
    pub workers: u64,
    /// Distinct client names seen.
    pub clients: u64,
    /// Jobs restored or re-queued from the journal at startup.
    pub recovered: u64,
    /// 1 while draining for shutdown.
    pub draining: u64,
    /// Journal records (submissions or results) that could not be
    /// persisted. The jobs still ran and their results are served from
    /// memory; only crash-recovery coverage is degraded.
    pub journal_dropped: u64,
    /// 1 once any journal write has failed (sticky until restart).
    pub journal_degraded: u64,
}

/// A server response (one line).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to `hello`.
    Hello {
        /// Server identifier ([`SERVER_NAME`]).
        server: String,
        /// Protocol version.
        version: u64,
    },
    /// A submission was admitted (or attached to an existing job).
    Accepted {
        /// Job id.
        id: String,
        /// `queued`, `running`, `done`, or `recovered`.
        state: String,
    },
    /// A typed refusal.
    Rejected(Reject),
    /// A terminal job result (journal record shape).
    Result(JobResult),
    /// Scheduler statistics.
    Stats(Stats),
    /// Reply to `ping`.
    Pong,
    /// Shutdown acknowledged.
    ShuttingDown {
        /// The acknowledged mode.
        mode: String,
    },
}

impl Response {
    /// Render as one wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Response::Hello { server, version } => {
                let mut s = String::from("{\"type\":\"hello\",\"server\":");
                write_escaped(&mut s, server);
                s.push_str(&format!(",\"version\":{version}}}"));
                s
            }
            Response::Accepted { id, state } => {
                let mut s = String::from("{\"type\":\"accepted\",\"id\":");
                write_escaped(&mut s, id);
                s.push_str(",\"state\":");
                write_escaped(&mut s, state);
                s.push('}');
                s
            }
            Response::Rejected(r) => {
                let mut s = String::from("{\"type\":\"rejected\",\"error\":");
                write_escaped(&mut s, r.kind.label());
                s.push_str(",\"reason\":");
                write_escaped(&mut s, &r.reason);
                if let Some(scope) = r.scope {
                    s.push_str(",\"scope\":");
                    write_escaped(&mut s, scope);
                }
                if let Some(cur) = r.current {
                    s.push_str(&format!(",\"current\":{cur}"));
                }
                if let Some(lim) = r.limit {
                    s.push_str(&format!(",\"limit\":{lim}"));
                }
                s.push('}');
                s
            }
            // The journal record shape, tagged. Splicing after the `{`
            // keeps the payload bytes identical to the journal's.
            Response::Result(r) => format!("{{\"type\":\"result\",{}", &record_line(r)[1..]),
            Response::Stats(st) => format!(
                "{{\"type\":\"stats\",\"submitted\":{},\"completed\":{},\"succeeded\":{},\
                 \"failed\":{},\"quarantined\":{},\"retries\":{},\"overloaded\":{},\
                 \"steals\":{},\"in_flight\":{},\"workers\":{},\"clients\":{},\
                 \"recovered\":{},\"draining\":{},\"journal_dropped\":{},\
                 \"journal_degraded\":{}}}",
                st.submitted,
                st.completed,
                st.succeeded,
                st.failed,
                st.quarantined,
                st.retries,
                st.overloaded,
                st.steals,
                st.in_flight,
                st.workers,
                st.clients,
                st.recovered,
                st.draining,
                st.journal_dropped,
                st.journal_degraded,
            ),
            Response::Pong => "{\"type\":\"pong\"}".to_string(),
            Response::ShuttingDown { mode } => {
                let mut s = String::from("{\"type\":\"shutdown\",\"mode\":");
                write_escaped(&mut s, mode);
                s.push('}');
                s
            }
        }
    }

    /// Parse one response line (client side).
    pub fn parse(line: &str) -> Option<Self> {
        let fields = parse_flat_object(line)?;
        let get = |key: &str| match fields.get(key) {
            Some(Field::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let num = |key: &str| match fields.get(key) {
            Some(Field::Num(n)) => Some(*n),
            _ => None,
        };
        match get("type")?.as_str() {
            "hello" => Some(Response::Hello { server: get("server")?, version: num("version")? }),
            "accepted" => Some(Response::Accepted { id: get("id")?, state: get("state")? }),
            "rejected" => Some(Response::Rejected(Reject {
                kind: RejectKind::from_label(&get("error")?)?,
                reason: get("reason").unwrap_or_default(),
                scope: match get("scope").as_deref() {
                    Some("client") => Some("client"),
                    Some("queue") => Some("queue"),
                    _ => None,
                },
                current: num("current"),
                limit: num("limit"),
            })),
            "result" => Some(Response::Result(parse_result_line(line)?)),
            "stats" => Some(Response::Stats(Stats {
                submitted: num("submitted")?,
                completed: num("completed")?,
                succeeded: num("succeeded")?,
                failed: num("failed")?,
                quarantined: num("quarantined")?,
                retries: num("retries")?,
                overloaded: num("overloaded")?,
                steals: num("steals")?,
                in_flight: num("in_flight")?,
                workers: num("workers")?,
                clients: num("clients")?,
                recovered: num("recovered")?,
                draining: num("draining")?,
                // Absent on pre-chaos servers; default to healthy.
                journal_dropped: num("journal_dropped").unwrap_or(0),
                journal_degraded: num("journal_degraded").unwrap_or(0),
            })),
            "pong" => Some(Response::Pong),
            "shutdown" => Some(Response::ShuttingDown { mode: get("mode")? }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use pim_harness::JobStatus;

    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Hello { client: "repro \"1\"".into() },
            Request::Submit {
                id: "fig18".into(),
                spec: "experiment:fig18".into(),
                priority: Priority::Normal,
            },
            Request::Submit {
                id: "probe".into(),
                spec: "kernel:compression".into(),
                priority: Priority::High,
            },
            Request::Wait { id: "fig18".into(), timeout_ms: Some(250) },
            Request::Wait { id: "fig18".into(), timeout_ms: None },
            Request::Stats,
            Request::Metrics,
            Request::Ping,
            Request::Shutdown { mode: ShutdownMode::Drain },
            Request::Shutdown { mode: ShutdownMode::Now },
        ];
        for req in cases {
            let line = req.render();
            assert_eq!(Request::parse(&line), Ok(req.clone()), "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("GET /metrics HTTP/1.1").is_err());
        assert!(Request::parse("{\"op\":\"submit\"}").is_err(), "missing id/spec");
        assert!(Request::parse("{\"op\":\"warp\"}").is_err());
        assert!(Request::parse("{\"id\":\"x\"}").is_err(), "missing op");
        assert!(
            Request::parse("{\"op\":\"submit\",\"id\":\"x\",\"spec\":\"s\",\"priority\":\"urgent\"}")
                .is_err(),
            "unknown priority label is a typed error, not a silent default"
        );
    }

    #[test]
    fn normal_priority_renders_byte_identically_to_pre_priority_wire() {
        // Interop: a Normal submit must not grow a field, so old servers
        // and new clients (and vice versa) keep speaking the same bytes.
        let line = Request::Submit {
            id: "fig18".into(),
            spec: "experiment:fig18".into(),
            priority: Priority::Normal,
        }
        .render();
        assert_eq!(line, "{\"op\":\"submit\",\"id\":\"fig18\",\"spec\":\"experiment:fig18\"}");
        // And an absent field parses back to Normal.
        match Request::parse(&line) {
            Ok(Request::Submit { priority, .. }) => assert_eq!(priority, Priority::Normal),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Hello { server: SERVER_NAME.into(), version: PROTOCOL_VERSION },
            Response::Accepted { id: "fig1".into(), state: "queued".into() },
            Response::Rejected(Reject::overloaded("client", 8, 8)),
            Response::Rejected(Reject::new(RejectKind::Draining, "server is draining")),
            Response::Result(JobResult::ok("fig1", 1, "line1\nline2".into())),
            Response::Result(JobResult {
                id: "bad".into(),
                status: JobStatus::Quarantined,
                attempts: 2,
                output: None,
                error_label: Some("wall-timeout".into()),
                error: Some("exceeded deadline".into()),
                seed: Some(41),
            }),
            Response::Stats(Stats { submitted: 23, in_flight: 4, ..Stats::default() }),
            Response::Stats(Stats {
                journal_dropped: 3,
                journal_degraded: 1,
                ..Stats::default()
            }),
            Response::Pong,
            Response::ShuttingDown { mode: "drain".into() },
        ];
        for resp in cases {
            let line = resp.render();
            assert_eq!(Response::parse(&line), Some(resp.clone()), "{line}");
        }
    }

    #[test]
    fn result_response_payload_matches_journal_record_bytes() {
        let r = JobResult::ok("fig18", 1, "weird \"output\"\nwith lines".into());
        let wire = Response::Result(r.clone()).render();
        let journal = record_line(&r);
        assert_eq!(wire, format!("{{\"type\":\"result\",{}", &journal[1..]));
        // And the journal parser reads the wire line directly.
        assert_eq!(parse_result_line(&wire), Some(r));
    }
}
