//! A thin blocking client for the JSONL protocol.
//!
//! One request, one response line — no pipelining, no background
//! threads. What the simple shape buys is a *predictable* failure story,
//! which the reconnect layer then exploits:
//!
//! * a dropped connection (server crash, mid-stream reset, torn write)
//!   surfaces as [`ServeError::Net`]; the client redials with capped
//!   exponential backoff, repeats the `hello` handshake, and re-issues
//!   the request — safe because every request is idempotent (`submit`
//!   attaches by job id, `wait`/`stats`/`ping` are read-only);
//! * a server that is *up but silent* past the configured read deadline
//!   surfaces as [`ServeError::Timeout`], which is terminal — the job may
//!   still be running, so blind re-submission is the caller's decision,
//!   not the transport's.
//!
//! [`ClientConfig::chaos`] wraps both stream directions in
//! [`pim_chaos`] fault injection (fresh forked plans per redial), which
//! is how the chaos matrix drives a sweep through torn writes, short
//! reads, and connection resets and still expects byte-identical output.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use pim_chaos::{ChaosConfig, ChaosPlan, ChaosReader, ChaosWriter};
use pim_harness::JobResult;

use crate::deque::Priority;
use crate::protocol::{Request, Response, ShutdownMode, Stats, PROTOCOL_VERSION};
use crate::ServeError;

/// Transport policy for a [`Client`].
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// How long one call may wait for its response line before it is a
    /// terminal [`ServeError::Timeout`]. `wait` calls add their own
    /// server-side bound on top. `None` waits forever (pre-chaos
    /// behavior).
    pub read_timeout: Option<Duration>,
    /// Reconnect-and-re-issue attempts after a network failure (0
    /// disables reconnection).
    pub reconnect_attempts: u32,
    /// First reconnect backoff; doubles per attempt.
    pub reconnect_backoff: Duration,
    /// Cap on the growing backoff.
    pub backoff_cap: Duration,
    /// Wrap both stream directions in fault injection: `(config, seed)`.
    /// Each redial forks fresh plans salted by the connection count, so
    /// retries are deterministic but not identical.
    pub chaos: Option<(ChaosConfig, u64)>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            read_timeout: Some(Duration::from_secs(30)),
            reconnect_attempts: 5,
            reconnect_backoff: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            chaos: None,
        }
    }
}

/// One live connection: split halves, possibly chaos-wrapped.
struct Conn {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

/// A connected, identified client.
pub struct Client {
    addr: String,
    name: String,
    cfg: ClientConfig,
    conn: Option<Conn>,
    /// Connections ever dialed; salts the chaos plans per redial.
    dials: u64,
}

impl Client {
    /// Connect and perform the `hello` handshake. `name` keys this
    /// client's quota bucket on the server.
    pub fn connect(addr: &str, name: &str) -> Result<Self, ServeError> {
        Self::connect_with(addr, name, ClientConfig::default())
    }

    /// [`Client::connect`] with an explicit transport policy. The initial
    /// dial already uses the reconnect budget, so a flaky first handshake
    /// retries like any later one.
    pub fn connect_with(addr: &str, name: &str, cfg: ClientConfig) -> Result<Self, ServeError> {
        let mut c = Self {
            addr: addr.to_string(),
            name: name.to_string(),
            cfg,
            conn: None,
            dials: 0,
        };
        let mut backoff = c.cfg.reconnect_backoff;
        let mut last: Option<ServeError> = None;
        for attempt in 0..=c.cfg.reconnect_attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2).min(c.cfg.backoff_cap);
            }
            match c.dial() {
                Ok(()) => return Ok(c),
                Err(e @ ServeError::Net { .. }) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ServeError::Net { what: "connect attempts exhausted".into() }))
    }

    /// The client name sent in `hello`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dial once and perform the handshake.
    fn dial(&mut self) -> Result<(), ServeError> {
        self.conn = None;
        let stream = TcpStream::connect(&self.addr).map_err(|e| ServeError::net(&e))?;
        // One-line request/response traffic is latency-bound: without
        // nodelay, Nagle + delayed ACK adds ~40 ms to every exchange.
        let _ = stream.set_nodelay(true);
        // A short socket timeout keeps the read loop ticking so the
        // client-side deadline is checked regularly.
        let tick = self
            .cfg
            .read_timeout
            .map_or(Duration::from_millis(500), |t| t.min(Duration::from_millis(500)));
        stream.set_read_timeout(Some(tick)).map_err(|e| ServeError::net(&e))?;
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let read_half = stream.try_clone().map_err(|e| ServeError::net(&e))?;
        self.dials += 1;
        let (reader, writer): (Box<dyn Read + Send>, Box<dyn Write + Send>) =
            match self.cfg.chaos {
                Some((cfg, seed)) => (
                    Box::new(ChaosReader::new(
                        read_half,
                        ChaosPlan::fork(cfg, seed, self.dials * 2 + 1),
                    )),
                    Box::new(ChaosWriter::new(
                        stream,
                        ChaosPlan::fork(cfg, seed, self.dials * 2 + 2),
                    )),
                ),
                None => (Box::new(read_half), Box::new(stream)),
            };
        self.conn = Some(Conn { reader: BufReader::new(reader), writer });

        let hello = Request::Hello { client: self.name.clone() };
        match self.call_once(&hello, Some(Duration::ZERO))? {
            Response::Hello { version, .. } if version == PROTOCOL_VERSION => Ok(()),
            Response::Hello { version, .. } => Err(ServeError::protocol(format!(
                "server speaks protocol v{version}, this client v{PROTOCOL_VERSION}"
            ))),
            other => Err(ServeError::protocol(format!("unexpected hello reply: {other:?}"))),
        }
    }

    /// Send one request, read one response line, reconnecting and
    /// re-issuing on network failures.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        self.call_retrying(req, Some(Duration::ZERO))
    }

    /// `grace`: extra read-deadline allowance beyond
    /// [`ClientConfig::read_timeout`] (a bounded server-side `wait` is
    /// allowed its full bound before the client gives up). `None`
    /// disables the deadline for this call (unbounded `wait`).
    fn call_retrying(
        &mut self,
        req: &Request,
        grace: Option<Duration>,
    ) -> Result<Response, ServeError> {
        let mut backoff = self.cfg.reconnect_backoff;
        let mut last: Option<ServeError> = None;
        for attempt in 0..=self.cfg.reconnect_attempts {
            if attempt > 0 {
                self.conn = None;
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2).min(self.cfg.backoff_cap);
            }
            if self.conn.is_none() {
                match self.dial() {
                    Ok(()) => {}
                    Err(e @ ServeError::Net { .. }) => {
                        last = Some(e);
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            match self.call_once(req, grace) {
                Ok(resp) => return Ok(resp),
                Err(e @ ServeError::Net { .. }) => {
                    last = Some(e);
                    continue;
                }
                // Timeout, Rejected, Protocol: terminal — reconnecting
                // cannot make the server faster or the reply valid.
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ServeError::Net { what: "reconnect attempts exhausted".into() }))
    }

    /// One request/response exchange on the current connection.
    fn call_once(
        &mut self,
        req: &Request,
        grace: Option<Duration>,
    ) -> Result<Response, ServeError> {
        let raw = self.call_once_raw(&req.render(), grace)?;
        Response::parse(&raw)
            .ok_or_else(|| ServeError::protocol(format!("unparseable response: {raw:?}")))
    }

    fn call_once_raw(&mut self, line: &str, grace: Option<Duration>) -> Result<String, ServeError> {
        let deadline = match (self.cfg.read_timeout, grace) {
            (Some(t), Some(g)) => Some(Instant::now() + t + g),
            _ => None,
        };
        let conn = self
            .conn
            .as_mut()
            .ok_or(ServeError::Net { what: "not connected".into() })?;
        // One framed write: separate line/newline writes would let Nagle
        // hold the newline back a full delayed-ACK interval.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        conn.writer
            .write_all(framed.as_bytes())
            .and_then(|()| conn.writer.flush())
            .map_err(|e| ServeError::net(&e))?;
        let mut raw = String::new();
        loop {
            match conn.reader.read_line(&mut raw) {
                Ok(0) => {
                    return Err(ServeError::Net { what: "connection closed by server".into() })
                }
                Ok(_) if raw.ends_with('\n') => return Ok(raw.trim_end().to_string()),
                Ok(_) => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return Err(ServeError::Timeout {
                            what: format!(
                                "no response line within {:?} (+ grace)",
                                self.cfg.read_timeout.unwrap_or_default()
                            ),
                        });
                    }
                    continue;
                }
                Err(e) => return Err(ServeError::net(&e)),
            }
        }
    }

    /// Submit a job in the default (`Normal`) lane; returns the accepted
    /// state (`queued`, `attached`, `done`) or the typed rejection as an
    /// error.
    pub fn submit(&mut self, id: &str, spec: &str) -> Result<String, ServeError> {
        self.submit_priority(id, spec, Priority::Normal)
    }

    /// [`Client::submit`] with an explicit priority class. `High` jobs
    /// jump the server's global backlog (fairness-bounded — see
    /// [`Priority`]).
    pub fn submit_priority(
        &mut self,
        id: &str,
        spec: &str,
        priority: Priority,
    ) -> Result<String, ServeError> {
        let req = Request::Submit { id: id.into(), spec: spec.into(), priority };
        match self.call(&req)? {
            Response::Accepted { state, .. } => Ok(state),
            Response::Rejected(rej) => Err(ServeError::Rejected(rej)),
            other => Err(ServeError::protocol(format!("unexpected submit reply: {other:?}"))),
        }
    }

    /// Block until the job is terminal and return its result. With a
    /// timeout, a server-side `timeout` rejection surfaces as
    /// [`ServeError::Rejected`]; the client-side read deadline is
    /// extended by the same bound so the server answers first.
    pub fn wait(&mut self, id: &str, timeout: Option<Duration>) -> Result<JobResult, ServeError> {
        let timeout_ms = timeout.map(|t| t.as_millis() as u64);
        let grace = timeout; // None: unbounded wait disables the deadline
        match self.call_retrying(&Request::Wait { id: id.into(), timeout_ms }, grace)? {
            Response::Result(r) => Ok(r),
            Response::Rejected(rej) => Err(ServeError::Rejected(rej)),
            other => Err(ServeError::protocol(format!("unexpected wait reply: {other:?}"))),
        }
    }

    /// Scheduler statistics.
    pub fn stats(&mut self) -> Result<Stats, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ServeError::protocol(format!("unexpected stats reply: {other:?}"))),
        }
    }

    /// The raw metrics-registry JSON document.
    pub fn metrics_raw(&mut self) -> Result<String, ServeError> {
        let mut last: Option<ServeError> = None;
        for attempt in 0..=self.cfg.reconnect_attempts {
            if attempt > 0 {
                self.conn = None;
                std::thread::sleep(self.cfg.reconnect_backoff);
                if let Err(e) = self.dial() {
                    last = Some(e);
                    continue;
                }
            }
            match self.call_once_raw(&Request::Metrics.render(), Some(Duration::ZERO)) {
                Ok(raw) => return Ok(raw),
                Err(e @ ServeError::Net { .. }) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ServeError::Net { what: "reconnect attempts exhausted".into() }))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ServeError::protocol(format!("unexpected ping reply: {other:?}"))),
        }
    }

    /// Ask the server to shut down (acknowledged before it happens).
    pub fn shutdown(&mut self, mode: ShutdownMode) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown { mode })? {
            Response::ShuttingDown { .. } => Ok(()),
            other => Err(ServeError::protocol(format!("unexpected shutdown reply: {other:?}"))),
        }
    }
}
