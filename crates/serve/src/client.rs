//! A thin blocking client for the JSONL protocol.
//!
//! One request, one response line — no pipelining, no background
//! threads. This is what the `repro --connect` mode and the chaos tests
//! use; it is intentionally dumb so its behavior under server crashes is
//! predictable (a dropped connection surfaces as [`ServeError::Net`] and
//! the caller reconnects and re-submits — submissions are idempotent by
//! job id).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use pim_harness::JobResult;

use crate::protocol::{Request, Response, ShutdownMode, Stats, PROTOCOL_VERSION};
use crate::ServeError;

/// A connected, identified client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    name: String,
}

impl Client {
    /// Connect and perform the `hello` handshake. `name` keys this
    /// client's quota bucket on the server.
    pub fn connect(addr: &str, name: &str) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| ServeError::net(&e))?;
        let reader =
            BufReader::new(stream.try_clone().map_err(|e| ServeError::net(&e))?);
        let mut c = Self { reader, writer: stream, name: name.to_string() };
        match c.call(&Request::Hello { client: name.to_string() })? {
            Response::Hello { version, .. } if version == PROTOCOL_VERSION => Ok(c),
            Response::Hello { version, .. } => Err(ServeError::protocol(format!(
                "server speaks protocol v{version}, this client v{PROTOCOL_VERSION}"
            ))),
            other => Err(ServeError::protocol(format!("unexpected hello reply: {other:?}"))),
        }
    }

    /// The client name sent in `hello`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Send one request, read one response line.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        let line = req.render();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| ServeError::net(&e))?;
        let raw = self.read_line()?;
        Response::parse(&raw)
            .ok_or_else(|| ServeError::protocol(format!("unparseable response: {raw:?}")))
    }

    /// Submit a job; returns the accepted state (`queued`, `attached`,
    /// `done`) or the typed rejection as an error.
    pub fn submit(&mut self, id: &str, spec: &str) -> Result<String, ServeError> {
        match self.call(&Request::Submit { id: id.into(), spec: spec.into() })? {
            Response::Accepted { state, .. } => Ok(state),
            Response::Rejected(rej) => Err(ServeError::Rejected(rej)),
            other => Err(ServeError::protocol(format!("unexpected submit reply: {other:?}"))),
        }
    }

    /// Block until the job is terminal and return its result. With a
    /// timeout, a server-side `timeout` rejection surfaces as
    /// [`ServeError::Rejected`].
    pub fn wait(&mut self, id: &str, timeout: Option<Duration>) -> Result<JobResult, ServeError> {
        let timeout_ms = timeout.map(|t| t.as_millis() as u64);
        match self.call(&Request::Wait { id: id.into(), timeout_ms })? {
            Response::Result(r) => Ok(r),
            Response::Rejected(rej) => Err(ServeError::Rejected(rej)),
            other => Err(ServeError::protocol(format!("unexpected wait reply: {other:?}"))),
        }
    }

    /// Scheduler statistics.
    pub fn stats(&mut self) -> Result<Stats, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ServeError::protocol(format!("unexpected stats reply: {other:?}"))),
        }
    }

    /// The raw metrics-registry JSON document.
    pub fn metrics_raw(&mut self) -> Result<String, ServeError> {
        let line = Request::Metrics.render();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| ServeError::net(&e))?;
        self.read_line()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ServeError::protocol(format!("unexpected ping reply: {other:?}"))),
        }
    }

    /// Ask the server to shut down (acknowledged before it happens).
    pub fn shutdown(&mut self, mode: ShutdownMode) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown { mode })? {
            Response::ShuttingDown { .. } => Ok(()),
            other => Err(ServeError::protocol(format!("unexpected shutdown reply: {other:?}"))),
        }
    }

    fn read_line(&mut self) -> Result<String, ServeError> {
        let mut raw = String::new();
        loop {
            match self.reader.read_line(&mut raw) {
                Ok(0) => {
                    return Err(ServeError::Net { what: "connection closed by server".into() })
                }
                Ok(_) if raw.ends_with('\n') => return Ok(raw.trim_end().to_string()),
                Ok(_) => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(ServeError::net(&e)),
            }
        }
    }
}
